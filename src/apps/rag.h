// RAG personal-assistant pipeline (paper §6.3, Fig 11).
//
// Offline, user data is embedded into a vector index (IVF, the Milvus/DiskANN
// stand-in) and a BM25 index. Online, a hybrid search surfaces 10 + 10
// candidates, the reranker consolidates the top-10, and a simulated LLM
// generates the answer. Reports per-stage latency, selection accuracy, and —
// through the memory tracker — the footprint-over-time curves of Fig 11(b,c).
#ifndef PRISM_SRC_APPS_RAG_H_
#define PRISM_SRC_APPS_RAG_H_

#include <memory>
#include <vector>

#include "src/apps/corpus.h"
#include "src/apps/sim_llm.h"
#include "src/retrieval/bi_encoder.h"
#include "src/retrieval/bm25.h"
#include "src/retrieval/vector_index.h"

namespace prism {

struct RagResult {
  double sparse_ms = 0.0;
  double dense_ms = 0.0;
  double rerank_ms = 0.0;
  double first_token_ms = 0.0;
  double total_ms = 0.0;
  double accuracy = 0.0;  // Precision@K of the reranked context set.
  std::vector<size_t> context_docs;
};

struct RagOptions {
  size_t per_source = 10;
  size_t k = 10;
  size_t embed_dim = 48;
  size_t ivf_nlist = 16;
  size_t ivf_nprobe = 4;
  size_t answer_tokens = 48;
  SimLlmConfig llm;  // Server-class generator (Qwen3-32B on A800s).
};

class RagPipeline {
 public:
  RagPipeline(const SearchCorpus* corpus, RagOptions options, uint64_t seed = 0x4A6);

  // Thread-safe: indexes and encoder are immutable after construction and
  // the generator is stateless, so N client threads can share one pipeline
  // against one (thread-safe) runner, e.g. a RerankService or ServicePool.
  RagResult Query(size_t query_idx, Runner* runner) const;

 private:
  const SearchCorpus* corpus_;
  RagOptions options_;
  BiEncoder encoder_;
  Bm25Index keyword_;
  IvfIndex dense_;
  SimulatedLlm llm_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_RAG_H_

#include "src/model/pair_encoder.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/model/layer.h"

namespace prism {

PairInput BuildPairInput(const ModelConfig& config, const std::vector<uint32_t>& query,
                         const std::vector<uint32_t>& doc, float relevance, size_t seq_len) {
  PRISM_CHECK_GE(seq_len, 8u);
  PRISM_CHECK_LE(seq_len, config.max_seq);
  PRISM_CHECK(!doc.empty());
  PairInput pair;
  pair.relevance = relevance;
  pair.tokens.reserve(seq_len);
  pair.tokens.push_back(kBosToken);
  const size_t q_budget = std::min(query.size(), seq_len / 3);
  for (size_t i = 0; i < q_budget; ++i) {
    pair.tokens.push_back(query[i]);
  }
  pair.tokens.push_back(kSepToken);
  // Fill with doc tokens, cycling if the document is shorter than the budget
  // (synthetic documents make padding semantics unnecessary — see header).
  while (pair.tokens.size() < seq_len - 1) {
    pair.tokens.push_back(doc[(pair.tokens.size() - q_budget - 2) % doc.size()]);
  }
  pair.tokens.push_back(kEosToken);
  PRISM_CHECK_EQ(pair.tokens.size(), seq_len);
  return pair;
}

void EmbedPairInto(const ModelConfig& config, EmbeddingSource* source, const HeadWeights& head,
                   const PairInput& pair, size_t candidate, size_t seq_len, Tensor* hidden) {
  PRISM_CHECK_EQ(pair.tokens.size(), seq_len);
  const size_t d = config.hidden;
  const size_t base = candidate * seq_len;
  PRISM_CHECK_LE((candidate + 1) * seq_len, hidden->rows());
  PRISM_CHECK_EQ(hidden->cols(), d);
  for (size_t t = 0; t < seq_len; ++t) {
    auto row = hidden->row(base + t);
    source->Lookup(pair.tokens[t], row);
    // Sinusoidal position encoding, small scale relative to the unit-norm
    // token embeddings.
    for (size_t i = 0; i < d; i += 2) {
      const double freq = std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(d));
      const double angle = static_cast<double>(t) * freq;
      row[i] += 0.05f * static_cast<float>(std::sin(angle));
      if (i + 1 < d) {
        row[i + 1] += 0.05f * static_cast<float>(std::cos(angle));
      }
    }
  }
  // Unit signal direction (head.w = head_scale · v).
  std::vector<float> v(head.w);
  {
    float norm = 0.0f;
    for (float x : v) {
      norm += x * x;
    }
    norm = std::sqrt(norm);
    PRISM_CHECK_GT(norm, 0.0f);
    for (float& x : v) {
      x /= norm;
    }
  }

  // Planted relevance on the document tokens: attention aggregates these
  // components into the pooled position layer by layer (see synthetic.cc).
  const float s = pair.relevance - 0.5f;
  size_t sep = 0;
  while (sep < seq_len && pair.tokens[sep] != kSepToken) {
    ++sep;
  }
  PRISM_CHECK_LT(sep, seq_len);
  const float doc_gain = s * config.signal_gain;
  for (size_t t = sep + 1; t + 1 < seq_len; ++t) {
    auto row = hidden->row(base + t);
    for (size_t i = 0; i < d; ++i) {
      row[i] += doc_gain * v[i];
    }
  }
  // Weak direct seed at the pooled position so the first layers already carry
  // coarse information.
  auto pool_row = hidden->row(PoolRow(config, candidate, seq_len));
  const float seed_gain = s * config.signal_gain * config.pool_seed;
  for (size_t i = 0; i < d; ++i) {
    pool_row[i] += seed_gain * v[i];
  }
}

size_t ChooseSeqLen(const ModelConfig& config, const std::vector<uint32_t>& query,
                    const std::vector<std::vector<uint32_t>>& docs) {
  size_t longest_doc = 1;
  for (const auto& doc : docs) {
    longest_doc = std::max(longest_doc, doc.size());
  }
  const size_t natural = 3 + std::min(query.size(), config.max_seq / 3) + longest_doc;
  return std::clamp<size_t>(natural, 8, config.max_seq);
}

}  // namespace prism

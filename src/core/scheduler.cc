#include "src/core/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

namespace {

RequestQueue::Clock::duration MillisToDuration(double ms) {
  return std::chrono::duration_cast<RequestQueue::Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

RerankResult MakeShedResult(double deadline_ms, double waited_ms) {
  RerankResult result;
  result.status = Status::DeadlineExceeded(
      "request shed: waited " + std::to_string(waited_ms) + " ms against a " +
      std::to_string(deadline_ms) + " ms deadline");
  result.stats.latency_ms = waited_ms;
  return result;
}

RerankResult SerialScheduler::Submit(const RerankRequest& request) {
  const WallTimer waited;
  std::lock_guard<std::mutex> lock(mu_);
  // The budget covers time spent queueing on the mutex: if it ran out while
  // other requests held the runner, answer cheaply instead of running.
  if (request.deadline_ms > 0.0 && waited.ElapsedMillis() >= request.deadline_ms) {
    return MakeShedResult(request.deadline_ms, waited.ElapsedMillis());
  }
  return runner_->Rerank(request);
}

std::future<RerankResult> RequestQueue::Push(const RerankRequest& request) {
  std::future<RerankResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRISM_CHECK_MSG(!closed_, "Push after Close");
    Pending pending;
    pending.request = &request;
    pending.ticket = next_ticket_++;
    pending.priority = request.priority;
    pending.admitted = Clock::now();
    if (request.deadline_ms > 0.0) {
      pending.has_deadline = true;
      pending.deadline = pending.admitted + MillisToDuration(request.deadline_ms);
    }
    future = pending.promise.get_future();
    // Insert before the first strictly-lower-priority entry, scanning from
    // the back: equal priorities keep ticket (FIFO) order, and the
    // all-default-priority case inserts at the end immediately.
    auto pos = queue_.end();
    while (pos != queue_.begin() && std::prev(pos)->priority < pending.priority) {
      --pos;
    }
    queue_.insert(pos, std::move(pending));
  }
  cv_.notify_one();
  return future;
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatch(size_t max_batch) {
  PRISM_CHECK_GT(max_batch, 0u);
  for (;;) {
    std::vector<Pending> shed;
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      // Shed every expired entry — wherever it sits in the order; a
      // low-priority request can expire behind higher classes.
      const Clock::time_point now = Clock::now();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->ExpiredAt(now)) {
          shed.push_back(std::move(*it));
          it = queue_.erase(it);
          ++shed_;
        } else {
          ++it;
        }
      }
      const size_t take = std::min(max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.empty() && shed.empty() && closed_) {
        return {};  // Closed and drained.
      }
    }
    // Fulfil shed promises outside the lock (set_value wakes the caller).
    for (Pending& pending : shed) {
      const double waited_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - pending.admitted).count();
      pending.promise.set_value(MakeShedResult(pending.request->deadline_ms, waited_ms));
    }
    if (!batch.empty()) {
      return batch;
    }
    // Everything pending was shed; wait for real work (or Close).
  }
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t RequestQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

BatchScheduler::BatchScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads)
    : runner_(runner), max_inflight_(max_inflight) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  if (compute_threads == 0) {
    // At least one thread per batch slot: requests spend much of their layer
    // time waiting on the (simulated) device, so oversubscribing a small core
    // count still overlaps those waits across the batch.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchScheduler::~BatchScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult BatchScheduler::Submit(const RerankRequest& request) {
  return queue_.Push(request).get();
}

void BatchScheduler::DispatchLoop() {
  for (;;) {
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    std::vector<const RerankRequest*> requests;
    requests.reserve(batch.size());
    for (const RequestQueue::Pending& pending : batch) {
      requests.push_back(pending.request);
    }
    std::vector<RerankResult> results = runner_->RerankBatch(requests, compute_pool_.get());
    PRISM_CHECK_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

}  // namespace prism

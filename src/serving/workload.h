// Multi-client scenario workloads over the serving stack.
//
// PRs 2–4 built the concurrent serving layer (Serial/Batch/Carousel
// schedulers, ServicePool, deadline shedding); this subsystem puts realistic
// traffic on it. A ScenarioHarness wraps one of the paper's application
// pipelines (semantic file search, RAG §6.3, agent memory §6.3/Fig 12,
// long-context selection §6.4/Fig 14) behind a uniform query-by-index
// interface, and RunWorkload drives N closed- or open-loop clients through
// that harness against any Runner — a raw engine, a RerankService (any
// scheduler), or a ServicePool — with Zipf-skewed query popularity, Poisson
// arrivals, per-client priority classes, deadlines, and a warmup/measure
// split. The report carries served-only latency percentiles, shed fraction,
// SLO attainment, and per-query selection signatures so a sweep can prove
// that no scheduler/pool combination ever changes a decision.
#ifndef PRISM_SRC_SERVING_WORKLOAD_H_
#define PRISM_SRC_SERVING_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/agent_memory.h"
#include "src/apps/corpus.h"
#include "src/apps/file_search.h"
#include "src/apps/lcs.h"
#include "src/apps/rag.h"
#include "src/common/clock.h"
#include "src/core/service.h"
#include "src/model/config.h"
#include "src/runtime/runner.h"
#include "src/serving/result_cache.h"

namespace prism {

// The four application scenarios of the paper's evaluation.
enum class ScenarioKind { kFileSearch, kRag, kAgentMemory, kLcs };

const char* ScenarioKindName(ScenarioKind kind);
// Parses "file_search" / "rag" / "agent_memory" / "lcs" (CHECK otherwise).
ScenarioKind ScenarioKindByName(const std::string& name);
std::vector<ScenarioKind> AllScenarios();

struct ScenarioOptions {
  uint64_t seed = 0x5CE0;
  // Distinct query ids (the Zipf popularity universe). For the agent
  // scenario this is the number of task types.
  size_t n_queries = 8;
  size_t k = 4;
  // Corpus shape (file_search, rag).
  size_t relevant_per_query = 4;
  size_t background_docs = 60;
  // Downstream generators run at bench speed by default so the serving
  // stack, not simulated-LLM sleep, dominates measured latency.
  SimLlmConfig llm{.prefill_tokens_per_sec = 2e6, .decode_tokens_per_sec = 2e5};
  // Agent-memory scenario shape (tasks are the query universe; each request
  // replays one whole task).
  size_t agent_steps_per_task = 2;
  double agent_env_step_ms = 1.0;
  size_t agent_vlm_prompt_tokens = 500;
  size_t agent_vlm_new_tokens = 5;
  // Long-context-selection shape.
  size_t lcs_segments = 24;
  size_t lcs_relevant = 4;
};

// What one scenario request produced. `selection` is the scenario's
// deterministic decision signature (chosen docs / context / segment set /
// per-step trajectory picks): for a served request it is a pure function of
// (scenario seed, query id), whatever scheduler or pool served the reranks —
// the property the mismatch checks in RunWorkload verify.
struct ScenarioOutcome {
  bool served = false;  // Every rerank the request issued came back ok.
  bool shed = false;    // At least one rerank was shed (kDeadlineExceeded).
  bool error = false;   // At least one rerank failed with another status.
  std::vector<size_t> selection;
  double quality = 0.0;  // Precision / accuracy / task success (0 or 1).
  double rerank_ms = 0.0;
  double queue_wait_ms = 0.0;  // Max scheduler admission wait observed.
};

// One application pipeline behind a uniform, thread-safe query-by-index
// interface. Construction builds the corpus/indexes once; Run may be called
// from any number of client threads concurrently (the underlying pipelines
// are const-query, see src/apps/).
class ScenarioHarness {
 public:
  ScenarioHarness(ScenarioKind kind, const ModelConfig& model, ScenarioOptions options);

  ScenarioKind kind() const { return kind_; }
  const char* name() const { return ScenarioKindName(kind_); }
  size_t n_queries() const { return n_queries_; }

  // Runs query `query_idx % n_queries()` end to end through `runner` (which
  // must itself be thread-safe when Run is called concurrently — a
  // RerankService or ServicePool is; a raw engine is too).
  ScenarioOutcome Run(size_t query_idx, Runner* runner) const;

 private:
  ScenarioKind kind_;
  ScenarioOptions options_;
  size_t n_queries_ = 0;
  std::unique_ptr<SearchCorpus> corpus_;         // file_search, rag
  std::unique_ptr<FileSearchApp> file_search_;
  std::unique_ptr<RagPipeline> rag_;
  std::unique_ptr<AgentMemoryApp> agent_;
  std::unique_ptr<LcsApp> lcs_;
};

// Stamps a priority class and deadline onto every request that flows
// through it. The app pipelines build their RerankRequests internally, so
// admission attributes enter here, between the pipeline and the service.
// Thread-compatible: one instance per client thread.
class TaggingRunner : public Runner {
 public:
  TaggingRunner(Runner* inner, int priority, double deadline_ms)
      : inner_(inner), priority_(priority), deadline_ms_(deadline_ms) {}

  RerankResult Rerank(const RerankRequest& request) override;
  std::string name() const override { return inner_->name(); }

 private:
  Runner* inner_;
  int priority_;
  double deadline_ms_;
};

struct WorkloadOptions {
  size_t clients = 4;
  // Measured requests (after warmup). Warmup requests run identically but
  // are excluded from every aggregate below.
  size_t requests = 64;
  size_t warmup = 8;
  // Query-popularity skew across the id universe (reuses ZipfSampler):
  // query 0 is the hottest. 0 would be uniform; natural traffic is ~0.9–1.1.
  double zipf_skew = 0.9;
  // > 0: open-loop Poisson arrivals at this aggregate rate (requests/s);
  // clients sleep until each request's scheduled arrival and latency is
  // measured *from the scheduled arrival*, so queueing delay under overload
  // is visible. 0: closed loop (each client issues the next request when
  // the previous completes).
  double arrival_hz = 0.0;
  // Deadline stamped on every rerank (0 = none). Under overload the
  // schedulers shed expired requests instead of queueing unboundedly.
  double deadline_ms = 0.0;
  // The leading `high_fraction` of clients send priority `high_priority`
  // requests; the rest send priority 0.
  double high_fraction = 0.0;
  int high_priority = 1;
  // Served-latency SLO for the attainment metric (0 = no SLO, reported 1.0).
  double slo_ms = 0.0;
  // Seed-to-schedule contract: `seed` fully determines the traffic the
  // driver offers, independent of thread interleaving and host speed —
  //   - the open-loop aggregate Poisson arrival schedule: one pre-generated
  //     timeline from Rng(MixSeed(seed, 0xA221)), arrival i at the i-th
  //     cumulative exponential gap;
  //   - the query-id schedule: one pre-generated Zipf draw per request
  //     index from Rng(MixSeed(seed, 0x51D5)), so request i always asks the
  //     same query no matter which client issues it;
  //   - the request → client partition: client c owns request indexes
  //     i ≡ c (mod clients), so priority classes (by client index) are a
  //     pure function of the request index too.
  // What remains host-dependent under the wall clock is only *when* things
  // complete; under a SimClock (below) completions are virtual-time events
  // and the entire run is deterministic.
  uint64_t seed = 0x10AD;
  // Time source for arrival pacing, latency measurement, and the
  // warmup/measure machinery. nullptr (default) = shared wall clock. Point
  // it (and ServiceOptions::clock) at one SimClock to replay the workload
  // in deterministic virtual time; client threads register as simulation
  // participants for its quiescence protocol.
  Clock* clock = nullptr;
};

struct WorkloadReport {
  size_t requests = 0;  // Measured (excludes warmup).
  size_t served = 0;
  size_t shed = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;  // Measure phase only.
  // Completed requests (served + shed + errors) per second — the rate the
  // clients pushed through. Shed requests turn around in ~0 ms, so under
  // overload this overstates useful throughput; served_per_sec below is
  // the delivered rate. The two are equal when nothing sheds.
  double requests_per_sec = 0.0;
  double served_per_sec = 0.0;
  // Served-only client-observed latency (ms). Open-loop latencies are
  // measured from the scheduled arrival.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double shed_fraction = 0.0;
  double slo_attainment = 1.0;       // Served within slo_ms / served.
  double mean_quality = 0.0;         // Served only.
  double mean_queue_wait_ms = 0.0;   // All measured requests (shed included).
  // First served selection per query id (empty where never served).
  std::vector<std::vector<size_t>> selections;
  // Served requests whose selection differed from the baseline (when given)
  // or from the first served occurrence of the same query id (always
  // checked): any nonzero value means a scheduler/pool combination changed
  // a decision.
  size_t mismatches = 0;
  // Per measured request, in request-index order: 'S' served, 'D' shed
  // (deadline), 'E' error. Two runs of the same simulated workload must
  // produce identical sequences — the determinism property the sim-mode
  // tests assert.
  std::string statuses;

  // --- Cache accounting (filled by AttachCacheStats / AttachServingStats
  // after the run; all zero when the corresponding tier is absent). -------
  // Result-cache counters (src/serving/result_cache.h): how many reranks
  // the front-end cache absorbed without an engine pass.
  size_t cache_lookups = 0;
  size_t cache_hits = 0;            // Exact + similarity hits.
  size_t cache_coalesced = 0;       // Served by another request's fill.
  size_t cache_shed_waiting = 0;    // Deadline expired while parked.
  double cache_hit_rate = 0.0;
  // Embedding-cache counters aggregated across the serving stack (a pool
  // counts a shared cache exactly once).
  int64_t embed_hits = 0;
  int64_t embed_misses = 0;
  int64_t embed_miss_bytes = 0;
  double embed_hit_rate = 0.0;

  // Folds a served-stack stats snapshot (RerankService::stats() or
  // ServicePool::stats().aggregate) into the embed_* fields. Call after the
  // run, before SummaryJson.
  void AttachServingStats(const ServiceStats& stats);
  // Folds a ResultCache stats snapshot into the cache_* fields.
  void AttachCacheStats(const ResultCacheStats& stats);

  // Byte-comparable summary: every counter and metric above (selections
  // digested per query id), doubles printed with %.17g so any bit
  // difference between two runs shows. Two RunWorkload calls are
  // equivalent iff their SummaryJson strings are equal.
  std::string SummaryJson() const;
};

// Single-client, in-order pass over every query id; the reference the
// multi-client runs are compared against. CHECKs that every request is
// served (run it without deadlines against an unloaded runner).
std::vector<std::vector<size_t>> BaselineSelections(const ScenarioHarness& scenario,
                                                    Runner* runner);

// Drives `options.clients` client threads through the scenario against
// `runner`. Thread-safe with respect to `runner` (each client wraps it in
// its own TaggingRunner).
WorkloadReport RunWorkload(const ScenarioHarness& scenario, Runner* runner,
                           const WorkloadOptions& options,
                           const std::vector<std::vector<size_t>>* baseline = nullptr);

}  // namespace prism

#endif  // PRISM_SRC_SERVING_WORKLOAD_H_

// SimulatedSsd: file-backed storage with a configurable performance model.
//
// The paper's overlap-window insight (§3.2) hinges on the *ratio* between a
// layer's compute time and the time to load its weights from SSD. This class
// performs real file I/O (so data round-trips are genuine) and then enforces a
// device model on top: a single request queue with fixed per-request latency
// and a bandwidth cap. Concurrent readers serialise behind the queue exactly
// like a single NVMe device at queue depth 1, which is the regime a
// double-buffered layer streamer operates in.
#ifndef PRISM_SRC_STORAGE_SSD_H_
#define PRISM_SRC_STORAGE_SSD_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace prism {

struct SsdConfig {
  // Sustained throughput of the simulated device. The default approximates a
  // PCIe-4.0 SSD scaled by the same factor as the scaled-down model zoo, so
  // that layer-load / layer-compute ratios match the paper's platforms.
  double bandwidth_bytes_per_sec = 512.0 * 1024 * 1024;
  // Fixed per-request latency (submission + flash access).
  int64_t latency_micros = 80;
  // When false, the device model is bypassed (raw file I/O speed) — useful in
  // unit tests that only care about data integrity.
  bool throttle = true;
};

struct SsdStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t read_requests = 0;
  int64_t write_requests = 0;
  int64_t busy_micros = 0;  // Modelled device-busy time.
};

class SimulatedSsd {
 public:
  // Opens (creating if necessary) the backing file.
  SimulatedSsd(std::string path, SsdConfig config);
  ~SimulatedSsd();

  SimulatedSsd(const SimulatedSsd&) = delete;
  SimulatedSsd& operator=(const SimulatedSsd&) = delete;

  Status Read(int64_t offset, std::span<uint8_t> dest);
  Status Write(int64_t offset, std::span<const uint8_t> src);

  // Scattered read submitted as one request: the device model charges the
  // fixed latency once plus bandwidth for the total bytes (NVMe-style queued
  // submission). Used for batched embedding-row fetches (§4.5).
  Status ReadScattered(std::span<const std::pair<int64_t, std::span<uint8_t>>> requests);

  // Appends at the current end-of-device offset; returns the offset written.
  Result<int64_t> Append(std::span<const uint8_t> src);

  int64_t SizeBytes() const;
  const SsdConfig& config() const { return config_; }
  SsdStats stats() const;
  const std::string& path() const { return path_; }

 private:
  // Blocks the caller to model `bytes` moving through the device queue.
  void ChargeTransfer(int64_t bytes);

  std::string path_;
  SsdConfig config_;
  int fd_ = -1;
  mutable Mutex mu_;
  int64_t append_offset_ PRISM_GUARDED_BY(mu_) = 0;
  // Queue model: when the device frees up.
  int64_t device_free_at_micros_ PRISM_GUARDED_BY(mu_) = 0;
  SsdStats stats_ PRISM_GUARDED_BY(mu_);
};

// Creates a unique temp-file path under /tmp for simulated devices.
std::string MakeTempDevicePath(const std::string& tag);

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_SSD_H_

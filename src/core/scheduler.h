// Request admission for RerankService.
//
// A Scheduler decides how concurrent Rerank calls reach the engine:
//
//   SerialScheduler  — one request at a time through a Runner (the original
//                      behaviour; callers queue on a mutex). Required when
//                      the runner is stateful, e.g. the OnlineCalibrator.
//                      Deadlines are honoured at dispatch: a request whose
//                      budget expired while waiting on the mutex is shed.
//   BatchScheduler   — callers enqueue into a ticketed RequestQueue; a
//                      dispatcher thread drains it, coalescing up to
//                      `max_inflight` requests into one BatchRunner pass.
//                      The batch shares a single layer-streaming pass (each
//                      layer's weights are fetched once for every in-flight
//                      request — the paper's §3.3 global view extended
//                      across requests) and fans per-request compute out on
//                      a worker pool. Admission order, not thread timing,
//                      determines batch composition, and per-request pruning
//                      keeps every result bit-identical to a serial run.
//
// Admission order is priority-then-FIFO: within a priority class, tickets
// (monotonic admission sequence numbers) decide; a higher class always
// dispatches before a lower one. Requests carrying a deadline are shed the
// moment the dispatcher observes them expired — their caller receives a
// kDeadlineExceeded RerankResult instead of burning an engine pass — so an
// overloaded service degrades by answering late requests cheaply rather
// than queueing unboundedly.
#ifndef PRISM_SRC_CORE_SCHEDULER_H_
#define PRISM_SRC_CORE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/runtime/runner.h"

namespace prism {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Blocks until the request has been served (or shed); thread-safe. A shed
  // or failed request is reported through `result.status`.
  virtual RerankResult Submit(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

// The result handed to a caller whose request was shed after waiting
// `waited_ms` against `deadline_ms`. topk stays empty; scores are not
// filled (the request never reached an engine).
RerankResult MakeShedResult(double deadline_ms, double waited_ms);

// Mutex-serialised pass-through to a Runner.
class SerialScheduler : public Scheduler {
 public:
  explicit SerialScheduler(Runner* runner) : runner_(runner) {}

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "serial"; }

 private:
  Runner* runner_;
  std::mutex mu_;
};

// Ticketed priority-then-FIFO queue of pending requests. Pushes never block;
// PopBatch blocks until at least one unexpired request is pending (or the
// queue is closed) and then drains up to `max_batch` entries in
// (priority desc, ticket asc) order. Expired entries are shed inside
// PopBatch: their promises are fulfilled with a kDeadlineExceeded result and
// they never surface to the dispatcher.
class RequestQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    const RerankRequest* request = nullptr;
    std::promise<RerankResult> promise;
    uint64_t ticket = 0;
    int priority = 0;
    Clock::time_point admitted;
    // Absolute expiry; only meaningful when has_deadline.
    Clock::time_point deadline;
    bool has_deadline = false;

    bool ExpiredAt(Clock::time_point now) const { return has_deadline && now >= deadline; }
  };

  std::future<RerankResult> Push(const RerankRequest& request);
  std::vector<Pending> PopBatch(size_t max_batch);

  // Wakes PopBatch; subsequent pushes are rejected (CHECK). Entries still
  // queued are drained by subsequent PopBatch calls.
  void Close();

  size_t size() const;

  // Requests shed on an expired deadline so far.
  size_t shed_count() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Kept sorted: priority descending, ticket ascending. Push inserts from
  // the back (new tickets sort last within their class), so the common
  // single-priority workload stays O(1).
  std::deque<Pending> queue_;
  uint64_t next_ticket_ = 0;
  size_t shed_ = 0;
  bool closed_ = false;
};

class BatchScheduler : public Scheduler {
 public:
  // `compute_threads` sizes the per-request fan-out pool (0 = one per core).
  BatchScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads = 0);
  ~BatchScheduler() override;

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "batch"; }

  size_t max_inflight() const { return max_inflight_; }

 private:
  void DispatchLoop();

  BatchRunner* runner_;
  size_t max_inflight_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::thread dispatcher_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SCHEDULER_H_

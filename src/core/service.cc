#include "src/core/service.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/percentile.h"
#include "src/common/rng.h"

namespace prism {

void ServiceStats::Observe(const RerankRequest& request, const RerankResult& result,
                           double observed_ms) {
  ++requests;
  if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      ++shed;
    } else {
      ++errors;
    }
    // A shed or failed request never ran, so its ~0 ms latency must not
    // enter the samples, mean, or max: feeding it in would *improve* p50/p99
    // exactly when overload should degrade them. It is already counted in
    // shed/errors above; any bytes a failing request did stream are still
    // real device traffic.
    bytes_streamed += result.stats.bytes_streamed;
    return;
  }
  total_latency_ms += observed_ms;
  max_latency_ms = std::max(max_latency_ms, observed_ms);
  total_candidate_layers += result.stats.candidate_layers;
  total_candidates += static_cast<int64_t>(request.docs.size());
  bytes_streamed += result.stats.bytes_streamed;
  // Reservoir sampling (algorithm R): after n observations every one of
  // them had an equal latency_capacity/n chance of being retained, so the
  // percentiles describe the whole run, not its tail. The replacement index
  // comes from a seeded SplitMix64 stream: the retained set is a pure
  // function of the observation sequence.
  const size_t capacity = std::max<size_t>(latency_capacity, 1);
  if (latency_samples.size() < capacity) {
    latency_samples.push_back(observed_ms);
  } else {
    const size_t j = static_cast<size_t>(SplitMix64(reservoir_state) %
                                         static_cast<uint64_t>(latency_observed + 1));
    if (j < capacity) {
      latency_samples[j] = observed_ms;
    }
  }
  ++latency_observed;
}

void ServiceStats::Merge(const ServiceStats& other) {
  requests += other.requests;
  shed += other.shed;
  errors += other.errors;
  total_latency_ms += other.total_latency_ms;
  max_latency_ms = std::max(max_latency_ms, other.max_latency_ms);
  total_candidate_layers += other.total_candidate_layers;
  total_candidates += other.total_candidates;
  bytes_streamed += other.bytes_streamed;
  embed_hits += other.embed_hits;
  embed_misses += other.embed_misses;
  embed_miss_bytes += other.embed_miss_bytes;
  latency_samples.insert(latency_samples.end(), other.latency_samples.begin(),
                         other.latency_samples.end());
  latency_observed += other.latency_observed;
}

double ServiceStats::LatencyPercentileMs(double p) const {
  std::vector<double> sorted(latency_samples);
  std::sort(sorted.begin(), sorted.end());
  return PercentileOverSorted(sorted, p);
}

SchedulerKind SchedulerKindByName(const std::string& name) {
  if (name == "auto") {
    return SchedulerKind::kAuto;
  }
  if (name == "serial") {
    return SchedulerKind::kSerial;
  }
  if (name == "batch") {
    return SchedulerKind::kBatch;
  }
  if (name == "carousel") {
    return SchedulerKind::kCarousel;
  }
  PRISM_CHECK_MSG(false, ("unknown scheduler: " + name).c_str());
  return SchedulerKind::kAuto;
}

RerankService::RerankService(const ModelConfig& config, const std::string& checkpoint_path,
                             ServiceOptions options, MemoryTracker* tracker)
    : config_(config), clock_(ResolveClock(options.clock)) {
  if (options.latency_sample_capacity > 0) {
    stats_.latency_capacity = options.latency_sample_capacity;
  }
  engine_ = std::make_unique<PrismEngine>(config, checkpoint_path, options.engine, tracker);
  SchedulerKind kind = options.scheduler;
  if (kind == SchedulerKind::kAuto) {
    kind = options.max_inflight > 1 ? SchedulerKind::kBatch : SchedulerKind::kSerial;
  }
  if (options.online_calibration) {
    PRISM_CHECK_MSG(kind == SchedulerKind::kSerial,
                    "online calibration samples through a serial log; use the serial scheduler "
                    "(max_inflight == 1)");
    PRISM_CHECK_MSG(options.runner_override == nullptr,
                    "runner_override would bypass the calibrator's sample log");
    PrismOptions reference_options = options.engine;
    reference_options.pruning = false;
    // Ground-truth runs happen at idle time; they should not distort the
    // serving path's memory accounting or wait on the simulated device.
    reference_options.streaming = false;
    reference_options.embed_cache = false;
    reference_options.shared_embed_cache = nullptr;
    reference_options.device.ssd.throttle = false;
    reference_ = std::make_unique<PrismEngine>(config, checkpoint_path, reference_options,
                                               tracker);
    calibrator_ = std::make_unique<OnlineCalibrator>(engine_.get(), reference_.get(),
                                                     options.calibration);
  }
  BatchRunner* target =
      options.runner_override != nullptr ? options.runner_override : engine_.get();
  if (options.sim.enabled) {
    PRISM_CHECK_MSG(!options.online_calibration,
                    "online calibration measures real engine timing; it cannot run through the "
                    "simulated cost model");
    sim_runner_ = std::make_unique<SimulatedRunner>(target, options.sim, config.n_layers, clock_);
    target = sim_runner_.get();
  }
  const size_t inflight = std::max<size_t>(options.max_inflight, 1);
  switch (kind) {
    case SchedulerKind::kBatch:
      scheduler_ =
          std::make_unique<BatchScheduler>(target, inflight, options.compute_threads, clock_);
      break;
    case SchedulerKind::kCarousel:
      scheduler_ = std::make_unique<CarouselScheduler>(
          target, inflight, options.compute_threads, options.carousel_linger_ms, clock_);
      break;
    case SchedulerKind::kSerial: {
      Runner* runner = calibrator_ != nullptr ? static_cast<Runner*>(calibrator_.get())
                                              : static_cast<Runner*>(target);
      scheduler_ = std::make_unique<SerialScheduler>(runner, clock_);
      break;
    }
    case SchedulerKind::kAuto:
      PRISM_CHECK_MSG(false, "kAuto resolved above");
      break;
  }
}

RerankResult RerankService::Rerank(const RerankRequest& request) {
  // Client-observed latency on the service's clock: wall time by default,
  // virtual time under simulation — either way queueing is included.
  const double start_ms = clock_->NowMs();
  RerankResult result = scheduler_->Submit(request);
  const double observed_ms = clock_->NowMs() - start_ms;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.Observe(request, result, observed_ms);
  }
  return result;
}

double RerankService::OnIdle() {
  if (calibrator_ == nullptr) {
    return std::nan("");
  }
  return calibrator_->RunIdleCycle();
}

ServiceStats RerankService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  // Embedding-cache counters ride the snapshot (they live in the cache, not
  // under stats_mu_) — but only for a cache this engine owns; a pool-shared
  // cache is counted once by ServicePool::stats().
  if (engine_->owns_embed_cache()) {
    const std::optional<EmbeddingCacheStats> embed = engine_->embed_cache_stats();
    if (embed.has_value()) {
      snapshot.embed_hits = embed->hits;
      snapshot.embed_misses = embed->misses;
      snapshot.embed_miss_bytes = embed->miss_bytes;
    }
  }
  return snapshot;
}

}  // namespace prism

// Table 3: latency & precision summary — 5 models × datasets × P@{1,5,10},
// PRISM vs. HF / HF Offload and PRISM Quant vs. HF Quant.
//
// For each model we report the latency-reduction range (and mean) across
// datasets plus the mean/max precision loss, exactly the paper's columns.
// HF rows print OOM when the model's resident footprint exceeds the device's
// scaled VRAM budget (the paper's 4B/8B behaviour).
//
// Flags: --datasets=N (default 3, 18 = full) --queries=N --candidates=N
//        --device=nvidia|apple --models=csv-of-zoo-names
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "src/model/pair_encoder.h"

namespace prism {
namespace {

struct Cell {
  double latency_ms = 0.0;
  double precision[3] = {0.0, 0.0, 0.0};  // P@1, P@5, P@10
  bool oom = false;
};

constexpr size_t kKs[3] = {1, 5, 10};

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t n_datasets =
      std::min<size_t>(static_cast<size_t>(flags.GetInt("datasets", 3)), 18);
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 1));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 20));
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));

  std::vector<ModelConfig> models;
  if (flags.Has("models")) {
    for (const std::string& name : SplitCsv(flags.GetString("models", ""))) {
      models.push_back(ModelByName(name));
    }
  } else {
    models = ModelZoo();
  }

  PrintHeader("Table 3 — latency & precision summary (" + device.name + ", " +
              std::to_string(n_datasets) + " datasets × " + std::to_string(queries) +
              " queries, " + std::to_string(candidates) + " candidates)");

  const auto profiles = AllDatasetProfiles();
  for (const ModelConfig& model : models) {
    // Per dataset: HF, Offload, Quant cells (K-independent) + PRISM per K.
    std::vector<Cell> hf(n_datasets), off(n_datasets), quant(n_datasets);
    std::vector<std::array<Cell, 3>> prism(n_datasets), prism_q(n_datasets);

    const bool hf_oom =
        EstimateHfPeakBytes(model, device, candidates, model.max_seq, Precision::kFp32) >
        VramBudgetBytes(device);

    for (size_t d = 0; d < n_datasets; ++d) {
      const auto base_cases = MakeCases(model, profiles[d].name, queries, candidates, 10);
      auto run_all_k = [&](auto factory, Cell* cell) {
        auto runner = FreshRunner(factory);
        const BenchRun run = RunCases(runner.get(), base_cases);
        cell->latency_ms = run.mean_latency_ms;
        for (int ki = 0; ki < 3; ++ki) {
          double p = 0.0;
          for (size_t q = 0; q < base_cases.size(); ++q) {
            p += PrecisionAtK(run.topks[q], base_cases[q].relevant, kKs[ki]);
          }
          cell->precision[ki] = p / static_cast<double>(base_cases.size());
        }
      };

      if (hf_oom) {
        hf[d].oom = true;
      } else {
        run_all_k([&] { return MakeHf(model, device, Precision::kFp32); }, &hf[d]);
      }
      run_all_k([&] { return MakeOffload(model, device, Precision::kFp32); }, &off[d]);
      run_all_k([&] { return MakeHf(model, device, Precision::kW4); }, &quant[d]);
      // PRISM prunes toward a specific K, so each K is its own run.
      for (int ki = 0; ki < 3; ++ki) {
        auto cases = MakeCases(model, profiles[d].name, queries, candidates, kKs[ki]);
        {
          auto engine = FreshRunner([&] { return MakePrism(model, device, kThresholdLow, Precision::kFp32); });
          const BenchRun run = RunCases(engine.get(), cases);
          prism[d][ki].latency_ms = run.mean_latency_ms;
          prism[d][ki].precision[ki] = run.mean_precision;
        }
        {
          auto engine = FreshRunner([&] { return MakePrism(model, device, kThresholdLow, Precision::kW4); });
          const BenchRun run = RunCases(engine.get(), cases);
          prism_q[d][ki].latency_ms = run.mean_latency_ms;
          prism_q[d][ki].precision[ki] = run.mean_precision;
        }
      }
    }

    // Aggregate the paper's columns.
    std::printf("\n--- %s ---\n", model.name.c_str());
    std::printf("%-22s %-12s | %-28s | %-22s\n", "system", "baseline", "lat. reduction (range/mean)",
                "prec. loss (mean/max)");
    auto report = [&](const char* sys, const char* base, int ki,
                      const std::vector<Cell>& baseline,
                      const std::vector<std::array<Cell, 3>>& ours) {
      double lo = 1e9;
      double hi = -1e9;
      double mean = 0.0;
      double loss_sum = 0.0;
      double loss_max = 0.0;
      size_t counted = 0;
      for (size_t d = 0; d < n_datasets; ++d) {
        if (baseline[d].oom) {
          continue;
        }
        const double reduction =
            100.0 * (1.0 - ours[d][ki].latency_ms / baseline[d].latency_ms);
        lo = std::min(lo, reduction);
        hi = std::max(hi, reduction);
        mean += reduction;
        const double loss = baseline[d].precision[ki] - ours[d][ki].precision[ki];
        loss_sum += loss;
        loss_max = std::max(loss_max, loss);
        ++counted;
      }
      if (counted == 0) {
        std::printf("%-22s %-12s | %-28s | %-22s\n", sys, base, "OOM", "-");
        return;
      }
      mean /= static_cast<double>(counted);
      char lat[64];
      std::snprintf(lat, sizeof(lat), "%.1f%% – %.1f%% (%.1f%%)", lo, hi, mean);
      char prec[64];
      std::snprintf(prec, sizeof(prec), "%+.3f / %+.3f", loss_sum / counted, loss_max);
      std::printf("%-22s %-12s | %-28s | %-22s\n", sys, base, lat, prec);
    };
    for (int ki = 0; ki < 3; ++ki) {
      std::printf("[Precision@%zu]\n", kKs[ki]);
      report("PRISM", "HF", ki, hf, prism);
      report("PRISM", "HF Offload", ki, off, prism);
      report("PRISM Quant", "HF Quant", ki, quant, prism_q);
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

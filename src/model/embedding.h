// Embedding sources: the fully-resident table and the LRU-cached table.
//
// §4.4 of the paper: after layer streaming, the embedding table dominates the
// remaining memory footprint, but its activation is highly sparse (a 20×512
// request touches ≤ 6.75% of the vocabulary) and Zipf-skewed. EmbeddingCache
// keeps only `capacity_rows` rows in memory (LRU) and reads misses row-by-row
// from the checkpoint through the simulated SSD.
#ifndef PRISM_SRC_MODEL_EMBEDDING_H_
#define PRISM_SRC_MODEL_EMBEDDING_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/memory_tracker.h"
#include "src/common/mutex.h"
#include "src/model/config.h"
#include "src/storage/blob_file.h"

namespace prism {

// Common interface so runners can swap the resident table for the cache.
class EmbeddingSource {
 public:
  virtual ~EmbeddingSource() = default;
  // Copies the embedding row for `token` into `dest` (size == hidden).
  virtual void Lookup(uint32_t token, std::span<float> dest) = 0;
  virtual int64_t ResidentBytes() const = 0;
};

// Loads blob 0 fully into memory (the baseline runners' behaviour).
class FullEmbeddingTable : public EmbeddingSource {
 public:
  FullEmbeddingTable(const ModelConfig& config, BlobFileReader* reader,
                     MemoryTracker* tracker = &MemoryTracker::Global());

  void Lookup(uint32_t token, std::span<float> dest) override;
  int64_t ResidentBytes() const override;

  std::span<const float> Row(uint32_t token) const;

 private:
  ModelConfig config_;
  std::vector<float> table_;
  MemClaim claim_;
};

struct EmbeddingCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t miss_bytes = 0;

  double HitRate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// LRU row cache over the on-disk embedding blob (§4.4). Misses trigger a
// synchronous row-granular read through the simulated device.
//
// Thread-safe: the cache is shared by every request in flight through the
// engine, so all LRU bookkeeping (and the stats) is mutex-guarded. The row
// *values* a lookup returns are independent of hit/miss interleavings, which
// is what keeps concurrently-served requests bit-identical to serial runs;
// only the hit-rate stats depend on arrival order.
class EmbeddingCache : public EmbeddingSource {
 public:
  EmbeddingCache(const ModelConfig& config, BlobFileReader* reader, size_t capacity_rows,
                 MemoryTracker* tracker = &MemoryTracker::Global());

  void Lookup(uint32_t token, std::span<float> dest) override;
  int64_t ResidentBytes() const override;

  // Batched miss handling (paper §4.5): collects the unique tokens of a
  // request that are not resident and fetches them in a single device read
  // per contiguous run, paying the request latency once instead of per row.
  // The lock is released across the device read (same discipline as
  // Lookup's miss path), so concurrent hits never wait on a prefetch; rows
  // that lose a concurrent-insert race are dropped on reacquire.
  void PrefetchTokens(const std::vector<uint32_t>& tokens);

  size_t capacity_rows() const { return capacity_rows_; }
  size_t resident_rows() const;
  EmbeddingCacheStats stats() const;  // Snapshot (cumulative).

 private:
  void InsertRowLocked(uint32_t token, std::vector<float> row) PRISM_REQUIRES(mu_);

  ModelConfig config_;
  BlobFileReader* reader_;
  size_t capacity_rows_;
  mutable Mutex mu_;
  // LRU: most-recent at front. map_ points into lru_.
  std::list<std::pair<uint32_t, std::vector<float>>> lru_ PRISM_GUARDED_BY(mu_);
  std::unordered_map<uint32_t, std::list<std::pair<uint32_t, std::vector<float>>>::iterator> map_
      PRISM_GUARDED_BY(mu_);
  EmbeddingCacheStats stats_ PRISM_GUARDED_BY(mu_);
  MemClaim claim_;  // Claims capacity upfront: the cache is a fixed budget.
};

}  // namespace prism

#endif  // PRISM_SRC_MODEL_EMBEDDING_H_

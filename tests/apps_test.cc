#include <gtest/gtest.h>

#include "src/apps/agent_memory.h"
#include "src/apps/corpus.h"
#include "src/apps/file_search.h"
#include "src/apps/lcs.h"
#include "src/apps/rag.h"
#include "src/apps/sim_llm.h"
#include "src/core/engine.h"
#include "src/runtime/hf_runner.h"
#include "tests/test_util.h"

namespace prism {
namespace {

// Fast generator settings so app tests stay quick.
SimLlmConfig FastLlm() {
  SimLlmConfig config;
  config.prefill_tokens_per_sec = 2e6;
  config.decode_tokens_per_sec = 2e5;
  return config;
}

TEST(SimLlmTest, LatencyScalesWithTokens) {
  MemoryTracker tracker;
  SimLlmConfig config;
  config.prefill_tokens_per_sec = 10000.0;
  config.decode_tokens_per_sec = 1000.0;
  SimulatedLlm llm(config, &tracker);
  const SimLlmResult small = llm.Generate(100, 10);
  const SimLlmResult large = llm.Generate(1000, 100);
  EXPECT_GT(large.latency_ms, small.latency_ms * 3);
  EXPECT_LE(small.first_token_ms, small.latency_ms);
}

TEST(CorpusTest, PlantedDocsGetHigherRelevance) {
  const ModelConfig config = TestModel();
  const SearchCorpus corpus(DatasetByName("wikipedia"), config, 4, 3, 40, 11);
  EXPECT_EQ(corpus.docs().size(), 40u + 4u * 3u);
  for (size_t q = 0; q < corpus.queries().size(); ++q) {
    double relevant_mean = 0.0;
    for (size_t doc : corpus.queries()[q].relevant) {
      relevant_mean += corpus.PlantedRelevance(q, doc);
      EXPECT_GT(corpus.Grade(q, doc), 0.0f);
    }
    relevant_mean /= static_cast<double>(corpus.queries()[q].relevant.size());
    double background_mean = 0.0;
    for (size_t doc = 0; doc < 10; ++doc) {
      background_mean += corpus.PlantedRelevance(q, doc);
    }
    background_mean /= 10.0;
    EXPECT_GT(relevant_mean, background_mean + 0.2);
  }
}

TEST(CorpusTest, RequestsAreWellFormed) {
  const ModelConfig config = TestModel();
  const SearchCorpus corpus(DatasetByName("beir-nq"), config, 2, 3, 20, 12);
  const RerankRequest request = corpus.MakeRequest(0, {0, 1, 2, 24}, 2);
  EXPECT_EQ(request.docs.size(), 4u);
  EXPECT_EQ(request.planted_r.size(), 4u);
  EXPECT_EQ(request.k, 2u);
}

class AppsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    HfRunnerOptions hopts;
    hopts.device = FastDevice();
    hf_ = std::make_unique<HfRunner>(config_, ckpt_, hopts, &hf_tracker_);
    PrismOptions popts;
    popts.device = FastDevice();
    prism_ = std::make_unique<PrismEngine>(config_, ckpt_, popts, &prism_tracker_);
  }

  ModelConfig config_;
  std::string ckpt_;
  MemoryTracker hf_tracker_;
  MemoryTracker prism_tracker_;
  std::unique_ptr<HfRunner> hf_;
  std::unique_ptr<PrismEngine> prism_;
};

TEST_F(AppsTest, FileSearchFindsPlantedDocs) {
  const SearchCorpus corpus(DatasetByName("wikipedia"), config_, 3, 4, 60, 13);
  const FileSearchApp app(&corpus, /*per_source=*/10);
  double precision = 0.0;
  for (size_t q = 0; q < 3; ++q) {
    const FileSearchResult result = app.Search(q, 4, hf_.get());
    EXPECT_EQ(result.top_docs.size(), 4u);
    EXPECT_GE(result.rerank_ms, 0.0);
    precision += result.precision;
  }
  EXPECT_GT(precision / 3.0, 0.5);  // End-to-end: retrieval + rerank find the planted docs.
}

TEST_F(AppsTest, FileSearchPrismMatchesHf) {
  const SearchCorpus corpus(DatasetByName("wikipedia"), config_, 2, 4, 60, 13);
  const FileSearchApp app(&corpus, 10);
  const FileSearchResult a = app.Search(0, 4, hf_.get());
  const FileSearchResult b = app.Search(0, 4, prism_.get());
  EXPECT_NEAR(a.precision, b.precision, 0.26);
}

TEST_F(AppsTest, RagPipelineEndToEnd) {
  const SearchCorpus corpus(DatasetByName("beir-nq"), config_, 3, 5, 60, 14);
  RagOptions options;
  options.k = 5;
  options.llm = FastLlm();
  RagPipeline rag(&corpus, options);
  const RagResult result = rag.Query(0, hf_.get());
  EXPECT_EQ(result.context_docs.size(), 5u);
  EXPECT_GT(result.accuracy, 0.0);
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GE(result.total_ms, result.rerank_ms);
}

TEST_F(AppsTest, AgentMemoryFasterWithRerankerThanDisabled) {
  AgentWorkloadProfile profile = VideoWorkload();
  profile.n_tasks = 2;
  profile.steps_per_task = 2;
  profile.env_step_ms = 5.0;
  profile.vlm_prompt_tokens = 3000;  // VLM decisions clearly dominate (~1.2 s each)
  profile.vlm_new_tokens = 6;         // while keeping the test quick.
  AgentMemoryApp app(profile, config_, 15);
  const AgentRunResult disabled = app.Run(nullptr);
  const AgentRunResult with_reranker = app.Run(hf_.get());
  EXPECT_GT(disabled.avg_task_latency_ms, with_reranker.avg_task_latency_ms);
  EXPECT_EQ(disabled.success_rate, 1.0);  // VLM path always succeeds.
  EXPECT_GE(with_reranker.success_rate, 0.5);
}

TEST_F(AppsTest, LcsRerankedBeatsNoReranker) {
  LcsOptions options;
  options.n_segments = 24;
  options.relevant_segments = 4;
  options.k = 5;
  options.llm = FastLlm();
  LcsApp app(options, config_, 16);
  const LcsResult with_reranker = app.Answer(0, hf_.get());
  const LcsResult without = app.Answer(0, nullptr);
  EXPECT_GT(with_reranker.precision, without.precision);
  EXPECT_LT(with_reranker.prompt_tokens, without.prompt_tokens);
}

TEST_F(AppsTest, LcsPrismMatchesHfPrecision) {
  LcsOptions options;
  options.n_segments = 24;
  options.relevant_segments = 4;
  options.k = 5;
  options.llm = FastLlm();
  LcsApp app(options, config_, 17);
  const LcsResult a = app.Answer(1, hf_.get());
  const LcsResult b = app.Answer(1, prism_.get());
  EXPECT_NEAR(a.precision, b.precision, 0.21);
}

}  // namespace
}  // namespace prism

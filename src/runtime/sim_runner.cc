#include "src/runtime/sim_runner.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace prism {

namespace {

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendBytes(out, &value, sizeof(value));
}

// Exact binary identity of everything that determines the engine's ranking.
// priority/deadline_ms are scheduler concerns — they never reach the model —
// so requests differing only in them share a memo entry.
std::string Fingerprint(const RerankRequest& request) {
  std::string key;
  AppendPod(&key, request.k);
  AppendPod(&key, request.query.size());
  AppendBytes(&key, request.query.data(), request.query.size() * sizeof(uint32_t));
  AppendPod(&key, request.docs.size());
  for (const std::vector<uint32_t>& doc : request.docs) {
    AppendPod(&key, doc.size());
    AppendBytes(&key, doc.data(), doc.size() * sizeof(uint32_t));
  }
  AppendPod(&key, request.planted_r.size());
  AppendBytes(&key, request.planted_r.data(), request.planted_r.size() * sizeof(float));
  return key;
}

// Host-measured timings are the one nondeterministic part of a result;
// everything else (ranking, work stats) is a pure function of the request.
void ScrubTimings(RerankResult* result) {
  result->stats.latency_ms = 0.0;
  result->stats.embed_ms = 0.0;
  result->stats.compute_ms = 0.0;
  result->stats.io_stall_ms = 0.0;
  result->stats.queue_wait_ms = 0.0;
  result->stats.first_layer_ms = 0.0;
}

// One simulated request riding a synthetic carousel: it "needs" exactly the
// layers its serial plan ran and carries the memoized result to the end.
class SimTicket : public CarouselTicket {
 public:
  SimTicket(RerankResult result, size_t n_layers) : result_(std::move(result)) {
    // A failed memoized run reports no layers; retire the ticket at the
    // first step so the error answers immediately.
    layers_needed_ = result_.status.ok() ? result_.stats.layers_until_done : 1;
    if (layers_needed_ == 0 || layers_needed_ > n_layers) {
      layers_needed_ = n_layers;
    }
  }

  size_t next_layer() const override { return next_layer_; }
  bool done() const override { return next_layer_ >= layers_needed_; }
  RerankResult TakeResult() override { return std::move(result_); }

  void Advance() { ++next_layer_; }

 private:
  RerankResult result_;
  size_t layers_needed_ = 0;
  size_t next_layer_ = 0;
};

class SimCarouselPass : public CarouselPass {
 public:
  explicit SimCarouselPass(SimulatedRunner* runner) : runner_(runner) {}

  size_t n_layers() const override { return runner_->n_layers(); }

  std::unique_ptr<CarouselTicket> Admit(const RerankRequest& request) override {
    return std::make_unique<SimTicket>(runner_->Cached(request), runner_->n_layers());
  }

  void Step(size_t layer, std::span<CarouselTicket* const> group,
            ThreadPool* compute_pool) override {
    (void)compute_pool;
    (void)layer;
    if (group.empty()) {
      return;  // A skipped position costs nothing (the real pass prefetch-skips).
    }
    // The pass's affine cost, spread evenly over its layer steps.
    const SimCostOptions& cost = runner_->options();
    const double n = static_cast<double>(runner_->n_layers());
    runner_->clock()->SleepFor((cost.pass_ms + cost.per_request_ms * group.size()) / n);
    for (CarouselTicket* ticket : group) {
      static_cast<SimTicket*>(ticket)->Advance();
    }
  }

  void SkipToNextCycle() override {}

 private:
  SimulatedRunner* runner_;
};

}  // namespace

SimulatedRunner::SimulatedRunner(BatchRunner* target, const SimCostOptions& options,
                                 size_t n_layers, Clock* clock)
    : target_(target), options_(options), n_layers_(n_layers), clock_(ResolveClock(clock)) {
  PRISM_CHECK_GT(n_layers_, 0u);
}

RerankResult SimulatedRunner::Cached(const RerankRequest& request) {
  if (!options_.memoize) {
    RerankResult result = target_->Rerank(request);
    ScrubTimings(&result);
    return result;
  }
  const std::string key = Fingerprint(request);
  {
    MutexLock lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      return it->second;
    }
  }
  // Real engine pass at a frozen virtual instant (compute never advances
  // virtual time — the computing thread is runnable throughout).
  RerankResult result = target_->Rerank(request);
  ScrubTimings(&result);
  MutexLock lock(mu_);
  return memo_.emplace(key, std::move(result)).first->second;
}

RerankResult SimulatedRunner::Rerank(const RerankRequest& request) {
  RerankResult result = Cached(request);
  const double charge = options_.pass_ms + options_.per_request_ms;
  clock_->SleepFor(charge);
  result.stats.latency_ms = charge;
  return result;
}

std::vector<RerankResult> SimulatedRunner::RerankBatch(
    std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) {
  (void)compute_pool;
  std::vector<RerankResult> results;
  results.reserve(requests.size());
  for (const RerankRequest* request : requests) {
    results.push_back(Cached(*request));
  }
  if (!requests.empty()) {
    // One shared pass with a barrier at the end: every batchmate finishes
    // when the whole batch does (matching BatchScheduler's real shape).
    const double charge =
        options_.pass_ms + options_.per_request_ms * static_cast<double>(requests.size());
    clock_->SleepFor(charge);
    for (RerankResult& result : results) {
      result.stats.latency_ms = charge;
    }
  }
  return results;
}

std::unique_ptr<CarouselPass> SimulatedRunner::BeginCarousel() {
  return std::make_unique<SimCarouselPass>(this);
}

size_t SimulatedRunner::memo_size() const {
  MutexLock lock(mu_);
  return memo_.size();
}

}  // namespace prism

// LLM long-context selection (paper §6.3): pick the top-K most relevant
// segments of an ultra-long context before on-device generation, versus
// feeding the context wholesale.
#include <cstdio>

#include "src/apps/lcs.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"

int main() {
  using namespace prism;

  const ModelConfig model = Qwen3Reranker0_6B();
  const std::string checkpoint = EnsureCheckpoint(model, 42);

  LcsOptions options;
  options.n_segments = 40;
  options.k = 8;
  LcsApp app(options, model, 0x1C);

  PrismOptions prism_options;
  prism_options.device = NvidiaProfile();
  prism_options.dispersion_threshold = 0.15f;
  PrismEngine prism(model, checkpoint, prism_options);

  std::printf("Long-context selection: %zu segments -> top-%zu\n\n", options.n_segments,
              options.k);
  {
    const LcsResult result = app.Answer(0, &prism);
    std::printf("[PRISM]       rerank %7.0f ms  generate %7.0f ms  total %7.0f ms  "
                "precision %.3f  prompt %zu tokens\n",
                result.rerank_ms, result.inference_ms, result.total_ms, result.precision,
                result.prompt_tokens);
  }
  {
    const LcsResult result = app.Answer(0, nullptr);
    std::printf("[No reranker] rerank %7.0f ms  generate %7.0f ms  total %7.0f ms  "
                "precision %.3f  prompt %zu tokens\n",
                result.rerank_ms, result.inference_ms, result.total_ms, result.precision,
                result.prompt_tokens);
  }
  return 0;
}

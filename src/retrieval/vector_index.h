// Vector indexes for dense retrieval.
//
// FlatIndex is exact brute-force cosine search; IvfIndex is an inverted-file
// ANN index (k-means coarse quantiser + nprobe), the stand-in for the
// DiskANN-based Milvus deployment in the paper's RAG pipeline (§6.3).
#ifndef PRISM_SRC_RETRIEVAL_VECTOR_INDEX_H_
#define PRISM_SRC_RETRIEVAL_VECTOR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/retrieval/bm25.h"  // RetrievalHit

namespace prism {

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;
  virtual size_t Add(std::vector<float> embedding) = 0;
  virtual std::vector<RetrievalHit> Search(const std::vector<float>& query, size_t n) const = 0;
  virtual size_t size() const = 0;
};

class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(size_t dim) : dim_(dim) {}

  size_t Add(std::vector<float> embedding) override;
  std::vector<RetrievalHit> Search(const std::vector<float>& query, size_t n) const override;
  size_t size() const override { return vectors_.size(); }

 private:
  size_t dim_;
  std::vector<std::vector<float>> vectors_;
};

class IvfIndex : public VectorIndex {
 public:
  // `nlist` coarse centroids, `nprobe` lists scanned per query. Train() must
  // be called after all Adds and before Search.
  IvfIndex(size_t dim, size_t nlist, size_t nprobe, uint64_t seed = 0x1f);

  size_t Add(std::vector<float> embedding) override;
  void Train();
  std::vector<RetrievalHit> Search(const std::vector<float>& query, size_t n) const override;
  size_t size() const override { return vectors_.size(); }
  bool trained() const { return trained_; }

 private:
  size_t dim_;
  size_t nlist_;
  size_t nprobe_;
  uint64_t seed_;
  bool trained_ = false;
  std::vector<std::vector<float>> vectors_;
  std::vector<std::vector<float>> centroids_;
  std::vector<std::vector<size_t>> lists_;  // centroid → member doc ids
};

}  // namespace prism

#endif  // PRISM_SRC_RETRIEVAL_VECTOR_INDEX_H_

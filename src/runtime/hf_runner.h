// The "HF" and "HF Quant" baselines (§6.1): HuggingFace-Transformers-style
// in-memory inference. All weights (embedding table + every layer + head)
// are resident for the runner's lifetime; candidates are processed in fixed
// small batches (vanilla systems split inputs to balance compute and memory),
// each batch forwarded through all layers, scores taken from the final layer.
#ifndef PRISM_SRC_RUNTIME_HF_RUNNER_H_
#define PRISM_SRC_RUNTIME_HF_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/model/embedding.h"
#include "src/model/weights.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"
#include "src/storage/blob_file.h"

namespace prism {

struct HfRunnerOptions {
  DeviceProfile device = NvidiaProfile();
  Precision precision = Precision::kFp32;  // Reduced weights in memory ("HF Quant" etc).
  size_t batch_size = 0;                   // 0 = device.hf_batch_size.
};

class HfRunner : public Runner {
 public:
  // `checkpoint_path` must be a checkpoint stored at `options.precision`.
  HfRunner(const ModelConfig& config, const std::string& checkpoint_path,
           HfRunnerOptions options, MemoryTracker* tracker = &MemoryTracker::Global());

  RerankResult Rerank(const RerankRequest& request) override;
  std::string name() const override {
    switch (options_.precision) {
      case Precision::kFp16:
        return "HF Fp16";
      case Precision::kInt8:
        return "HF Int8";
      case Precision::kW4:
        return "HF Quant";
      case Precision::kFp32:
        break;
    }
    return "HF";
  }

 private:
  ModelConfig config_;
  HfRunnerOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<BlobFileReader> reader_;
  std::unique_ptr<FullEmbeddingTable> embedding_;
  std::vector<std::vector<uint8_t>> layer_blobs_;  // All layers resident.
  MemClaim layers_claim_;
  HeadWeights head_;
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_HF_RUNNER_H_

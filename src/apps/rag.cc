#include "src/apps/rag.h"

#include "src/common/timer.h"
#include "src/data/metrics.h"
#include "src/retrieval/hybrid.h"

namespace prism {

RagPipeline::RagPipeline(const SearchCorpus* corpus, RagOptions options, uint64_t seed)
    : corpus_(corpus),
      options_(options),
      encoder_(options.embed_dim, seed),
      dense_(options.embed_dim, options.ivf_nlist, options.ivf_nprobe, seed),
      llm_(options.llm) {
  for (const auto& doc : corpus_->docs()) {
    keyword_.Add(doc);
    dense_.Add(encoder_.Embed(doc));
  }
  dense_.Train();
}

RagResult RagPipeline::Query(size_t query_idx, Runner* runner) const {
  const WallTimer total_timer;
  RagResult result;
  const CorpusQuery& query = corpus_->queries()[query_idx];

  std::vector<RetrievalHit> sparse;
  {
    const WallTimer timer;
    sparse = keyword_.Search(query.tokens, options_.per_source);
    result.sparse_ms = timer.ElapsedMillis();
  }
  std::vector<RetrievalHit> dense;
  {
    const WallTimer timer;
    dense = dense_.Search(encoder_.Embed(query.tokens), options_.per_source);
    result.dense_ms = timer.ElapsedMillis();
  }
  const std::vector<size_t> candidates = FuseHits(sparse, dense, 2 * options_.per_source);

  const RerankRequest request = corpus_->MakeRequest(query_idx, candidates, options_.k);
  {
    const WallTimer timer;
    const RerankResult reranked = runner->Rerank(request);
    result.rerank_ms = timer.ElapsedMillis();
    for (size_t idx : reranked.topk) {
      result.context_docs.push_back(candidates[idx]);
    }
  }
  result.accuracy = PrecisionAtK(result.context_docs, query.relevant, options_.k);

  // Generation: prompt = query + the selected context documents.
  size_t prompt_tokens = query.tokens.size();
  for (size_t doc_id : result.context_docs) {
    prompt_tokens += corpus_->docs()[doc_id].size();
  }
  const SimLlmResult gen = llm_.Generate(prompt_tokens, options_.answer_tokens);
  result.first_token_ms = gen.first_token_ms;
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace prism

#include "src/retrieval/bi_encoder.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace prism {

std::vector<float> BiEncoder::Embed(const std::vector<uint32_t>& tokens) const {
  std::vector<float> out(dim_, 0.0f);
  if (tokens.empty()) {
    return out;
  }
  for (uint32_t token : tokens) {
    Rng rng(MixSeed(seed_, token));
    for (size_t i = 0; i < dim_; ++i) {
      out[i] += static_cast<float>(rng.NextGaussian());
    }
  }
  float norm = 0.0f;
  for (float x : out) {
    norm += x * x;
  }
  norm = std::sqrt(norm);
  if (norm > 0.0f) {
    for (float& x : out) {
      x /= norm;
    }
  }
  return out;
}

float CosineSim(const std::vector<float>& a, const std::vector<float>& b) {
  PRISM_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

}  // namespace prism

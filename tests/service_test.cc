#include <gtest/gtest.h>

#include <cmath>

#include "src/core/online_calibrator.h"
#include "src/core/service.h"
#include "src/data/metrics.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    const SyntheticDataset data(DatasetByName("wikipedia"), config_, 17);
    for (size_t i = 0; i < 6; ++i) {
      requests_.push_back(RerankRequest::FromQuery(data.MakeQuery(i, 14), 4));
    }
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> requests_;
};

TEST_F(ServiceTest, AggregatesStats) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  RerankService service(config_, ckpt_, options, &tracker);
  for (const RerankRequest& request : requests_) {
    const RerankResult result = service.Rerank(request);
    EXPECT_EQ(result.topk.size(), 4u);
  }
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.requests, requests_.size());
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_GE(stats.max_latency_ms, stats.MeanLatencyMs());
  EXPECT_EQ(stats.total_candidates, static_cast<int64_t>(6 * 14));
  // Pruning executed less than full work.
  EXPECT_LT(stats.WorkFraction(config_.n_layers), 1.0);
  EXPECT_GT(stats.WorkFraction(config_.n_layers), 0.0);
}

TEST_F(ServiceTest, IdleWithoutCalibrationIsNoop) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  RerankService service(config_, ckpt_, options, &tracker);
  EXPECT_TRUE(std::isnan(service.OnIdle()));
}

TEST_F(ServiceTest, OnlineCalibrationAdjustsThreshold) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.engine.dispersion_threshold = 0.3f;
  options.online_calibration = true;
  options.calibration.sample_every = 1;
  options.calibration.target_precision = 1.01;  // Unreachable → always raise.
  RerankService service(config_, ckpt_, options, &tracker);
  for (const RerankRequest& request : requests_) {
    service.Rerank(request);
  }
  const float before = service.current_threshold();
  const double agreement = service.OnIdle();
  EXPECT_FALSE(std::isnan(agreement));
  EXPECT_GT(service.current_threshold(), before);  // Raised for precision.
}

TEST_F(ServiceTest, OnlineCalibrationLowersWhenComfortable) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.engine.dispersion_threshold = 0.8f;  // Very conservative start.
  options.online_calibration = true;
  options.calibration.sample_every = 1;
  options.calibration.target_precision = 0.0;  // Always comfortable.
  RerankService service(config_, ckpt_, options, &tracker);
  for (const RerankRequest& request : requests_) {
    service.Rerank(request);
  }
  const float before = service.current_threshold();
  service.OnIdle();
  EXPECT_LT(service.current_threshold(), before);  // Lowered for performance.
}

TEST_F(ServiceTest, ConvergesTowardTargetOverCycles) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.engine.dispersion_threshold = 0.02f;  // Start very aggressive.
  options.online_calibration = true;
  options.calibration.sample_every = 1;
  options.calibration.target_precision = 0.95;
  RerankService service(config_, ckpt_, options, &tracker);
  double last_agreement = 0.0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (const RerankRequest& request : requests_) {
      service.Rerank(request);
    }
    last_agreement = service.OnIdle();
  }
  EXPECT_GE(last_agreement, 0.90);  // Feedback drove agreement up near target.
}

TEST(OnlineCalibratorTest, SamplesEveryNth) {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions eopts;
  eopts.device = FastDevice();
  PrismEngine engine(config, ckpt, eopts, &t1);
  PrismOptions ropts;
  ropts.device = FastDevice();
  ropts.pruning = false;
  PrismEngine reference(config, ckpt, ropts, &t2);
  OnlineCalibratorOptions options;
  options.sample_every = 3;
  OnlineCalibrator calibrator(&engine, &reference, options);
  const RerankRequest request = TestRequest(config, 10, 3);
  for (int i = 0; i < 7; ++i) {
    calibrator.Rerank(request);
  }
  EXPECT_EQ(calibrator.pending_samples(), 3u);  // Requests 0, 3, 6.
  EXPECT_EQ(calibrator.requests_served(), 7u);
}

TEST(OnlineCalibratorTest, LogIsBounded) {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions eopts;
  eopts.device = FastDevice();
  PrismEngine engine(config, ckpt, eopts, &t1);
  PrismOptions ropts;
  ropts.device = FastDevice();
  ropts.pruning = false;
  PrismEngine reference(config, ckpt, ropts, &t2);
  OnlineCalibratorOptions options;
  options.sample_every = 1;
  options.max_samples = 4;
  OnlineCalibrator calibrator(&engine, &reference, options);
  const RerankRequest request = TestRequest(config, 10, 3);
  for (int i = 0; i < 10; ++i) {
    calibrator.Rerank(request);
  }
  EXPECT_EQ(calibrator.pending_samples(), 4u);
}

TEST(ServiceStatsOverloadTest, ShedRequestsLeavePercentilesUntouched) {
  // Shed requests turn around in ~0 ms. Before the overload-stats fix those
  // near-zero latencies entered the ring and mean, so p50/p99/mean
  // *improved* under overload — exactly when they should degrade. Served
  // requests alone must define every latency aggregate.
  ServiceStats stats;
  RerankRequest request;
  request.docs.resize(14);
  RerankResult ok;
  for (int i = 1; i <= 10; ++i) {
    stats.Observe(request, ok, 100.0 * i);
  }
  const double p50_before = stats.P50LatencyMs();
  const double p99_before = stats.P99LatencyMs();
  const double mean_before = stats.MeanLatencyMs();
  const double max_before = stats.max_latency_ms;
  const int64_t candidates_before = stats.total_candidates;

  // An overload burst: 100 shed requests answered in ~0 ms, plus one error.
  for (int i = 0; i < 100; ++i) {
    stats.Observe(request, MakeShedResult(/*deadline_ms=*/5.0, /*waited_ms=*/5.1), 0.01);
  }
  RerankResult failed;
  failed.status = Status::IoError("injected");
  stats.Observe(request, failed, 0.02);

  EXPECT_EQ(stats.requests, 111u);
  EXPECT_EQ(stats.shed, 100u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.served(), 10u);
  EXPECT_DOUBLE_EQ(stats.P50LatencyMs(), p50_before);
  EXPECT_DOUBLE_EQ(stats.P99LatencyMs(), p99_before);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMs(), mean_before);
  EXPECT_DOUBLE_EQ(stats.max_latency_ms, max_before);
  EXPECT_EQ(stats.latency_samples.size(), 10u);
  // Shed requests burned no engine work: WorkFraction's denominator must
  // not grow either.
  EXPECT_EQ(stats.total_candidates, candidates_before);
}

TEST(ServiceStatsMergeTest, WeightedMergeKeepsPoolPercentilesUnbiased) {
  // Affinity routing makes replica traffic uneven: here the busy replica
  // served 100 observations per retained sample while the idle one retained
  // every observation. Raw sample concatenation (the old Merge) would give
  // the idle replica's samples 100× their real weight: 1536 concatenated
  // samples, p99 at rank 1521 — inside the idle replica's [500, 510] band.
  // The weighted merge subsamples the idle side down to ~5 samples first,
  // so every pool percentile must land in the busy replica's [100, 110]
  // band. This test fails against the concatenating Merge.
  ServiceStats busy;
  for (size_t i = 0; i < 1024; ++i) {
    busy.latency_samples.push_back(100.0 + static_cast<double>(i % 11));
  }
  busy.latency_observed = 1024 * 100;

  ServiceStats idle;
  for (size_t i = 0; i < 512; ++i) {
    idle.latency_samples.push_back(500.0 + static_cast<double>(i % 11));
  }
  idle.latency_observed = 512;

  ServiceStats pool;
  pool.Merge(busy);
  pool.Merge(idle);
  EXPECT_EQ(pool.latency_observed, busy.latency_observed + idle.latency_observed);
  EXPECT_GE(pool.P50LatencyMs(), 100.0);
  EXPECT_LE(pool.P50LatencyMs(), 110.0);
  EXPECT_GE(pool.P99LatencyMs(), 100.0);
  EXPECT_LE(pool.P99LatencyMs(), 110.0);
  // The subsampled idle side still shows up where it belongs: the tail
  // above its weight's share. p100 (the max) may be an idle-band sample.
  EXPECT_GT(pool.latency_samples.size(), 1024u);
  EXPECT_LT(pool.latency_samples.size(), 1536u);

  // Seeded subsampling: rebuilding the same merge yields byte-identical
  // samples (pool stats snapshots replay deterministically under SimClock).
  ServiceStats again;
  again.Merge(busy);
  again.Merge(idle);
  EXPECT_EQ(again.latency_samples, pool.latency_samples);
}

TEST(ServiceStatsMergeTest, EqualWeightMergeConcatenatesExactly) {
  // Two un-overflowed reservoirs (weight 1 each) merge exactly: nothing may
  // be subsampled away.
  ServiceStats a;
  a.latency_samples = {1.0, 2.0, 3.0};
  a.latency_observed = 3;
  ServiceStats b;
  b.latency_samples = {10.0, 20.0};
  b.latency_observed = 2;
  a.Merge(b);
  EXPECT_EQ(a.latency_samples, (std::vector<double>{1.0, 2.0, 3.0, 10.0, 20.0}));
  EXPECT_EQ(a.latency_observed, 5u);
}

TEST(ServiceStatsTest, ServedClampsTornSnapshots) {
  // A stripe fold can tear between an in-flight observation's `requests`
  // and `shed` increments, momentarily showing shed + errors > requests.
  // The unsigned subtraction must clamp to 0, not wrap to ~2^64 (which
  // poisoned MeanLatencyMs and every served()-derived rate).
  ServiceStats torn;
  torn.requests = 5;
  torn.shed = 4;
  torn.errors = 2;
  torn.total_latency_ms = 100.0;
  EXPECT_EQ(torn.served(), 0u);
  EXPECT_DOUBLE_EQ(torn.MeanLatencyMs(), 0.0);

  ServiceStats normal;
  normal.requests = 10;
  normal.shed = 3;
  normal.errors = 2;
  EXPECT_EQ(normal.served(), 5u);
}

TEST(ServiceStatsTest, CapacityOneReservoirStaysDeterministic) {
  // Degenerate reservoir: one slot. It must keep exactly one sample however
  // many observations arrive, count them all, and retain the same sample
  // for the same observation order.
  RerankRequest request;
  request.docs.resize(4);
  RerankResult ok;
  const auto run = [&] {
    ServiceStats stats;
    stats.latency_capacity = 1;
    for (int i = 1; i <= 100; ++i) {
      stats.Observe(request, ok, static_cast<double>(i));
    }
    return stats;
  };
  const ServiceStats stats = run();
  ASSERT_EQ(stats.latency_samples.size(), 1u);
  EXPECT_EQ(stats.latency_observed, 100u);
  // Any percentile of a one-sample reservoir is that sample.
  EXPECT_EQ(stats.P50LatencyMs(), stats.latency_samples[0]);
  EXPECT_EQ(stats.P99LatencyMs(), stats.latency_samples[0]);
  EXPECT_EQ(run().latency_samples, stats.latency_samples);
}

TEST(NdcgTest, PerfectAndReversedRankings) {
  const std::vector<float> grades = {1.0f, 0.5f, 0.2f, 0.0f};
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 1, 2, 3}, grades, 4), 1.0);
  EXPECT_LT(NdcgAtK({3, 2, 1, 0}, grades, 4), 0.8);
  EXPECT_GT(NdcgAtK({3, 2, 1, 0}, grades, 4), 0.0);
}

TEST(NdcgTest, TruncatesAtK) {
  const std::vector<float> grades = {1.0f, 1.0f, 0.0f};
  // Top-1 with the best item first is ideal regardless of the tail.
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 2, 1}, grades, 1), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({2, 0, 1}, grades, 1), 0.0);
}

}  // namespace
}  // namespace prism

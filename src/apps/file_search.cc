#include "src/apps/file_search.h"

#include "src/common/timer.h"
#include "src/data/metrics.h"
#include "src/retrieval/hybrid.h"

namespace prism {

FileSearchApp::FileSearchApp(const SearchCorpus* corpus, size_t per_source, size_t embed_dim,
                             uint64_t seed)
    : corpus_(corpus), per_source_(per_source), encoder_(embed_dim, seed), dense_(embed_dim) {
  for (const auto& doc : corpus_->docs()) {
    keyword_.Add(doc);
    dense_.Add(encoder_.Embed(doc));
  }
}

FileSearchResult FileSearchApp::Search(size_t query_idx, size_t k, Runner* runner) const {
  FileSearchResult result;
  const CorpusQuery& query = corpus_->queries()[query_idx];

  std::vector<RetrievalHit> sparse;
  {
    const WallTimer timer;
    sparse = keyword_.Search(query.tokens, per_source_);
    result.keyword_ms = timer.ElapsedMillis();
  }
  std::vector<RetrievalHit> dense;
  {
    const WallTimer timer;
    dense = dense_.Search(encoder_.Embed(query.tokens), per_source_);
    result.embed_ms = timer.ElapsedMillis();
  }
  const std::vector<size_t> candidates = FuseHits(sparse, dense, 2 * per_source_);

  const RerankRequest request = corpus_->MakeRequest(query_idx, candidates, k);
  {
    const WallTimer timer;
    const RerankResult reranked = runner->Rerank(request);
    result.rerank_ms = timer.ElapsedMillis();
    for (size_t idx : reranked.topk) {
      result.top_docs.push_back(candidates[idx]);
    }
  }
  result.precision = PrecisionAtK(result.top_docs, query.relevant, k);
  return result;
}

}  // namespace prism

// SimulatedRunner: the service-cost model for discrete-event simulation.
//
// Under a SimClock, real compute does not consume virtual time (a computing
// thread is runnable, and the clock never advances past a runnable thread)
// — so an engine pass would look instantaneous to the simulation. The
// SimulatedRunner wraps the real BatchRunner and charges a deterministic
// virtual service time for every pass on the injected clock, while still
// producing the engine's exact rankings:
//
//   - The first time a unique request (query, docs, planted_r, k) is seen,
//     it runs through the real engine — at a frozen virtual instant — and
//     the result is memoized by the request's binary fingerprint. Replays
//     (a Zipf-popular workload re-asks the same queries constantly) are
//     served from the memo without burning wall time, which is what lets a
//     10k-request sweep finish in seconds.
//   - Every pass charges an affine virtual cost on the clock:
//     pass_ms + per_request_ms × batch size (a carousel spreads the same
//     cost over its layer steps). Timing fields of memoized results are
//     scrubbed; work stats (layers, candidates, bytes) replay verbatim —
//     they are deterministic outputs of the engine, not of the host.
//
// The carousel pass is synthetic: tickets walk the layer indices their
// serial plan ran (layers_until_done, from the memoized result) and yield
// the memoized result at the end — valid because the engine's carousel is
// proven bit-identical to serial execution (carousel_test).
#ifndef PRISM_SRC_RUNTIME_SIM_RUNNER_H_
#define PRISM_SRC_RUNTIME_SIM_RUNNER_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/runtime/runner.h"

namespace prism {

// Virtual service-time model (all costs in clock milliseconds).
struct SimCostOptions {
  // Off by default: ServiceOptions embeds one of these, and a default
  // service must not wrap its engine.
  bool enabled = false;
  // Fixed cost of one engine pass (layer-streaming sweep spin-up).
  double pass_ms = 8.0;
  // Marginal cost per request sharing the pass.
  double per_request_ms = 2.0;
  // Serve repeated requests from the fingerprint memo (disable only to
  // force every request through the real engine).
  bool memoize = true;
};

class SimulatedRunner : public BatchRunner {
 public:
  // `n_layers` spreads a pass's cost over carousel steps; pass the model's
  // layer count. The target must outlive the runner.
  SimulatedRunner(BatchRunner* target, const SimCostOptions& options, size_t n_layers,
                  Clock* clock);

  RerankResult Rerank(const RerankRequest& request) override;
  std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                        ThreadPool* compute_pool = nullptr) override;
  bool SupportsCarousel() const override { return true; }
  std::unique_ptr<CarouselPass> BeginCarousel() override;
  std::string name() const override { return "sim:" + target_->name(); }

  size_t memo_size() const;
  size_t n_layers() const { return n_layers_; }
  const SimCostOptions& options() const { return options_; }
  Clock* clock() const { return clock_; }

  // The engine's result for this request, timing fields scrubbed; memoized.
  // Public for the synthetic carousel pass; harmless to call directly (it
  // charges no virtual time).
  RerankResult Cached(const RerankRequest& request);

 private:
  BatchRunner* target_;
  SimCostOptions options_;
  size_t n_layers_;
  Clock* clock_;
  mutable Mutex mu_;
  std::unordered_map<std::string, RerankResult> memo_ PRISM_GUARDED_BY(mu_);
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_SIM_RUNNER_H_

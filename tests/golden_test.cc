// Golden numeric regression: one canonical RerankResult for the default
// config, serialized into tests/golden/. Any refactor that changes the
// engine's numerics — kernel order, pruning decisions, embedding layout —
// fails this test with a readable per-candidate diff instead of silently
// shifting every benchmark.
//
// To regenerate after an *intentional* numeric change:
//   PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the rewritten fixture alongside the change that explains it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/service.h"
#include "src/data/metrics.h"
#include "tests/test_util.h"

namespace prism {
namespace {

#ifndef PRISM_TEST_DATA_DIR
#error "PRISM_TEST_DATA_DIR must point at the tests/ source directory"
#endif

std::string GoldenPath() {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_default.txt";
}

std::string CarouselGoldenPath() {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_carousel.txt";
}

std::string PrecisionGoldenPath(Precision precision) {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_" +
         PrecisionName(precision) + ".txt";
}

// Calibrated comparison tier for reduced-precision fixtures: instead of the
// fp32 fixtures' bit-exact match, scores may drift by max_abs and the top-k
// selection must overlap the fixture's by at least min_agreement. The tier
// is stored in the fixture header (a `tol` line), so the fixture is
// self-describing — loosening a tier is a reviewed diff, not a code change.
struct ToleranceTier {
  float max_abs = 0.0f;
  float min_agreement = 1.0f;
};

// Per-precision tiers, calibrated once against the TestModel canonical
// request with ~3x headroom over observed drift (cf. ScoreTolerance in
// layer_test.cc). k=3, so agreement quantises to thirds.
ToleranceTier TierFor(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return {0.01f, 1.0f};
    case Precision::kInt8:
      return {0.05f, 0.66f};
    default:
      return {0.15f, 0.66f};
  }
}

struct GoldenRecord {
  std::vector<size_t> topk;
  std::vector<float> scores;
  // Set when the fixture carries a tolerance tier (reduced precision).
  bool calibrated = false;
  ToleranceTier tol;
};

// Scores are serialized as hexfloats (bit-exact round trip) with a decimal
// rendering alongside for human diffs.
std::string Serialize(const GoldenRecord& record, const std::string& variant) {
  std::ostringstream out;
  out << "# Canonical RerankResult (" << variant
      << "): TestModel, wikipedia query 0, 12 candidates, k=3.\n";
  out << "# Regenerate with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
  if (record.calibrated) {
    char line[80];
    std::snprintf(line, sizeof(line), "tol %.6g %.6g\n",
                  static_cast<double>(record.tol.max_abs),
                  static_cast<double>(record.tol.min_agreement));
    out << line;
  }
  out << "topk";
  for (size_t id : record.topk) {
    out << ' ' << id;
  }
  out << '\n';
  for (size_t i = 0; i < record.scores.size(); ++i) {
    char line[80];
    std::snprintf(line, sizeof(line), "score %zu %a  # %.6f\n", i,
                  static_cast<double>(record.scores[i]),
                  static_cast<double>(record.scores[i]));
    out << line;
  }
  return out.str();
}

bool ParseGolden(const std::string& path, GoldenRecord* record) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "topk") {
      size_t id;
      while (fields >> id) {
        record->topk.push_back(id);
      }
    } else if (tag == "tol") {
      fields >> record->tol.max_abs >> record->tol.min_agreement;
      record->calibrated = true;
    } else if (tag == "score") {
      size_t index;
      std::string hex;
      fields >> index >> hex;
      EXPECT_EQ(index, record->scores.size()) << "out-of-order score line: " << line;
      record->scores.push_back(std::strtof(hex.c_str(), nullptr));
    }
  }
  return true;
}

GoldenRecord ComputeCanonical(Precision precision = Precision::kFp32) {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config, precision);
  PrismOptions options;  // Default engine configuration...
  options.device = FastDevice();  // ...timing model off; numerics unaffected.
  options.precision = precision;
  MemoryTracker tracker;
  PrismEngine engine(config, ckpt, options, &tracker);
  const RerankResult result = engine.Rerank(TestRequest(config));
  EXPECT_TRUE(result.status.ok());
  GoldenRecord record;
  record.topk = result.topk;
  record.scores = result.scores;
  if (precision != Precision::kFp32) {
    record.calibrated = true;
    record.tol = TierFor(precision);
  }
  return record;
}

// The same canonical request served through the carousel scheduler (the
// ServiceOptions knob, so the whole service path is on the hook).
GoldenRecord ComputeCanonicalViaCarousel() {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.scheduler = SchedulerKind::kCarousel;
  options.max_inflight = 2;
  MemoryTracker tracker;
  RerankService service(config, ckpt, options, &tracker);
  const RerankResult result = service.Rerank(TestRequest(config));
  EXPECT_TRUE(result.status.ok());
  GoldenRecord record;
  record.topk = result.topk;
  record.scores = result.scores;
  return record;
}

void CompareToFixture(const GoldenRecord& actual, const std::string& path,
                      const std::string& variant) {
  if (std::getenv("PRISM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << Serialize(actual, variant);
    GTEST_SKIP() << "rewrote " << path;
  }

  GoldenRecord expected;
  ASSERT_TRUE(ParseGolden(path, &expected))
      << "missing fixture " << path
      << " — generate it with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test";

  if (expected.calibrated) {
    // Calibrated mode: reduced-precision numerics may legitimately differ
    // in the last bits across compilers/FMA contraction, so the fixture
    // carries its own drift budget instead of demanding bit equality.
    ASSERT_EQ(actual.scores.size(), expected.scores.size()) << "candidate count changed";
    EXPECT_GE(TopKOverlap(actual.topk, expected.topk, expected.topk.size()),
              expected.tol.min_agreement)
        << "top-K selection drifted below the fixture's agreement floor";
    for (size_t i = 0; i < actual.scores.size(); ++i) {
      // One-sided NaN = a pruning-boundary shift; the agreement floor above
      // still bounds its quality impact.
      if (std::isnan(actual.scores[i]) || std::isnan(expected.scores[i])) {
        continue;
      }
      EXPECT_NEAR(actual.scores[i], expected.scores[i], expected.tol.max_abs)
          << "score[" << i << "] drifted beyond the fixture's max-abs budget";
    }
    return;
  }

  EXPECT_EQ(actual.topk, expected.topk) << "top-K order changed";
  ASSERT_EQ(actual.scores.size(), expected.scores.size()) << "candidate count changed";
  for (size_t i = 0; i < actual.scores.size(); ++i) {
    const bool both_nan = std::isnan(actual.scores[i]) && std::isnan(expected.scores[i]);
    if (both_nan) {
      continue;  // Pruned-before-scoring in both runs.
    }
    EXPECT_EQ(actual.scores[i], expected.scores[i])
        << "score[" << i << "] drifted: expected " << expected.scores[i] << " (hex "
        << std::hexfloat << static_cast<double>(expected.scores[i]) << "), got "
        << std::defaultfloat << actual.scores[i] << " (hex " << std::hexfloat
        << static_cast<double>(actual.scores[i]) << ")";
  }
}

TEST(GoldenTest, DefaultConfigMatchesFixture) {
  CompareToFixture(ComputeCanonical(), GoldenPath(), "serial engine path");
}

// Per-precision golden fixtures, compared in calibrated mode. The fp32
// fixtures above stay bit-exact; these pin the reduced tiers' numerics
// within their stored drift budgets.
class GoldenPrecisionTest : public ::testing::TestWithParam<Precision> {};

TEST_P(GoldenPrecisionTest, CanonicalMatchesFixtureWithinTier) {
  const Precision precision = GetParam();
  CompareToFixture(ComputeCanonical(precision), PrecisionGoldenPath(precision),
                   std::string("serial engine path, ") + PrecisionName(precision));
}

INSTANTIATE_TEST_SUITE_P(Tiers, GoldenPrecisionTest,
                         ::testing::Values(Precision::kFp16, Precision::kInt8, Precision::kW4),
                         [](const ::testing::TestParamInfo<Precision>& info) {
                           return std::string(PrecisionName(info.param));
                         });

// The reduced fixtures must also sit inside their tier of the bit-exact
// fp32 fixture — the calibration that ties every tier back to the fp32
// reference rather than only to its own history.
TEST(GoldenTest, ReducedFixturesWithinTierOfFp32Fixture) {
  GoldenRecord fp32;
  ASSERT_TRUE(ParseGolden(GoldenPath(), &fp32));
  for (const Precision precision : {Precision::kFp16, Precision::kInt8, Precision::kW4}) {
    GoldenRecord reduced;
    ASSERT_TRUE(ParseGolden(PrecisionGoldenPath(precision), &reduced))
        << PrecisionName(precision);
    ASSERT_TRUE(reduced.calibrated) << PrecisionName(precision);
    ASSERT_EQ(reduced.scores.size(), fp32.scores.size());
    EXPECT_GE(TopKOverlap(reduced.topk, fp32.topk, fp32.topk.size()),
              reduced.tol.min_agreement)
        << PrecisionName(precision);
    for (size_t i = 0; i < reduced.scores.size(); ++i) {
      if (std::isnan(reduced.scores[i]) || std::isnan(fp32.scores[i])) {
        continue;
      }
      EXPECT_NEAR(reduced.scores[i], fp32.scores[i], reduced.tol.max_abs)
          << PrecisionName(precision) << " score " << i;
    }
  }
}

// The carousel path must reproduce the canonical hexfloat result exactly —
// continuous batching changes fetch sharing and admission timing, never
// numerics. Its fixture is byte-for-byte the same record as the serial one
// (only the header comment differs), and both are pinned independently so a
// carousel-only numeric drift cannot hide behind the serial fixture.
TEST(GoldenTest, CarouselPathMatchesFixture) {
  CompareToFixture(ComputeCanonicalViaCarousel(), CarouselGoldenPath(), "carousel scheduler");
}

TEST(GoldenTest, CarouselAndSerialFixturesAgree) {
  GoldenRecord serial;
  GoldenRecord carousel;
  ASSERT_TRUE(ParseGolden(GoldenPath(), &serial));
  ASSERT_TRUE(ParseGolden(CarouselGoldenPath(), &carousel));
  EXPECT_EQ(serial.topk, carousel.topk);
  ASSERT_EQ(serial.scores.size(), carousel.scores.size());
  for (size_t i = 0; i < serial.scores.size(); ++i) {
    const bool both_nan = std::isnan(serial.scores[i]) && std::isnan(carousel.scores[i]);
    EXPECT_TRUE(both_nan || serial.scores[i] == carousel.scores[i]) << "score " << i;
  }
}

// The fixture itself must be reproducible: two engines, same checkpoint,
// same result. Guards against the canonical request accidentally depending
// on ambient state (cache warmth, request ids).
TEST(GoldenTest, CanonicalResultIsStableAcrossEngines) {
  const GoldenRecord first = ComputeCanonical();
  const GoldenRecord second = ComputeCanonical();
  EXPECT_EQ(first.topk, second.topk);
  for (size_t i = 0; i < first.scores.size(); ++i) {
    const bool both_nan = std::isnan(first.scores[i]) && std::isnan(second.scores[i]);
    EXPECT_TRUE(both_nan || first.scores[i] == second.scores[i]) << "score " << i;
  }
}

}  // namespace
}  // namespace prism

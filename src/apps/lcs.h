// LLM long-context selection (paper §6.3, Figs 14–15).
//
// An on-device LLM must answer over an ultra-long context. A reranker selects
// the top-K most relevant segments to fit the model's window; the No-Reranker
// baseline feeds the leading segments wholesale — a much larger prefill and a
// distracted (longer) decode. Selection precision is Precision@K of the
// chosen segments against the planted relevant ones.
#ifndef PRISM_SRC_APPS_LCS_H_
#define PRISM_SRC_APPS_LCS_H_

#include <vector>

#include "src/apps/sim_llm.h"
#include "src/data/dataset.h"
#include "src/runtime/runner.h"

namespace prism {

struct LcsOptions {
  size_t n_segments = 60;
  size_t segment_tokens = 26;
  size_t relevant_segments = 6;
  size_t k = 8;                 // Segments fed to the LLM with a reranker.
  size_t answer_tokens = 48;
  size_t distracted_answer_tokens = 96;  // No-reranker decodes ramble longer.
  // On-device quantised Qwen3-4B generator: slow prefill dominates when the
  // whole context is fed.
  SimLlmConfig llm{.prefill_tokens_per_sec = 400.0,
                   .decode_tokens_per_sec = 30.0,
                   .bytes_per_context_token = 4096,
                   .base_bytes = 16 * 1024 * 1024};
};

struct LcsResult {
  double rerank_ms = 0.0;
  double inference_ms = 0.0;
  double total_ms = 0.0;
  double precision = 0.0;
  size_t prompt_tokens = 0;
  std::vector<size_t> chosen;  // Segment indices fed to the LLM, best first.
};

class LcsApp {
 public:
  LcsApp(LcsOptions options, const ModelConfig& model, uint64_t seed);

  // `runner` == nullptr → No-Reranker baseline (leading segments, longer
  // distracted decode). Thread-safe: the context is rebuilt per call from
  // (seed, question_idx) and the generator is stateless, so concurrent
  // clients can share one app instance.
  LcsResult Answer(size_t question_idx, Runner* runner) const;

 private:
  LcsOptions options_;
  ModelConfig model_;
  uint64_t seed_;
  SimulatedLlm llm_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_LCS_H_

// Automatic dispersion-threshold calibration (paper §4.1).
//
// The paper's system samples live requests, re-executes them without pruning
// when the device is idle to obtain ground truth, and nudges the dispersion
// threshold until the measured precision meets the user's target. This
// offline equivalent binary-searches the lowest threshold whose top-K overlap
// with full inference reaches the target across a calibration sample —
// "the lowest possible value that meets the constraint, thereby maximizing
// performance under the given requirement."
#ifndef PRISM_SRC_CORE_CALIBRATOR_H_
#define PRISM_SRC_CORE_CALIBRATOR_H_

#include <vector>

#include "src/core/engine.h"

namespace prism {

struct CalibrationOptions {
  double target_precision = 0.98;  // Top-K agreement with full inference.
  float threshold_lo = 0.02f;
  float threshold_hi = 1.5f;
  int iterations = 7;
};

struct CalibrationResult {
  float threshold = 0.0f;
  double achieved_precision = 0.0;
  int evaluations = 0;
};

// Calibrates `engine`'s threshold against `reference` (an un-pruned runner —
// typically an HfRunner or a PrismEngine with pruning off) on the sample
// requests. Leaves the engine configured with the chosen threshold.
CalibrationResult CalibrateThreshold(PrismEngine* engine, Runner* reference,
                                     const std::vector<RerankRequest>& sample,
                                     const CalibrationOptions& options);

}  // namespace prism

#endif  // PRISM_SRC_CORE_CALIBRATOR_H_

#include <gtest/gtest.h>

#include "src/core/calibrator.h"
#include "src/data/metrics.h"
#include "src/runtime/hf_runner.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class CalibratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    const SyntheticDataset data(DatasetByName("wikipedia"), config_, 321);
    for (size_t i = 0; i < 4; ++i) {
      sample_.push_back(RerankRequest::FromQuery(data.MakeQuery(i, 12), 3));
    }
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> sample_;
};

TEST_F(CalibratorTest, MeetsPrecisionTarget) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner reference(config_, ckpt_, hopts, &t1);
  PrismOptions popts;
  popts.device = FastDevice();
  PrismEngine engine(config_, ckpt_, popts, &t2);

  CalibrationOptions options;
  options.target_precision = 0.9;
  const CalibrationResult result = CalibrateThreshold(&engine, &reference, sample_, options);
  EXPECT_GE(result.achieved_precision, options.target_precision);
  EXPECT_GT(result.evaluations, 0);
  // The engine is left configured with the calibrated threshold.
  EXPECT_FLOAT_EQ(engine.dispersion_threshold(), result.threshold);

  // Re-measure independently: the calibrated engine meets the target.
  double precision = 0.0;
  for (const RerankRequest& request : sample_) {
    const RerankResult ref = reference.Rerank(request);
    const RerankResult got = engine.Rerank(request);
    precision += TopKOverlap(got.topk, ref.topk, request.k);
  }
  precision /= static_cast<double>(sample_.size());
  EXPECT_GE(precision, options.target_precision);
}

TEST_F(CalibratorTest, LooseTargetPicksAggressiveThreshold) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner reference(config_, ckpt_, hopts, &t1);
  PrismOptions popts;
  popts.device = FastDevice();
  PrismEngine engine(config_, ckpt_, popts, &t2);

  CalibrationOptions loose;
  loose.target_precision = 0.0;  // Anything passes.
  const CalibrationResult result = CalibrateThreshold(&engine, &reference, sample_, loose);
  EXPECT_FLOAT_EQ(result.threshold, loose.threshold_lo);
}

TEST_F(CalibratorTest, TighterTargetGivesHigherThreshold) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner reference(config_, ckpt_, hopts, &t1);
  PrismOptions popts;
  popts.device = FastDevice();
  PrismEngine engine(config_, ckpt_, popts, &t2);

  CalibrationOptions loose;
  loose.target_precision = 0.5;
  const float loose_threshold =
      CalibrateThreshold(&engine, &reference, sample_, loose).threshold;
  CalibrationOptions tight;
  tight.target_precision = 0.999;
  const float tight_threshold =
      CalibrateThreshold(&engine, &reference, sample_, tight).threshold;
  EXPECT_LE(loose_threshold, tight_threshold);
}

}  // namespace
}  // namespace prism

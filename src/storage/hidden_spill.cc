#include "src/storage/hidden_spill.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace prism {

SpillPool::SpillPool(SsdConfig config, MemoryTracker* tracker) : tracker_(tracker) {
  path_ = MakeTempDevicePath("spill");
  ssd_ = std::make_unique<SimulatedSsd>(path_, config);
}

SpillPool::~SpillPool() {
  // Drain all in-flight I/O before tearing down the device. Holding the pool
  // lock across the waits is safe: the I/O tasks touch only the device and
  // the tensors, never this pool.
  MutexLock lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry.spill_done.valid()) {
      entry.spill_done.wait();
    }
    if (entry.prefetch_done.valid()) {
      entry.prefetch_done.wait();
    }
  }
  ssd_.reset();
  ::unlink(path_.c_str());
}

SpillPool::Entry* SpillPool::FindEntry(int64_t key) {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SpillPool::SpillAsync(int64_t key, Tensor t) {
  const int64_t bytes = static_cast<int64_t>(t.ByteSize());
  Entry* entry = nullptr;
  int64_t offset = 0;
  {
    MutexLock lock(mu_);
    entry = &entries_[key];
    offset = cursor_;
    cursor_ += bytes;
  }
  // Wait out the previous spill — and any prefetch still reading into the
  // entry's tensor — without holding the pool lock (only this key's owner
  // can reach this entry).
  WaitSpill(*entry);
  if (entry->prefetch_done.valid()) {
    entry->prefetch_done.get();
  }
  entry->rows = t.rows();
  entry->cols = t.cols();
  entry->prefetched.reset();
  entry->offset = offset;
  // The tensor moves into the I/O task; its tracked memory must be released
  // *inside* the task body (before the future resolves) — the task object
  // itself is destroyed by the worker thread some time after completion,
  // which could outlive this pool's tracker.
  auto shared = std::make_shared<Tensor>(std::move(t));
  SimulatedSsd* ssd = ssd_.get();
  entry->spill_done = GlobalIoPool().Submit([shared, offset, ssd]() mutable {
    const auto* data = reinterpret_cast<const uint8_t*>(shared->data());
    const Status status = ssd->Write(offset, {data, shared->ByteSize()});
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
    shared.reset();  // Destroy the tensor (and its memory claim) now.
  });
}

void SpillPool::PrefetchAsync(int64_t key) {
  Entry* entry = FindEntry(key);
  PRISM_CHECK_MSG(entry != nullptr, "Prefetch of key never spilled");
  if (entry->prefetched.has_value() || entry->prefetch_done.valid()) {
    return;  // Already resident or in flight.
  }
  WaitSpill(*entry);
  entry->prefetched.emplace(entry->rows, entry->cols, MemCategory::kHiddenStates, tracker_);
  Tensor* dest = &*entry->prefetched;
  const int64_t offset = entry->offset;
  SimulatedSsd* ssd = ssd_.get();
  entry->prefetch_done = GlobalIoPool().Submit([dest, offset, ssd] {
    auto* data = reinterpret_cast<uint8_t*>(dest->data());
    const Status status = ssd->Read(offset, {data, dest->ByteSize()});
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  });
}

Tensor SpillPool::Take(int64_t key) {
  Entry* entry = FindEntry(key);
  PRISM_CHECK_MSG(entry != nullptr, "Take of key never spilled");
  Tensor t;
  if (!entry->prefetched.has_value() && !entry->prefetch_done.valid()) {
    // No prefetch issued; read synchronously.
    WaitSpill(*entry);
    t = Tensor(entry->rows, entry->cols, MemCategory::kHiddenStates, tracker_);
    auto* data = reinterpret_cast<uint8_t*>(t.data());
    const Status status = ssd_->Read(entry->offset, {data, t.ByteSize()});
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  } else {
    if (entry->prefetch_done.valid()) {
      entry->prefetch_done.get();
    }
    t = std::move(*entry->prefetched);
    entry->prefetched.reset();
  }
  // Consume the entry: the map stays bounded in live chunks, and a later
  // Spill of the same key re-creates it.
  {
    MutexLock lock(mu_);
    entries_.erase(key);
  }
  return t;
}

void SpillPool::Drop(int64_t key) {
  Entry* entry = FindEntry(key);
  if (entry == nullptr) {
    return;
  }
  WaitSpill(*entry);
  if (entry->prefetch_done.valid()) {
    entry->prefetch_done.get();
  }
  MutexLock lock(mu_);
  entries_.erase(key);
}

int64_t SpillPool::bytes_on_disk() const {
  MutexLock lock(mu_);
  return cursor_;
}

size_t SpillPool::live_entries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void SpillPool::WaitSpill(Entry& entry) {
  if (entry.spill_done.valid()) {
    entry.spill_done.get();
  }
}

}  // namespace prism

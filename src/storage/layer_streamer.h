// Overlapped layer streaming (paper §4.2).
//
// Keeps at most `buffer_count` (default two) blobs resident: the one being
// consumed and the one being prefetched. A background thread walks a fixed
// blob schedule; Acquire(i) blocks only if the prefetch has not caught up —
// the stall time is recorded so the ablation bench (Fig 16) can report the
// latency overhead when pruning shrinks the compute window below the load
// time. Releasing blob i immediately frees its buffer and lets the prefetcher
// pull blob i+buffer_count.
#ifndef PRISM_SRC_STORAGE_LAYER_STREAMER_H_
#define PRISM_SRC_STORAGE_LAYER_STREAMER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/storage/blob_file.h"

namespace prism {

struct StreamerStats {
  int64_t bytes_loaded = 0;
  int64_t stall_micros = 0;    // Time Acquire spent waiting on I/O.
  int64_t blobs_loaded = 0;
};

class LayerStreamer {
 public:
  // `schedule` lists blob indices in consumption order (e.g. layer blobs
  // 1..L). The streamer starts prefetching immediately.
  LayerStreamer(BlobFileReader* reader, std::vector<size_t> schedule, size_t buffer_count = 2,
                MemoryTracker* tracker = &MemoryTracker::Global());
  ~LayerStreamer();

  LayerStreamer(const LayerStreamer&) = delete;
  LayerStreamer& operator=(const LayerStreamer&) = delete;

  // Blocks until the `seq`-th scheduled blob is resident; returns its bytes.
  // The span stays valid until Release(seq).
  std::span<const uint8_t> Acquire(size_t seq);

  // Frees the buffer of the `seq`-th blob (must be acquired, in order).
  void Release(size_t seq);

  // Stops prefetching beyond the given sequence point (early termination by
  // pruning). In-flight loads complete; subsequent Acquire calls must not
  // exceed `last_seq`.
  void TruncateSchedule(size_t last_seq);

  StreamerStats stats() const;

 private:
  struct Buffer {
    std::vector<uint8_t> bytes;
    MemClaim claim;
    size_t seq = SIZE_MAX;  // Which schedule position it holds.
    bool ready = false;
  };

  void PrefetchLoop();

  BlobFileReader* reader_;
  std::vector<size_t> schedule_;
  MemoryTracker* tracker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Buffer> buffers_;
  size_t next_to_load_ = 0;      // Next schedule position the prefetcher fills.
  size_t release_floor_ = 0;     // All seq < floor have been released.
  size_t schedule_end_ = 0;      // Exclusive end (may shrink via Truncate).
  bool shutting_down_ = false;
  StreamerStats stats_;
  std::thread prefetcher_;
};

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_LAYER_STREAMER_H_

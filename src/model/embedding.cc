#include "src/model/embedding.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/model/weights.h"

namespace prism {

FullEmbeddingTable::FullEmbeddingTable(const ModelConfig& config, BlobFileReader* reader,
                                       MemoryTracker* tracker)
    : config_(config) {
  table_.resize(config.vocab_size * config.hidden);
  auto* bytes = reinterpret_cast<uint8_t*>(table_.data());
  const Status status =
      reader->ReadBlob(EmbeddingBlobIndex(), {bytes, table_.size() * sizeof(float)});
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  claim_ = MemClaim(tracker, MemCategory::kEmbedding,
                    static_cast<int64_t>(table_.size() * sizeof(float)));
}

void FullEmbeddingTable::Lookup(uint32_t token, std::span<float> dest) {
  PRISM_CHECK_EQ(dest.size(), config_.hidden);
  std::memcpy(dest.data(), Row(token).data(), config_.hidden * sizeof(float));
}

int64_t FullEmbeddingTable::ResidentBytes() const {
  return static_cast<int64_t>(table_.size() * sizeof(float));
}

std::span<const float> FullEmbeddingTable::Row(uint32_t token) const {
  PRISM_CHECK_LT(token, config_.vocab_size);
  return {table_.data() + static_cast<size_t>(token) * config_.hidden, config_.hidden};
}

EmbeddingCache::EmbeddingCache(const ModelConfig& config, BlobFileReader* reader,
                               size_t capacity_rows, MemoryTracker* tracker)
    : config_(config), reader_(reader), capacity_rows_(capacity_rows) {
  PRISM_CHECK_GT(capacity_rows_, 0u);
  claim_ = MemClaim(tracker, MemCategory::kEmbedding,
                    static_cast<int64_t>(capacity_rows_ * config_.hidden * sizeof(float)));
}

void EmbeddingCache::Lookup(uint32_t token, std::span<float> dest) {
  PRISM_CHECK_EQ(dest.size(), config_.hidden);
  PRISM_CHECK_LT(token, config_.vocab_size);
  mu_.Lock();
  const auto it = map_.find(token);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
    std::memcpy(dest.data(), it->second->second.data(), config_.hidden * sizeof(float));
    mu_.Unlock();
    return;
  }
  ++stats_.misses;
  stats_.miss_bytes += static_cast<int64_t>(config_.hidden * sizeof(float));
  // Row-granular read through the device model — this is the "negligible
  // latency" miss path the paper's ablation measures. The lock is released
  // across the device wait so other requests' hits proceed; misses
  // serialise behind the (single-queue) device itself.
  mu_.Unlock();
  std::vector<float> row(config_.hidden);
  const int64_t offset =
      static_cast<int64_t>(token) * static_cast<int64_t>(config_.hidden * sizeof(float));
  auto* bytes = reinterpret_cast<uint8_t*>(row.data());
  const Status status =
      reader_->ReadBlobRange(EmbeddingBlobIndex(), offset, {bytes, row.size() * sizeof(float)});
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  std::memcpy(dest.data(), row.data(), config_.hidden * sizeof(float));
  MutexLock lock(mu_);
  if (map_.find(token) == map_.end()) {
    InsertRowLocked(token, std::move(row));
  }
  // else: lost a race with another miss of the same token — the row is
  // already resident (and identical, so either copy serves future hits).
}

void EmbeddingCache::PrefetchTokens(const std::vector<uint32_t>& tokens) {
  // Snapshot the unique missing tokens under the lock, but perform the
  // batched device read with it released: holding mu_ across the SSD wait
  // would block every concurrent Lookup — hits included — for the whole
  // read, the same lock discipline Lookup documents for its miss path.
  std::vector<uint32_t> missing;
  {
    MutexLock lock(mu_);
    std::vector<uint32_t> unique(tokens);
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (uint32_t token : unique) {
      if (map_.find(token) == map_.end()) {
        missing.push_back(token);
      }
    }
  }
  if (missing.empty()) {
    return;
  }
  // Never prefetch more than the cache holds (tail tokens fall back to the
  // per-lookup miss path).
  if (missing.size() > capacity_rows_) {
    missing.resize(capacity_rows_);
  }
  const size_t row_bytes = config_.hidden * sizeof(float);
  std::vector<std::vector<float>> rows(missing.size());
  std::vector<std::pair<int64_t, std::span<uint8_t>>> ranges;
  ranges.reserve(missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    rows[i].resize(config_.hidden);
    ranges.emplace_back(static_cast<int64_t>(missing[i]) * static_cast<int64_t>(row_bytes),
                        std::span<uint8_t>(reinterpret_cast<uint8_t*>(rows[i].data()), row_bytes));
  }
  const Status status = reader_->ReadBlobRanges(EmbeddingBlobIndex(), ranges);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  MutexLock lock(mu_);
  // The device read happened either way, so it counts as misses even for
  // rows that lose the insert race below.
  stats_.misses += static_cast<int64_t>(missing.size());
  stats_.miss_bytes += static_cast<int64_t>(missing.size() * row_bytes);
  for (size_t i = 0; i < missing.size(); ++i) {
    // Re-check: a concurrent Lookup miss (or another prefetch) may have
    // inserted the token while the lock was released. The competing row is
    // bit-identical, so dropping ours is safe.
    if (map_.find(missing[i]) == map_.end()) {
      InsertRowLocked(missing[i], std::move(rows[i]));
    }
  }
}

void EmbeddingCache::InsertRowLocked(uint32_t token, std::vector<float> row) {
  if (lru_.size() == capacity_rows_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(token, std::move(row));
  map_[token] = lru_.begin();
}

size_t EmbeddingCache::resident_rows() const {
  MutexLock lock(mu_);
  return map_.size();
}

EmbeddingCacheStats EmbeddingCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int64_t EmbeddingCache::ResidentBytes() const {
  return static_cast<int64_t>(capacity_rows_ * config_.hidden * sizeof(float));
}

}  // namespace prism

#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/data/metrics.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"

namespace prism {

namespace {
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
}  // namespace

PrismEngine::PrismEngine(const ModelConfig& config, const std::string& checkpoint_path,
                         PrismOptions options, MemoryTracker* tracker)
    : config_(config), options_(options), tracker_(tracker) {
  auto reader = BlobFileReader::Open(checkpoint_path, options_.device.ssd);
  PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
  reader_ = std::move(reader).value();

  if (options_.embed_cache) {
    const auto rows = static_cast<size_t>(
        std::max(1.0, options_.embed_cache_fraction * static_cast<double>(config_.vocab_size)));
    auto cache = std::make_unique<EmbeddingCache>(config_, reader_.get(), rows, tracker_);
    cache_ = cache.get();
    embedding_ = std::move(cache);
  } else {
    embedding_ = std::make_unique<FullEmbeddingTable>(config_, reader_.get(), tracker_);
  }

  if (!options_.streaming) {
    int64_t total = 0;
    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      std::vector<uint8_t> blob(static_cast<size_t>(reader_->BlobSize(LayerBlobIndex(layer))));
      const Status status = reader_->ReadBlob(LayerBlobIndex(layer), blob);
      PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
      total += static_cast<int64_t>(blob.size());
      resident_layers_.push_back(std::move(blob));
    }
    resident_claim_ = MemClaim(tracker_, MemCategory::kWeights, total);
  }

  std::vector<uint8_t> head_blob(static_cast<size_t>(reader_->BlobSize(HeadBlobIndex(config_))));
  const Status status = reader_->ReadBlob(HeadBlobIndex(config_), head_blob);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  head_ = ParseHeadBlob(config_, head_blob);

  if (options_.offload_hidden) {
    spill_ = std::make_unique<SpillPool>(options_.device.ssd, tracker_);
  }
}

const EmbeddingCacheStats* PrismEngine::embed_cache_stats() const {
  return cache_ != nullptr ? &cache_->stats() : nullptr;
}

size_t PrismEngine::PlanChunkCandidates(size_t n, size_t seq_len) const {
  if (!options_.chunked) {
    return n;
  }
  if (options_.chunk_candidates > 0) {
    return std::min(options_.chunk_candidates, n);
  }
  // Largest c with scratch(c·T) within the activation budget; floor 2 keeps
  // each chunk's compute window wide enough to overlap a layer load.
  size_t best = 1;
  for (size_t c = 1; c <= n; ++c) {
    if (LayerScratch::BytesFor(config_, c * seq_len, seq_len) <=
        options_.device.activation_budget_bytes) {
      best = c;
    } else {
      break;
    }
  }
  return std::max<size_t>(std::min<size_t>(2, n), best);
}

Tensor PrismEngine::TakeChunk(ChunkState* chunk, int64_t key) {
  if (chunk->spilled) {
    chunk->spilled = false;
    return spill_->Take(key);
  }
  Tensor t = std::move(*chunk->hidden);
  chunk->hidden.reset();
  return t;
}

void PrismEngine::StowChunk(ChunkState* chunk, int64_t key, Tensor hidden, bool more_layers) {
  if (options_.offload_hidden && more_layers) {
    spill_->SpillAsync(key, std::move(hidden));
    chunk->spilled = true;
  } else {
    chunk->hidden = std::move(hidden);
    chunk->spilled = false;
  }
}

RerankResult PrismEngine::Rerank(const RerankRequest& request) {
  const WallTimer total_timer;
  RerankResult result;
  trace_.clear();
  const size_t n = request.docs.size();
  PRISM_CHECK_EQ(n, request.planted_r.size());
  PRISM_CHECK_GT(request.k, 0u);
  const size_t seq_len = ChooseSeqLen(config_, request.query, request.docs);
  result.scores.assign(n, kNan);

  const size_t chunk_cand = PlanChunkCandidates(n, seq_len);
  LayerScratch scratch = LayerScratch::Make(config_, chunk_cand * seq_len, seq_len, tracker_);

  // Build chunks over the initially-active candidate set.
  std::vector<size_t> active(n);
  for (size_t i = 0; i < n; ++i) {
    active[i] = i;
  }
  auto partition = [&](const std::vector<size_t>& ids) {
    std::vector<ChunkState> chunks;
    for (size_t at = 0; at < ids.size(); at += chunk_cand) {
      ChunkState chunk;
      const size_t end = std::min(at + chunk_cand, ids.size());
      chunk.ids.assign(ids.begin() + static_cast<ptrdiff_t>(at),
                       ids.begin() + static_cast<ptrdiff_t>(end));
      chunks.push_back(std::move(chunk));
    }
    return chunks;
  };
  std::vector<ChunkState> chunks = partition(active);

  // --- Embedding (through the cache when enabled) ---
  {
    const WallTimer embed_timer;
    // Build all pair inputs first so the cache can batch-load the request's
    // unique missing tokens in one device read (§4.5).
    std::vector<PairInput> pairs;
    pairs.reserve(n);
    std::vector<uint32_t> all_tokens;
    for (size_t id = 0; id < n; ++id) {
      pairs.push_back(BuildPairInput(config_, request.query, request.docs[id],
                                     request.planted_r[id], seq_len));
      all_tokens.insert(all_tokens.end(), pairs.back().tokens.begin(),
                        pairs.back().tokens.end());
    }
    if (cache_ != nullptr) {
      cache_->PrefetchTokens(all_tokens);
    }
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      ChunkState& chunk = chunks[ci];
      Tensor hidden(chunk.ids.size() * seq_len, config_.hidden, MemCategory::kHiddenStates,
                    tracker_);
      for (size_t c = 0; c < chunk.ids.size(); ++c) {
        EmbedPairInto(config_, embedding_.get(), head_, pairs[chunk.ids[c]], c, seq_len,
                      &hidden);
      }
      StowChunk(&chunk, static_cast<int64_t>(ci), std::move(hidden), /*more_layers=*/true);
    }
    result.stats.embed_ms = embed_timer.ElapsedMillis();
  }

  // --- Layer streaming setup ---
  std::unique_ptr<LayerStreamer> streamer;
  if (options_.streaming) {
    std::vector<size_t> schedule;
    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      schedule.push_back(LayerBlobIndex(layer));
    }
    streamer = std::make_unique<LayerStreamer>(reader_.get(), std::move(schedule),
                                               /*buffer_count=*/2, tracker_);
  }

  PrunerOptions pruner_options;
  pruner_options.dispersion_threshold = options_.dispersion_threshold;
  pruner_options.prune_winners = options_.prune_winners;
  pruner_options.kmeans_max_k = options_.kmeans_max_k;
  pruner_options.seed = options_.seed;

  std::vector<std::pair<float, size_t>> finalized;  // (score at selection, id)
  size_t remaining_k = std::min(request.k, n);
  bool terminated = false;
  std::vector<float> scores_active;

  for (size_t layer = 0; layer < config_.n_layers; ++layer) {
    // Acquire weights: prefetched by the streamer, or resident.
    std::span<const uint8_t> blob;
    if (streamer != nullptr) {
      const WallTimer stall_timer;
      blob = streamer->Acquire(layer);
      result.stats.io_stall_ms += stall_timer.ElapsedMillis();
    } else {
      blob = resident_layers_[layer];
    }
    const AnyLayerView view = ParseAnyLayerBlob(config_, blob, options_.quantized);

    // Forward every chunk through this layer; scores are collected in active
    // order (chunk order concatenated).
    scores_active.clear();
    const bool last_layer = layer + 1 == config_.n_layers;
    if (options_.offload_hidden && !chunks.empty() && chunks[0].spilled) {
      spill_->PrefetchAsync(0);
    }
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      ChunkState& chunk = chunks[ci];
      Tensor hidden = TakeChunk(&chunk, static_cast<int64_t>(ci));
      if (options_.offload_hidden && ci + 1 < chunks.size() && chunks[ci + 1].spilled) {
        spill_->PrefetchAsync(static_cast<int64_t>(ci + 1));
      }
      const WallTimer compute_timer;
      LayerForward(config_, view, seq_len, &hidden, &scratch);
      ScoreChunk(config_, head_, hidden, seq_len, &scores_active);
      const int64_t compute_micros = compute_timer.ElapsedMicros();
      result.stats.compute_ms += static_cast<double>(compute_micros) / 1000.0;
      ApplyComputeSlowdown(options_.device, compute_micros);
      StowChunk(&chunk, static_cast<int64_t>(ci), std::move(hidden), !last_layer);
    }
    result.stats.candidate_layers += static_cast<int64_t>(active.size());
    result.stats.layers_until_done = layer + 1;
    if (streamer != nullptr) {
      streamer->Release(layer);
    }

    // Record provisional scores for all active candidates.
    PRISM_CHECK_EQ(scores_active.size(), active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      result.scores[active[i]] = scores_active[i];
    }

    // Trace mode: record everything, prune nothing.
    if (options_.trace) {
      LayerTraceEntry entry;
      entry.layer = layer;
      entry.active = active.size();
      entry.cv = CoefficientOfVariation(scores_active);
      entry.scores.assign(n, kNan);
      entry.clusters.assign(n, -1);
      const Clustering clustering =
          ClusterScores(scores_active, options_.kmeans_max_k, options_.seed);
      for (size_t i = 0; i < active.size(); ++i) {
        entry.scores[active[i]] = scores_active[i];
        entry.clusters[active[i]] = clustering.assignment[i];
      }
      trace_.push_back(std::move(entry));
      continue;
    }

    // Progressive cluster pruning between layers (skip after the last layer —
    // final scores settle the remaining candidates anyway).
    if (!options_.pruning || last_layer) {
      continue;
    }
    const PruneDecision decision = DecidePrune(scores_active, remaining_k, pruner_options);
    LayerTraceEntry entry;
    entry.layer = layer;
    entry.active = active.size();
    entry.cv = decision.cv;
    entry.prune_triggered = decision.triggered;
    entry.selected = decision.selected.size();
    entry.dropped = decision.dropped.size();
    trace_.push_back(std::move(entry));
    if (!decision.triggered && !decision.terminate) {
      continue;
    }

    for (size_t idx : decision.selected) {
      finalized.emplace_back(scores_active[idx], active[idx]);
    }
    PRISM_CHECK_GE(remaining_k, decision.selected.size());
    remaining_k -= decision.selected.size();

    if (decision.terminate || remaining_k == 0 || decision.deferred.empty()) {
      terminated = true;
      if (streamer != nullptr) {
        streamer->TruncateSchedule(layer);
      }
      break;
    }

    if (decision.selected.empty() && decision.dropped.empty()) {
      continue;  // Triggered but nothing to prune; chunks stay as they are.
    }

    // Compact: gather surviving candidates' hidden rows into fresh chunks
    // (the paper's shrinking monolithic batch, Fig 3: BS 20 → 16 → 10).
    std::vector<size_t> survivors;
    survivors.reserve(decision.deferred.size());
    for (size_t idx : decision.deferred) {
      survivors.push_back(active[idx]);
    }
    // Map original id → (chunk, slot) for row gathering.
    std::vector<std::pair<size_t, size_t>> location(n, {SIZE_MAX, SIZE_MAX});
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      for (size_t c = 0; c < chunks[ci].ids.size(); ++c) {
        location[chunks[ci].ids[c]] = {ci, c};
      }
    }
    std::vector<Tensor> materialized;
    materialized.reserve(chunks.size());
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      materialized.push_back(TakeChunk(&chunks[ci], static_cast<int64_t>(ci)));
    }
    std::vector<ChunkState> new_chunks = partition(survivors);
    for (size_t ci = 0; ci < new_chunks.size(); ++ci) {
      ChunkState& chunk = new_chunks[ci];
      Tensor hidden(chunk.ids.size() * seq_len, config_.hidden, MemCategory::kHiddenStates,
                    tracker_);
      for (size_t c = 0; c < chunk.ids.size(); ++c) {
        const auto [src_chunk, src_slot] = location[chunk.ids[c]];
        PRISM_CHECK_NE(src_chunk, SIZE_MAX);
        const float* src = materialized[src_chunk].data() + src_slot * seq_len * config_.hidden;
        std::copy(src, src + seq_len * config_.hidden,
                  hidden.data() + c * seq_len * config_.hidden);
      }
      StowChunk(&chunk, static_cast<int64_t>(ci), std::move(hidden), /*more_layers=*/true);
    }
    materialized.clear();
    chunks = std::move(new_chunks);
    active = std::move(survivors);
  }

  // Fill any remaining top-K slots from the still-active candidates by final
  // provisional score.
  if (!terminated && remaining_k > 0) {
    const std::vector<size_t> order = TopKIndices(scores_active, remaining_k);
    for (size_t idx : order) {
      finalized.emplace_back(scores_active[idx], active[idx]);
    }
  }

  std::sort(finalized.begin(), finalized.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  for (const auto& [score, id] : finalized) {
    if (result.topk.size() == std::min(request.k, n)) {
      break;
    }
    result.topk.push_back(id);
  }

  if (streamer != nullptr) {
    const StreamerStats stats = streamer->stats();
    result.stats.bytes_streamed = stats.bytes_loaded;
    streamer.reset();
  }
  if (cache_ != nullptr) {
    result.stats.embed_cache_hit_rate = cache_->stats().HitRate();
  }
  result.stats.latency_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace prism

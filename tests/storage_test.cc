#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/model/weights.h"
#include "src/storage/blob_file.h"
#include "src/storage/hidden_spill.h"
#include "src/storage/layer_streamer.h"
#include "src/storage/ssd.h"

namespace prism {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  std::vector<uint8_t> bytes(n);
  Rng rng(seed);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return bytes;
}

class TempFile {
 public:
  explicit TempFile(const char* tag) : path_(MakeTempDevicePath(tag)) {}
  ~TempFile() { ::unlink(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SsdConfig Unthrottled() {
  SsdConfig config;
  config.throttle = false;
  return config;
}

TEST(SsdTest, WriteReadRoundTrip) {
  TempFile file("ssd_rt");
  SimulatedSsd ssd(file.path(), Unthrottled());
  const std::vector<uint8_t> data = RandomBytes(4096, 1);
  ASSERT_TRUE(ssd.Write(100, data).ok());
  std::vector<uint8_t> back(4096);
  ASSERT_TRUE(ssd.Read(100, back).ok());
  EXPECT_EQ(data, back);
}

TEST(SsdTest, AppendReturnsSequentialOffsets) {
  TempFile file("ssd_append");
  SimulatedSsd ssd(file.path(), Unthrottled());
  const auto a = ssd.Append(RandomBytes(128, 2));
  const auto b = ssd.Append(RandomBytes(64, 3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 128);
  EXPECT_EQ(ssd.SizeBytes(), 192);
}

TEST(SsdTest, ReadPastEndFails) {
  TempFile file("ssd_eof");
  SimulatedSsd ssd(file.path(), Unthrottled());
  ASSERT_TRUE(ssd.Write(0, RandomBytes(10, 4)).ok());
  std::vector<uint8_t> buf(100);
  EXPECT_FALSE(ssd.Read(50, buf).ok());
}

TEST(SsdTest, ThrottleEnforcesBandwidth) {
  TempFile file("ssd_bw");
  SsdConfig config;
  config.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;  // 1 MiB/s
  config.latency_micros = 0;
  SimulatedSsd ssd(file.path(), config);
  const std::vector<uint8_t> data = RandomBytes(256 * 1024, 5);  // 0.25 MiB → ≥ 250 ms
  const WallTimer timer;
  ASSERT_TRUE(ssd.Write(0, data).ok());
  EXPECT_GE(timer.ElapsedMicros(), 200000);
}

TEST(SsdTest, StatsAccumulate) {
  TempFile file("ssd_stats");
  SimulatedSsd ssd(file.path(), Unthrottled());
  ASSERT_TRUE(ssd.Write(0, RandomBytes(100, 6)).ok());
  std::vector<uint8_t> buf(50);
  ASSERT_TRUE(ssd.Read(0, buf).ok());
  const SsdStats stats = ssd.stats();
  EXPECT_EQ(stats.bytes_written, 100);
  EXPECT_EQ(stats.bytes_read, 50);
  EXPECT_EQ(stats.read_requests, 1);
}

TEST(BlobFileTest, RoundTripMultipleBlobs) {
  TempFile file("blob_rt");
  std::vector<std::vector<uint8_t>> blobs = {RandomBytes(100, 7), RandomBytes(5000, 8),
                                             RandomBytes(1, 9)};
  {
    BlobFileWriter writer(file.path());
    for (const auto& blob : blobs) {
      writer.AddBlob(blob);
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader.value()->blob_count(), 3u);
  for (size_t i = 0; i < blobs.size(); ++i) {
    ASSERT_EQ(reader.value()->BlobSize(i), static_cast<int64_t>(blobs[i].size()));
    std::vector<uint8_t> back(blobs[i].size());
    ASSERT_TRUE(reader.value()->ReadBlob(i, back).ok());
    EXPECT_EQ(back, blobs[i]);
  }
}

TEST(BlobFileTest, RangeReadWithinBlob) {
  TempFile file("blob_range");
  const std::vector<uint8_t> blob = RandomBytes(1000, 10);
  {
    BlobFileWriter writer(file.path());
    writer.AddBlob(blob);
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  std::vector<uint8_t> back(100);
  ASSERT_TRUE(reader.value()->ReadBlobRange(0, 250, back).ok());
  EXPECT_TRUE(std::equal(back.begin(), back.end(), blob.begin() + 250));
}

TEST(BlobFileTest, RejectsGarbageFile) {
  TempFile file("blob_bad");
  {
    SimulatedSsd ssd(file.path(), Unthrottled());
    ASSERT_TRUE(ssd.Write(0, RandomBytes(64, 11)).ok());
  }
  const auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  EXPECT_FALSE(reader.ok());
}

// --- v2 precision tags ----------------------------------------------------

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t at = buf.size();
  buf.resize(at + 4);
  std::memcpy(buf.data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  const size_t at = buf.size();
  buf.resize(at + 8);
  std::memcpy(buf.data() + at, &v, 8);
}

TEST(BlobFileTest, V2RoundTripPreservesPrecisionTags) {
  TempFile file("blob_v2");
  const std::vector<uint8_t> untagged = RandomBytes(64, 40);
  const std::vector<uint8_t> tagged = RandomBytes(128, 41);
  {
    BlobFileWriter writer(file.path());
    writer.AddBlob(untagged);  // Default tag: fp32, group 0.
    writer.AddBlob(tagged, Precision::kInt8, 32);
    writer.AddBlob(tagged, Precision::kW4, 16);
    writer.AddBlob(tagged, Precision::kFp16, 0);
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value()->version(), kBlobFileVersion);
  EXPECT_TRUE(reader.value()->has_precision_tags());
  EXPECT_EQ(reader.value()->BlobPrecision(0), Precision::kFp32);
  EXPECT_EQ(reader.value()->BlobQuantGroup(0), 0u);
  EXPECT_EQ(reader.value()->BlobPrecision(1), Precision::kInt8);
  EXPECT_EQ(reader.value()->BlobQuantGroup(1), 32u);
  EXPECT_EQ(reader.value()->BlobPrecision(2), Precision::kW4);
  EXPECT_EQ(reader.value()->BlobQuantGroup(2), 16u);
  EXPECT_EQ(reader.value()->BlobPrecision(3), Precision::kFp16);
  std::vector<uint8_t> back(tagged.size());
  ASSERT_TRUE(reader.value()->ReadBlob(1, back).ok());
  EXPECT_EQ(back, tagged);
}

// Hand-writes a format-v1 file: [magic][version=1][count] then 16-byte
// {offset, size} entries — no precision column.
void WriteV1File(const std::string& path, const std::vector<std::vector<uint8_t>>& blobs) {
  std::vector<uint8_t> buf;
  PutU32(buf, kBlobFileMagic);
  PutU32(buf, kBlobFileVersionLegacy);
  PutU64(buf, blobs.size());
  const size_t header = 16 + blobs.size() * 16;
  uint64_t offset = header;
  for (const auto& blob : blobs) {
    PutU64(buf, offset);
    PutU64(buf, blob.size());
    offset += blob.size();
  }
  for (const auto& blob : blobs) {
    buf.insert(buf.end(), blob.begin(), blob.end());
  }
  SimulatedSsd ssd(path, Unthrottled());
  ASSERT_TRUE(ssd.Write(0, buf).ok());
}

TEST(BlobFileTest, OpensLegacyV1Files) {
  TempFile file("blob_v1");
  const std::vector<std::vector<uint8_t>> blobs = {RandomBytes(48, 42), RandomBytes(200, 43)};
  WriteV1File(file.path(), blobs);
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value()->version(), kBlobFileVersionLegacy);
  EXPECT_FALSE(reader.value()->has_precision_tags());
  ASSERT_EQ(reader.value()->blob_count(), 2u);
  for (size_t i = 0; i < blobs.size(); ++i) {
    // Untagged blobs report the fp32 default.
    EXPECT_EQ(reader.value()->BlobPrecision(i), Precision::kFp32);
    EXPECT_EQ(reader.value()->BlobQuantGroup(i), 0u);
    std::vector<uint8_t> back(blobs[i].size());
    ASSERT_TRUE(reader.value()->ReadBlob(i, back).ok());
    EXPECT_EQ(back, blobs[i]);
  }
}

TEST(BlobFileTest, RejectsUnknownVersion) {
  TempFile file("blob_v9");
  std::vector<uint8_t> buf;
  PutU32(buf, kBlobFileMagic);
  PutU32(buf, 9);  // Future version.
  PutU64(buf, 0);
  {
    SimulatedSsd ssd(file.path(), Unthrottled());
    ASSERT_TRUE(ssd.Write(0, buf).ok());
  }
  const auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlobFileTest, RejectsTruncatedHeader) {
  TempFile file("blob_trunc");
  {
    SimulatedSsd ssd(file.path(), Unthrottled());
    std::vector<uint8_t> partial;
    PutU32(partial, kBlobFileMagic);
    PutU32(partial, kBlobFileVersion);  // Only 8 of the 16 header bytes.
    ASSERT_TRUE(ssd.Write(0, partial).ok());
  }
  EXPECT_FALSE(BlobFileReader::Open(file.path(), Unthrottled()).ok());
}

TEST(BlobFileTest, RejectsTruncatedEntryTable) {
  TempFile file("blob_trunc_table");
  std::vector<uint8_t> buf;
  PutU32(buf, kBlobFileMagic);
  PutU32(buf, kBlobFileVersion);
  PutU64(buf, 4);  // Claims four entries; the table is absent.
  {
    SimulatedSsd ssd(file.path(), Unthrottled());
    ASSERT_TRUE(ssd.Write(0, buf).ok());
  }
  EXPECT_FALSE(BlobFileReader::Open(file.path(), Unthrottled()).ok());
}

TEST(BlobFileTest, RejectsUnknownPrecisionTag) {
  TempFile file("blob_badtag");
  {
    BlobFileWriter writer(file.path());
    writer.AddBlob(RandomBytes(32, 44), Precision::kInt8, 16);
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    // Corrupt entry 0's precision column (header offset 16, entry field
    // offset 16 within the 24-byte v2 entry).
    SimulatedSsd ssd(file.path(), Unthrottled());
    std::vector<uint8_t> tag;
    PutU32(tag, 7);
    ASSERT_TRUE(ssd.Write(16 + 16, tag).ok());
  }
  const auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

// --- checkpoint-level validation ------------------------------------------

// Builds a checkpoint-shaped blob file (embedding + n_layers + head) whose
// layer blobs have `layer_bytes` bytes and carry the given tag.
void WriteTaggedCheckpoint(const std::string& path, const ModelConfig& config,
                           size_t layer_bytes, Precision tag, uint32_t group) {
  BlobFileWriter writer(path);
  writer.AddBlob(RandomBytes(64, 50));  // Embedding stand-in (not validated).
  for (size_t layer = 0; layer < config.n_layers; ++layer) {
    writer.AddBlob(RandomBytes(layer_bytes, 51 + layer), tag, group);
  }
  writer.AddBlob(RandomBytes(config.HeadBlobBytes(), 60));
  ASSERT_TRUE(writer.Finish().ok());
}

TEST(CheckpointValidationTest, AcceptsMatchingPrecisionAndGroup) {
  const ModelConfig config = TestModel();
  TempFile file("ckpt_ok");
  WriteTaggedCheckpoint(file.path(), config, LayerBlobBytes(config, Precision::kInt8),
                        Precision::kInt8, static_cast<uint32_t>(config.quant_group));
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(ValidateCheckpoint(*reader.value(), config, Precision::kInt8).ok());
}

TEST(CheckpointValidationTest, RejectsTagDisagreeingWithByteSize) {
  // Layer blobs sized for fp32 but tagged int8: an engine configured for
  // int8 must refuse (byte size disagrees with the tag's layout), and one
  // configured for fp32 must refuse too (tag disagrees with configuration).
  const ModelConfig config = TestModel();
  TempFile file("ckpt_tagsize");
  WriteTaggedCheckpoint(file.path(), config, LayerBlobBytes(config, Precision::kFp32),
                        Precision::kInt8, static_cast<uint32_t>(config.quant_group));
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  const Status as_int8 = ValidateCheckpoint(*reader.value(), config, Precision::kInt8);
  ASSERT_FALSE(as_int8.ok());
  EXPECT_EQ(as_int8.code(), StatusCode::kInvalidArgument);
  const Status as_fp32 = ValidateCheckpoint(*reader.value(), config, Precision::kFp32);
  ASSERT_FALSE(as_fp32.ok());
  EXPECT_EQ(as_fp32.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointValidationTest, RejectsWrongQuantGroup) {
  const ModelConfig config = TestModel();
  TempFile file("ckpt_group");
  WriteTaggedCheckpoint(file.path(), config, LayerBlobBytes(config, Precision::kInt8),
                        Precision::kInt8, static_cast<uint32_t>(config.quant_group) * 2);
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(ValidateCheckpoint(*reader.value(), config, Precision::kInt8).ok());
}

TEST(CheckpointValidationTest, RejectsWrongBlobCount) {
  const ModelConfig config = TestModel();
  TempFile file("ckpt_count");
  {
    BlobFileWriter writer(file.path());
    writer.AddBlob(RandomBytes(64, 61));  // Embedding only, no layers/head.
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(ValidateCheckpoint(*reader.value(), config, Precision::kFp32).ok());
}

TEST(CheckpointValidationTest, LegacyV1CheckpointValidatesAsFp32) {
  // v1 files carry no tags; size is the only check, so an fp32-shaped legacy
  // checkpoint still opens — the back-compat contract.
  const ModelConfig config = TestModel();
  TempFile file("ckpt_v1");
  std::vector<std::vector<uint8_t>> blobs;
  blobs.push_back(RandomBytes(64, 62));
  for (size_t layer = 0; layer < config.n_layers; ++layer) {
    blobs.push_back(RandomBytes(LayerBlobBytes(config, Precision::kFp32), 63 + layer));
  }
  blobs.push_back(RandomBytes(config.HeadBlobBytes(), 70));
  WriteV1File(file.path(), blobs);
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(ValidateCheckpoint(*reader.value(), config, Precision::kFp32).ok());
  // A reduced-precision engine cannot use it: the blob sizes are fp32-shaped.
  EXPECT_FALSE(ValidateCheckpoint(*reader.value(), config, Precision::kInt8).ok());
}

class StreamerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      blobs_.push_back(RandomBytes(2048 + static_cast<size_t>(i) * 17, 20 + i));
    }
    BlobFileWriter writer(file_.path());
    for (const auto& blob : blobs_) {
      writer.AddBlob(blob);
    }
    ASSERT_TRUE(writer.Finish().ok());
    auto reader = BlobFileReader::Open(file_.path(), Unthrottled());
    ASSERT_TRUE(reader.ok());
    reader_ = std::move(reader).value();
  }

  TempFile file_{"streamer"};
  std::vector<std::vector<uint8_t>> blobs_;
  std::unique_ptr<BlobFileReader> reader_;
};

TEST_F(StreamerTest, DeliversBlobsInOrder) {
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker);
  for (size_t i = 0; i < 6; ++i) {
    const auto bytes = streamer.Acquire(i);
    ASSERT_EQ(bytes.size(), blobs_[i].size());
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), blobs_[i].begin()));
    streamer.Release(i);
  }
  EXPECT_EQ(streamer.stats().blobs_loaded, 6);
}

TEST_F(StreamerTest, AtMostTwoBlobsResident) {
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker);
  int64_t max_weights = 0;
  for (size_t i = 0; i < 6; ++i) {
    streamer.Acquire(i);
    max_weights = std::max(max_weights, tracker.PeakBytes(MemCategory::kWeights));
    streamer.Release(i);
  }
  // Peak must be bounded by the two largest blobs.
  int64_t two_largest = 0;
  std::vector<int64_t> sizes;
  for (const auto& blob : blobs_) {
    sizes.push_back(static_cast<int64_t>(blob.size()));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  two_largest = sizes[0] + sizes[1];
  EXPECT_LE(max_weights, two_largest);
}

TEST_F(StreamerTest, CustomScheduleOrder) {
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {3, 1, 5}, 2, &tracker);
  const auto b3 = streamer.Acquire(0);
  EXPECT_TRUE(std::equal(b3.begin(), b3.end(), blobs_[3].begin()));
  streamer.Release(0);
  const auto b1 = streamer.Acquire(1);
  EXPECT_TRUE(std::equal(b1.begin(), b1.end(), blobs_[1].begin()));
  streamer.Release(1);
  const auto b5 = streamer.Acquire(2);
  EXPECT_TRUE(std::equal(b5.begin(), b5.end(), blobs_[5].begin()));
  streamer.Release(2);
}

TEST_F(StreamerTest, TruncateStopsPrefetch) {
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker);
  streamer.Acquire(0);
  streamer.TruncateSchedule(0);
  streamer.Release(0);
  // Destruction after truncation must not hang (checked by test completion);
  // at most the already-inflight blob 1 may have loaded.
  EXPECT_LE(streamer.stats().blobs_loaded, 2);
}

TEST_F(StreamerTest, CyclicDeliversWrapAroundOrder) {
  // Three full revolutions: position seq must deliver blob schedule[seq % 6],
  // and buffers released in one cycle are reused by the next.
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker, /*cyclic=*/true);
  EXPECT_TRUE(streamer.cyclic());
  EXPECT_EQ(streamer.cycle_length(), 6u);
  for (size_t seq = 0; seq < 18; ++seq) {
    const auto bytes = streamer.Acquire(seq);
    const auto& expected = blobs_[seq % 6];
    ASSERT_EQ(bytes.size(), expected.size()) << "seq " << seq;
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), expected.begin())) << "seq " << seq;
    streamer.Release(seq);
  }
  const StreamerStats stats = streamer.stats();
  EXPECT_GE(stats.blobs_loaded, 18);
  ASSERT_GE(stats.per_cycle.size(), 3u);
  for (size_t cycle = 0; cycle < 3; ++cycle) {
    EXPECT_EQ(stats.per_cycle[cycle].blobs_loaded, 6) << "cycle " << cycle;
  }
}

TEST_F(StreamerTest, CyclicKeepsAtMostTwoBlobsResidentAcrossCycles) {
  // The Release-then-reuse discipline must hold across the wrap: two
  // revolutions never hold more than the two largest blobs at once.
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker, /*cyclic=*/true);
  int64_t max_weights = 0;
  for (size_t seq = 0; seq < 12; ++seq) {
    streamer.Acquire(seq);
    max_weights = std::max(max_weights, tracker.PeakBytes(MemCategory::kWeights));
    streamer.Release(seq);
  }
  std::vector<int64_t> sizes;
  for (const auto& blob : blobs_) {
    sizes.push_back(static_cast<int64_t>(blob.size()));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_LE(max_weights, sizes[0] + sizes[1]);
  streamer.TruncateSchedule(11);  // Walk over; stop the prefetcher fetching cycle 3.
}

TEST_F(StreamerTest, CyclicTruncateMidCycleStopsPrefetch) {
  // TruncateSchedule caps the monotonic sequence space, so truncating at
  // seq 8 — layer 2 of the second revolution — behaves exactly like a
  // mid-schedule truncation: in-flight loads finish, nothing past the cap
  // starts, destruction does not hang.
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker, /*cyclic=*/true);
  for (size_t seq = 0; seq <= 8; ++seq) {
    streamer.Acquire(seq);
    if (seq == 8) {
      streamer.TruncateSchedule(8);
    }
    streamer.Release(seq);
  }
  // Everything consumed plus at most buffer_count in-flight/prefetched.
  EXPECT_LE(streamer.stats().blobs_loaded, 8 + 1 + 2);
}

TEST_F(StreamerTest, CyclicSkipToRealignsAtNextCycle) {
  // A carousel that drains at layer 1 skips the rest of the cycle: SkipTo
  // the next boundary must discard the unconsumed positions (freeing their
  // buffers) and deliver the next cycle's layer 0 correctly.
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker, /*cyclic=*/true);
  for (size_t seq = 0; seq < 2; ++seq) {
    const auto bytes = streamer.Acquire(seq);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), blobs_[seq].begin()));
    streamer.Release(seq);
  }
  streamer.SkipTo(6);
  for (size_t seq = 6; seq < 12; ++seq) {
    const auto bytes = streamer.Acquire(seq);
    const auto& expected = blobs_[seq % 6];
    ASSERT_EQ(bytes.size(), expected.size()) << "seq " << seq;
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), expected.begin())) << "seq " << seq;
    streamer.Release(seq);
  }
  streamer.TruncateSchedule(11);
  // Positions 2..5 were never consumed; at most the prefetcher's look-ahead
  // (2 buffers) of them may have been fetched before the skip landed.
  const StreamerStats stats = streamer.stats();
  EXPECT_LE(stats.blobs_loaded, 2 + 2 + 6 + 2);
  // Skipped-but-fetched bytes are still accounted (they were real I/O).
  int64_t cycle_sum = 0;
  for (const auto& cycle : stats.per_cycle) {
    cycle_sum += cycle.bytes_loaded;
  }
  EXPECT_EQ(cycle_sum, stats.bytes_loaded);
}

TEST_F(StreamerTest, StallAccountingIsMonotonic) {
  // Snapshots taken between acquires must never decrease: stall, bytes, and
  // blob counters only accumulate (per-cycle totals always sum to them).
  MemoryTracker tracker;
  LayerStreamer streamer(reader_.get(), {0, 1, 2, 3, 4, 5}, 2, &tracker, /*cyclic=*/true);
  StreamerStats last = streamer.stats();
  for (size_t seq = 0; seq < 12; ++seq) {
    streamer.Acquire(seq);
    streamer.Release(seq);
    const StreamerStats now = streamer.stats();
    EXPECT_GE(now.stall_micros, last.stall_micros) << "seq " << seq;
    EXPECT_GE(now.bytes_loaded, last.bytes_loaded) << "seq " << seq;
    EXPECT_GE(now.blobs_loaded, last.blobs_loaded) << "seq " << seq;
    int64_t stall_sum = 0;
    for (const auto& cycle : now.per_cycle) {
      stall_sum += cycle.stall_micros;
    }
    EXPECT_EQ(stall_sum, now.stall_micros) << "seq " << seq;
    last = now;
  }
  streamer.TruncateSchedule(11);
}

TEST(SpillPoolTest, SpillTakeRoundTrip) {
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  Tensor t(4, 8, MemCategory::kHiddenStates, &tracker);
  Rng rng(30);
  for (float& v : t.flat()) {
    v = static_cast<float>(rng.NextGaussian());
  }
  const Tensor copy = t.Clone(MemCategory::kScratch, &tracker);
  pool.SpillAsync(7, std::move(t));
  Tensor back = pool.Take(7);
  ASSERT_EQ(back.rows(), 4u);
  ASSERT_EQ(back.cols(), 8u);
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.flat()[i], copy.flat()[i]);
  }
}

TEST(SpillPoolTest, PrefetchThenTake) {
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  Tensor t(2, 16, MemCategory::kHiddenStates, &tracker);
  t.Fill(3.25f);
  pool.SpillAsync(1, std::move(t));
  pool.PrefetchAsync(1);
  Tensor back = pool.Take(1);
  EXPECT_EQ(back.at(1, 15), 3.25f);
}

TEST(SpillPoolTest, SpilledTensorFreesMemory) {
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  {
    Tensor t(64, 64, MemCategory::kHiddenStates, &tracker);
    pool.SpillAsync(2, std::move(t));
  }
  // After the spill completes, the hidden-state bytes must be released.
  Tensor back = pool.Take(2);  // Forces the spill to have completed.
  back = Tensor();             // Drop it.
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kHiddenStates), 0);
}

TEST(SpillPoolTest, RespillSameKeyOverwrites) {
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  Tensor a(1, 4, MemCategory::kHiddenStates, &tracker);
  a.Fill(1.0f);
  pool.SpillAsync(5, std::move(a));
  Tensor first = pool.Take(5);
  EXPECT_EQ(first.at(0, 0), 1.0f);
  Tensor b(1, 4, MemCategory::kHiddenStates, &tracker);
  b.Fill(2.0f);
  pool.SpillAsync(5, std::move(b));
  Tensor second = pool.Take(5);
  EXPECT_EQ(second.at(0, 0), 2.0f);
}


TEST(SpillPoolTest, DropReleasesEntryWithoutReadback) {
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  Tensor t(8, 8, MemCategory::kHiddenStates, &tracker);
  t.Fill(4.0f);
  pool.SpillAsync(3, std::move(t));
  pool.PrefetchAsync(3);
  pool.Drop(3);  // Entry gone, prefetched tensor's claim released.
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kHiddenStates), 0);
  pool.Drop(3);  // Absent key: no-op.
  // The key is free for reuse.
  Tensor u(1, 8, MemCategory::kHiddenStates, &tracker);
  u.Fill(9.0f);
  pool.SpillAsync(3, std::move(u));
  EXPECT_EQ(pool.Take(3).at(0, 0), 9.0f);
}

TEST(SpillPoolTest, ConcurrentDisjointKeysRoundTrip) {
  // Requests in flight through the engine share one pool under disjoint
  // (namespaced) keys; spills/prefetches/takes from several threads must
  // round-trip exactly (TSan validates the locking discipline).
  MemoryTracker tracker;
  SpillPool pool(Unthrottled(), &tracker);
  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 8;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (size_t r = 0; r < kRounds; ++r) {
        const int64_t key = static_cast<int64_t>(w * kRounds + r);
        Tensor t(2, 4, MemCategory::kHiddenStates, &tracker);
        t.Fill(static_cast<float>(key));
        pool.SpillAsync(key, std::move(t));
        if (r % 2 == 0) {
          pool.PrefetchAsync(key);
        }
        Tensor back = pool.Take(key);
        EXPECT_EQ(back.at(1, 3), static_cast<float>(key));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kHiddenStates), 0);
}

TEST(SsdTest, ScatteredReadReturnsDataAndChargesOnce) {
  TempFile file("ssd_scatter");
  SimulatedSsd ssd(file.path(), Unthrottled());
  const std::vector<uint8_t> data = RandomBytes(1024, 12);
  ASSERT_TRUE(ssd.Write(0, data).ok());
  std::vector<uint8_t> a(64);
  std::vector<uint8_t> b(32);
  std::vector<std::pair<int64_t, std::span<uint8_t>>> requests = {
      {100, std::span<uint8_t>(a)}, {700, std::span<uint8_t>(b)}};
  const int64_t reads_before = ssd.stats().read_requests;
  ASSERT_TRUE(ssd.ReadScattered(requests).ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), data.begin() + 100));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), data.begin() + 700));
  // One queued submission: the device counts a single request.
  EXPECT_EQ(ssd.stats().read_requests, reads_before + 1);
}

TEST(BlobFileTest, ScatteredRangesWithinBlob) {
  TempFile file("blob_scatter");
  const std::vector<uint8_t> blob = RandomBytes(2000, 13);
  {
    BlobFileWriter writer(file.path());
    writer.AddBlob(RandomBytes(100, 14));  // Blob 0: offset shift.
    writer.AddBlob(blob);                  // Blob 1: target.
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = BlobFileReader::Open(file.path(), Unthrottled());
  ASSERT_TRUE(reader.ok());
  std::vector<uint8_t> a(16);
  std::vector<uint8_t> b(24);
  std::vector<std::pair<int64_t, std::span<uint8_t>>> ranges = {
      {10, std::span<uint8_t>(a)}, {1500, std::span<uint8_t>(b)}};
  ASSERT_TRUE(reader.value()->ReadBlobRanges(1, ranges).ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), blob.begin() + 10));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), blob.begin() + 1500));
}

}  // namespace
}  // namespace prism

#include "bench/bench_util.h"

#include <cstdio>

#include <sstream>

#include "src/model/layer.h"
#include "src/model/pair_encoder.h"

namespace prism {

int64_t VramBudgetBytes(const DeviceProfile& device) {
  // Scaled equivalents of 8 GiB VRAM (nvidia) / 16 GiB unified (apple): set
  // so the 0.6B/MiniCPM/M3 proxies fit with headroom and the 4B/8B proxies
  // exceed it — the paper's OOM boundary (Table 3).
  return device.name == "apple" ? 38 * 1024 * 1024 : 36 * 1024 * 1024;
}

int64_t EstimateHfPeakBytes(const ModelConfig& config, const DeviceProfile& device,
                            size_t n_candidates, size_t seq_len, Precision precision) {
  const size_t batch = std::min(device.hf_batch_size, n_candidates);
  int64_t bytes = static_cast<int64_t>(config.n_layers * LayerBlobBytes(config, precision));
  bytes += static_cast<int64_t>(config.EmbeddingBlobBytes());
  bytes += LayerScratch::BytesFor(config, batch * seq_len, seq_len);
  bytes += static_cast<int64_t>(batch * seq_len * config.hidden * sizeof(float));
  return bytes;
}

std::unique_ptr<Runner> MakeHf(const ModelConfig& config, const DeviceProfile& device,
                               Precision precision) {
  HfRunnerOptions options;
  options.device = device;
  options.precision = precision;
  return std::make_unique<HfRunner>(config, EnsureCheckpoint(config, kBenchSeed, precision),
                                    options);
}

std::unique_ptr<Runner> MakeOffload(const ModelConfig& config, const DeviceProfile& device,
                                    Precision precision) {
  OffloadRunnerOptions options;
  options.device = device;
  options.precision = precision;
  return std::make_unique<OffloadRunner>(config, EnsureCheckpoint(config, kBenchSeed, precision),
                                         options);
}

std::unique_ptr<PrismEngine> MakePrism(const ModelConfig& config, const DeviceProfile& device,
                                       float threshold, Precision precision) {
  PrismOptions options;
  options.device = device;
  options.dispersion_threshold = threshold;
  options.precision = precision;
  return MakePrismWith(config, options);
}

std::unique_ptr<PrismEngine> MakePrismWith(const ModelConfig& config, PrismOptions options) {
  return std::make_unique<PrismEngine>(
      config, EnsureCheckpoint(config, kBenchSeed, options.precision), options);
}

std::vector<BenchCase> MakeCases(const ModelConfig& config, const std::string& dataset,
                                 size_t queries, size_t candidates, size_t k) {
  const SyntheticDataset data(DatasetByName(dataset), config, kDataSeed);
  std::vector<BenchCase> cases;
  for (size_t i = 0; i < queries; ++i) {
    const RerankQuery q = data.MakeQuery(i, candidates);
    BenchCase bench_case;
    bench_case.request = RerankRequest::FromQuery(q, k);
    bench_case.relevant = q.relevant;
    cases.push_back(std::move(bench_case));
  }
  return cases;
}

BenchRun RunCases(Runner* runner, const std::vector<BenchCase>& cases) {
  BenchRun run;
  MemoryTracker& tracker = MemoryTracker::Global();
  for (const BenchCase& bench_case : cases) {
    const RerankResult result = runner->Rerank(bench_case.request);
    run.mean_latency_ms += result.stats.latency_ms;
    run.mean_precision += PrecisionAtK(result.topk, bench_case.relevant, bench_case.request.k);
    run.mean_candidate_layers += static_cast<double>(result.stats.candidate_layers);
    run.io_stall_ms += result.stats.io_stall_ms;
    run.topks.push_back(result.topk);
  }
  const auto n = static_cast<double>(cases.size());
  run.mean_latency_ms /= n;
  run.mean_precision /= n;
  run.mean_candidate_layers /= n;
  run.io_stall_ms /= n;
  run.peak_mib = MiB(tracker.PeakTotal());
  run.avg_mib = MiB(static_cast<int64_t>(tracker.AverageTotal()));
  return run;
}

double MiB(int64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace prism

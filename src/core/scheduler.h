// Request admission for RerankService.
//
// A Scheduler decides how concurrent Rerank calls reach the engine:
//
//   SerialScheduler  — one request at a time through a Runner (the original
//                      behaviour; callers queue for a busy flag). Required
//                      when the runner is stateful, e.g. the
//                      OnlineCalibrator. Deadlines are honoured at dispatch:
//                      a request whose budget expired while waiting its turn
//                      is shed.
//   BatchScheduler   — callers enqueue into a ticketed RequestQueue; a
//                      dispatcher thread drains it, coalescing up to
//                      `max_inflight` requests into one BatchRunner pass.
//                      The batch shares a single layer-streaming pass (each
//                      layer's weights are fetched once for every in-flight
//                      request — the paper's §3.3 global view extended
//                      across requests) and fans per-request compute out on
//                      a worker pool. Admission order, not thread timing,
//                      determines batch composition, and per-request pruning
//                      keeps every result bit-identical to a serial run.
//   CarouselScheduler — continuous batching: the dispatcher rides a cyclic
//                      layer pass (BatchRunner::BeginCarousel) that never
//                      ends while traffic flows. At each arriving layer k it
//                      forwards every resident request whose next-needed
//                      layer is k; new requests are admitted at the next
//                      layer-0 boundary (worst-case wait one cycle, not one
//                      full batch pass), and a request that terminates —
//                      pruned to completion or failed — exits and answers
//                      its caller immediately instead of waiting for
//                      batchmates. When the carousel drains mid-cycle with
//                      work queued, it skips the rest of the cycle (the
//                      layers nobody needs are never fetched) and wraps
//                      early. Results stay bit-identical to serial.
//
// Admission order is priority-then-FIFO: within a priority class, tickets
// (monotonic admission sequence numbers) decide; a higher class always
// dispatches before a lower one. Requests carrying a deadline are shed the
// moment the dispatcher observes them expired — their caller receives a
// kDeadlineExceeded RerankResult instead of burning an engine pass — so an
// overloaded service degrades by answering late requests cheaply rather
// than queueing unboundedly.
//
// Every blocking wait and every timestamp in this file goes through the
// Clock seam (src/common/clock.h). With the default wall clock nothing
// changes; under a SimClock the queue's deadline expiry, the schedulers'
// waits, and the carousel's linger window all run on deterministic virtual
// time, and the dispatchers yield to quiescence before draining the queue so
// batch composition is a pure function of the virtual arrival schedule.
#ifndef PRISM_SRC_CORE_SCHEDULER_H_
#define PRISM_SRC_CORE_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/striped.h"
#include "src/common/thread_pool.h"
#include "src/runtime/runner.h"

namespace prism {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Blocks until the request has been served (or shed); thread-safe. A shed
  // or failed request is reported through `result.status`.
  virtual RerankResult Submit(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

// The result handed to a caller whose request was shed after waiting
// `waited_ms` against `deadline_ms`. topk stays empty; scores are not
// filled (the request never reached an engine). stats.queue_wait_ms and
// stats.latency_ms both carry `waited_ms`: a shed request's whole life was
// queue wait.
RerankResult MakeShedResult(double deadline_ms, double waited_ms);

// One-at-a-time pass-through to a Runner: callers queue on a busy flag
// (clock-aware, so waiters are visible to a SimClock) and are dispatched
// FIFO by arrival at the flag.
class SerialScheduler : public Scheduler {
 public:
  explicit SerialScheduler(Runner* runner, Clock* clock = nullptr)
      : runner_(runner), clock_(ResolveClock(clock)), cv_(clock_->MakeCondVar()) {}

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "serial"; }

 private:
  Runner* runner_;
  Clock* clock_;
  std::unique_ptr<ClockCondVar> cv_;
  Mutex mu_;
  bool busy_ PRISM_GUARDED_BY(mu_) = false;
};

// Ticketed priority-then-FIFO queue of pending requests, single-consumer by
// contract: any number of producers may Push concurrently, but at most one
// thread (the scheduler's dispatcher) calls the pop variants.
//
// By default producers stage through a bounded lock-free MPSC ring (Vyukov
// bounded-queue slot-sequence scheme; cf. the CAS-ticket constructions of
// Blelloch & Wei, PAPERS.md): a CAS on the enqueue cursor claims a slot,
// and the claimed position *is* the admission ticket — so ticket order and
// ring visibility order agree by construction, with no lock and no separate
// ticket counter. The dispatcher drains the ring (stopping at the first
// still-publishing slot, which preserves strict ticket-FIFO within a
// priority class) into a consumer-private structure kept sorted
// (priority desc, ticket asc); priority ordering, deadline shedding, and
// the carousel's epoch tagging are therefore single-threaded and need no
// lock at all. The queue mutex survives only for the two rare edges: the
// sleep/wake handshake when the dispatcher idles, and producers waiting out
// a full ring. With `lock_free = false` producers instead stage under the
// mutex (the measured baseline for bench_contention); everything downstream
// of staging is shared, so semantics are identical in both modes.
//
// Pushes never block (short of a full ring); PopBatch blocks until at least
// one unexpired request is pending (or the queue is closed) and then drains
// up to `max_batch` entries in (priority desc, ticket asc) order. Expired
// entries are shed inside the pops: their promises are fulfilled with a
// kDeadlineExceeded result and they never surface to the dispatcher. All
// timestamps are clock milliseconds; all waits go through the clock's
// condition variables, so SimClock determinism is preserved — ordering
// decisions happen only in the dispatcher, after a yield to quiescence.
class RequestQueue {
 public:
  // `ring_capacity` (rounded up to a power of two) bounds the lock-free
  // staging ring; a producer that finds it full waits on the clock seam
  // until the dispatcher drains — deadline accounting keeps running, since
  // admission stamps happen before staging.
  explicit RequestQueue(Clock* clock = nullptr, bool lock_free = true,
                        size_t ring_capacity = kDefaultRingCapacity);
  ~RequestQueue();

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  static constexpr size_t kDefaultRingCapacity = 1024;

  struct Pending {
    const RerankRequest* request = nullptr;
    std::promise<RerankResult> promise;
    uint64_t ticket = 0;
    int priority = 0;
    // The caller's epoch counter (the CarouselScheduler's admission-boundary
    // counter) as of the pop that first drained this entry out of staging.
    // Only the dispatcher reads and bumps the epoch, and every pop drains
    // all published staging before bumping, so "epoch at dispatch minus tag"
    // counts exactly the admission events between this entry becoming
    // visible and its dispatch — race-free without any producer-side
    // snapshot.
    uint64_t tag = 0;
    double admitted_ms = 0.0;
    // Absolute expiry instant (clock ms); only meaningful when has_deadline.
    double deadline_at_ms = 0.0;
    bool has_deadline = false;

    bool ExpiredAt(double now_ms) const { return has_deadline && now_ms >= deadline_at_ms; }
  };

  // All pop variants share the epoch protocol: when `epoch` is non-null,
  // entries are tagged with its current value as they drain out of staging,
  // and a pop that returns a non-empty batch increments it. With free
  // capacity, epoch-at-dispatch − tag == 1, always.

  std::future<RerankResult> Push(const RerankRequest& request);
  std::vector<Pending> PopBatch(size_t max_batch, std::atomic<uint64_t>* epoch = nullptr);

  // Non-blocking PopBatch: sheds expired entries, then returns up to
  // `max_batch` pending requests — possibly none. Never waits on the queue
  // (it does yield to clock quiescence first, a no-op on the wall clock);
  // used by the carousel to admit whatever is queued at a cycle boundary.
  std::vector<Pending> TryPopBatch(size_t max_batch, std::atomic<uint64_t>* epoch = nullptr);

  // PopBatch that gives up after `timeout_ms`: returns an empty batch when
  // no unexpired request arrived in time (or the queue closed). The
  // carousel's linger window — a drained pass waits warm for the next
  // arrival instead of tearing its prefetch pipeline down.
  std::vector<Pending> PopBatchFor(size_t max_batch, double timeout_ms,
                                   std::atomic<uint64_t>* epoch = nullptr);

  // Wakes PopBatch; subsequent pushes are rejected (CHECK). Entries still
  // staged or ordered are drained by subsequent PopBatch calls.
  void Close();

  // Entries pending (staged + ordered, not yet popped). Counter-derived and
  // lock-free; momentarily stale against in-flight pushes, like any
  // concurrent size.
  size_t size() const;

  // Requests shed on an expired deadline so far.
  size_t shed_count() const;

 private:
  // One ring slot (Vyukov scheme). seq == pos: free for the producer that
  // claims position pos; seq == pos + 1: published, ready for the consumer;
  // after consumption seq becomes pos + capacity (free for the next lap).
  // The seq release-store publishes `item`; the consumer's acquire-load
  // receives it.
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<uint64_t> seq{0};
    Pending item;
  };

  // Producer side: stamps and stages one entry, returns its future.
  std::future<RerankResult> Stage(const RerankRequest& request);
  // Consumer side: moves every published staged entry into ordered_, tagging
  // each with `epoch`'s current value. DrainRing is the lock-free variant
  // (dispatcher-private, no lock); DrainStagedLocked drains the mutexed
  // baseline's staging deque and so requires mu_.
  void DrainRing(const std::atomic<uint64_t>* epoch);
  void DrainStagedLocked(const std::atomic<uint64_t>* epoch) PRISM_REQUIRES(mu_);
  // One consumer pass shared by the pop variants: drain staging (under mu_
  // in the mutexed baseline, whose lock-hold profile spans shed+take too),
  // shed expired entries into *shed, take up to max_batch survivors, and
  // bump the epoch on a non-empty batch.
  std::vector<Pending> DrainPass(size_t max_batch, std::atomic<uint64_t>* epoch,
                                 std::vector<Pending>* shed);
  // Sorted insert into ordered_ (priority desc, ticket asc), scanning from
  // the back — O(1) for the in-ticket-order drains both modes produce.
  void InsertOrdered(Pending pending);
  // Both operate on ordered_, consumer-private: move expired entries into
  // `shed`, then up to `max_batch` survivors into the returned batch.
  void ShedExpired(std::vector<Pending>* shed);
  std::vector<Pending> Take(size_t max_batch);
  // Fulfils shed promises.
  void AnswerShed(std::vector<Pending> shed);
  // True when the dispatcher has (or can drain) work: ordered_ is never
  // consulted here because only the consumer calls this between drains.
  bool HasStaged() const { return staged_count_.load(std::memory_order_seq_cst) > 0; }

  Clock* clock_;
  const bool lock_free_;
  std::unique_ptr<ClockCondVar> cv_;           // Dispatcher parks here.
  std::unique_ptr<ClockCondVar> not_full_cv_;  // Producers park on a full ring.
  mutable Mutex mu_;  // Sleep/wake handshake + mutex-mode staging only.

  // --- Staging (producers → dispatcher). ---------------------------------
  // Lock-free mode: the bounded ring. enqueue_pos_ is the CAS ticket
  // cursor; dequeue_pos_ is consumer-private, mirrored into
  // dequeue_published_ so full-ring producers can watch drain progress.
  std::unique_ptr<Slot[]> ring_;
  size_t ring_mask_ = 0;
  std::atomic<uint64_t> enqueue_pos_{0};
  uint64_t dequeue_pos_ = 0;
  std::atomic<uint64_t> dequeue_published_{0};
  // Mutex mode: staged under mu_; tickets still come from enqueue_pos_.
  std::deque<Pending> staged_mutex_ PRISM_GUARDED_BY(mu_);
  // Ring + mutex staging, published but not yet drained. seq_cst: pairs
  // with dispatcher_sleeping_ / full_waiters_ in the two Dekker-style
  // sleep/wake handshakes below.
  std::atomic<size_t> staged_count_{0};
  std::atomic<bool> dispatcher_sleeping_{false};
  std::atomic<size_t> full_waiters_{0};

  // --- Ordering (dispatcher-private; no synchronization). ----------------
  // Kept sorted: priority descending, ticket ascending. Drain inserts from
  // the back (staging arrives in ticket order), so the common
  // single-priority case stays O(1) per entry.
  std::deque<Pending> ordered_;
  std::atomic<size_t> ordered_count_{0};  // Mirror of ordered_.size() for size().

  std::atomic<size_t> shed_{0};
  std::atomic<bool> closed_{false};
};

class BatchScheduler : public Scheduler {
 public:
  // `compute_threads` sizes the per-request fan-out pool (0 = one per core).
  // `lock_free_admission` selects the queue's staging mode (see
  // RequestQueue; false = the mutexed baseline).
  BatchScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads = 0,
                 Clock* clock = nullptr, bool lock_free_admission = true);
  ~BatchScheduler() override;

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "batch"; }

  size_t max_inflight() const { return max_inflight_; }

 private:
  void DispatchLoop();

  BatchRunner* runner_;
  size_t max_inflight_;
  Clock* clock_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::thread dispatcher_;
};

// Continuous batching over a cyclic layer pass (see file comment). The
// dispatcher owns one CarouselPass per busy period: it admits up to
// `max_inflight` resident requests at each layer-0 boundary (priority-then-
// FIFO, deadline shedding via RequestQueue), steps every arriving layer's
// depth group, and answers each request the moment it finishes.
class CarouselScheduler : public Scheduler {
 public:
  // Progress counters, mainly for tests and benches. `max_boundary_wait` is
  // the most admission events any request saw between enqueue and
  // admission, counted race-free through the queue's epoch protocol: with
  // free capacity it is exactly 1 (a request enqueued mid-cycle is admitted
  // at the very next boundary), which is the "worst-case wait one cycle"
  // admission-latency guarantee; each capacity-bound skip adds 1.
  struct Stats {
    size_t passes = 0;     // Busy periods (carousel spin-ups).
    size_t cycles = 0;     // Layer-0 admission boundaries crossed.
    size_t admitted = 0;   // Requests that reached the carousel.
    size_t exited_early = 0;  // Finished before their admission cycle ended.
    size_t max_boundary_wait = 0;
  };

  // `compute_threads` sizes the per-depth-group fan-out pool (0 = one per
  // core, at least one per carousel slot). `linger_ms` is how long a drained
  // pass waits — prefetch pipeline warm, next cycle's first layers already
  // loading — for new traffic before tearing down; arrivals inside the
  // window start on warm weights instead of a cold streamer.
  CarouselScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads = 0,
                    double linger_ms = 200.0, Clock* clock = nullptr,
                    bool lock_free_admission = true);
  ~CarouselScheduler() override;

  CarouselScheduler(const CarouselScheduler&) = delete;
  CarouselScheduler& operator=(const CarouselScheduler&) = delete;

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "carousel"; }

  size_t max_inflight() const { return max_inflight_; }
  Stats stats() const;

 private:
  struct Resident {
    std::unique_ptr<CarouselTicket> ticket;
    std::promise<RerankResult> promise;
    double queue_wait_ms = 0.0;
  };

  void DispatchLoop();
  // Admits `batch` into `pass` at a layer-0 boundary, bumping the boundary
  // counter and the admission stats.
  void AdmitBoundary(CarouselPass* pass, std::vector<RequestQueue::Pending> batch,
                     std::vector<Resident>* residents);

  BatchRunner* runner_;
  size_t max_inflight_;
  double linger_ms_;
  Clock* clock_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> compute_pool_;
  // Admission events so far — tagged onto each entry as the dispatcher
  // drains it out of staging, and bumped by the pops that hand out batches
  // (both on the dispatcher thread; see RequestQueue's epoch protocol).
  std::atomic<uint64_t> boundary_seq_{0};
  mutable Mutex stats_mu_;
  Stats stats_ PRISM_GUARDED_BY(stats_mu_);
  std::thread dispatcher_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SCHEDULER_H_

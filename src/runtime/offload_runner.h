// The "HF Offload" baseline (§6.1): HuggingFace Accelerate's disk offloading.
// All transformer layers live on disk and are loaded synchronously right
// before execution — no prefetch, no overlap. Each batch forwards through
// all layers, so an N-candidate request with batch size B pays
// ceil(N/B) × n_layers synchronous layer loads. Only one layer's weights are
// resident at a time (that is the baseline's entire point), plus the
// embedding table.
#ifndef PRISM_SRC_RUNTIME_OFFLOAD_RUNNER_H_
#define PRISM_SRC_RUNTIME_OFFLOAD_RUNNER_H_

#include <memory>
#include <string>

#include "src/common/memory_tracker.h"
#include "src/model/embedding.h"
#include "src/model/weights.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"
#include "src/storage/blob_file.h"

namespace prism {

struct OffloadRunnerOptions {
  DeviceProfile device = NvidiaProfile();
  Precision precision = Precision::kFp32;
  size_t batch_size = 0;  // 0 = device.hf_batch_size.
};

class OffloadRunner : public Runner {
 public:
  OffloadRunner(const ModelConfig& config, const std::string& checkpoint_path,
                OffloadRunnerOptions options, MemoryTracker* tracker = &MemoryTracker::Global());

  RerankResult Rerank(const RerankRequest& request) override;
  std::string name() const override {
    switch (options_.precision) {
      case Precision::kFp16:
        return "HF Offload Fp16";
      case Precision::kInt8:
        return "HF Offload Int8";
      case Precision::kW4:
        return "HF Offload Quant";
      case Precision::kFp32:
        break;
    }
    return "HF Offload";
  }

 private:
  ModelConfig config_;
  OffloadRunnerOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<BlobFileReader> reader_;
  std::unique_ptr<FullEmbeddingTable> embedding_;
  HeadWeights head_;
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_OFFLOAD_RUNNER_H_

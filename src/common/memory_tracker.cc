#include "src/common/memory_tracker.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

const char* MemCategoryName(MemCategory category) {
  switch (category) {
    case MemCategory::kWeights:
      return "weights";
    case MemCategory::kEmbedding:
      return "embedding";
    case MemCategory::kActivations:
      return "activations";
    case MemCategory::kHiddenStates:
      return "hidden_states";
    case MemCategory::kScratch:
      return "scratch";
    case MemCategory::kCount:
      break;
  }
  return "?";
}

void MemoryTracker::Allocate(MemCategory category, int64_t bytes) {
  PRISM_CHECK_GE(bytes, 0);
  MutexLock lock(mu_);
  const auto idx = static_cast<size_t>(category);
  current_[idx] += bytes;
  peak_[idx] = std::max(peak_[idx], current_[idx]);
  int64_t total = 0;
  for (int64_t b : current_) {
    total += b;
  }
  peak_total_ = std::max(peak_total_, total);
  RecordLocked(NowMicros());
}

void MemoryTracker::Release(MemCategory category, int64_t bytes) {
  PRISM_CHECK_GE(bytes, 0);
  MutexLock lock(mu_);
  const auto idx = static_cast<size_t>(category);
  current_[idx] -= bytes;
  PRISM_CHECK_GE(current_[idx], 0);
  RecordLocked(NowMicros());
}

int64_t MemoryTracker::CurrentBytes(MemCategory category) const {
  MutexLock lock(mu_);
  return current_[static_cast<size_t>(category)];
}

int64_t MemoryTracker::CurrentTotal() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (int64_t b : current_) {
    total += b;
  }
  return total;
}

int64_t MemoryTracker::PeakTotal() const {
  MutexLock lock(mu_);
  return peak_total_;
}

int64_t MemoryTracker::PeakBytes(MemCategory category) const {
  MutexLock lock(mu_);
  return peak_[static_cast<size_t>(category)];
}

double MemoryTracker::AverageTotal() const {
  MutexLock lock(mu_);
  if (timeline_start_ == 0) {
    return 0.0;
  }
  // While running, extend to now; once stopped, the last recorded event (the
  // StopTimeline snapshot) closes the window.
  const int64_t end = timeline_on_ ? NowMicros() : last_event_micros_;
  const int64_t span = end - timeline_start_;
  if (span <= 0) {
    return 0.0;
  }
  const double weighted =
      weighted_bytes_micros_ +
      static_cast<double>(last_total_) * static_cast<double>(end - last_event_micros_);
  return weighted / static_cast<double>(span);
}

void MemoryTracker::StartTimeline() {
  MutexLock lock(mu_);
  timeline_on_ = true;
  timeline_start_ = NowMicros();
  timeline_.clear();
  weighted_bytes_micros_ = 0.0;
  last_event_micros_ = timeline_start_;
  int64_t total = 0;
  for (int64_t b : current_) {
    total += b;
  }
  last_total_ = total;
  RecordLocked(timeline_start_);
}

void MemoryTracker::StopTimeline() {
  MutexLock lock(mu_);
  RecordLocked(NowMicros());
  timeline_on_ = false;
}

std::vector<MemSnapshot> MemoryTracker::Timeline() const {
  MutexLock lock(mu_);
  return timeline_;
}

void MemoryTracker::Reset() {
  MutexLock lock(mu_);
  current_.fill(0);
  peak_.fill(0);
  peak_total_ = 0;
  timeline_on_ = false;
  timeline_.clear();
  weighted_bytes_micros_ = 0.0;
  last_total_ = 0;
}

void MemoryTracker::RecordLocked(int64_t now) {
  int64_t total = 0;
  for (int64_t b : current_) {
    total += b;
  }
  if (!timeline_on_) {
    return;
  }
  weighted_bytes_micros_ +=
      static_cast<double>(last_total_) * static_cast<double>(now - last_event_micros_);
  last_event_micros_ = now;
  last_total_ = total;
  MemSnapshot snap;
  snap.t_micros = now - timeline_start_;
  snap.bytes = current_;
  timeline_.push_back(snap);
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

}  // namespace prism

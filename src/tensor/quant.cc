#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace prism {

namespace {
// Signed 4-bit range: [-8, 7] stored biased by +8 into a nibble.
int8_t QuantizeValue(float v, float inv_scale) {
  const int q = static_cast<int>(std::lround(v * inv_scale));
  return static_cast<int8_t>(std::clamp(q, -8, 7));
}
}  // namespace

QuantizedMatrix QuantizedMatrix::Quantize(const float* w, size_t rows, size_t cols,
                                          size_t group_size, MemCategory category,
                                          MemoryTracker* tracker) {
  PRISM_CHECK_GT(group_size, 0u);
  PRISM_CHECK_EQ(cols % group_size, 0u);
  PRISM_CHECK_EQ(group_size % 2, 0u);
  QuantizedMatrix qm;
  qm.rows_ = rows;
  qm.cols_ = cols;
  qm.group_size_ = group_size;
  const size_t groups_per_row = cols / group_size;
  qm.scales_.resize(rows * groups_per_row);
  qm.packed_.resize(rows * cols / 2);

  for (size_t r = 0; r < rows; ++r) {
    const float* wr = w + r * cols;
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float* group = wr + g * group_size;
      float max_abs = 0.0f;
      for (size_t i = 0; i < group_size; ++i) {
        max_abs = std::max(max_abs, std::fabs(group[i]));
      }
      const float scale = max_abs > 0.0f ? max_abs / 7.0f : 1.0f;
      const float inv_scale = 1.0f / scale;
      qm.scales_[r * groups_per_row + g] = scale;
      for (size_t i = 0; i < group_size; i += 2) {
        const uint8_t lo = static_cast<uint8_t>(QuantizeValue(group[i], inv_scale) + 8);
        const uint8_t hi = static_cast<uint8_t>(QuantizeValue(group[i + 1], inv_scale) + 8);
        qm.packed_[(r * cols + g * group_size + i) / 2] =
            static_cast<uint8_t>(lo | (hi << 4));
      }
    }
  }
  qm.claim_ = MemClaim(tracker, category, static_cast<int64_t>(qm.ByteSize()));
  return qm;
}

void QuantizedMatrix::Dequantize(float* out) const {
  const size_t groups_per_row = cols_ / group_size_;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float scale = scales_[r * groups_per_row + g];
      for (size_t i = 0; i < group_size_; i += 2) {
        const uint8_t byte = packed_[(r * cols_ + g * group_size_ + i) / 2];
        out[r * cols_ + g * group_size_ + i] =
            scale * static_cast<float>(static_cast<int>(byte & 0x0F) - 8);
        out[r * cols_ + g * group_size_ + i + 1] =
            scale * static_cast<float>(static_cast<int>(byte >> 4) - 8);
      }
    }
  }
}

void QuantMatrixView::MatMulTransB(const float* a, size_t m, float* c) const {
  const size_t groups_per_row = cols / group_size;
  // Dequantise one weight row at a time into a strip, then dot against every
  // input row. Row reuse across m amortises the unpack cost.
  std::vector<float> wrow(cols);
  for (size_t j = 0; j < rows; ++j) {
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float scale = scales[j * groups_per_row + g];
      for (size_t i = 0; i < group_size; i += 2) {
        const uint8_t byte = packed[(j * cols + g * group_size + i) / 2];
        wrow[g * group_size + i] = scale * static_cast<float>(static_cast<int>(byte & 0x0F) - 8);
        wrow[g * group_size + i + 1] = scale * static_cast<float>(static_cast<int>(byte >> 4) - 8);
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * cols;
      float acc = 0.0f;
      for (size_t k = 0; k < cols; ++k) {
        acc += arow[k] * wrow[k];
      }
      c[i * rows + j] = acc;
    }
  }
}

void QuantizedMatrix::MatMulTransB(const float* a, size_t m, float* c) const {
  QuantMatrixView view{packed_.data(), scales_.data(), rows_, cols_, group_size_};
  view.MatMulTransB(a, m, c);
}

size_t QuantizedMatrix::SerializedSize() const {
  return packed_.size() + scales_.size() * sizeof(float);
}

void QuantizedMatrix::SerializeTo(uint8_t* out) const {
  std::memcpy(out, packed_.data(), packed_.size());
  std::memcpy(out + packed_.size(), scales_.data(), scales_.size() * sizeof(float));
}

QuantizedMatrix QuantizedMatrix::Deserialize(const uint8_t* in, size_t rows, size_t cols,
                                             size_t group_size, MemCategory category,
                                             MemoryTracker* tracker) {
  QuantizedMatrix qm;
  qm.rows_ = rows;
  qm.cols_ = cols;
  qm.group_size_ = group_size;
  qm.packed_.resize(rows * cols / 2);
  qm.scales_.resize(rows * (cols / group_size));
  std::memcpy(qm.packed_.data(), in, qm.packed_.size());
  std::memcpy(qm.scales_.data(), in + qm.packed_.size(), qm.scales_.size() * sizeof(float));
  qm.claim_ = MemClaim(tracker, category, static_cast<int64_t>(qm.ByteSize()));
  return qm;
}

float QuantizedMatrix::MaxScale() const {
  float max_scale = 0.0f;
  for (float s : scales_) {
    max_scale = std::max(max_scale, s);
  }
  return max_scale;
}

}  // namespace prism

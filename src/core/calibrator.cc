#include "src/core/calibrator.h"

#include "src/common/check.h"
#include "src/data/metrics.h"

namespace prism {

namespace {

double MeasureAgreement(PrismEngine* engine, const std::vector<RerankRequest>& sample,
                        const std::vector<RerankResult>& references) {
  double total = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const RerankResult result = engine->Rerank(sample[i]);
    total += TopKOverlap(result.topk, references[i].topk, sample[i].k);
  }
  return total / static_cast<double>(sample.size());
}

}  // namespace

CalibrationResult CalibrateThreshold(PrismEngine* engine, Runner* reference,
                                     const std::vector<RerankRequest>& sample,
                                     const CalibrationOptions& options) {
  PRISM_CHECK(!sample.empty());
  // Ground truth: full inference on every sampled request (the paper does
  // this re-execution when the device is idle).
  std::vector<RerankResult> references;
  references.reserve(sample.size());
  for (const RerankRequest& request : sample) {
    references.push_back(reference->Rerank(request));
  }

  CalibrationResult result;
  float lo = options.threshold_lo;   // Aggressive end (may miss the target).
  float hi = options.threshold_hi;   // Conservative end (assumed to pass).
  double hi_precision = 1.0;

  // If even the aggressive end meets the target, take it outright.
  engine->set_dispersion_threshold(lo);
  double lo_precision = MeasureAgreement(engine, sample, references);
  ++result.evaluations;
  if (lo_precision >= options.target_precision) {
    result.threshold = lo;
    result.achieved_precision = lo_precision;
    return result;
  }

  for (int i = 0; i < options.iterations; ++i) {
    const float mid = 0.5f * (lo + hi);
    engine->set_dispersion_threshold(mid);
    const double precision = MeasureAgreement(engine, sample, references);
    ++result.evaluations;
    if (precision >= options.target_precision) {
      hi = mid;  // Passing: try to prune more aggressively.
      hi_precision = precision;
    } else {
      lo = mid;  // Failing: back off toward conservative.
    }
  }
  result.threshold = hi;
  result.achieved_precision = hi_precision;
  engine->set_dispersion_threshold(hi);
  return result;
}

}  // namespace prism

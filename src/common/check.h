// Lightweight assertion macros used throughout the PRISM codebase.
//
// These are *always on* (not compiled out in release builds): the library is a
// research system where a silent invariant violation costs far more than the
// nanoseconds of a predictable branch. On failure the process aborts with the
// failing expression and location.
#ifndef PRISM_SRC_COMMON_CHECK_H_
#define PRISM_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace prism {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "PRISM_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace prism

#define PRISM_CHECK(expr)                                     \
  do {                                                        \
    if (!(expr)) {                                            \
      ::prism::CheckFailed(#expr, __FILE__, __LINE__, "");    \
    }                                                         \
  } while (false)

#define PRISM_CHECK_MSG(expr, msg)                            \
  do {                                                        \
    if (!(expr)) {                                            \
      ::prism::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                         \
  } while (false)

#define PRISM_CHECK_EQ(a, b) PRISM_CHECK((a) == (b))
#define PRISM_CHECK_NE(a, b) PRISM_CHECK((a) != (b))
#define PRISM_CHECK_LT(a, b) PRISM_CHECK((a) < (b))
#define PRISM_CHECK_LE(a, b) PRISM_CHECK((a) <= (b))
#define PRISM_CHECK_GT(a, b) PRISM_CHECK((a) > (b))
#define PRISM_CHECK_GE(a, b) PRISM_CHECK((a) >= (b))

#endif  // PRISM_SRC_COMMON_CHECK_H_

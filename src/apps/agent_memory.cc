#include "src/apps/agent_memory.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/common/zipf.h"
#include "src/model/pair_encoder.h"
#include "src/retrieval/bm25.h"

namespace prism {

namespace {

SimLlmConfig VlmConfig() {
  // 7B VLM served on A800s: fast server-side generation, but each decision
  // still costs a network + prefill + decode round trip.
  SimLlmConfig config;
  config.prefill_tokens_per_sec = 2500.0;
  config.decode_tokens_per_sec = 60.0;
  return config;
}

}  // namespace

AgentWorkloadProfile VideoWorkload() {
  AgentWorkloadProfile p;
  p.name = "video";
  p.n_tasks = 6;
  p.steps_per_task = 4;
  p.memory_entries = 48;
  p.env_step_ms = 280.0;
  p.text = DatasetByName("lotte");
  p.text.doc_terms = 18;
  p.text.query_terms = 10;
  return p;
}

AgentWorkloadProfile CommunityWorkload() {
  AgentWorkloadProfile p;
  p.name = "community";
  p.n_tasks = 6;
  p.steps_per_task = 5;
  p.memory_entries = 64;
  p.env_step_ms = 320.0;
  p.text = DatasetByName("beir-cqadupstack");
  p.text.doc_terms = 20;
  p.text.query_terms = 10;
  // Community tasks are more ambiguous: noisier relevance, smaller gaps.
  p.text.grade_noise = 0.16;
  p.text.grade_gap = 0.34;
  return p;
}

AgentMemoryApp::AgentMemoryApp(AgentWorkloadProfile profile, const ModelConfig& model,
                               uint64_t seed, Clock* clock)
    : profile_(std::move(profile)),
      seed_(seed),
      clock_(ResolveClock(clock)),
      vlm_(VlmConfig(), &MemoryTracker::Global(), clock_) {
  const ZipfSampler zipf(model.vocab_size - kFirstWordToken, profile_.text.vocab_skew);
  Rng rng(MixSeed(seed, 0xA6));
  auto draw = [&](size_t n) {
    std::vector<uint32_t> tokens;
    tokens.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tokens.push_back(kFirstWordToken + static_cast<uint32_t>(zipf.Sample(rng)));
    }
    return tokens;
  };

  // One canonical description per task type; memory holds paraphrases (high
  // token overlap) of each type plus unrelated distractors.
  std::vector<std::vector<uint32_t>> type_desc;
  for (size_t t = 0; t < profile_.n_tasks; ++t) {
    type_desc.push_back(draw(profile_.text.query_terms));
    Trajectory task;
    task.description = type_desc.back();
    task.task_type = t;
    tasks_.push_back(std::move(task));
  }
  const size_t per_type = std::max<size_t>(2, profile_.memory_entries / (2 * profile_.n_tasks));
  for (size_t t = 0; t < profile_.n_tasks; ++t) {
    for (size_t e = 0; e < per_type; ++e) {
      Trajectory traj;
      traj.task_type = t;
      traj.description = draw(profile_.text.doc_terms);
      // ~60% of tokens copied from the canonical description.
      const size_t overlap = traj.description.size() * 3 / 5;
      for (size_t i = 0; i < overlap; ++i) {
        traj.description[rng.NextBelow(traj.description.size())] =
            type_desc[t][rng.NextBelow(type_desc[t].size())];
      }
      memory_.push_back(std::move(traj));
    }
  }
  while (memory_.size() < profile_.memory_entries) {
    Trajectory traj;
    traj.task_type = SIZE_MAX;  // Distractor.
    traj.description = draw(profile_.text.doc_terms);
    memory_.push_back(std::move(traj));
  }
  // Retrieval index over memory descriptions. Built once: memory is
  // immutable for the app's lifetime, and a shared read-only index is what
  // lets concurrent clients replay tasks without synchronization.
  for (const Trajectory& traj : memory_) {
    index_.Add(traj.description);
  }
}

AgentTaskResult AgentMemoryApp::RunTask(size_t task_idx, Runner* runner) const {
  PRISM_CHECK_LT(task_idx, tasks_.size());
  const Trajectory& task = tasks_[task_idx];
  AgentTaskResult result;
  const WallTimer task_timer;
  for (size_t step = 0; step < profile_.steps_per_task; ++step) {
    if (runner == nullptr) {
      // Memory disabled: every step is a VLM decision.
      const WallTimer timer;
      vlm_.Generate(profile_.vlm_prompt_tokens, profile_.vlm_new_tokens);
      result.inference_ms += timer.ElapsedMillis();
      result.picks.push_back(SIZE_MAX);
    } else {
      const WallTimer timer;
      std::vector<RetrievalHit> hits = index_.Search(task.description, profile_.candidates);
      RerankRequest request;
      request.query = task.description;
      request.k = 1;
      std::vector<size_t> candidate_ids;
      for (const RetrievalHit& hit : hits) {
        const Trajectory& traj = memory_[hit.doc_id];
        candidate_ids.push_back(hit.doc_id);
        request.docs.push_back(traj.description);
        const float grade = traj.task_type == task.task_type ? 0.85f : 0.15f;
        Rng noise(MixSeed(seed_, MixSeed(hit.doc_id, task.task_type + step)));
        const double r = grade + profile_.text.grade_noise * noise.NextGaussian();
        request.planted_r.push_back(static_cast<float>(std::clamp(r, 0.0, 1.0)));
      }
      const RerankResult reranked = runner->Rerank(request);
      result.rerank_ms += timer.ElapsedMillis();
      result.rerank_ok = result.rerank_ok && reranked.status.ok();
      const bool have_pick = !reranked.topk.empty();
      const Trajectory* pick =
          have_pick ? &memory_[candidate_ids[reranked.topk[0]]] : nullptr;
      result.picks.push_back(have_pick ? candidate_ids[reranked.topk[0]] : SIZE_MAX);
      if (pick != nullptr && pick->task_type == task.task_type) {
        // Cache hit: replay the cached action (env step only, below).
      } else if (pick != nullptr && pick->task_type != SIZE_MAX &&
                 pick->task_type != task.task_type) {
        result.success = false;  // Replayed a wrong trajectory.
      } else {
        // No usable trajectory (including a shed rerank): fall back to the
        // VLM.
        const WallTimer vlm_timer;
        vlm_.Generate(profile_.vlm_prompt_tokens, profile_.vlm_new_tokens);
        result.inference_ms += vlm_timer.ElapsedMillis();
      }
    }
    // Environment action (UI click etc.) — charged through the Clock seam,
    // so a SimClock run models the step without stalling the host.
    {
      const double env_start_ms = clock_->NowMs();
      MemClaim env_claim(&MemoryTracker::Global(), MemCategory::kScratch, 600 * 1024);
      clock_->SleepFor(profile_.env_step_ms);
      result.env_ms += clock_->NowMs() - env_start_ms;
    }
  }
  result.task_ms = task_timer.ElapsedMillis();
  return result;
}

AgentRunResult AgentMemoryApp::Run(Runner* runner) const {
  AgentRunResult result;
  size_t successes = 0;
  double total_ms = 0.0;
  for (size_t t = 0; t < tasks_.size(); ++t) {
    const AgentTaskResult task = RunTask(t, runner);
    successes += task.success ? 1 : 0;
    total_ms += task.task_ms;
    result.rerank_ms += task.rerank_ms;
    result.inference_ms += task.inference_ms;
    result.env_ms += task.env_ms;
  }
  const auto n = static_cast<double>(tasks_.size());
  result.avg_task_latency_ms = total_ms / n;
  result.success_rate = static_cast<double>(successes) / n;
  result.rerank_ms /= n;
  result.inference_ms /= n;
  result.env_ms /= n;
  return result;
}

}  // namespace prism

// Supporting kernel microbenchmarks (google-benchmark): GEMM, dequantising
// GEMM, softmax, RMSNorm, 1-D k-means, BM25 — the primitives whose costs set
// the compute side of the overlap window.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/core/cluster.h"
#include "src/retrieval/bm25.h"
#include "src/tensor/ops.h"
#include "src/tensor/quant.h"

namespace prism {
namespace {

Tensor RandomTensor(size_t rows, size_t cols, uint64_t seed, MemoryTracker* tracker) {
  Tensor t(rows, cols, MemCategory::kScratch, tracker);
  Rng rng(seed);
  for (float& v : t.flat()) {
    v = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

void BM_MatMulTransB(benchmark::State& state) {
  MemoryTracker tracker;
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t d = 96;
  const Tensor a = RandomTensor(m, d, 1, &tracker);
  const Tensor w = RandomTensor(d, d, 2, &tracker);
  Tensor c(m, d, MemCategory::kScratch, &tracker);
  for (auto _ : state) {
    MatMulTransB(a, w, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * m * d * d));
}
BENCHMARK(BM_MatMulTransB)->Arg(64)->Arg(256)->Arg(1024);

void BM_QuantMatMulTransB(benchmark::State& state) {
  MemoryTracker tracker;
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t d = 96;
  const Tensor a = RandomTensor(m, d, 3, &tracker);
  const Tensor w = RandomTensor(d, d, 4, &tracker);
  const QuantizedMatrix qw =
      QuantizedMatrix::Quantize(w.data(), d, d, 32, MemCategory::kScratch, &tracker);
  std::vector<float> c(m * d);
  for (auto _ : state) {
    qw.MatMulTransB(a.data(), m, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * m * d * d));
}
BENCHMARK(BM_QuantMatMulTransB)->Arg(64)->Arg(256)->Arg(1024);

void BM_SoftmaxRow(benchmark::State& state) {
  std::vector<float> row(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (float& v : row) {
    v = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    SoftmaxRowInPlace(row);
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(BM_SoftmaxRow)->Arg(64)->Arg(512);

void BM_RmsNorm(benchmark::State& state) {
  MemoryTracker tracker;
  Tensor t = RandomTensor(static_cast<size_t>(state.range(0)), 96, 6, &tracker);
  const std::vector<float> gain(96, 1.0f);
  for (auto _ : state) {
    RmsNormInPlace(&t, gain);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_RmsNorm)->Arg(64)->Arg(1024);

void BM_ClusterScores(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> scores(static_cast<size_t>(state.range(0)));
  for (float& s : scores) {
    s = static_cast<float>(rng.NextDouble());
  }
  uint64_t seed = 0;
  for (auto _ : state) {
    const Clustering c = ClusterScores(scores, 4, seed++);
    benchmark::DoNotOptimize(c.assignment.data());
  }
}
BENCHMARK(BM_ClusterScores)->Arg(20)->Arg(60);

void BM_Bm25Search(benchmark::State& state) {
  Bm25Index index;
  Rng rng(8);
  for (int d = 0; d < 1000; ++d) {
    std::vector<uint32_t> doc;
    for (int t = 0; t < 30; ++t) {
      doc.push_back(static_cast<uint32_t>(rng.NextBelow(5000)));
    }
    index.Add(doc);
  }
  std::vector<uint32_t> query;
  for (int t = 0; t < 8; ++t) {
    query.push_back(static_cast<uint32_t>(rng.NextBelow(5000)));
  }
  for (auto _ : state) {
    const auto hits = index.Search(query, 10);
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_Bm25Search);

}  // namespace
}  // namespace prism

BENCHMARK_MAIN();

// Dense row-major float tensor with memory-tracker accounting.
//
// All activation/weight/hidden-state buffers in the runtime are Tensors so
// that the MemoryTracker sees every byte the paper's memory figures plot.
#ifndef PRISM_SRC_TENSOR_TENSOR_H_
#define PRISM_SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/memory_tracker.h"

namespace prism {

class Tensor {
 public:
  Tensor() = default;

  // Allocates rows*cols floats, zero-initialised, registered under `category`
  // with `tracker` (defaults to the global tracker).
  Tensor(size_t rows, size_t cols, MemCategory category = MemCategory::kActivations,
         MemoryTracker* tracker = &MemoryTracker::Global())
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    claim_ = MemClaim(tracker, category, static_cast<int64_t>(ByteSize()));
  }

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  // Deep copy under the given category.
  Tensor Clone(MemCategory category = MemCategory::kActivations,
               MemoryTracker* tracker = &MemoryTracker::Global()) const {
    Tensor out(rows_, cols_, category, tracker);
    out.data_ = data_;
    return out;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  size_t ByteSize() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(size_t r, size_t c) {
    PRISM_CHECK_LT(r, rows_);
    PRISM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    PRISM_CHECK_LT(r, rows_);
    PRISM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(size_t r) {
    PRISM_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(size_t r) const {
    PRISM_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void Fill(float value) {
    for (float& v : data_) {
      v = value;
    }
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  MemClaim claim_;
};

}  // namespace prism

#endif  // PRISM_SRC_TENSOR_TENSOR_H_

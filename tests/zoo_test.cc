// Zoo-wide property sweep: every model architecture in the paper's Table 1,
// shrunk to test scale (layer count / hidden reduced, architecture and ratios
// preserved), must satisfy PRISM's core guarantees end to end.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/metrics.h"
#include "src/model/layer.h"
#include "tests/test_util.h"

namespace prism {
namespace {

// Miniature version of a zoo config: same architecture and shape ratios, a
// quarter of the layers, tiny dims — fast enough for unit tests.
ModelConfig Miniature(const ModelConfig& full) {
  ModelConfig mini = full;
  mini.name = "mini-" + full.name;
  mini.n_layers = std::max<size_t>(3, full.n_layers / 8);
  mini.hidden = 32;
  mini.ffn = full.arch == ModelArch::kDecoderOnly ? 96 : 128;
  mini.n_heads = 2;
  mini.vocab_size = 512;
  mini.max_seq = 32;
  mini.quant_group = 16;
  return mini;
}

class ZooPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ZooPropertyTest, PrismMatchesFullInferenceShape) {
  const ModelConfig config = Miniature(ModelZoo()[GetParam()]);
  const std::string ckpt = TestCheckpoint(config);
  const RerankRequest request = TestRequest(config, 14, 4);

  MemoryTracker t_full;
  MemoryTracker t_prism;
  PrismOptions full_options;
  full_options.device = FastDevice();
  full_options.pruning = false;
  PrismEngine full(config, ckpt, full_options, &t_full);
  PrismOptions prism_options;
  prism_options.device = FastDevice();
  prism_options.dispersion_threshold = 0.25f;
  PrismEngine prism(config, ckpt, prism_options, &t_prism);

  const RerankResult r_full = full.Rerank(request);
  const RerankResult r_prism = prism.Rerank(request);

  // Work never exceeds full inference; precision stays close.
  EXPECT_LE(r_prism.stats.candidate_layers, r_full.stats.candidate_layers);
  EXPECT_GE(TopKOverlap(r_prism.topk, r_full.topk, request.k), 0.5);

  // Streaming bound: at most two layers resident.
  EXPECT_LE(t_prism.PeakBytes(MemCategory::kWeights),
            static_cast<int64_t>(2 * LayerBlobBytes(config, Precision::kFp32)));

  // Scores are valid probabilities wherever computed.
  for (float s : r_prism.scores) {
    if (!std::isnan(s)) {
      EXPECT_GT(s, 0.0f);
      EXPECT_LT(s, 1.0f);
    }
  }
}

TEST_P(ZooPropertyTest, QuantizedEngineAgreesWithF32) {
  const ModelConfig config = Miniature(ModelZoo()[GetParam()]);
  const std::string f32 = TestCheckpoint(config);
  const std::string q4 = TestCheckpoint(config, Precision::kW4);
  const RerankRequest request = TestRequest(config, 10, 3);

  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions options;
  options.device = FastDevice();
  options.pruning = false;
  PrismEngine a(config, f32, options, &t1);
  PrismOptions qoptions = options;
  qoptions.precision = Precision::kW4;
  PrismEngine b(config, q4, qoptions, &t2);
  const RerankResult ra = a.Rerank(request);
  const RerankResult rb = b.Rerank(request);
  for (size_t i = 0; i < ra.scores.size(); ++i) {
    EXPECT_NEAR(ra.scores[i], rb.scores[i], 0.2f) << config.name << " candidate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooPropertyTest, ::testing::Range<size_t>(0, 5));

}  // namespace
}  // namespace prism

#include "src/core/service_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace prism {

namespace {

class RoundRobinBalancer : public LoadBalancer {
 public:
  size_t Pick(const RerankRequest& /*request*/, uint64_t /*query_hash*/,
              std::span<const size_t> inflight) override {
    return next_.fetch_add(1, std::memory_order_relaxed) % inflight.size();
  }
  std::string name() const override { return "round_robin"; }

 private:
  std::atomic<size_t> next_{0};
};

class LeastLoadedBalancer : public LoadBalancer {
 public:
  size_t Pick(const RerankRequest& /*request*/, uint64_t /*query_hash*/,
              std::span<const size_t> inflight) override {
    size_t best = 0;
    for (size_t i = 1; i < inflight.size(); ++i) {
      if (inflight[i] < inflight[best]) {
        best = i;
      }
    }
    return best;  // Ties break toward the lowest index.
  }
  std::string name() const override { return "least_loaded"; }
};

class QueryAffinityBalancer : public LoadBalancer {
 public:
  size_t Pick(const RerankRequest& /*request*/, uint64_t query_hash,
              std::span<const size_t> inflight) override {
    return static_cast<size_t>(query_hash % inflight.size());
  }
  std::string name() const override { return "query_affinity"; }
};

}  // namespace

const char* LoadBalancePolicyName(LoadBalancePolicy policy) {
  switch (policy) {
    case LoadBalancePolicy::kRoundRobin:
      return "round_robin";
    case LoadBalancePolicy::kLeastLoaded:
      return "least_loaded";
    case LoadBalancePolicy::kQueryAffinity:
      return "query_affinity";
  }
  return "unknown";
}

LoadBalancePolicy LoadBalancePolicyByName(const std::string& name) {
  if (name == "round_robin") {
    return LoadBalancePolicy::kRoundRobin;
  }
  if (name == "least_loaded") {
    return LoadBalancePolicy::kLeastLoaded;
  }
  if (name == "query_affinity") {
    return LoadBalancePolicy::kQueryAffinity;
  }
  PRISM_CHECK_MSG(false, ("unknown load-balance policy: " + name).c_str());
  return LoadBalancePolicy::kRoundRobin;
}

std::unique_ptr<LoadBalancer> MakeLoadBalancer(LoadBalancePolicy policy) {
  switch (policy) {
    case LoadBalancePolicy::kRoundRobin:
      return std::make_unique<RoundRobinBalancer>();
    case LoadBalancePolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedBalancer>();
    case LoadBalancePolicy::kQueryAffinity:
      return std::make_unique<QueryAffinityBalancer>();
  }
  PRISM_CHECK_MSG(false, "unknown load-balance policy");
  return nullptr;
}

uint64_t QueryHash(const RerankRequest& request) {
  uint64_t hash = 0x9E3779B97F4A7C15ULL;
  for (uint32_t token : request.query) {
    hash = MixSeed(hash, token);
  }
  return hash;
}

ServicePool::ServicePool(const ModelConfig& config, const std::string& checkpoint_path,
                         ServicePoolOptions options, MemoryTracker* tracker)
    : options_(options) {
  PRISM_CHECK_GT(options_.pool_size, 0u);
  if (options_.share_embed_cache && options_.service.engine.embed_cache) {
    // One pool-wide embedding cache with its own reader on the checkpoint;
    // every replica's engine is pointed at it instead of building a private
    // one. Budgeted like a single replica's cache would be — the sharing
    // win is N-1 caches of memory plus cross-replica warmth.
    auto reader = BlobFileReader::Open(checkpoint_path, options_.service.engine.device.ssd);
    PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
    shared_embed_reader_ = std::move(reader).value();
    const auto rows = static_cast<size_t>(
        std::max(1.0, options_.service.engine.embed_cache_fraction *
                          static_cast<double>(config.vocab_size)));
    shared_embed_cache_ =
        std::make_unique<EmbeddingCache>(config, shared_embed_reader_.get(), rows, tracker);
    options_.service.engine.shared_embed_cache = shared_embed_cache_.get();
  }
  replicas_.reserve(options_.pool_size);
  for (size_t i = 0; i < options_.pool_size; ++i) {
    replicas_.push_back(
        std::make_unique<RerankService>(config, checkpoint_path, options_.service, tracker));
  }
  balancer_ = MakeLoadBalancer(options_.balancer);
  inflight_ = std::make_unique<std::atomic<size_t>[]>(replicas_.size());
  admitted_ = std::make_unique<std::atomic<size_t>[]>(replicas_.size());
}

ServicePool::ServicePool(std::vector<std::unique_ptr<RerankService>> replicas,
                         ServicePoolOptions options)
    : options_(options), replicas_(std::move(replicas)) {
  PRISM_CHECK_GT(replicas_.size(), 0u);
  options_.pool_size = replicas_.size();
  balancer_ = MakeLoadBalancer(options_.balancer);
  inflight_ = std::make_unique<std::atomic<size_t>[]>(replicas_.size());
  admitted_ = std::make_unique<std::atomic<size_t>[]>(replicas_.size());
}

std::string ServicePool::name() const {
  return "pool:" + balancer_->name() + "x" + std::to_string(replicas_.size());
}

RerankResult ServicePool::Rerank(const RerankRequest& request) {
  return RerankHashed(request, QueryHash(request));
}

RerankResult ServicePool::RerankHashed(const RerankRequest& request, uint64_t query_hash) {
  // Snapshot in-flight counts for the balancer; slightly stale is fine (the
  // point is a cheap wait-free read on the hot path). Small-buffer the
  // snapshot: pools are a handful of replicas, and a per-request heap
  // allocation here is measurable at high client-thread counts.
  constexpr size_t kStackReplicas = 16;
  size_t stack_inflight[kStackReplicas];
  std::vector<size_t> heap_inflight;
  size_t* inflight = stack_inflight;
  if (replicas_.size() > kStackReplicas) {
    heap_inflight.resize(replicas_.size());
    inflight = heap_inflight.data();
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    inflight[i] = inflight_[i].load(std::memory_order_relaxed);
  }
  const size_t pick =
      balancer_->Pick(request, query_hash, std::span<const size_t>(inflight, replicas_.size()));
  PRISM_CHECK_LT(pick, replicas_.size());
  inflight_[pick].fetch_add(1, std::memory_order_relaxed);
  admitted_[pick].fetch_add(1, std::memory_order_relaxed);
  RerankResult result = replicas_[pick]->Rerank(request);
  inflight_[pick].fetch_sub(1, std::memory_order_relaxed);
  return result;
}

PoolStats ServicePool::stats() const {
  PoolStats stats;
  stats.replica_requests.resize(replicas_.size());
  stats.replica_inflight.resize(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    stats.aggregate.Merge(replicas_[i]->stats());
    stats.replica_requests[i] = admitted_[i].load(std::memory_order_relaxed);
    stats.replica_inflight[i] = inflight_[i].load(std::memory_order_relaxed);
  }
  if (shared_embed_cache_ != nullptr) {
    // Each replica reports embed stats only for a cache it owns, so the
    // shared cache is counted exactly once here.
    const EmbeddingCacheStats embed = shared_embed_cache_->stats();
    stats.aggregate.embed_hits += embed.hits;
    stats.aggregate.embed_misses += embed.misses;
    stats.aggregate.embed_miss_bytes += embed.miss_bytes;
  }
  return stats;
}

}  // namespace prism

// Zipfian sampler.
//
// Natural-language token frequencies are Zipf-distributed [Zipf 1949]; the
// paper's embedding-table cache (§4.4) relies on this skew for its hit rate.
// The synthetic tokenizer draws token ids from this sampler so that cache
// behaviour matches the real workload's shape.
#ifndef PRISM_SRC_COMMON_ZIPF_H_
#define PRISM_SRC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace prism {

// Samples ranks in [0, n) with P(rank = k) ∝ 1 / (k + 1)^s. Uses an inverse-CDF
// table (O(n) memory, O(log n) per sample) — fine for vocabulary-sized n.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }
  double skew() const { return skew_; }

 private:
  std::vector<double> cdf_;
  double skew_;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_ZIPF_H_

// Ranking-quality metrics used across the evaluation.
#ifndef PRISM_SRC_DATA_METRICS_H_
#define PRISM_SRC_DATA_METRICS_H_

#include <cstddef>
#include <vector>

namespace prism {

// Precision@K as the paper defines it (§6.1): |topk ∩ relevant| / K, except
// when |relevant| < K, where the denominator becomes |relevant|.
double PrecisionAtK(const std::vector<size_t>& topk, const std::vector<size_t>& relevant,
                    size_t k);

// Fraction of `a`'s first k entries also present in `b`'s first k entries
// (order-insensitive top-K agreement; used to compare PRISM vs full inference).
double TopKOverlap(const std::vector<size_t>& a, const std::vector<size_t>& b, size_t k);

// Goodman and Kruskal's γ between two score vectors over the same items:
// γ = (Nc − Nd) / (Nc + Nd) over all item pairs, ties skipped (§3.1).
double GoodmanKruskalGamma(const std::vector<float>& scores, const std::vector<float>& final_scores);

// γ restricted to item pairs whose cluster ids differ (the paper's
// "cluster γ", Fig 2(b)).
double ClusterGamma(const std::vector<float>& scores, const std::vector<float>& final_scores,
                    const std::vector<int>& clusters);

// Kendall's τ-a between two score vectors (pairs with ties count as
// discordant-neutral, i.e. excluded from numerator only).
double KendallTau(const std::vector<float>& a, const std::vector<float>& b);

// NDCG@K with graded relevance (`grades[i]` is item i's gain). Standard
// log2-discounted cumulative gain normalised by the ideal ordering.
double NdcgAtK(const std::vector<size_t>& ranking, const std::vector<float>& grades, size_t k);

// Coefficient of variation |std/mean| of a score vector (§4.1).
double CoefficientOfVariation(const std::vector<float>& scores);

// Indices of the k largest scores, best first (deterministic: ties broken by
// lower index).
std::vector<size_t> TopKIndices(const std::vector<float>& scores, size_t k);

}  // namespace prism

#endif  // PRISM_SRC_DATA_METRICS_H_

// Serving throughput: serial vs. batching scheduler under concurrent load.
//
// N client threads hammer one RerankService; we compare the default
// SerialScheduler (max_inflight=1, the paper's single-request deployment)
// against the BatchScheduler (max_inflight>=4), which coalesces concurrent
// requests into one engine pass — each streamed layer is fetched once for
// every in-flight request and per-request compute fans out across cores.
// Reported: requests/sec plus client-observed p50/p99 latency (queueing
// included). Results are bit-identical across schedulers, so the comparison
// is pure throughput.
//
// The default workload sits in the regime PRISM targets (few candidates per
// request, weights streamed from SSD), where layer-load amortisation alone
// beats serial scheduling even on a single core. Larger --candidates shift
// the bottleneck to per-layer compute; the batching win then comes from the
// compute pool and needs a multi-core host to show up.
//
// Flags: --model=Qwen3-Reranker-0.6B --device=nvidia|apple --clients=8
//        --requests=48 --candidates=4 --k=2 --max_inflight=4
//        --compute_threads=0 (0 = max(cores, max_inflight)) --threshold=0.40
#include <cstdio>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/service.h"

namespace prism {
namespace {

struct LoadRun {
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<std::vector<size_t>> topks;
};

LoadRun RunLoad(RerankService* service, const std::vector<BenchCase>& cases, size_t clients,
                size_t total_requests) {
  std::vector<std::vector<size_t>> topks(total_requests);
  std::atomic<size_t> next{0};
  const WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < total_requests) {
        const RerankResult result = service->Rerank(cases[i % cases.size()].request);
        topks[i] = result.topk;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  LoadRun run;
  run.wall_seconds = wall.ElapsedSeconds();
  run.requests_per_sec = static_cast<double>(total_requests) / run.wall_seconds;
  const ServiceStats stats = service->stats();
  run.p50_ms = stats.P50LatencyMs();
  run.p99_ms = stats.P99LatencyMs();
  run.topks = std::move(topks);
  return run;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const ModelConfig model = ModelByName(flags.GetString("model", "Qwen3-Reranker-0.6B"));
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  const size_t total_requests = static_cast<size_t>(flags.GetInt("requests", 48));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 4));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 2));
  const size_t max_inflight = static_cast<size_t>(flags.GetInt("max_inflight", 4));
  const size_t compute_threads = static_cast<size_t>(flags.GetInt("compute_threads", 0));
  const float threshold = static_cast<float>(flags.GetDouble("threshold", kThresholdHigh));

  PrintHeader("Serving throughput — serial vs. batching scheduler (" + model.name + ", " +
              device.name + ", " + std::to_string(clients) + " clients, " +
              std::to_string(total_requests) + " requests of " + std::to_string(candidates) +
              " candidates)");

  const auto cases = MakeCases(model, "wikipedia", /*queries=*/8, candidates, k);
  const std::string checkpoint = EnsureCheckpoint(model, kBenchSeed);

  auto run_mode = [&](size_t inflight) {
    MemoryTracker::Global().Reset();
    ServiceOptions options;
    options.engine.device = device;
    options.engine.dispersion_threshold = threshold;
    options.max_inflight = inflight;
    options.compute_threads = compute_threads;
    RerankService service(model, checkpoint, options);
    return RunLoad(&service, cases, clients, total_requests);
  };

  const LoadRun serial = run_mode(1);
  const LoadRun batched = run_mode(max_inflight);

  std::printf("%-28s %10s %12s %10s %10s\n", "scheduler", "wall s", "req/s", "p50 ms",
              "p99 ms");
  std::printf("%-28s %10.2f %12.2f %10.2f %10.2f\n", "serial (max_inflight=1)",
              serial.wall_seconds, serial.requests_per_sec, serial.p50_ms, serial.p99_ms);
  const std::string batch_name = "batch (max_inflight=" + std::to_string(max_inflight) + ")";
  std::printf("%-28s %10.2f %12.2f %10.2f %10.2f\n", batch_name.c_str(), batched.wall_seconds,
              batched.requests_per_sec, batched.p50_ms, batched.p99_ms);
  std::printf("\nthroughput speedup: %.2fx\n",
              batched.requests_per_sec / serial.requests_per_sec);

  // Sanity: coalesced batching must not change any result.
  size_t mismatches = 0;
  for (size_t i = 0; i < serial.topks.size(); ++i) {
    if (serial.topks[i] != batched.topks[i]) {
      ++mismatches;
    }
  }
  std::printf("result mismatches vs serial: %zu (expected 0)\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

#include "src/core/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace prism {

RerankResult MakeShedResult(double deadline_ms, double waited_ms) {
  RerankResult result;
  result.status = Status::DeadlineExceeded(
      "request shed: waited " + std::to_string(waited_ms) + " ms against a " +
      std::to_string(deadline_ms) + " ms deadline");
  result.stats.latency_ms = waited_ms;
  // A shed request's entire life was queue wait — it never reached an
  // engine. All three schedulers shed through here (SerialScheduler's
  // inline acquisition path and the RequestQueue expiry path alike), so the
  // admission-latency accounting stays exact under overload.
  result.stats.queue_wait_ms = waited_ms;
  return result;
}

RerankResult SerialScheduler::Submit(const RerankRequest& request) {
  const double arrived_ms = clock_->NowMs();
  mu_.Lock();
  while (busy_) {
    cv_->Wait(mu_);
  }
  // The budget covers time spent queueing for the runner: if it ran out
  // while other requests held it, answer cheaply instead of running.
  const double waited_ms = clock_->NowMs() - arrived_ms;
  if (request.deadline_ms > 0.0 && waited_ms >= request.deadline_ms) {
    mu_.Unlock();
    cv_->NotifyOne();  // Hand the turn we were woken for to the next waiter.
    return MakeShedResult(request.deadline_ms, waited_ms);
  }
  busy_ = true;
  mu_.Unlock();
  RerankResult result = runner_->Rerank(request);
  result.stats.queue_wait_ms = waited_ms;
  mu_.Lock();
  busy_ = false;
  mu_.Unlock();
  cv_->NotifyOne();
  return result;
}

RequestQueue::RequestQueue(Clock* clock, bool lock_free, size_t ring_capacity)
    : clock_(ResolveClock(clock)),
      lock_free_(lock_free),
      cv_(clock_->MakeCondVar()),
      not_full_cv_(clock_->MakeCondVar()) {
  if (lock_free_) {
    size_t capacity = 2;  // At least 2 so the full-ring wait has slack.
    while (capacity < ring_capacity) {
      capacity <<= 1;
    }
    ring_ = std::make_unique<Slot[]>(capacity);
    ring_mask_ = capacity - 1;
    for (size_t i = 0; i < capacity; ++i) {
      ring_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
}

RequestQueue::~RequestQueue() = default;

std::future<RerankResult> RequestQueue::Push(const RerankRequest& request) {
  PRISM_CHECK_MSG(!closed_.load(std::memory_order_acquire), "Push after Close");
  return Stage(request);
}

std::future<RerankResult> RequestQueue::Stage(const RerankRequest& request) {
  // Stamp at arrival, before staging: the deadline countdown starts now
  // even if the ring is full and staging has to wait below.
  const double admitted_ms = clock_->NowMs();

  if (!lock_free_) {
    // Mutexed baseline: every producer serializes on mu_ (and against the
    // dispatcher's drain). This is the contention bench_contention measures
    // the ring against.
    std::future<RerankResult> future;
    {
      MutexLock lock(mu_);
      Pending pending;
      pending.request = &request;
      pending.ticket = enqueue_pos_.fetch_add(1, std::memory_order_relaxed);
      pending.priority = request.priority;
      pending.admitted_ms = admitted_ms;
      if (request.deadline_ms > 0.0) {
        pending.has_deadline = true;
        pending.deadline_at_ms = admitted_ms + request.deadline_ms;
      }
      future = pending.promise.get_future();
      staged_mutex_.push_back(std::move(pending));
      staged_count_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_->NotifyOne();
    return future;
  }

  // Lock-free staging: a CAS on the enqueue cursor claims a slot, and the
  // claimed position is the admission ticket. The dispatcher drains in
  // position order and stops at the first still-publishing slot, so a
  // claimed-but-unpublished entry can never be overtaken by a later ticket
  // — strict FIFO within a priority class survives without any lock.
  uint64_t pos;
  for (;;) {
    pos = enqueue_pos_.load(std::memory_order_relaxed);
    Slot& slot = ring_[pos & ring_mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<int64_t>(seq - pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      // Ring full: overload beyond the staging bound. Wait on the clock
      // seam for the dispatcher to drain — never a spin, which would hold a
      // SimClock's virtual time frozen (a runnable participant blocks every
      // advance) while the dispatcher sleeps on it.
      MutexLock lock(mu_);
      full_waiters_.fetch_add(1, std::memory_order_seq_cst);
      while (!closed_.load(std::memory_order_relaxed) &&
             enqueue_pos_.load(std::memory_order_relaxed) -
                     dequeue_published_.load(std::memory_order_seq_cst) >
                 ring_mask_) {
        not_full_cv_->Wait(mu_);
      }
      full_waiters_.fetch_sub(1, std::memory_order_relaxed);
      PRISM_CHECK_MSG(!closed_.load(std::memory_order_relaxed), "Push after Close");
    }
    // dif > 0: our cursor snapshot went stale under a racing claim; reload.
  }
  Slot& slot = ring_[pos & ring_mask_];
  slot.item.request = &request;
  slot.item.ticket = pos;
  slot.item.priority = request.priority;
  slot.item.tag = 0;  // Assigned at drain (see Pending::tag).
  slot.item.admitted_ms = admitted_ms;
  slot.item.has_deadline = request.deadline_ms > 0.0;
  slot.item.deadline_at_ms = slot.item.has_deadline ? admitted_ms + request.deadline_ms : 0.0;
  slot.item.promise = std::promise<RerankResult>();  // Fresh per slot reuse.
  std::future<RerankResult> future = slot.item.promise.get_future();
  slot.seq.store(pos + 1, std::memory_order_release);  // Publish.
  staged_count_.fetch_add(1, std::memory_order_seq_cst);
  if (dispatcher_sleeping_.load(std::memory_order_seq_cst)) {
    // The empty critical section orders this notify against the
    // dispatcher's predicate check: either it saw our staged count, or we
    // see its sleeping flag — never neither (both sides seq_cst). Under
    // load the flag is false and producers skip the mutex entirely.
    { MutexLock lock(mu_); }
    cv_->NotifyOne();
  }
  return future;
}

void RequestQueue::InsertOrdered(Pending pending) {
  // Insert before the first entry that outranks it, scanning from the back:
  // staging drains in ticket order, so the common single-priority case is
  // O(1), and equal priorities keep ticket (FIFO) order. Unlike the old
  // push-side insert, the scan must also compare tickets — drains from
  // different pops interleave with leftovers already ordered.
  auto pos = ordered_.end();
  while (pos != ordered_.begin()) {
    const Pending& prev = *std::prev(pos);
    if (prev.priority > pending.priority ||
        (prev.priority == pending.priority && prev.ticket < pending.ticket)) {
      break;
    }
    --pos;
  }
  ordered_.insert(pos, std::move(pending));
}

void RequestQueue::DrainRing(const std::atomic<uint64_t>* epoch) {
  const uint64_t tag = epoch != nullptr ? epoch->load(std::memory_order_relaxed) : 0;
  size_t drained = 0;
  for (;;) {
    Slot& slot = ring_[dequeue_pos_ & ring_mask_];
    if (slot.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) {
      break;  // Unpublished (or empty): stop, preserving ticket order.
    }
    Pending pending = std::move(slot.item);
    // Free the slot for its next lap.
    slot.seq.store(dequeue_pos_ + ring_mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    pending.tag = tag;
    InsertOrdered(std::move(pending));
    ++drained;
  }
  if (drained > 0) {
    dequeue_published_.store(dequeue_pos_, std::memory_order_seq_cst);
    staged_count_.fetch_sub(drained, std::memory_order_seq_cst);
    if (full_waiters_.load(std::memory_order_seq_cst) > 0) {
      { MutexLock lock(mu_); }
      not_full_cv_->NotifyAll();
    }
    ordered_count_.store(ordered_.size(), std::memory_order_relaxed);
  }
}

void RequestQueue::DrainStagedLocked(const std::atomic<uint64_t>* epoch) {
  // Mutexed baseline: the caller (DrainPass) holds mu_ across this drain and
  // the shed/take that follows — the original implementation's lock-hold
  // profile, where producers collide with the whole dispatch pass. Keep
  // it that way: it is the contention bench_contention measures against.
  const uint64_t tag = epoch != nullptr ? epoch->load(std::memory_order_relaxed) : 0;
  const size_t drained = staged_mutex_.size();
  if (drained > 0) {
    staged_count_.fetch_sub(drained, std::memory_order_seq_cst);
  }
  while (!staged_mutex_.empty()) {
    Pending pending = std::move(staged_mutex_.front());
    staged_mutex_.pop_front();
    pending.tag = tag;
    InsertOrdered(std::move(pending));
  }
  if (drained > 0) {
    ordered_count_.store(ordered_.size(), std::memory_order_relaxed);
  }
}

void RequestQueue::ShedExpired(std::vector<Pending>* shed) {
  // Shed every expired entry — wherever it sits in the order; a
  // low-priority request can expire behind higher classes.
  const double now_ms = clock_->NowMs();
  for (auto it = ordered_.begin(); it != ordered_.end();) {
    if (it->ExpiredAt(now_ms)) {
      shed->push_back(std::move(*it));
      it = ordered_.erase(it);
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  ordered_count_.store(ordered_.size(), std::memory_order_relaxed);
}

std::vector<RequestQueue::Pending> RequestQueue::Take(size_t max_batch) {
  std::vector<Pending> batch;
  const size_t take = std::min(max_batch, ordered_.size());
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(ordered_.front()));
    ordered_.pop_front();
  }
  ordered_count_.store(ordered_.size(), std::memory_order_relaxed);
  return batch;
}

namespace {

// An admission event: a pop handed out a non-empty batch. Dispatcher-only,
// and every pop drains all published staging before bumping, so an entry's
// drain-time tag counts exactly the admission events that preceded its
// visibility.
void BumpEpoch(std::atomic<uint64_t>* epoch, const std::vector<RequestQueue::Pending>& batch) {
  if (epoch != nullptr && !batch.empty()) {
    epoch->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::vector<RequestQueue::Pending> RequestQueue::DrainPass(size_t max_batch,
                                                           std::atomic<uint64_t>* epoch,
                                                           std::vector<Pending>* shed) {
  if (!lock_free_) {
    // Mutexed baseline: hold mu_ across drain+shed+take, the baseline's
    // lock-hold profile (see DrainStagedLocked).
    MutexLock lock(mu_);
    DrainStagedLocked(epoch);
    ShedExpired(shed);
    std::vector<Pending> batch = Take(max_batch);
    BumpEpoch(epoch, batch);
    return batch;
  }
  // Lock-free mode: nothing to lock, the whole pass is consumer-private.
  DrainRing(epoch);
  ShedExpired(shed);
  std::vector<Pending> batch = Take(max_batch);
  BumpEpoch(epoch, batch);
  return batch;
}

void RequestQueue::AnswerShed(std::vector<Pending> shed) {
  // Fulfil shed promises (set_value wakes the caller).
  for (Pending& pending : shed) {
    const double waited_ms = clock_->NowMs() - pending.admitted_ms;
    clock_->PreWake();
    pending.promise.set_value(MakeShedResult(pending.request->deadline_ms, waited_ms));
  }
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatch(size_t max_batch,
                                                          std::atomic<uint64_t>* epoch) {
  PRISM_CHECK_GT(max_batch, 0u);
  for (;;) {
    if (ordered_.empty()) {
      // Park until staging has work (or Close). The sleeping flag pairs
      // with the producers' post-publish check — both sides seq_cst, so
      // either a producer sees the flag and notifies under the mutex, or
      // this loop condition (evaluated under the same mutex before
      // sleeping) sees the staged count. No lost wakeup, and producers
      // under load never touch the mutex.
      MutexLock lock(mu_);
      dispatcher_sleeping_.store(true, std::memory_order_seq_cst);
      while (!closed_.load(std::memory_order_relaxed) && !HasStaged()) {
        cv_->Wait(mu_);
      }
      dispatcher_sleeping_.store(false, std::memory_order_relaxed);
    }
    // Let every producer active at this instant land its push before the
    // drain (a no-op on the wall clock): batch composition becomes a pure
    // function of the virtual arrival schedule, not host thread timing.
    clock_->YieldUntilQuiescent();
    std::vector<Pending> shed;
    std::vector<Pending> batch = DrainPass(max_batch, epoch, &shed);
    const bool drained_out = batch.empty() && ordered_.empty() && !HasStaged();
    AnswerShed(std::move(shed));
    if (!batch.empty()) {
      return batch;
    }
    if (drained_out && closed_.load(std::memory_order_acquire)) {
      return {};  // Closed and drained.
    }
    // Everything pending was shed; wait for real work (or Close).
  }
}

std::vector<RequestQueue::Pending> RequestQueue::TryPopBatch(size_t max_batch,
                                                             std::atomic<uint64_t>* epoch) {
  // Same quiescence yield as PopBatch: a carousel boundary admits every
  // request issued by this virtual instant, deterministically.
  clock_->YieldUntilQuiescent();
  std::vector<Pending> shed;
  std::vector<Pending> batch = DrainPass(max_batch, epoch, &shed);
  AnswerShed(std::move(shed));
  return batch;
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatchFor(size_t max_batch, double timeout_ms,
                                                             std::atomic<uint64_t>* epoch) {
  PRISM_CHECK_GT(max_batch, 0u);
  const double give_up_ms = clock_->NowMs() + timeout_ms;
  for (;;) {
    bool timed_out = false;
    if (ordered_.empty()) {
      MutexLock lock(mu_);
      dispatcher_sleeping_.store(true, std::memory_order_seq_cst);
      while (!closed_.load(std::memory_order_relaxed) && !HasStaged()) {
        if (!cv_->WaitUntil(mu_, give_up_ms)) {
          break;  // Deadline reached; re-check the condition below.
        }
      }
      timed_out = !closed_.load(std::memory_order_relaxed) && !HasStaged();
      dispatcher_sleeping_.store(false, std::memory_order_relaxed);
    }
    if (!timed_out) {
      clock_->YieldUntilQuiescent();
    }
    std::vector<Pending> shed;
    std::vector<Pending> batch = DrainPass(max_batch, epoch, &shed);
    AnswerShed(std::move(shed));
    if (!batch.empty() || timed_out) {
      return batch;
    }
    if (clock_->NowMs() >= give_up_ms) {
      return {};
    }
    // Woken by Close or everything shed; retry within the window.
    if (closed_.load(std::memory_order_acquire) && ordered_.empty() && !HasStaged()) {
      return {};
    }
  }
}

void RequestQueue::Close() {
  closed_.store(true, std::memory_order_seq_cst);
  // The empty critical section orders the store against any parked waiter's
  // predicate check, exactly like the producers' wake protocol.
  { MutexLock lock(mu_); }
  cv_->NotifyAll();
  not_full_cv_->NotifyAll();
}

size_t RequestQueue::size() const {
  return staged_count_.load(std::memory_order_relaxed) +
         ordered_count_.load(std::memory_order_relaxed);
}

size_t RequestQueue::shed_count() const { return shed_.load(std::memory_order_relaxed); }

BatchScheduler::BatchScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads,
                               Clock* clock, bool lock_free_admission)
    : runner_(runner),
      max_inflight_(max_inflight),
      clock_(ResolveClock(clock)),
      queue_(clock, lock_free_admission) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  if (compute_threads == 0) {
    // At least one thread per batch slot: requests spend much of their layer
    // time waiting on the (simulated) device, so oversubscribing a small core
    // count still overlaps those waits across the batch.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  // Announce the dispatcher before it exists: a SimClock must not advance
  // past tags scheduled "now" while the dispatcher thread is still starting.
  clock_->ExpectParticipants(1);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchScheduler::~BatchScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult BatchScheduler::Submit(const RerankRequest& request) {
  return AwaitFuture(clock_, queue_.Push(request));
}

void BatchScheduler::DispatchLoop() {
  // The dispatcher is a simulation participant: while it is runnable —
  // draining the queue, running a batch — virtual time stands still.
  const ClockMembership membership(clock_);
  for (;;) {
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    const double dispatched_ms = clock_->NowMs();
    std::vector<const RerankRequest*> requests;
    requests.reserve(batch.size());
    for (const RequestQueue::Pending& pending : batch) {
      requests.push_back(pending.request);
    }
    std::vector<RerankResult> results = runner_->RerankBatch(requests, compute_pool_.get());
    PRISM_CHECK_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      results[i].stats.queue_wait_ms = dispatched_ms - batch[i].admitted_ms;
      clock_->PreWake();
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

CarouselScheduler::CarouselScheduler(BatchRunner* runner, size_t max_inflight,
                                     size_t compute_threads, double linger_ms, Clock* clock,
                                     bool lock_free_admission)
    : runner_(runner),
      max_inflight_(max_inflight),
      linger_ms_(std::max(0.0, linger_ms)),
      clock_(ResolveClock(clock)),
      queue_(clock, lock_free_admission) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  // Fail fast, on the constructing thread, if the runner cannot serve
  // step-wise execution — not from the dispatcher at first traffic. The
  // capability query is side-effect-free (no pass, no prefetch).
  PRISM_CHECK_MSG(runner_->SupportsCarousel(),
                  "runner does not support carousel execution");
  if (compute_threads == 0) {
    // Same sizing rationale as BatchScheduler: a thread per carousel slot
    // keeps device-wait-heavy requests overlapped even on few cores.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  // Same startup handshake as BatchScheduler: reserve the dispatcher's
  // simulation membership before the thread exists.
  clock_->ExpectParticipants(1);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

CarouselScheduler::~CarouselScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult CarouselScheduler::Submit(const RerankRequest& request) {
  // The dispatcher tags this entry with boundary_seq_ as it drains it, so
  // it can report exactly how many admission events the request waited (its
  // admission latency in cycle units) — see RequestQueue's epoch protocol.
  return AwaitFuture(clock_, queue_.Push(request));
}

CarouselScheduler::Stats CarouselScheduler::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void CarouselScheduler::AdmitBoundary(CarouselPass* pass,
                                      std::vector<RequestQueue::Pending> batch,
                                      std::vector<Resident>* residents) {
  if (batch.empty()) {
    return;
  }
  // The pop that produced this batch already bumped boundary_seq_ (on this
  // thread); every entry's tag was assigned at its drain, before any bump
  // that could have taken it, so the difference is an exact admission-event
  // count.
  const uint64_t boundary = boundary_seq_.load(std::memory_order_relaxed);
  const double now_ms = clock_->NowMs();
  std::vector<const RerankRequest*> requests;
  requests.reserve(batch.size());
  for (const RequestQueue::Pending& pending : batch) {
    requests.push_back(pending.request);
  }
  // One AdmitBatch call: the engine fans the joiners' embeds out across the
  // compute pool instead of serializing them while the carousel stalls.
  std::vector<std::unique_ptr<CarouselTicket>> tickets =
      pass->AdmitBatch(requests, compute_pool_.get());
  PRISM_CHECK_EQ(tickets.size(), batch.size());
  size_t max_wait = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Resident resident;
    resident.queue_wait_ms = now_ms - batch[i].admitted_ms;
    resident.ticket = std::move(tickets[i]);
    resident.promise = std::move(batch[i].promise);
    max_wait = std::max(max_wait, static_cast<size_t>(boundary - batch[i].tag));
    residents->push_back(std::move(resident));
  }
  MutexLock lock(stats_mu_);
  stats_.admitted += batch.size();
  stats_.max_boundary_wait = std::max(stats_.max_boundary_wait, max_wait);
}

void CarouselScheduler::DispatchLoop() {
  // Participant for the same reason as BatchScheduler::DispatchLoop.
  const ClockMembership membership(clock_);
  for (;;) {
    // Idle: block for traffic, then spin the carousel up for one busy
    // period. It keeps revolving as long as boundary admission finds work.
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_, &boundary_seq_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    std::unique_ptr<CarouselPass> pass = runner_->BeginCarousel();
    PRISM_CHECK_MSG(pass != nullptr, "runner does not support carousel execution");
    const size_t n_layers = pass->n_layers();
    PRISM_CHECK_GT(n_layers, 0u);

    std::vector<Resident> residents;
    residents.reserve(max_inflight_);
    AdmitBoundary(pass.get(), std::move(batch), &residents);
    {
      MutexLock lock(stats_mu_);
      ++stats_.passes;
      ++stats_.cycles;
    }

    size_t layer = 0;
    while (!residents.empty()) {
      // Forward the depth group whose next-needed layer just arrived.
      std::vector<CarouselTicket*> group;
      group.reserve(residents.size());
      for (const Resident& resident : residents) {
        if (resident.ticket->next_layer() == layer) {
          group.push_back(resident.ticket.get());
        }
      }
      pass->Step(layer, group, compute_pool_.get());

      // Exit finished requests immediately — no waiting for batchmates.
      const bool mid_cycle = layer + 1 < n_layers;
      for (auto it = residents.begin(); it != residents.end();) {
        if (it->ticket->done()) {
          RerankResult result = it->ticket->TakeResult();
          result.stats.queue_wait_ms = it->queue_wait_ms;
          it->ticket.reset();
          if (mid_cycle) {
            MutexLock lock(stats_mu_);
            ++stats_.exited_early;
          }
          clock_->PreWake();
          it->promise.set_value(std::move(result));
          it = residents.erase(it);
        } else {
          ++it;
        }
      }

      layer = (layer + 1) % n_layers;
      if (layer == 0 || residents.empty()) {
        // A boundary — either the natural wrap, or an early one because the
        // carousel drained mid-cycle. Realign first (a no-op at the wrap):
        // the prefetcher discards the skipped layers and starts warming the
        // next cycle's head immediately, so whoever joins next starts on
        // warm weights instead of a cold streamer.
        pass->SkipToNextCycle();
        layer = 0;
        std::vector<RequestQueue::Pending> joiners;
        if (residents.size() < max_inflight_) {
          joiners = queue_.TryPopBatch(max_inflight_ - residents.size(), &boundary_seq_);
        }
        AdmitBoundary(pass.get(), std::move(joiners), &residents);
        if (residents.empty()) {
          // Nothing to ride the next cycle. Linger briefly — pipeline warm,
          // layer 0 already loading — before tearing the pass down; a
          // request arriving inside the window skips the cold start.
          std::vector<RequestQueue::Pending> stragglers =
              queue_.PopBatchFor(max_inflight_, linger_ms_, &boundary_seq_);
          if (stragglers.empty()) {
            break;  // Idle (or closed): end the busy period.
          }
          AdmitBoundary(pass.get(), std::move(stragglers), &residents);
        }
        MutexLock lock(stats_mu_);
        ++stats_.cycles;
      }
    }
  }
}

}  // namespace prism

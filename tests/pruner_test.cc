#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/core/pruner.h"
#include "src/data/metrics.h"

namespace prism {
namespace {

bool Contains(const std::vector<size_t>& v, size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(PrunerTest, FewerCandidatesThanSlotsTerminates) {
  PrunerOptions options;
  const PruneDecision d = DecidePrune({0.5f, 0.6f}, 3, options);
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.selected.size(), 2u);
}

TEST(PrunerTest, LowDispersionDefersEveryone) {
  PrunerOptions options;
  options.dispersion_threshold = 0.5f;
  const PruneDecision d = DecidePrune({0.50f, 0.51f, 0.49f, 0.52f, 0.48f}, 2, options);
  EXPECT_FALSE(d.triggered);
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.deferred.size(), 5u);
}

TEST(PrunerTest, HighDispersionTriggersThreeWayRouting) {
  PrunerOptions options;
  options.dispersion_threshold = 0.2f;
  // Two clear winners, two clear losers, boundary in the middle (K=3 → the
  // 3rd ranked candidate sits in the middle cluster).
  const std::vector<float> scores = {0.95f, 0.93f, 0.55f, 0.53f, 0.06f, 0.04f};
  const PruneDecision d = DecidePrune(scores, 3, options);
  ASSERT_TRUE(d.triggered);
  EXPECT_TRUE(Contains(d.selected, 0));
  EXPECT_TRUE(Contains(d.selected, 1));
  EXPECT_TRUE(Contains(d.dropped, 4));
  EXPECT_TRUE(Contains(d.dropped, 5));
  EXPECT_TRUE(Contains(d.deferred, 2));
  EXPECT_TRUE(Contains(d.deferred, 3));
}

TEST(PrunerTest, TerminatesWhenDeferredFillsSlots) {
  PrunerOptions options;
  options.dispersion_threshold = 0.1f;
  // K=3: two winners selected, boundary cluster of exactly one → terminate.
  const std::vector<float> scores = {0.95f, 0.90f, 0.55f, 0.05f, 0.02f};
  const PruneDecision d = DecidePrune(scores, 3, options);
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.selected.size(), 3u);
  EXPECT_TRUE(d.deferred.empty());
}

TEST(PrunerTest, ExactRankModeNeverSelectsEarly) {
  PrunerOptions options;
  options.dispersion_threshold = 0.1f;
  options.prune_winners = false;
  const std::vector<float> scores = {0.95f, 0.93f, 0.55f, 0.53f, 0.06f, 0.04f};
  const PruneDecision d = DecidePrune(scores, 3, options);
  ASSERT_TRUE(d.triggered);
  EXPECT_TRUE(d.selected.empty());  // Winners keep computing.
  EXPECT_FALSE(d.dropped.empty());  // Hopeless ones still pruned.
  EXPECT_FALSE(d.terminate);
}

// Property sweep: random score vectors × thresholds × K — the §4.1 safety
// invariants must hold universally.
class PrunerPropertyTest : public ::testing::TestWithParam<std::tuple<float, size_t, uint64_t>> {};

TEST_P(PrunerPropertyTest, PartitionInvariants) {
  const auto [threshold, k, seed] = GetParam();
  Rng rng(seed);
  const size_t n = 8 + rng.NextBelow(20);
  std::vector<float> scores;
  for (size_t i = 0; i < n; ++i) {
    scores.push_back(static_cast<float>(rng.NextDouble()));
  }
  PrunerOptions options;
  options.dispersion_threshold = threshold;
  const PruneDecision d = DecidePrune(scores, k, options);

  // Partition: every index appears exactly once across the three sets.
  std::vector<int> seen(n, 0);
  for (size_t i : d.selected) {
    ++seen[i];
  }
  for (size_t i : d.dropped) {
    ++seen[i];
  }
  for (size_t i : d.deferred) {
    ++seen[i];
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "index " << i;
  }
  EXPECT_LE(d.selected.size(), k);

  if (n > k) {
    // The K-th ranked candidate is never dropped.
    const auto order = TopKIndices(scores, n);
    EXPECT_FALSE(Contains(d.dropped, order[k - 1]));
    // Selected candidates all outscore every dropped candidate.
    for (size_t s : d.selected) {
      for (size_t x : d.dropped) {
        EXPECT_GE(scores[s], scores[x]);
      }
    }
    // True top-K ⊆ selected ∪ deferred (no winner is ever dropped).
    for (size_t i = 0; i < k; ++i) {
      EXPECT_FALSE(Contains(d.dropped, order[i])) << "true top-" << k << " member dropped";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrunerPropertyTest,
    ::testing::Combine(::testing::Values(0.05f, 0.2f, 0.4f, 0.8f),
                       ::testing::Values<size_t>(1, 3, 5, 10),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)));

TEST(PrunerTest, ThresholdMonotonicityOnTriggering) {
  // For a fixed score vector, raising the threshold can only change the
  // decision from triggered to not-triggered (never the other way).
  Rng rng(42);
  std::vector<float> scores;
  for (int i = 0; i < 16; ++i) {
    scores.push_back(static_cast<float>(rng.NextDouble()));
  }
  bool was_triggered = true;
  for (float threshold : {0.01f, 0.1f, 0.3f, 0.6f, 1.0f, 2.0f}) {
    PrunerOptions options;
    options.dispersion_threshold = threshold;
    const PruneDecision d = DecidePrune(scores, 4, options);
    EXPECT_LE(d.triggered, was_triggered);  // Monotone non-increasing.
    was_triggered = d.triggered;
  }
}

}  // namespace
}  // namespace prism

// Fault-injection test doubles.
//
// FlakyRunner slots between a scheduler and the real engine (via
// ServiceOptions::runner_override or a directly-constructed BatchScheduler)
// and fails selected requests with an injected kIoError before they reach
// the wrapped runner — modelling a device read failure surfaced per-request.
// Failures follow either a deterministic sequence (request ordinal n fails
// iff fail_sequence[n]) or a seeded Bernoulli draw, so every test run is
// reproducible. The tests built on it pin down the error contract: a failing
// request must not poison its batchmates, wedge the dispatcher, or leak
// SpillPool entries.
//
// The carousel composes through the same seam: BeginCarousel wraps the inner
// pass, and a doomed request's ticket fails during its first Step — i.e.
// mid-cycle, while the carousel is revolving with other requests resident —
// abandoning the inner ticket so the engine releases its parked state.
#ifndef PRISM_TESTS_FAULT_INJECTION_H_
#define PRISM_TESTS_FAULT_INJECTION_H_

#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/runner.h"

namespace prism {

struct FaultPlan {
  // While the ordinal is inside fail_sequence, it decides; afterwards (or
  // when empty) each request fails with fail_probability via `seed`.
  std::vector<bool> fail_sequence;
  double fail_probability = 0.0;
  uint64_t seed = 0xFA17;
};

class FlakyRunner : public BatchRunner {
 public:
  FlakyRunner(BatchRunner* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

  RerankResult Rerank(const RerankRequest& request) override {
    const RerankRequest* ptr = &request;
    return std::move(RerankBatch({&ptr, 1}).front());
  }

  // Per-request injection: failing entries get an error result carrying the
  // request's ordinal; survivors are forwarded to the wrapped runner as one
  // (smaller) batch and their results scattered back into place.
  std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                        ThreadPool* compute_pool = nullptr) override {
    std::vector<RerankResult> results(requests.size());
    std::vector<const RerankRequest*> forwarded;
    std::vector<size_t> forwarded_at;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (const auto ordinal = NextFailure(); ordinal.has_value()) {
        results[i].status =
            Status::IoError("injected device read failure (request #" +
                            std::to_string(*ordinal) + ")");
        results[i].scores.assign(requests[i]->docs.size(),
                                 std::numeric_limits<float>::quiet_NaN());
      } else {
        forwarded.push_back(requests[i]);
        forwarded_at.push_back(i);
      }
    }
    if (!forwarded.empty()) {
      std::vector<RerankResult> inner_results = inner_->RerankBatch(forwarded, compute_pool);
      for (size_t j = 0; j < forwarded.size(); ++j) {
        results[forwarded_at[j]] = std::move(inner_results[j]);
      }
    }
    return results;
  }

  // Carousel seam: wraps the inner runner's pass. Doomed requests (decided
  // at admission, same plan/ordinal accounting as the batch path) carry a
  // live inner ticket until their first Step, where the injected error
  // fires: the wrapper abandons the inner ticket mid-cycle — exercising the
  // engine's abandoned-ticket cleanup — and surfaces kIoError to exactly
  // that caller. Survivors forward untouched.
  bool SupportsCarousel() const override { return inner_->SupportsCarousel(); }
  std::unique_ptr<CarouselPass> BeginCarousel() override {
    std::unique_ptr<CarouselPass> inner = inner_->BeginCarousel();
    if (inner == nullptr) {
      return nullptr;
    }
    return std::make_unique<FlakyCarouselPass>(this, std::move(inner));
  }

  std::string name() const override { return "flaky(" + inner_->name() + ")"; }

  size_t injected_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  size_t requests_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ordinal_;
  }

 private:
  class FlakyCarouselTicket : public CarouselTicket {
   public:
    FlakyCarouselTicket(std::unique_ptr<CarouselTicket> inner, size_t n_docs,
                        std::optional<size_t> fail_ordinal)
        : inner_(std::move(inner)), n_docs_(n_docs), fail_ordinal_(fail_ordinal) {}

    size_t next_layer() const override { return failed_ ? 0 : inner_->next_layer(); }
    bool done() const override { return failed_ || inner_->done(); }
    RerankResult TakeResult() override {
      return failed_ ? std::move(error_) : inner_->TakeResult();
    }

    bool doomed() const { return fail_ordinal_.has_value() && !failed_; }
    CarouselTicket* inner() { return inner_.get(); }

    // Fires the injected fault: the inner ticket is abandoned (its engine
    // must release any parked per-request state) and this ticket finishes
    // with an error result.
    void Fail() {
      error_.status = Status::IoError("injected device read failure (request #" +
                                      std::to_string(*fail_ordinal_) + ")");
      error_.scores.assign(n_docs_, std::numeric_limits<float>::quiet_NaN());
      failed_ = true;
      inner_.reset();
    }

   private:
    std::unique_ptr<CarouselTicket> inner_;
    size_t n_docs_;
    std::optional<size_t> fail_ordinal_;
    bool failed_ = false;
    RerankResult error_;
  };

  class FlakyCarouselPass : public CarouselPass {
   public:
    FlakyCarouselPass(FlakyRunner* owner, std::unique_ptr<CarouselPass> inner)
        : owner_(owner), inner_(std::move(inner)) {}

    size_t n_layers() const override { return inner_->n_layers(); }

    std::unique_ptr<CarouselTicket> Admit(const RerankRequest& request) override {
      return std::make_unique<FlakyCarouselTicket>(inner_->Admit(request),
                                                   request.docs.size(),
                                                   owner_->NextFailure());
    }

    std::vector<std::unique_ptr<CarouselTicket>> AdmitBatch(
        std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) override {
      // Draw failure ordinals in request order first (matching the batch
      // path's sequencing), then let the inner pass admit — possibly with
      // its embeds fanned out.
      std::vector<std::optional<size_t>> ordinals;
      ordinals.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        ordinals.push_back(owner_->NextFailure());
      }
      std::vector<std::unique_ptr<CarouselTicket>> inner =
          inner_->AdmitBatch(requests, compute_pool);
      std::vector<std::unique_ptr<CarouselTicket>> tickets;
      tickets.reserve(inner.size());
      for (size_t i = 0; i < inner.size(); ++i) {
        tickets.push_back(std::make_unique<FlakyCarouselTicket>(
            std::move(inner[i]), requests[i]->docs.size(), ordinals[i]));
      }
      return tickets;
    }

    void Step(size_t layer, std::span<CarouselTicket* const> group,
              ThreadPool* compute_pool) override {
      std::vector<CarouselTicket*> forwarded;
      forwarded.reserve(group.size());
      for (CarouselTicket* ticket : group) {
        auto* flaky = static_cast<FlakyCarouselTicket*>(ticket);
        if (flaky->doomed()) {
          flaky->Fail();
        } else {
          forwarded.push_back(flaky->inner());
        }
      }
      // Step the inner pass even when every grouped request just failed —
      // the walk must stay aligned for the other residents.
      inner_->Step(layer, forwarded, compute_pool);
    }

    void SkipToNextCycle() override { inner_->SkipToNextCycle(); }

   private:
    FlakyRunner* owner_;
    std::unique_ptr<CarouselPass> inner_;
  };

  // Returns this request's ordinal if it should fail, nullopt otherwise.
  std::optional<size_t> NextFailure() {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t ordinal = ordinal_++;
    bool fail;
    if (ordinal < plan_.fail_sequence.size()) {
      fail = plan_.fail_sequence[ordinal];
    } else {
      fail = rng_.NextDouble() < plan_.fail_probability;
    }
    if (!fail) {
      return std::nullopt;
    }
    ++failures_;
    return ordinal;
  }

  BatchRunner* inner_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  size_t ordinal_ = 0;
  size_t failures_ = 0;
};

}  // namespace prism

#endif  // PRISM_TESTS_FAULT_INJECTION_H_

#include "src/apps/sim_llm.h"

namespace prism {

SimLlmResult SimulatedLlm::Generate(size_t prompt_tokens, size_t max_new_tokens) const {
  SimLlmResult result;
  result.generated_tokens = max_new_tokens;
  // All of the modelled latency goes through the Clock seam: with the
  // default wall clock the sleeps (and so the reported latencies) are
  // exactly the old std::this_thread::sleep_for behaviour; under a SimClock
  // generation charges virtual time instead of stalling the host.
  const double start_ms = clock_->NowMs();
  MemClaim claim(tracker_, MemCategory::kScratch,
                 config_.base_bytes + config_.bytes_per_context_token *
                                          static_cast<int64_t>(prompt_tokens + max_new_tokens));
  const double prefill_ms =
      1000.0 * static_cast<double>(prompt_tokens) / config_.prefill_tokens_per_sec;
  clock_->SleepFor(prefill_ms);
  result.first_token_ms = clock_->NowMs() - start_ms;
  const double decode_ms =
      1000.0 * static_cast<double>(max_new_tokens) / config_.decode_tokens_per_sec;
  clock_->SleepFor(decode_ms);
  result.latency_ms = clock_->NowMs() - start_ms;
  return result;
}

}  // namespace prism

#include "src/retrieval/vector_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/retrieval/bi_encoder.h"

namespace prism {

namespace {

void TopNHits(std::vector<RetrievalHit>* hits, size_t n) {
  std::sort(hits->begin(), hits->end(), [](const RetrievalHit& a, const RetrievalHit& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc_id < b.doc_id;
  });
  if (hits->size() > n) {
    hits->resize(n);
  }
}

}  // namespace

size_t FlatIndex::Add(std::vector<float> embedding) {
  PRISM_CHECK_EQ(embedding.size(), dim_);
  vectors_.push_back(std::move(embedding));
  return vectors_.size() - 1;
}

std::vector<RetrievalHit> FlatIndex::Search(const std::vector<float>& query, size_t n) const {
  std::vector<RetrievalHit> hits;
  hits.reserve(vectors_.size());
  for (size_t i = 0; i < vectors_.size(); ++i) {
    hits.push_back({i, CosineSim(query, vectors_[i])});
  }
  TopNHits(&hits, n);
  return hits;
}

IvfIndex::IvfIndex(size_t dim, size_t nlist, size_t nprobe, uint64_t seed)
    : dim_(dim), nlist_(nlist), nprobe_(std::min(nprobe, nlist)), seed_(seed) {
  PRISM_CHECK_GT(nlist, 0u);
  PRISM_CHECK_GT(nprobe, 0u);
}

size_t IvfIndex::Add(std::vector<float> embedding) {
  PRISM_CHECK_EQ(embedding.size(), dim_);
  PRISM_CHECK_MSG(!trained_, "IvfIndex::Add after Train");
  vectors_.push_back(std::move(embedding));
  return vectors_.size() - 1;
}

void IvfIndex::Train() {
  PRISM_CHECK(!trained_);
  PRISM_CHECK(!vectors_.empty());
  const size_t k = std::min(nlist_, vectors_.size());
  Rng rng(seed_);
  // Init centroids from random distinct vectors.
  centroids_.clear();
  for (size_t c = 0; c < k; ++c) {
    centroids_.push_back(vectors_[rng.NextBelow(vectors_.size())]);
  }
  std::vector<size_t> assignment(vectors_.size(), 0);
  for (int iter = 0; iter < 12; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < vectors_.size(); ++i) {
      size_t best = 0;
      float best_sim = -std::numeric_limits<float>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const float sim = CosineSim(vectors_[i], centroids_[c]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Recompute centroids (mean, re-normalised).
    for (size_t c = 0; c < k; ++c) {
      std::vector<float> mean(dim_, 0.0f);
      size_t count = 0;
      for (size_t i = 0; i < vectors_.size(); ++i) {
        if (assignment[i] != c) {
          continue;
        }
        for (size_t x = 0; x < dim_; ++x) {
          mean[x] += vectors_[i][x];
        }
        ++count;
      }
      if (count == 0) {
        continue;
      }
      float norm = 0.0f;
      for (float v : mean) {
        norm += v * v;
      }
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (float& v : mean) {
          v /= norm;
        }
      }
      centroids_[c] = std::move(mean);
    }
    if (!changed && iter > 0) {
      break;
    }
  }
  lists_.assign(k, {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    lists_[assignment[i]].push_back(i);
  }
  trained_ = true;
}

std::vector<RetrievalHit> IvfIndex::Search(const std::vector<float>& query, size_t n) const {
  PRISM_CHECK_MSG(trained_, "IvfIndex::Search before Train");
  // Rank centroids, scan the nprobe nearest lists.
  std::vector<RetrievalHit> centroid_hits;
  for (size_t c = 0; c < centroids_.size(); ++c) {
    centroid_hits.push_back({c, CosineSim(query, centroids_[c])});
  }
  TopNHits(&centroid_hits, nprobe_);
  std::vector<RetrievalHit> hits;
  for (const RetrievalHit& ch : centroid_hits) {
    for (size_t doc_id : lists_[ch.doc_id]) {
      hits.push_back({doc_id, CosineSim(query, vectors_[doc_id])});
    }
  }
  TopNHits(&hits, n);
  return hits;
}

}  // namespace prism

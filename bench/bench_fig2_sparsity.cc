// Figure 2: sequence-level sparsity.
//  (a) Per-layer score evolution of 20 candidates on the BGE-MiniCPM proxy —
//      scores diverge into clusters as layers deepen.
//  (b) Goodman–Kruskal γ and cluster-γ across layers for BGE-M3 and
//      BGE-MiniCPM, averaged over datasets: γ rises toward 1, cluster-γ stays
//      close to 1 at every layer.
//
// Flags: --datasets=N (default 6; 18 = paper's full set) --candidates=N
#include <cstdio>

#include "bench/bench_util.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t n_datasets =
      std::min<size_t>(static_cast<size_t>(flags.GetInt("datasets", 6)), 18);
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 20));
  DeviceProfile device = NvidiaProfile();
  device.ssd.throttle = false;  // Trace runs measure scores, not latency.

  // --- (a) score evolution on BGE-MiniCPM ---
  {
    const ModelConfig model = BgeRerankerV2MiniCpm();
    PrintHeader("Figure 2(a) — score evolution across layers (" + model.name + ", " +
                std::to_string(candidates) + " candidates)");
    PrismOptions options;
    options.device = device;
    options.trace = true;
    auto engine = MakePrismWith(model, options);
    const auto cases = MakeCases(model, "wikipedia", 1, candidates, 5);
    engine->Rerank(cases[0].request);
    const auto& trace = engine->last_trace();
    std::printf("%5s", "layer");
    for (size_t c = 0; c < candidates; ++c) {
      std::printf(" c%02zu  ", c);
    }
    std::printf("\n");
    for (size_t layer = 0; layer < trace.size(); layer += 2) {
      std::printf("%5zu", layer);
      for (float s : trace[layer].scores) {
        std::printf(" %.3f", s);
      }
      std::printf("\n");
    }
  }

  // --- (b) γ and cluster-γ across layers, both architectures ---
  PrintHeader("Figure 2(b) — γ and cluster-γ across layers (" + std::to_string(n_datasets) +
              " datasets)");
  const auto profiles = AllDatasetProfiles();
  for (const ModelConfig& model : {BgeRerankerV2M3(), BgeRerankerV2MiniCpm()}) {
    PrismOptions options;
    options.device = device;
    options.trace = true;
    auto engine = MakePrismWith(model, options);

    std::vector<double> gamma_sum(model.n_layers, 0.0);
    std::vector<double> cgamma_sum(model.n_layers, 0.0);
    size_t runs = 0;
    for (size_t d = 0; d < n_datasets; ++d) {
      const auto cases = MakeCases(model, profiles[d].name, 1, candidates, 5);
      engine->Rerank(cases[0].request);
      const auto& trace = engine->last_trace();
      const auto& final_scores = trace.back().scores;
      for (size_t layer = 0; layer < trace.size(); ++layer) {
        gamma_sum[layer] += GoodmanKruskalGamma(trace[layer].scores, final_scores);
        cgamma_sum[layer] += ClusterGamma(trace[layer].scores, final_scores,
                                          trace[layer].clusters);
      }
      ++runs;
    }
    std::printf("\n%s:\n", model.name.c_str());
    std::printf("  %5s %8s %10s\n", "layer", "gamma", "cluster_g");
    for (size_t layer = 0; layer < model.n_layers; ++layer) {
      std::printf("  %5zu %8.3f %10.3f\n", layer, gamma_sum[layer] / runs,
                  cgamma_sum[layer] / runs);
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

#include "src/runtime/offload_runner.h"

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/data/metrics.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"

namespace prism {

OffloadRunner::OffloadRunner(const ModelConfig& config, const std::string& checkpoint_path,
                             OffloadRunnerOptions options, MemoryTracker* tracker)
    : config_(config), options_(options), tracker_(tracker) {
  if (options_.batch_size == 0) {
    options_.batch_size = options_.device.hf_batch_size;
  }
  auto reader = BlobFileReader::Open(checkpoint_path, options_.device.ssd);
  PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
  reader_ = std::move(reader).value();
  const Status ckpt_status = ValidateCheckpoint(*reader_, config_, options_.precision);
  PRISM_CHECK_MSG(ckpt_status.ok(), ckpt_status.ToString().c_str());
  embedding_ = std::make_unique<FullEmbeddingTable>(config_, reader_.get(), tracker_);
  std::vector<uint8_t> head_blob(static_cast<size_t>(reader_->BlobSize(HeadBlobIndex(config_))));
  const Status status = reader_->ReadBlob(HeadBlobIndex(config_), head_blob);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  head_ = ParseHeadBlob(config_, head_blob);
}

RerankResult OffloadRunner::Rerank(const RerankRequest& request) {
  const WallTimer total_timer;
  RerankResult result;
  const size_t n = request.docs.size();
  const size_t seq_len = ChooseSeqLen(config_, request.query, request.docs);
  result.scores.assign(n, 0.0f);

  const size_t batch = std::min(options_.batch_size, n);
  LayerScratch scratch = LayerScratch::Make(config_, batch * seq_len, seq_len, tracker_);
  std::vector<uint8_t> layer_blob(LayerBlobBytes(config_, options_.precision));

  for (size_t b0 = 0; b0 < n; b0 += batch) {
    const size_t b1 = std::min(b0 + batch, n);
    const size_t bsz = b1 - b0;
    Tensor hidden(bsz * seq_len, config_.hidden, MemCategory::kHiddenStates, tracker_);
    {
      const WallTimer embed_timer;
      for (size_t c = 0; c < bsz; ++c) {
        const PairInput pair = BuildPairInput(config_, request.query, request.docs[b0 + c],
                                              request.planted_r[b0 + c], seq_len);
        EmbedPairInto(config_, embedding_.get(), head_, pair, c, seq_len, &hidden);
      }
      result.stats.embed_ms += embed_timer.ElapsedMillis();
    }

    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      // Synchronous load right before execution — the defining trait of the
      // Accelerate offload baseline. The load is charged by the device model.
      {
        const WallTimer io_timer;
        MemClaim claim(tracker_, MemCategory::kWeights,
                       static_cast<int64_t>(layer_blob.size()));
        const Status status = reader_->ReadBlob(LayerBlobIndex(layer), layer_blob);
        PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
        result.stats.io_stall_ms += io_timer.ElapsedMillis();
        result.stats.bytes_streamed += static_cast<int64_t>(layer_blob.size());

        const WallTimer compute_timer;
        const AnyLayerView view = ParseAnyLayerBlob(config_, layer_blob, options_.precision);
        LayerForward(config_, view, seq_len, &hidden, &scratch);
        result.stats.candidate_layers += static_cast<int64_t>(bsz);
        const int64_t compute_micros = compute_timer.ElapsedMicros();
        result.stats.compute_ms += static_cast<double>(compute_micros) / 1000.0;
        ApplyComputeSlowdown(options_.device, compute_micros);
        // `claim` releases here: the layer's weights are discarded after use.
      }
    }
    std::vector<float> batch_scores;
    ScoreChunk(config_, head_, hidden, seq_len, &batch_scores);
    for (size_t c = 0; c < bsz; ++c) {
      result.scores[b0 + c] = batch_scores[c];
    }
  }

  result.topk = TopKIndices(result.scores, request.k);
  result.stats.layers_until_done = config_.n_layers;
  result.stats.latency_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace prism

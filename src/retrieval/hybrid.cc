#include "src/retrieval/hybrid.h"

#include <unordered_set>

namespace prism {

std::vector<size_t> FuseHits(const std::vector<RetrievalHit>& sparse,
                             const std::vector<RetrievalHit>& dense, size_t total) {
  std::vector<size_t> out;
  std::unordered_set<size_t> seen;
  size_t i = 0;
  size_t j = 0;
  while (out.size() < total && (i < sparse.size() || j < dense.size())) {
    if (i < sparse.size()) {
      if (seen.insert(sparse[i].doc_id).second) {
        out.push_back(sparse[i].doc_id);
      }
      ++i;
    }
    if (out.size() >= total) {
      break;
    }
    if (j < dense.size()) {
      if (seen.insert(dense[j].doc_id).second) {
        out.push_back(dense[j].doc_id);
      }
      ++j;
    }
  }
  return out;
}

}  // namespace prism

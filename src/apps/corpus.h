// Shared document corpus with per-query ground truth, used by the pipeline
// applications (semantic file search, RAG).
//
// Unlike SyntheticDataset (which emits a per-query candidate pool), a corpus
// is a fixed document collection that retrieval stages index once. Each query
// has a handful of planted relevant documents (high lexical overlap) mixed
// into background documents; the planted relevance for an arbitrary
// (query, doc) pair is derived deterministically from the stored grade plus
// lexical overlap plus seeded noise, so the reranker can score any candidate
// the retrieval stage surfaces.
#ifndef PRISM_SRC_APPS_CORPUS_H_
#define PRISM_SRC_APPS_CORPUS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/data/dataset.h"
#include "src/runtime/runner.h"

namespace prism {

struct CorpusQuery {
  std::vector<uint32_t> tokens;
  std::vector<size_t> relevant;  // Doc ids planted for this query.
};

class SearchCorpus {
 public:
  SearchCorpus(DatasetProfile profile, const ModelConfig& model, size_t n_queries,
               size_t relevant_per_query, size_t background_docs, uint64_t seed);

  const std::vector<std::vector<uint32_t>>& docs() const { return docs_; }
  const std::vector<CorpusQuery>& queries() const { return queries_; }

  // Ground-truth grade of (query, doc): > 0 only for planted pairs.
  float Grade(size_t query_idx, size_t doc_id) const;

  // Planted relevance scalar for the cross-encoder (grade + overlap + noise),
  // deterministic in (seed, query, doc).
  float PlantedRelevance(size_t query_idx, size_t doc_id) const;

  // Assembles a rerank request for the given candidate doc ids.
  RerankRequest MakeRequest(size_t query_idx, const std::vector<size_t>& candidates,
                            size_t k) const;

 private:
  DatasetProfile profile_;
  uint64_t seed_;
  std::vector<std::vector<uint32_t>> docs_;
  std::vector<CorpusQuery> queries_;
  // (query << 32 | doc) → grade for planted pairs.
  std::unordered_map<uint64_t, float> grades_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_CORPUS_H_

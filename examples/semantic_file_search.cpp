// Semantic file search — the paper's Fig-1 motivating scenario end to end:
// keyword retrieval + embedding retrieval each surface 10 candidates from a
// corpus, and the cross-encoder reranker selects the final top-5. Runs the
// pipeline with the HF baseline and with PRISM and prints the per-stage
// comparison.
#include <cstdio>

#include "src/apps/corpus.h"
#include "src/apps/file_search.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"
#include "src/runtime/hf_runner.h"

int main() {
  using namespace prism;

  const ModelConfig model = Qwen3Reranker0_6B();
  const DeviceProfile device = AppleProfile();  // The paper's Mac Mini setting.
  const std::string checkpoint = EnsureCheckpoint(model, 42);

  // A corpus of 200 background "files" plus 4 relevant files per query.
  const SearchCorpus corpus(DatasetByName("wikipedia"), model, /*n_queries=*/2,
                            /*relevant_per_query=*/4, /*background_docs=*/200, 0xE7);
  const FileSearchApp app(&corpus, /*per_source=*/10);

  std::printf("Semantic file search on '%s' (%zu files)\n\n", device.name.c_str(),
              corpus.docs().size());

  {
    HfRunnerOptions options;
    options.device = device;
    HfRunner hf(model, checkpoint, options);
    const FileSearchResult result = app.Search(0, 5, &hf);
    std::printf("[HF baseline]   keyword %5.1f ms | embed %5.1f ms | rerank %8.1f ms | P@5 %.2f\n",
                result.keyword_ms, result.embed_ms, result.rerank_ms, result.precision);
    const double total = result.keyword_ms + result.embed_ms + result.rerank_ms;
    std::printf("                reranker share of pipeline latency: %.1f%%\n",
                100.0 * result.rerank_ms / total);
  }
  {
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = 0.15f;
    PrismEngine prism(model, checkpoint, options);
    const FileSearchResult result = app.Search(0, 5, &prism);
    std::printf("[PRISM]         keyword %5.1f ms | embed %5.1f ms | rerank %8.1f ms | P@5 %.2f\n",
                result.keyword_ms, result.embed_ms, result.rerank_ms, result.precision);
    std::printf("\nTop files: ");
    for (size_t doc : result.top_docs) {
      std::printf("%zu ", doc);
    }
    std::printf("\n");
  }
  return 0;
}

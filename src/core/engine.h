// The PRISM engine: staged monolithic forwarding (paper §3.3–§4).
//
// All candidates advance through the transformer together as one monolithic
// batch, giving the engine a global view for progressive cluster pruning
// (§4.1) while overlapped layer streaming (§4.2) keeps at most two layers'
// weights in memory, chunked execution (§4.3) bounds intermediate-tensor
// memory (optionally spilling hidden states to disk), and the embedding-table
// LRU cache (§4.4) replaces the resident embedding table. Every technique is
// individually switchable for the ablation study (Fig 16).
//
// Execution is organised as a staged pipeline (src/core/stages.h): the
// engine owns only shared immutable resources and hands each request a
// private RequestContext, so concurrent Rerank/RerankBatch calls are safe —
// a batch shares a single layer-streaming pass across its requests while
// producing results bit-identical to serial execution.
#ifndef PRISM_SRC_CORE_ENGINE_H_
#define PRISM_SRC_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/memory_tracker.h"
#include "src/common/thread_pool.h"
#include "src/core/stages.h"
#include "src/model/embedding.h"
#include "src/model/weights.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"
#include "src/storage/blob_file.h"
#include "src/storage/hidden_spill.h"
#include "src/storage/layer_streamer.h"

namespace prism {

class PrismEngine : public BatchRunner {
 public:
  PrismEngine(const ModelConfig& config, const std::string& checkpoint_path, PrismOptions options,
              MemoryTracker* tracker = &MemoryTracker::Global());

  RerankResult Rerank(const RerankRequest& request) override;

  // Runs several requests as one coalesced pass: every layer's weights are
  // fetched once for the whole batch (the §3.3 global view extended across
  // requests), while per-request pruning keeps each result bit-identical to
  // a serial Rerank. When `compute_pool` is non-null, per-request forwarding
  // fans out across its workers. Thread-compatible: concurrent calls are
  // safe (shared caches/spill are internally synchronised).
  std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                        ThreadPool* compute_pool = nullptr) override;

  // Opens a cyclic carousel pass over this engine's layer stream: the
  // CarouselScheduler admits requests at cycle boundaries and steps every
  // resident request through each arriving layer, with results bit-identical
  // to serial Rerank per request (pruning stays per-request; only fetch
  // sharing and admission timing change). The pass and its tickets are
  // confined to the calling thread; the engine must outlive them.
  bool SupportsCarousel() const override { return true; }
  std::unique_ptr<CarouselPass> BeginCarousel() override;

  std::string name() const override {
    switch (options_.precision) {
      case Precision::kFp16:
        return "PRISM Fp16";
      case Precision::kInt8:
        return "PRISM Int8";
      case Precision::kW4:
        return "PRISM Quant";
      case Precision::kFp32:
        break;
    }
    return "PRISM";
  }

  // Trace of the most recent request (trace mode only; meaningful when
  // requests are issued serially).
  std::vector<LayerTraceEntry> last_trace() const;

  const PrismOptions& options() const { return options_; }

  // The live dispersion threshold is atomic: the OnlineCalibrator nudges it
  // while requests are in flight. `options().dispersion_threshold` keeps the
  // construction-time value; read the current one here.
  float dispersion_threshold() const {
    return dispersion_threshold_.load(std::memory_order_relaxed);
  }
  void set_dispersion_threshold(float threshold) {
    dispersion_threshold_.store(threshold, std::memory_order_relaxed);
  }

  // Stats of the persistent embedding cache (nullopt when embed_cache off).
  // Cumulative across all requests served by this engine — or, with a
  // shared cache, by every engine sharing it.
  std::optional<EmbeddingCacheStats> embed_cache_stats() const;

  // False when the engine was pointed at an externally-owned cache
  // (PrismOptions::shared_embed_cache): stats consumers count a shared
  // cache once at the pool, not once per replica.
  bool owns_embed_cache() const { return cache_ != nullptr && options_.shared_embed_cache == nullptr; }

  // The embedding source requests are embedded through (cache or full
  // table). Exposed so a front-end result cache's similarity tier can embed
  // queries with the very vectors EmbedStage uses. Thread-safe.
  EmbeddingSource* embedding_source() { return embedding_; }

  // Shared hidden-state spill pool; null unless offload_hidden. Exposed so
  // tests can assert that no request — including one terminated early or
  // failed by fault injection — leaks a parked chunk.
  const SpillPool* spill_pool() const { return spill_.get(); }

  // Chunk size the planner would pick for `n` candidates at `seq_len` (§4.3):
  // the largest count whose scratch fits the activation budget, floored at 2
  // to keep the compute window wide enough for I/O overlap.
  size_t PlanChunkCandidates(size_t n, size_t seq_len) const;

 private:
  // The carousel pass lives in engine.cc and reaches through the engine for
  // the stage pipeline, request ids, and the live dispersion threshold.
  friend class PrismCarouselPass;

  ModelConfig config_;
  PrismOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<BlobFileReader> reader_;
  std::unique_ptr<EmbeddingSource> owned_embedding_;  // Null with a shared cache.
  EmbeddingSource* embedding_ = nullptr;  // owned_embedding_ or the shared cache.
  EmbeddingCache* cache_ = nullptr;  // Non-owning alias when embed_cache on.
  HeadWeights head_;
  // Resident layers when streaming is off.
  std::vector<std::vector<uint8_t>> resident_layers_;
  MemClaim resident_claim_;
  std::unique_ptr<SpillPool> spill_;

  std::atomic<float> dispersion_threshold_;
  std::atomic<uint64_t> next_request_id_{0};

  // Stage pipeline over the shared resources above. Constructed last; the
  // resource bundle points into this object, which never moves.
  StageResources resources_;
  std::optional<ChunkPlanner> planner_;
  std::optional<EmbedStage> embed_stage_;
  std::optional<LayerLoop> layer_loop_;
  std::optional<PruneStage> prune_stage_;

  mutable Mutex trace_mu_;
  std::vector<LayerTraceEntry> trace_ PRISM_GUARDED_BY(trace_mu_);
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_ENGINE_H_

#include "src/core/engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace prism {

PrismEngine::PrismEngine(const ModelConfig& config, const std::string& checkpoint_path,
                         PrismOptions options, MemoryTracker* tracker)
    : config_(config),
      options_(options),
      tracker_(tracker),
      dispersion_threshold_(options.dispersion_threshold) {
  auto reader = BlobFileReader::Open(checkpoint_path, options_.device.ssd);
  PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
  reader_ = std::move(reader).value();

  if (options_.embed_cache) {
    const auto rows = static_cast<size_t>(
        std::max(1.0, options_.embed_cache_fraction * static_cast<double>(config_.vocab_size)));
    auto cache = std::make_unique<EmbeddingCache>(config_, reader_.get(), rows, tracker_);
    cache_ = cache.get();
    embedding_ = std::move(cache);
  } else {
    embedding_ = std::make_unique<FullEmbeddingTable>(config_, reader_.get(), tracker_);
  }

  if (!options_.streaming) {
    int64_t total = 0;
    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      std::vector<uint8_t> blob(static_cast<size_t>(reader_->BlobSize(LayerBlobIndex(layer))));
      const Status status = reader_->ReadBlob(LayerBlobIndex(layer), blob);
      PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
      total += static_cast<int64_t>(blob.size());
      resident_layers_.push_back(std::move(blob));
    }
    resident_claim_ = MemClaim(tracker_, MemCategory::kWeights, total);
  }

  std::vector<uint8_t> head_blob(static_cast<size_t>(reader_->BlobSize(HeadBlobIndex(config_))));
  const Status status = reader_->ReadBlob(HeadBlobIndex(config_), head_blob);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  head_ = ParseHeadBlob(config_, head_blob);

  if (options_.offload_hidden) {
    spill_ = std::make_unique<SpillPool>(options_.device.ssd, tracker_);
  }

  resources_.config = &config_;
  resources_.options = &options_;
  resources_.tracker = tracker_;
  resources_.reader = reader_.get();
  resources_.embedding = embedding_.get();
  resources_.cache = cache_;
  resources_.head = &head_;
  resources_.resident_layers = &resident_layers_;
  resources_.spill = spill_.get();
  planner_.emplace(resources_);
  embed_stage_.emplace(resources_);
  layer_loop_.emplace(resources_);
  prune_stage_.emplace(resources_);
}

std::optional<EmbeddingCacheStats> PrismEngine::embed_cache_stats() const {
  if (cache_ == nullptr) {
    return std::nullopt;
  }
  return cache_->stats();
}

std::vector<LayerTraceEntry> PrismEngine::last_trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

size_t PrismEngine::PlanChunkCandidates(size_t n, size_t seq_len) const {
  return planner_->PlanCandidates(n, seq_len);
}

RerankResult PrismEngine::Rerank(const RerankRequest& request) {
  const RerankRequest* ptr = &request;
  std::vector<RerankResult> results = RerankBatch({&ptr, 1});
  return std::move(results.front());
}

std::vector<RerankResult> PrismEngine::RerankBatch(
    std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) {
  if (requests.empty()) {
    return {};
  }
  // Contexts live on the heap so their addresses stay stable for the stages.
  std::vector<std::unique_ptr<RequestContext>> contexts;
  contexts.reserve(requests.size());
  for (const RerankRequest* request : requests) {
    auto ctx = std::make_unique<RequestContext>(
        *request, next_request_id_.fetch_add(1, std::memory_order_relaxed));
    ctx->pruner_options.dispersion_threshold = dispersion_threshold();
    ctx->pruner_options.prune_winners = options_.prune_winners;
    ctx->pruner_options.kmeans_max_k = options_.kmeans_max_k;
    ctx->pruner_options.seed = options_.seed;
    planner_->Begin(ctx.get());
    contexts.push_back(std::move(ctx));
  }

  // Embed each request (in parallel when a pool is provided — the embedding
  // cache serialises its own lookups).
  if (compute_pool != nullptr && contexts.size() > 1) {
    compute_pool->ParallelFor(0, contexts.size(),
                              [&](size_t i) { embed_stage_->Run(contexts[i].get()); });
  } else {
    for (auto& ctx : contexts) {
      embed_stage_->Run(ctx.get());
    }
  }

  std::vector<RequestContext*> batch;
  batch.reserve(contexts.size());
  for (auto& ctx : contexts) {
    batch.push_back(ctx.get());
  }
  layer_loop_->Run(batch, compute_pool);

  std::vector<RerankResult> results;
  results.reserve(contexts.size());
  for (auto& ctx : contexts) {
    prune_stage_->Finalize(ctx.get());
    results.push_back(std::move(ctx->result));
  }

  // Publish the last context's trace — full per-layer records in trace
  // mode, the light per-prune-decision entries otherwise.
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_ = std::move(contexts.back()->trace);
  }
  return results;
}

}  // namespace prism

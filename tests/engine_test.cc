#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.h"
#include "src/model/layer.h"
#include "src/data/metrics.h"
#include "src/runtime/hf_runner.h"
#include "tests/test_util.h"

namespace prism {
namespace {

PrismOptions BaseOptions() {
  PrismOptions options;
  options.device = FastDevice();
  return options;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    request_ = TestRequest(config_, 12, 3);
  }

  RerankResult RunHf() {
    MemoryTracker tracker;
    HfRunnerOptions opts;
    opts.device = FastDevice();
    HfRunner hf(config_, ckpt_, opts, &tracker);
    return hf.Rerank(request_);
  }

  ModelConfig config_;
  std::string ckpt_;
  RerankRequest request_;
};

TEST_F(EngineTest, NoPruningMatchesHfExactly) {
  // Invariant 4 of DESIGN.md: with pruning disabled, PRISM's scores and top-K
  // equal the baseline bit-for-bit (monolithic forwarding is a pure
  // reorganisation of the same math).
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.pruning = false;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const RerankResult prism = engine.Rerank(request_);
  const RerankResult hf = RunHf();
  EXPECT_EQ(prism.scores, hf.scores);
  EXPECT_EQ(prism.topk, hf.topk);
}

TEST_F(EngineTest, ChunkSizeInvariance) {
  // Invariant 1: any chunk partition produces bit-identical scores.
  std::vector<float> reference;
  for (size_t chunk : {1u, 2u, 3u, 5u, 12u}) {
    MemoryTracker tracker;
    PrismOptions options = BaseOptions();
    options.pruning = false;
    options.chunk_candidates = chunk;
    PrismEngine engine(config_, ckpt_, options, &tracker);
    const RerankResult result = engine.Rerank(request_);
    if (reference.empty()) {
      reference = result.scores;
    } else {
      EXPECT_EQ(result.scores, reference) << "chunk=" << chunk;
    }
  }
}

TEST_F(EngineTest, StreamingInvariance) {
  // Invariant 2: streamed weights give bit-identical results to resident.
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions streaming = BaseOptions();
  streaming.pruning = false;
  PrismOptions resident = BaseOptions();
  resident.pruning = false;
  resident.streaming = false;
  PrismEngine a(config_, ckpt_, streaming, &t1);
  PrismEngine b(config_, ckpt_, resident, &t2);
  EXPECT_EQ(a.Rerank(request_).scores, b.Rerank(request_).scores);
}

TEST_F(EngineTest, HiddenOffloadInvariance) {
  // Invariant 3: spilling hidden states to disk round-trips bit-exactly.
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions offload = BaseOptions();
  offload.pruning = false;
  offload.offload_hidden = true;
  offload.chunk_candidates = 3;
  PrismOptions plain = BaseOptions();
  plain.pruning = false;
  plain.chunk_candidates = 3;
  PrismEngine a(config_, ckpt_, offload, &t1);
  PrismEngine b(config_, ckpt_, plain, &t2);
  EXPECT_EQ(a.Rerank(request_).scores, b.Rerank(request_).scores);
}

TEST_F(EngineTest, EmbedCacheInvariance) {
  // Invariant 8: cached embedding lookups are bit-identical to the table.
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions cached = BaseOptions();
  cached.pruning = false;
  PrismOptions full = BaseOptions();
  full.pruning = false;
  full.embed_cache = false;
  PrismEngine a(config_, ckpt_, cached, &t1);
  PrismEngine b(config_, ckpt_, full, &t2);
  EXPECT_EQ(a.Rerank(request_).scores, b.Rerank(request_).scores);
  EXPECT_GE(a.Rerank(request_).stats.embed_cache_hit_rate, 0.0);
}

TEST_F(EngineTest, PruningReducesWorkAndPreservesTopK) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.dispersion_threshold = 0.25f;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const RerankResult prism = engine.Rerank(request_);
  const RerankResult hf = RunHf();
  EXPECT_LT(prism.stats.candidate_layers, hf.stats.candidate_layers);
  EXPECT_GE(TopKOverlap(prism.topk, hf.topk, request_.k), 2.0 / 3.0);
  EXPECT_EQ(prism.topk.size(), request_.k);
}

TEST_F(EngineTest, KLargerThanCandidatesReturnsAll) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  PrismEngine engine(config_, ckpt_, options, &tracker);
  RerankRequest request = request_;
  request.k = 50;
  const RerankResult result = engine.Rerank(request);
  EXPECT_EQ(result.topk.size(), request_.docs.size());
}

TEST_F(EngineTest, KEqualsOneWorks) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.dispersion_threshold = 0.2f;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  RerankRequest request = request_;
  request.k = 1;
  const RerankResult result = engine.Rerank(request);
  EXPECT_EQ(result.topk.size(), 1u);
}

TEST_F(EngineTest, TraceModeRecordsEveryLayer) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.trace = true;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  engine.Rerank(request_);
  const auto& trace = engine.last_trace();
  ASSERT_EQ(trace.size(), config_.n_layers);
  for (size_t layer = 0; layer < trace.size(); ++layer) {
    EXPECT_EQ(trace[layer].layer, layer);
    EXPECT_EQ(trace[layer].active, request_.docs.size());
    EXPECT_EQ(trace[layer].scores.size(), request_.docs.size());
    for (float s : trace[layer].scores) {
      EXPECT_TRUE(std::isfinite(s));
    }
  }
  // Invariant 7: γ at the final layer is exactly 1, cluster-γ ≥ γ everywhere.
  const auto& final_scores = trace.back().scores;
  for (const auto& entry : trace) {
    const double gamma = GoodmanKruskalGamma(entry.scores, final_scores);
    const double cgamma = ClusterGamma(entry.scores, final_scores, entry.clusters);
    EXPECT_GE(cgamma, gamma - 1e-9);
  }
  EXPECT_DOUBLE_EQ(GoodmanKruskalGamma(final_scores, final_scores), 1.0);
}

TEST_F(EngineTest, StreamingKeepsAtMostTwoLayersResident) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.pruning = false;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  engine.Rerank(request_);
  EXPECT_LE(tracker.PeakBytes(MemCategory::kWeights),
            static_cast<int64_t>(2 * LayerBlobBytes(config_, Precision::kFp32)));
}

TEST_F(EngineTest, EmbedCacheBoundsEmbeddingMemory) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.embed_cache_fraction = 0.10;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  engine.Rerank(request_);
  EXPECT_LE(tracker.PeakBytes(MemCategory::kEmbedding),
            static_cast<int64_t>(config_.EmbeddingBlobBytes() / 9));
}

TEST_F(EngineTest, PlanChunkCandidatesRespectsBudget) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.device.activation_budget_bytes = LayerScratch::BytesFor(config_, 4 * 16, 16);
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const size_t c = engine.PlanChunkCandidates(20, 16);
  EXPECT_GE(c, 2u);
  EXPECT_LE(LayerScratch::BytesFor(config_, c * 16, 16),
            options.device.activation_budget_bytes + LayerScratch::BytesFor(config_, 16, 16));
}

TEST_F(EngineTest, PlanChunkCandidatesDegenerateCounts) {
  // A budget too small for even one candidate: the planner still returns a
  // usable chunk size, clamped to the candidate count for tiny requests.
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.device.activation_budget_bytes = 1;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  EXPECT_EQ(engine.PlanChunkCandidates(0, 16), 1u);  // No candidates: nothing to split.
  EXPECT_EQ(engine.PlanChunkCandidates(1, 16), 1u);  // Floor is min(2, n).
}

TEST_F(EngineTest, PlanChunkCandidatesFloorsAtTwoWhenOverBudget) {
  // seq_len so large a single candidate's scratch exceeds the budget: the
  // documented floor of 2 still applies (a 1-candidate chunk would leave no
  // compute window to overlap a layer load).
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.device.activation_budget_bytes = 1;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const size_t c = engine.PlanChunkCandidates(20, config_.max_seq);
  EXPECT_EQ(c, 2u);
  EXPECT_GT(LayerScratch::BytesFor(config_, config_.max_seq, config_.max_seq),
            options.device.activation_budget_bytes);
}

TEST_F(EngineTest, PlanChunkCandidatesExplicitAndUnchunked) {
  MemoryTracker tracker;
  PrismOptions explicit_options = BaseOptions();
  explicit_options.chunk_candidates = 5;
  PrismEngine explicit_engine(config_, ckpt_, explicit_options, &tracker);
  EXPECT_EQ(explicit_engine.PlanChunkCandidates(20, 16), 5u);
  EXPECT_EQ(explicit_engine.PlanChunkCandidates(3, 16), 3u);  // Clamped to n.

  MemoryTracker tracker2;
  PrismOptions unchunked = BaseOptions();
  unchunked.chunked = false;
  PrismEngine unchunked_engine(config_, ckpt_, unchunked, &tracker2);
  EXPECT_EQ(unchunked_engine.PlanChunkCandidates(20, 16), 20u);  // One monolithic chunk.
}

TEST_F(EngineTest, LowThresholdTerminatesEarly) {
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.dispersion_threshold = 0.05f;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const RerankResult result = engine.Rerank(request_);
  EXPECT_LT(result.stats.candidate_layers,
            static_cast<int64_t>(request_.docs.size() * config_.n_layers));
}

TEST_F(EngineTest, ExactRankModeMatchesFullTopKOrder) {
  // Discussion §7: prune_winners=false keeps contenders to the final layer,
  // so the top-K *order* matches full inference.
  MemoryTracker tracker;
  PrismOptions options = BaseOptions();
  options.prune_winners = false;
  options.dispersion_threshold = 0.2f;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  const RerankResult prism = engine.Rerank(request_);
  const RerankResult hf = RunHf();
  EXPECT_EQ(prism.topk, hf.topk);
}


TEST(EncoderEngineTest, EncoderModelEndToEnd) {
  // The BGE-M3-style encoder path (bidirectional attention, CLS pooling,
  // LayerNorm, GELU FFN) through the full engine with all techniques on.
  const ModelConfig config = TestModel(ModelArch::kEncoderOnly);
  const std::string ckpt = TestCheckpoint(config);
  const RerankRequest request = TestRequest(config, 12, 3);
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions no_prune;
  no_prune.device = FastDevice();
  no_prune.pruning = false;
  PrismEngine reference(config, ckpt, no_prune, &t1);
  PrismOptions pruned;
  pruned.device = FastDevice();
  pruned.dispersion_threshold = 0.25f;
  PrismEngine engine(config, ckpt, pruned, &t2);
  const RerankResult full = reference.Rerank(request);
  const RerankResult fast = engine.Rerank(request);
  EXPECT_LE(fast.stats.candidate_layers, full.stats.candidate_layers);
  EXPECT_GE(TopKOverlap(fast.topk, full.topk, request.k), 2.0 / 3.0);
}

// Threshold monotonicity (invariant 6) across several requests.
class ThresholdSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ThresholdSweepTest, WorkIsMonotoneInThreshold) {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  const RerankRequest request = TestRequest(config, 14, 4, GetParam());
  int64_t prev_work = 0;
  for (float threshold : {0.05f, 0.25f, 0.6f, 5.0f}) {
    MemoryTracker tracker;
    PrismOptions options = BaseOptions();
    options.dispersion_threshold = threshold;
    PrismEngine engine(config, ckpt, options, &tracker);
    const int64_t work = engine.Rerank(request).stats.candidate_layers;
    EXPECT_GE(work, prev_work) << "threshold " << threshold;
    prev_work = work;
  }
  // At an unreachable threshold, no pruning → full work.
  EXPECT_EQ(prev_work, static_cast<int64_t>(14 * config.n_layers));
}

INSTANTIATE_TEST_SUITE_P(Queries, ThresholdSweepTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace prism

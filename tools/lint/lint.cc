#include "tools/lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace prism::lint {
namespace {

// ---------------------------------------------------------------------------
// Scanning: split content into per-line code text (comments and string
// literals blanked, so token searches cannot fire inside either) and per-line
// comment text (where the allow directives live).
// ---------------------------------------------------------------------------

struct ScanResult {
  std::vector<std::string> code;      // [line] source with comments/strings blanked.
  std::vector<std::string> comments;  // [line] concatenated comment text.
};

ScanResult ScanContent(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  ScanResult out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  std::string raw_delim;  // For R"delim( ... )delim".

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      flush_line();
      if (state == State::kLineComment) {
        state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim".
          size_t j = i + 2;
          raw_delim.clear();
          while (j < content.size() && content[j] != '(') {
            raw_delim.push_back(content[j]);
            ++j;
          }
          state = State::kRawString;
          code_line.append("R\"\"");
          i = j;  // At the '('; body consumed by kRawString.
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          code_line.push_back('\'');
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        comment_line.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // Skip the escaped char (even across a fictitious newline).
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back('"');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (content.compare(i, closer.size(), closer) == 0) {
          state = State::kCode;
          i += closer.size() - 1;
        }
        break;
      }
    }
  }
  flush_line();
  return out;
}

bool IsBlank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return std::isspace(static_cast<unsigned char>(c)); });
}

// ---------------------------------------------------------------------------
// Allow directives: `prism-lint: allow(<rule>): <reason>`. A directive
// suppresses its rule on its own line and on the first code line after the
// directive's contiguous comment block.
// ---------------------------------------------------------------------------

struct Allowances {
  // line (1-based) -> set of rules allowed there.
  std::map<size_t, std::set<std::string>> by_line;

  bool Allowed(size_t line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

Allowances CollectAllowances(const std::string& path, const ScanResult& scan,
                             std::vector<Violation>* violations) {
  Allowances allow;
  constexpr std::string_view kMarker = "prism-lint: allow(";
  for (size_t i = 0; i < scan.comments.size(); ++i) {
    const std::string& comment = scan.comments[i];
    const size_t at = comment.find(kMarker);
    if (at == std::string::npos) {
      continue;
    }
    const size_t rule_begin = at + kMarker.size();
    const size_t rule_end = comment.find(')', rule_begin);
    if (rule_end == std::string::npos || comment.compare(rule_end, 2, "):") != 0) {
      violations->push_back({path, i + 1, "directive",
                             "malformed allow directive; expected "
                             "`prism-lint: allow(<rule>): <reason>`"});
      continue;
    }
    const std::string rule = comment.substr(rule_begin, rule_end - rule_begin);
    std::string reason = comment.substr(rule_end + 2);
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.front()))) {
      reason.erase(reason.begin());
    }
    if (reason.empty()) {
      violations->push_back({path, i + 1, "directive",
                             "allow(" + rule + ") without a reason; the reason is mandatory"});
      continue;
    }
    // Cover the directive's own line, then the first code line after the
    // contiguous comment/blank block it sits in.
    allow.by_line[i + 1].insert(rule);
    for (size_t j = i + 1; j < scan.code.size(); ++j) {
      if (!IsBlank(scan.code[j])) {
        allow.by_line[j + 1].insert(rule);
        break;
      }
    }
  }
  return allow;
}

// ---------------------------------------------------------------------------
// Rule 1: include-layering.
// ---------------------------------------------------------------------------

// The DAG, as ranks. An include is legal if the included layer's rank is
// strictly lower, or the layers are identical. Sibling layers share a rank
// (retrieval/runtime, core/apps) so that neither may include the other.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0}, {"tensor", 1},  {"storage", 2}, {"model", 3}, {"data", 4},
      {"retrieval", 5}, {"runtime", 5}, {"core", 6}, {"apps", 6}, {"serving", 7},
  };
  return kRanks;
}

// "src/<layer>/..." -> layer, or "" when the path is not in a known layer.
std::string LayerOf(const std::string& path) {
  constexpr std::string_view kPrefix = "src/";
  if (path.compare(0, kPrefix.size(), kPrefix) != 0) {
    return "";
  }
  const size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos) {
    return "";
  }
  const std::string layer = path.substr(kPrefix.size(), slash - kPrefix.size());
  return LayerRanks().count(layer) > 0 ? layer : "";
}

// The scanner blanks string interiors, which eats the include target — so
// detect `#include` on the comment-stripped line (a commented-out include
// must not count) but slice the quoted target out of the raw line.
void CheckIncludes(const std::string& path, const std::string& content, const ScanResult& scan,
                   const Allowances& allow, std::vector<Violation>* violations) {
  const std::string from_layer = LayerOf(path);
  if (from_layer.empty()) {
    return;
  }
  const int from_rank = LayerRanks().at(from_layer);
  std::istringstream raw(content);
  std::string raw_line;
  for (size_t i = 0; i < scan.code.size() && std::getline(raw, raw_line); ++i) {
    if (scan.code[i].find("#include") == std::string::npos) {
      continue;  // Not an include (or commented out).
    }
    const size_t q1 = raw_line.find('"');
    if (q1 == std::string::npos) {
      continue;  // System include.
    }
    const size_t q2 = raw_line.find('"', q1 + 1);
    if (q2 == std::string::npos) {
      continue;
    }
    const std::string target = raw_line.substr(q1 + 1, q2 - q1 - 1);
    const std::string to_layer = LayerOf(target);
    if (to_layer.empty() || to_layer == from_layer) {
      continue;
    }
    const int to_rank = LayerRanks().at(to_layer);
    if (to_rank < from_rank) {
      continue;
    }
    if (allow.Allowed(i + 1, "layering")) {
      continue;
    }
    violations->push_back(
        {path, i + 1, "layering",
         "src/" + from_layer + " (rank " + std::to_string(from_rank) + ") must not include " +
             target + " (src/" + to_layer + ", rank " + std::to_string(to_rank) +
             "): the layer DAG flows common -> tensor -> storage -> model -> data -> "
             "{retrieval, runtime} -> {core, apps} -> serving"});
  }
}

// ---------------------------------------------------------------------------
// Rule 2: wall-clock discipline.
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `token` in `line` as a whole identifier (not a substring of a longer
// identifier). Returns npos when absent.
size_t FindToken(const std::string& line, std::string_view token, size_t from = 0) {
  for (size_t at = line.find(token, from); at != std::string::npos;
       at = line.find(token, at + 1)) {
    const bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
    const size_t end = at + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      return at;
    }
  }
  return std::string::npos;
}

void CheckWallClock(const std::string& path, const ScanResult& scan, const Allowances& allow,
                    std::vector<Violation>* violations) {
  if (path.compare(0, 4, "src/") != 0) {
    return;
  }
  // The Clock seam itself is the one place allowed to touch the host clock.
  if (path == "src/common/clock.h" || path == "src/common/clock.cc") {
    return;
  }
  static constexpr std::array<std::string_view, 6> kBanned = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "sleep_for",    "sleep_until",  "condition_variable",
  };
  for (size_t i = 0; i < scan.code.size(); ++i) {
    for (const std::string_view token : kBanned) {
      if (FindToken(scan.code[i], token) == std::string::npos) {
        continue;
      }
      if (allow.Allowed(i + 1, "wall-clock")) {
        continue;
      }
      violations->push_back(
          {path, i + 1, "wall-clock",
           std::string(token) +
               ": scheduling time must flow through the Clock seam (src/common/clock.h); if "
               "this is genuinely device-domain or measurement time, annotate it with "
               "`// prism-lint: allow(wall-clock): <reason>`"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: atomics hygiene (explicit memory order in the hot layers).
// ---------------------------------------------------------------------------

bool InAtomicsScope(const std::string& path) {
  return path.compare(0, 9, "src/core/") == 0 || path.compare(0, 12, "src/serving/") == 0 ||
         path == "src/common/striped.h";
}

void CheckAtomics(const std::string& path, const ScanResult& scan, const Allowances& allow,
                  std::vector<Violation>* violations) {
  if (!InAtomicsScope(path)) {
    return;
  }
  static constexpr std::array<std::string_view, 9> kOps = {
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak",
  };
  static constexpr std::string_view kStrong = "compare_exchange_strong";
  for (size_t i = 0; i < scan.code.size(); ++i) {
    const std::string& line = scan.code[i];
    const auto check_op = [&](std::string_view op) {
      for (size_t at = FindToken(line, op); at != std::string::npos;
           at = FindToken(line, op, at + 1)) {
        // Must be a member call: preceded by '.' or '->' and followed by '('.
        const bool member = at > 0 && (line[at - 1] == '.' ||
                                       (at > 1 && line[at - 1] == '>' && line[at - 2] == '-'));
        const size_t paren = at + op.size();
        if (!member || paren >= line.size() || line[paren] != '(') {
          continue;
        }
        // Collect the balanced-paren argument text, possibly across lines.
        std::string args;
        int depth = 0;
        size_t row = i;
        size_t col = paren;
        bool closed = false;
        while (row < scan.code.size() && !closed) {
          const std::string& l = scan.code[row];
          for (; col < l.size(); ++col) {
            if (l[col] == '(') {
              ++depth;
            } else if (l[col] == ')') {
              --depth;
              if (depth == 0) {
                closed = true;
                break;
              }
            } else if (depth > 0) {
              args.push_back(l[col]);
            }
          }
          ++row;
          col = 0;
        }
        if (args.find("memory_order") != std::string::npos) {
          continue;
        }
        if (allow.Allowed(i + 1, "atomics")) {
          continue;
        }
        std::string message = ".";
        message += op;
        message +=
            "(...) without an explicit std::memory_order: implicit seq_cst is banned in "
            "src/core, src/serving and src/common/striped.h — spell the ordering "
            "(std::memory_order_seq_cst included, when seq_cst is the point)";
        violations->push_back({path, i + 1, "atomics", std::move(message)});
      }
    };
    for (const std::string_view op : kOps) {
      check_op(op);
    }
    check_op(kStrong);
  }
}

// ---------------------------------------------------------------------------
// Rule 4: raw mutexes (the annotated wrapper is mandatory in src/).
// ---------------------------------------------------------------------------

void CheckRawMutex(const std::string& path, const ScanResult& scan, const Allowances& allow,
                   std::vector<Violation>* violations) {
  if (path.compare(0, 4, "src/") != 0) {
    return;
  }
  if (path == "src/common/mutex.h") {
    return;  // The wrapper's own definition.
  }
  static constexpr std::array<std::string_view, 8> kBanned = {
      "std::mutex",       "std::timed_mutex", "std::recursive_mutex", "std::shared_mutex",
      "std::lock_guard",  "std::unique_lock", "std::scoped_lock",     "std::shared_lock",
  };
  for (size_t i = 0; i < scan.code.size(); ++i) {
    for (const std::string_view token : kBanned) {
      // "std::mutex" must not fire inside "std::mutex_something": FindToken
      // needs the token to start at a non-ident boundary; ':' is not an
      // ident char so the left edge is fine, and the right-edge check
      // rejects longer identifiers.
      if (FindToken(scan.code[i], token.substr(5)) == std::string::npos ||
          scan.code[i].find(token) == std::string::npos) {
        continue;
      }
      if (allow.Allowed(i + 1, "raw-mutex")) {
        continue;
      }
      violations->push_back(
          {path, i + 1, "raw-mutex",
           std::string(token) +
               ": use prism::Mutex / MutexLock (src/common/mutex.h) so clang's thread-safety "
               "analysis sees the lock"});
    }
  }
}

}  // namespace

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::vector<Violation> LintFile(const std::string& path, const std::string& content) {
  std::vector<Violation> violations;
  const ScanResult scan = ScanContent(content);
  const Allowances allow = CollectAllowances(path, scan, &violations);
  CheckIncludes(path, content, scan, allow, &violations);
  CheckWallClock(path, scan, allow, &violations);
  CheckAtomics(path, scan, allow, &violations);
  CheckRawMutex(path, scan, allow, &violations);
  return violations;
}

std::vector<Violation> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Violation> violations;
  const fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) {
    violations.push_back({root, 0, "directive", "no src/ directory under the given root"});
    return violations;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());  // Deterministic report order.
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = file.lexically_relative(root).generic_string();
    std::vector<Violation> file_violations = LintFile(rel, buffer.str());
    violations.insert(violations.end(), std::make_move_iterator(file_violations.begin()),
                      std::make_move_iterator(file_violations.end()));
  }
  return violations;
}

}  // namespace prism::lint

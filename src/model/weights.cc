#include "src/model/weights.h"

#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/storage/blob_file.h"
#include "src/tensor/ops.h"

namespace prism {

namespace {

// Sizes of the big matrices of one layer, in order of appearance.
struct MatrixDims {
  size_t rows;
  size_t cols;
};

std::vector<MatrixDims> LayerMatrices(const ModelConfig& config) {
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  std::vector<MatrixDims> dims = {{d, d}, {d, d}, {d, d}, {d, d}};  // wq wk wv wo
  if (config.arch == ModelArch::kDecoderOnly) {
    dims.push_back({f, d});  // w_gate
  }
  dims.push_back({f, d});  // w_up
  dims.push_back({d, f});  // w_down
  return dims;
}

size_t NormBytes(const ModelConfig& config) { return 4 * config.hidden * sizeof(float); }

}  // namespace

size_t LayerBlobBytes(const ModelConfig& config, Precision precision) {
  size_t bytes = 0;
  for (const MatrixDims& m : LayerMatrices(config)) {
    bytes += MatrixSpanBytes(precision, m.rows, m.cols, config.quant_group);
  }
  return bytes + NormBytes(config);
}

void WeightView::MatMulTransB(const float* a, size_t m, float* c) const {
  switch (precision) {
    case Precision::kFp32:
      MatMulTransBRaw(a, m, cols, f32, rows, c);
      return;
    case Precision::kFp16:
      f16.MatMulTransB(a, m, c);
      return;
    case Precision::kInt8:
      i8.MatMulTransB(a, m, c);
      return;
    case Precision::kW4:
      q4.MatMulTransB(a, m, c);
      return;
  }
}

LayerView ParseLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob) {
  PRISM_CHECK_EQ(blob.size(), LayerBlobBytes(config, Precision::kFp32));
  const float* p = reinterpret_cast<const float*>(blob.data());
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  LayerView view;
  view.wq = p;
  p += d * d;
  view.wk = p;
  p += d * d;
  view.wv = p;
  p += d * d;
  view.wo = p;
  p += d * d;
  if (config.arch == ModelArch::kDecoderOnly) {
    view.w_gate = p;
    p += f * d;
  }
  view.w_up = p;
  p += f * d;
  view.w_down = p;
  p += d * f;
  view.norm1_gain = {p, d};
  p += d;
  view.norm1_bias = {p, d};
  p += d;
  view.norm2_gain = {p, d};
  p += d;
  view.norm2_bias = {p, d};
  return view;
}

AnyLayerView ParseAnyLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob,
                               Precision precision) {
  PRISM_CHECK_EQ(blob.size(), LayerBlobBytes(config, precision));
  const uint8_t* p = blob.data();
  const size_t group = config.quant_group;
  auto take = [&](size_t rows, size_t cols) {
    WeightView view;
    view.precision = precision;
    view.rows = rows;
    view.cols = cols;
    switch (precision) {
      case Precision::kFp32:
        view.f32 = reinterpret_cast<const float*>(p);
        break;
      case Precision::kFp16:
        view.f16 = Fp16MatrixView{reinterpret_cast<const uint16_t*>(p), rows, cols};
        break;
      case Precision::kInt8:
        view.i8 = Int8MatrixView{reinterpret_cast<const int8_t*>(p),
                                 reinterpret_cast<const float*>(p + rows * cols), rows, cols,
                                 group};
        break;
      case Precision::kW4:
        view.q4 = QuantMatrixView{p, reinterpret_cast<const float*>(p + rows * cols / 2), rows,
                                  cols, group};
        break;
    }
    p += MatrixSpanBytes(precision, rows, cols, group);
    return view;
  };
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  AnyLayerView view;
  view.precision = precision;
  view.wq = take(d, d);
  view.wk = take(d, d);
  view.wv = take(d, d);
  view.wo = take(d, d);
  if (config.arch == ModelArch::kDecoderOnly) {
    view.w_gate = take(f, d);
  }
  view.w_up = take(f, d);
  view.w_down = take(d, f);
  const float* fp = reinterpret_cast<const float*>(p);
  view.norm1_gain = {fp, d};
  fp += d;
  view.norm1_bias = {fp, d};
  fp += d;
  view.norm2_gain = {fp, d};
  fp += d;
  view.norm2_bias = {fp, d};
  return view;
}

Status ValidateCheckpoint(const BlobFileReader& reader, const ModelConfig& config,
                          Precision precision) {
  const size_t expect_blobs = 2 + config.n_layers;
  if (reader.blob_count() != expect_blobs) {
    return Status::InvalidArgument("checkpoint has " + std::to_string(reader.blob_count()) +
                                   " blobs, model wants " + std::to_string(expect_blobs));
  }
  const int64_t layer_bytes = static_cast<int64_t>(LayerBlobBytes(config, precision));
  for (size_t layer = 0; layer < config.n_layers; ++layer) {
    const size_t index = LayerBlobIndex(layer);
    if (reader.BlobSize(index) != layer_bytes) {
      return Status::InvalidArgument(
          "layer " + std::to_string(layer) + " blob is " + std::to_string(reader.BlobSize(index)) +
          " bytes, expected " + std::to_string(layer_bytes) + " for precision " +
          PrecisionName(precision));
    }
    if (reader.has_precision_tags()) {
      const Precision tag = reader.BlobPrecision(index);
      if (tag != precision) {
        return Status::InvalidArgument("layer " + std::to_string(layer) + " is tagged " +
                                       PrecisionName(tag) + ", engine configured for " +
                                       PrecisionName(precision));
      }
      if ((precision == Precision::kInt8 || precision == Precision::kW4) &&
          reader.BlobQuantGroup(index) != config.quant_group) {
        return Status::InvalidArgument(
            "layer " + std::to_string(layer) + " quant group " +
            std::to_string(reader.BlobQuantGroup(index)) + " != config quant_group " +
            std::to_string(config.quant_group));
      }
    }
  }
  return Status::Ok();
}

HeadWeights ParseHeadBlob(const ModelConfig& config, std::span<const uint8_t> blob) {
  PRISM_CHECK_EQ(blob.size(), config.HeadBlobBytes());
  HeadWeights head;
  head.w.resize(config.hidden);
  std::memcpy(head.w.data(), blob.data(), config.hidden * sizeof(float));
  std::memcpy(&head.bias, blob.data() + config.hidden * sizeof(float), sizeof(float));
  return head;
}

}  // namespace prism

// Transformer layer forward pass over a chunk of candidate sequences.
//
// A chunk holds C candidate sequences of identical length T as one tensor
// [C·T, hidden]. Projections and FFN run as one GEMM over all C·T rows (this
// is where the monolithic batch earns its compute efficiency); attention
// mixes tokens only *within* each candidate — the cross-encoder processes
// each (query, doc) pair jointly but candidates independently.
#ifndef PRISM_SRC_MODEL_LAYER_H_
#define PRISM_SRC_MODEL_LAYER_H_

#include "src/model/config.h"
#include "src/model/weights.h"
#include "src/tensor/tensor.h"

namespace prism {

// Workspace sized for up to `max_rows` (= chunk_candidates · seq_len) rows.
// These tensors are the "intermediate tensors" whose footprint chunked
// execution bounds (§4.3); they register under MemCategory::kActivations.
struct LayerScratch {
  Tensor normed;    // [rows, hidden]
  Tensor q, k, v;   // [rows, hidden]
  Tensor attn_ctx;  // [rows, hidden]
  Tensor attn_out;  // [rows, hidden]
  Tensor ffn_up;    // [rows, ffn]
  Tensor ffn_gate;  // [rows, ffn] (decoder only; empty otherwise)
  Tensor ffn_down;  // [rows, hidden]
  Tensor scores;    // [seq, seq] attention score scratch (one head at a time)

  static LayerScratch Make(const ModelConfig& config, size_t max_rows, size_t seq_len,
                           MemoryTracker* tracker = &MemoryTracker::Global());

  // Total tracked bytes (for chunk-size planning).
  static int64_t BytesFor(const ModelConfig& config, size_t rows, size_t seq_len);
};

// Applies one transformer layer in place to `hidden` ([C·T, hidden], C whole
// candidates of length `seq_len`). The scratch must have been created with
// max_rows >= hidden->rows() and the same seq_len.
void LayerForward(const ModelConfig& config, const AnyLayerView& weights, size_t seq_len,
                  Tensor* hidden, LayerScratch* scratch);

// Pooled-position row index of candidate `c` within a chunk tensor: last
// token for decoder-only models, first token (CLS) for encoder-only.
size_t PoolRow(const ModelConfig& config, size_t candidate, size_t seq_len);

// Classifier head: sigmoid(w · h_pool + bias) for each of the C candidates in
// `hidden`. Appends C scores to `scores_out`.
void ScoreChunk(const ModelConfig& config, const HeadWeights& head, const Tensor& hidden,
                size_t seq_len, std::vector<float>* scores_out);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_LAYER_H_

// BM25 keyword retrieval over an inverted index.
//
// The sparse half of the hybrid first-stage retrieval in Fig 1 / the RAG
// pipeline (§6.3). Standard Okapi BM25 with k1/b defaults.
#ifndef PRISM_SRC_RETRIEVAL_BM25_H_
#define PRISM_SRC_RETRIEVAL_BM25_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace prism {

struct RetrievalHit {
  size_t doc_id = 0;
  double score = 0.0;
};

class Bm25Index {
 public:
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  // Adds a document; ids are assigned sequentially from 0.
  size_t Add(const std::vector<uint32_t>& tokens);

  // Top-n documents by BM25 score (ties broken by lower doc id).
  std::vector<RetrievalHit> Search(const std::vector<uint32_t>& query, size_t n) const;

  size_t size() const { return doc_len_.size(); }

 private:
  double Idf(uint32_t term) const;

  double k1_;
  double b_;
  // term → [(doc_id, term_frequency)] with doc ids ascending.
  std::unordered_map<uint32_t, std::vector<std::pair<size_t, uint32_t>>> postings_;
  std::vector<size_t> doc_len_;
  size_t total_len_ = 0;
};

}  // namespace prism

#endif  // PRISM_SRC_RETRIEVAL_BM25_H_

// Quickstart: rerank a handful of text documents against a query with PRISM.
//
// Demonstrates the minimal public API: pick a model from the zoo, generate
// (or reuse) its checkpoint, construct a PrismEngine, build a RerankRequest
// from strings via the tokenizer, and read back the top-K with timing and
// memory statistics.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"
#include "src/model/tokenizer.h"

int main() {
  using namespace prism;

  // 1. Model + checkpoint. EnsureCheckpoint generates deterministic synthetic
  //    weights under /tmp on first use (see DESIGN.md for why weights are
  //    synthetic) and reuses them afterwards.
  const ModelConfig model = Qwen3Reranker0_6B();
  const std::string checkpoint = EnsureCheckpoint(model, /*seed=*/42);

  // 2. Engine: all four PRISM techniques on, nvidia device profile.
  PrismOptions options;
  options.device = NvidiaProfile();
  options.dispersion_threshold = 0.15f;
  PrismEngine engine(model, checkpoint, options);

  // 3. Request: a query and candidate documents. The planted relevance value
  //    stands in for learned semantics (a real deployment's model computes
  //    this from text; our synthetic weights read it from the input — the
  //    ranking behaviour is identical either way).
  const SyntheticTokenizer tokenizer(model);
  const std::vector<std::pair<std::string, float>> corpus = {
      {"how to configure overlapped layer streaming for rerankers", 0.93f},
      {"recipe for sourdough bread with rye flour", 0.08f},
      {"reranker inference on edge devices with limited memory", 0.85f},
      {"monolithic forwarding keeps a global view of all candidates", 0.78f},
      {"tourist guide to edinburgh castle and the royal mile", 0.05f},
      {"progressive cluster pruning drops hopeless candidates early", 0.81f},
      {"notes on watering succulents in winter", 0.11f},
      {"embedding table caching exploits zipfian token skew", 0.72f},
  };
  RerankRequest request;
  request.query = tokenizer.Encode("efficient on-device semantic selection");
  for (const auto& [text, relevance] : corpus) {
    request.docs.push_back(tokenizer.Encode(text));
    request.planted_r.push_back(relevance);
  }
  request.k = 3;

  // 4. Rerank and inspect. (The global tracker has been counting since the
  //    engine claimed its caches at construction — never reset it while a
  //    runner is alive.)
  const RerankResult result = engine.Rerank(request);

  std::printf("Top-%zu of %zu candidates:\n", request.k, request.docs.size());
  for (size_t rank = 0; rank < result.topk.size(); ++rank) {
    const size_t id = result.topk[rank];
    std::printf("  #%zu  doc %zu  score %.3f  \"%s\"\n", rank + 1, id, result.scores[id],
                corpus[id].first.c_str());
  }
  std::printf("\nlatency        %.1f ms\n", result.stats.latency_ms);
  std::printf("layers run     %zu / %zu (early termination by pruning)\n",
              result.stats.layers_until_done, model.n_layers);
  std::printf("candidate-layers computed  %lld / %lld\n",
              static_cast<long long>(result.stats.candidate_layers),
              static_cast<long long>(request.docs.size() * model.n_layers));
  std::printf("bytes streamed %lld (two layers resident at a time)\n",
              static_cast<long long>(result.stats.bytes_streamed));
  std::printf("embed cache hit-rate %.2f\n", result.stats.embed_cache_hit_rate);
  std::printf("peak tracked memory  %.2f MiB\n",
              static_cast<double>(MemoryTracker::Global().PeakTotal()) / (1024.0 * 1024.0));
  return 0;
}

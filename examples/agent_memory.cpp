// Agent memory (paper §6.3): a GUI agent caches successful trajectories and
// uses the reranker to pick which one to replay instead of asking the VLM.
// Compares memory-disabled, HF-reranked, and PRISM-reranked agents on the
// "video" workload.
#include <cstdio>

#include "src/apps/agent_memory.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"
#include "src/runtime/hf_runner.h"

int main() {
  using namespace prism;

  const ModelConfig model = Qwen3Reranker0_6B();
  const DeviceProfile device = NvidiaProfile();
  const std::string checkpoint = EnsureCheckpoint(model, 42);

  AgentWorkloadProfile profile = VideoWorkload();
  profile.n_tasks = 3;  // Keep the example quick.
  AgentMemoryApp app(profile, model, 0xA2);

  std::printf("Agent memory, %s workload (%zu tasks x %zu steps)\n\n", profile.name.c_str(),
              profile.n_tasks, profile.steps_per_task);

  {
    const AgentRunResult result = app.Run(nullptr);
    std::printf("[Disabled] task latency %7.0f ms  success %.3f  (every step hits the VLM)\n",
                result.avg_task_latency_ms, result.success_rate);
  }
  {
    HfRunnerOptions options;
    options.device = device;
    HfRunner hf(model, checkpoint, options);
    const AgentRunResult result = app.Run(&hf);
    std::printf("[HF]       task latency %7.0f ms  success %.3f  (rerank %0.f ms/task)\n",
                result.avg_task_latency_ms, result.success_rate, result.rerank_ms);
  }
  {
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = 0.15f;
    PrismEngine prism(model, checkpoint, options);
    const AgentRunResult result = app.Run(&prism);
    std::printf("[PRISM]    task latency %7.0f ms  success %.3f  (rerank %0.f ms/task)\n",
                result.avg_task_latency_ms, result.success_rate, result.rerank_ms);
  }
  return 0;
}

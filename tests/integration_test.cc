// End-to-end checks of the paper's headline claims on the scaled substrate:
// C1 (latency), C2 (memory), C3 (threshold trade-off) at miniature scale.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/metrics.h"
#include "src/runtime/hf_runner.h"
#include "src/runtime/offload_runner.h"
#include "tests/test_util.h"

namespace prism {
namespace {

// A device whose SSD is slow enough that offloading visibly costs latency at
// test-model scale.
DeviceProfile TestDevice() {
  DeviceProfile device = NvidiaProfile();
  device.ssd.bandwidth_bytes_per_sec = 4.0 * 1024 * 1024;
  device.ssd.latency_micros = 100;
  return device;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    request_ = TestRequest(config_, 16, 4);
  }

  ModelConfig config_;
  std::string ckpt_;
  RerankRequest request_;
};

TEST_F(IntegrationTest, C1_PrismFasterThanOffloadAtSamePrecision) {
  MemoryTracker t1;
  MemoryTracker t2;
  OffloadRunnerOptions oopts;
  oopts.device = TestDevice();
  OffloadRunner offload(config_, ckpt_, oopts, &t1);
  PrismOptions popts;
  popts.device = TestDevice();
  PrismEngine prism(config_, ckpt_, popts, &t2);

  const RerankResult r_off = offload.Rerank(request_);
  const RerankResult r_prism = prism.Rerank(request_);
  EXPECT_LT(r_prism.stats.latency_ms, r_off.stats.latency_ms);
  EXPECT_GE(TopKOverlap(r_prism.topk, r_off.topk, request_.k), 0.75);
}

TEST_F(IntegrationTest, C2_PrismPeakMemoryBelowHf) {
  MemoryTracker t_hf;
  MemoryTracker t_prism;
  {
    HfRunnerOptions hopts;
    hopts.device = FastDevice();
    HfRunner hf(config_, ckpt_, hopts, &t_hf);
    hf.Rerank(request_);
  }
  {
    PrismOptions popts;
    popts.device = FastDevice();
    popts.chunk_candidates = 4;  // Match the baseline's batch-4 activation size.
    PrismEngine prism(config_, ckpt_, popts, &t_prism);
    prism.Rerank(request_);
  }
  // Weights: 2 streamed layers vs. all layers resident. Embedding: 10% cache
  // vs. full table. Peak total strictly below the baseline's.
  EXPECT_LT(t_prism.PeakTotal(), t_hf.PeakTotal());
  // Two streamed layers vs. all n_layers resident (the 4-layer test model
  // puts this exactly at half).
  EXPECT_LE(t_prism.PeakBytes(MemCategory::kWeights),
            t_hf.PeakBytes(MemCategory::kWeights) / 2);
  EXPECT_LT(t_prism.PeakBytes(MemCategory::kEmbedding),
            t_hf.PeakBytes(MemCategory::kEmbedding) / 2);
}

TEST_F(IntegrationTest, C1_PrecisionPreservedAcrossDatasets) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner hf(config_, ckpt_, hopts, &t1);
  PrismOptions popts;
  popts.device = FastDevice();
  PrismEngine prism(config_, ckpt_, popts, &t2);

  double hf_precision = 0.0;
  double prism_precision = 0.0;
  int count = 0;
  for (const char* dataset : {"wikipedia", "beir-nq", "lotte"}) {
    const SyntheticDataset data(DatasetByName(dataset), config_, 99);
    for (size_t i = 0; i < 3; ++i) {
      const RerankQuery q = data.MakeQuery(i, 16);
      const RerankRequest request = RerankRequest::FromQuery(q, 4);
      hf_precision += PrecisionAtK(hf.Rerank(request).topk, q.relevant, 4);
      prism_precision += PrecisionAtK(prism.Rerank(request).topk, q.relevant, 4);
      ++count;
    }
  }
  hf_precision /= count;
  prism_precision /= count;
  // Paper claim: precision loss within noise (max loss ~0.008 at paper scale;
  // allow a slightly wider band at test-model scale).
  EXPECT_GE(prism_precision, hf_precision - 0.05);
}

TEST_F(IntegrationTest, C3_ThresholdTradesLatencyForAgreement) {
  MemoryTracker t1;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner hf(config_, ckpt_, hopts, &t1);

  double low_work = 0.0;
  double high_work = 0.0;
  double low_agreement = 0.0;
  double high_agreement = 0.0;
  const SyntheticDataset data(DatasetByName("wikipedia"), config_, 55);
  for (size_t i = 0; i < 4; ++i) {
    const RerankRequest request = RerankRequest::FromQuery(data.MakeQuery(i, 16), 4);
    const RerankResult ref = hf.Rerank(request);
    {
      MemoryTracker t;
      PrismOptions options;
      options.device = FastDevice();
      options.dispersion_threshold = 0.05f;
      PrismEngine engine(config_, ckpt_, options, &t);
      const RerankResult r = engine.Rerank(request);
      low_work += static_cast<double>(r.stats.candidate_layers);
      low_agreement += TopKOverlap(r.topk, ref.topk, 4);
    }
    {
      MemoryTracker t;
      PrismOptions options;
      options.device = FastDevice();
      options.dispersion_threshold = 0.45f;
      PrismEngine engine(config_, ckpt_, options, &t);
      const RerankResult r = engine.Rerank(request);
      high_work += static_cast<double>(r.stats.candidate_layers);
      high_agreement += TopKOverlap(r.topk, ref.topk, 4);
    }
  }
  EXPECT_LT(low_work, high_work);           // Lower threshold → less compute.
  EXPECT_LE(low_agreement, high_agreement + 1e-9);  // ...and no better agreement.
}

TEST_F(IntegrationTest, OverlappedStreamingHidesIoThatOffloadPays) {
  MemoryTracker t1;
  MemoryTracker t2;
  OffloadRunnerOptions oopts;
  oopts.device = TestDevice();
  OffloadRunner offload(config_, ckpt_, oopts, &t1);
  PrismOptions popts;
  popts.device = TestDevice();
  popts.pruning = false;  // Isolate the streaming effect.
  PrismEngine prism(config_, ckpt_, popts, &t2);

  const RerankResult r_off = offload.Rerank(request_);
  const RerankResult r_prism = prism.Rerank(request_);
  // The offload baseline's I/O is serial (visible stall); PRISM's overlapped
  // streaming hides most of it behind compute.
  EXPECT_LT(r_prism.stats.io_stall_ms, r_off.stats.io_stall_ms * 0.8);
}

}  // namespace
}  // namespace prism

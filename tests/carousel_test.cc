// CarouselScheduler and CarouselPass mechanics: continuous batching over the
// cyclic layer stream must keep every result bit-identical to serial
// execution while admitting at layer-0 boundaries, exiting finished requests
// mid-cycle, and reusing streamer buffers across wrap-arounds. Runs in the
// TSan and concurrency-stress CI lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/engine.h"
#include "src/core/scheduler.h"
#include "src/core/service.h"
#include "src/tensor/quant.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class CarouselTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    for (size_t i = 0; i < 8; ++i) {
      requests_.push_back(TestRequest(config_, 10 + i % 4, 3, i));
    }
  }

  PrismOptions EngineOptions() const {
    PrismOptions options;
    options.device = FastDevice();
    return options;
  }

  std::vector<RerankResult> SerialReference() {
    MemoryTracker tracker;
    PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
    std::vector<RerankResult> results;
    for (const RerankRequest& request : requests_) {
      results.push_back(engine.Rerank(request));
    }
    return results;
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> requests_;
};

TEST_F(CarouselTest, SchedulerMatchesSerialBitIdentically) {
  const std::vector<RerankResult> reference = SerialReference();

  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  CarouselScheduler scheduler(&engine, /*max_inflight=*/3, /*compute_threads=*/2);

  std::vector<RerankResult> results(requests_.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests_.size(); ++i) {
    clients.emplace_back([&, i] { results[i] = scheduler.Submit(requests_[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t i = 0; i < requests_.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << "request " << i;
    EXPECT_EQ(results[i].topk, reference[i].topk) << "request " << i;
    EXPECT_EQ(results[i].scores, reference[i].scores) << "request " << i;
    // The carousel runs exactly the layers the serial plan ran — no request
    // is forwarded outside its plan (also CHECKed inside StepLayer).
    EXPECT_EQ(results[i].stats.layers_until_done, reference[i].stats.layers_until_done)
        << "request " << i;
    EXPECT_EQ(results[i].stats.candidate_layers, reference[i].stats.candidate_layers)
        << "request " << i;
  }

  const CarouselScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, requests_.size());
  EXPECT_GE(stats.passes, 1u);
  EXPECT_GE(stats.cycles, stats.passes);

  // A request whose serial plan terminated before the last layer must have
  // exited the carousel mid-cycle instead of waiting for the wrap.
  size_t early_in_serial = 0;
  for (const RerankResult& result : reference) {
    if (result.stats.layers_until_done < config_.n_layers) {
      ++early_in_serial;
    }
  }
  if (early_in_serial > 0) {
    EXPECT_GE(stats.exited_early, 1u);
  }
}

TEST_F(CarouselTest, SchedulerMatchesSerialAtEveryReducedPrecision) {
  // The bit-identical-to-serial contract is precision-blind: the carousel
  // decodes the same quantized layer stream the serial path decodes, so each
  // tier must agree with its own serial baseline to the last bit. Cross-tier
  // drift against fp32 is golden_test's calibrated business, not ours.
  for (const Precision precision :
       {Precision::kFp16, Precision::kInt8, Precision::kW4}) {
    const std::string ckpt = TestCheckpoint(config_, precision);
    PrismOptions options = EngineOptions();
    options.precision = precision;
    MemoryTracker ref_tracker;
    PrismEngine reference(config_, ckpt, options, &ref_tracker);
    std::vector<RerankResult> expected;
    for (const RerankRequest& request : requests_) {
      expected.push_back(reference.Rerank(request));
    }

    MemoryTracker tracker;
    PrismEngine engine(config_, ckpt, options, &tracker);
    CarouselScheduler scheduler(&engine, /*max_inflight=*/3, /*compute_threads=*/2);
    std::vector<RerankResult> results(requests_.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests_.size(); ++i) {
      clients.emplace_back([&, i] { results[i] = scheduler.Submit(requests_[i]); });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < requests_.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok())
          << PrecisionName(precision) << " request " << i;
      EXPECT_EQ(results[i].topk, expected[i].topk)
          << PrecisionName(precision) << " request " << i;
      EXPECT_EQ(results[i].scores, expected[i].scores)
          << PrecisionName(precision) << " request " << i;
      EXPECT_EQ(results[i].stats.layers_until_done, expected[i].stats.layers_until_done)
          << PrecisionName(precision) << " request " << i;
    }
    EXPECT_EQ(scheduler.stats().admitted, requests_.size()) << PrecisionName(precision);
  }
}

TEST_F(CarouselTest, LingerKeepsOnePassWarmAcrossSequentialRequests) {
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);
  // Reference results up front so nothing but the inter-submit gap is on
  // the clock against the linger window.
  std::vector<RerankResult> expected;
  for (size_t round = 0; round < 3; ++round) {
    expected.push_back(reference.Rerank(requests_[round]));
  }
  // On virtual time the test is deterministic rather than merely likely:
  // this thread joins the simulation, so while it is between submissions the
  // clock cannot advance — the dispatcher's 2000 ms linger timeout can never
  // fire early, and every submission lands inside the warm window by
  // construction.
  SimClock clock;
  CarouselScheduler scheduler(&engine, /*max_inflight=*/2, /*compute_threads=*/2,
                              /*linger_ms=*/2000.0, &clock);
  {
    const ClockMembership membership(&clock);
    for (size_t round = 0; round < 3; ++round) {
      const RerankResult result = scheduler.Submit(requests_[round]);
      ASSERT_TRUE(result.status.ok());
      EXPECT_EQ(result.topk, expected[round].topk) << "round " << round;
    }
    const CarouselScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_GE(stats.cycles, 3u);
  }
}

TEST_F(CarouselTest, ZeroLingerSpinsUpOnePassPerBusyPeriod) {
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);
  SimClock clock;
  CarouselScheduler scheduler(&engine, /*max_inflight=*/2, /*compute_threads=*/2,
                              /*linger_ms=*/0.0, &clock);

  // Without a linger window each sequential submission finds the carousel
  // torn down and must spin it up again. A 1 ms virtual sleep between
  // submissions guarantees (not just makes likely, as a real-time sleep
  // would) that the dispatcher ended the pass first: virtual time can only
  // reach now+1 once every participant is parked without a nearer tag, and
  // the dispatcher's only such parking spot is the torn-down idle wait —
  // with linger 0 its timeout wait gives up at `now` without parking.
  {
    const ClockMembership membership(&clock);
    for (size_t round = 0; round < 3; ++round) {
      const RerankResult result = scheduler.Submit(requests_[round]);
      ASSERT_TRUE(result.status.ok());
      EXPECT_EQ(result.topk, reference.Rerank(requests_[round]).topk) << "round " << round;
      clock.SleepFor(1.0);
    }
  }
  EXPECT_EQ(scheduler.stats().passes, 3u);
}

TEST_F(CarouselTest, PassWrapAroundServesLateJoinerBitIdentically) {
  // Drive a CarouselPass by hand: admit A and B together, but hold B back
  // from every group of the first cycle (a late joiner riding the next
  // revolution). B's layers arrive from the *wrapped* schedule — the cyclic
  // streamer's second cycle — and its result must still be bit-identical.
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);
  const RerankResult expected_a = reference.Rerank(requests_[0]);
  const RerankResult expected_b = reference.Rerank(requests_[1]);

  std::unique_ptr<CarouselPass> pass = engine.BeginCarousel();
  ASSERT_NE(pass, nullptr);
  ASSERT_EQ(pass->n_layers(), config_.n_layers);
  std::unique_ptr<CarouselTicket> a = pass->Admit(requests_[0]);
  std::unique_ptr<CarouselTicket> b = pass->Admit(requests_[1]);

  // Cycle 0: A only. B stays parked at depth 0.
  size_t steps = 0;
  std::vector<CarouselTicket*> group;
  for (size_t layer = 0; layer < config_.n_layers && !a->done(); ++layer) {
    group.assign(1, a.get());
    pass->Step(layer, group, /*compute_pool=*/nullptr);
    ++steps;
  }
  ASSERT_TRUE(a->done());
  const RerankResult result_a = a->TakeResult();
  a.reset();

  // Realign at the next boundary if A terminated mid-cycle.
  if (steps % config_.n_layers != 0) {
    pass->SkipToNextCycle();
  }

  // Cycle 1: B rides the wrapped schedule from layer 0.
  EXPECT_EQ(b->next_layer(), 0u);
  for (size_t layer = 0; layer < config_.n_layers && !b->done(); ++layer) {
    group.assign(1, b.get());
    pass->Step(layer, group, /*compute_pool=*/nullptr);
  }
  ASSERT_TRUE(b->done());
  const RerankResult result_b = b->TakeResult();
  b.reset();

  EXPECT_EQ(result_a.topk, expected_a.topk);
  EXPECT_EQ(result_a.scores, expected_a.scores);
  EXPECT_EQ(result_b.topk, expected_b.topk);
  EXPECT_EQ(result_b.scores, expected_b.scores);
}

TEST_F(CarouselTest, AbandonedTicketReleasesSpilledChunks) {
  PrismOptions options = EngineOptions();
  options.offload_hidden = true;
  options.chunk_candidates = 3;
  options.pruning = false;  // Keep the request alive past its first layer.
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  ASSERT_NE(engine.spill_pool(), nullptr);

  std::unique_ptr<CarouselPass> pass = engine.BeginCarousel();
  std::unique_ptr<CarouselTicket> ticket = pass->Admit(requests_[0]);
  std::vector<CarouselTicket*> group{ticket.get()};
  pass->Step(0, group, nullptr);  // Chunks now parked in the spill pool.
  ASSERT_FALSE(ticket->done());
  EXPECT_GT(engine.spill_pool()->live_entries(), 0u);
  ticket.reset();  // Abandon mid-flight (what a fault wrapper does).
  EXPECT_EQ(engine.spill_pool()->live_entries(), 0u);
  // The pass is still usable for other requests afterwards.
  pass->SkipToNextCycle();
  std::unique_ptr<CarouselTicket> next = pass->Admit(requests_[1]);
  for (size_t layer = 0; layer < config_.n_layers && !next->done(); ++layer) {
    group.assign(1, next.get());
    pass->Step(layer, group, nullptr);
  }
  ASSERT_TRUE(next->done());
  EXPECT_TRUE(next->TakeResult().status.ok());
  next.reset();
  EXPECT_EQ(engine.spill_pool()->live_entries(), 0u);
}

TEST(RequestQueueTryPopTest, NonBlockingPopShedsAndDrains) {
  SimClock clock;
  RequestQueue queue(&clock);
  const ModelConfig config = TestModel();
  EXPECT_TRUE(queue.TryPopBatch(4).empty());  // Empty queue: returns, no block.

  std::vector<RerankRequest> requests;
  for (size_t i = 0; i < 3; ++i) {
    requests.push_back(TestRequest(config, 8, 2, i));
  }
  requests[1].deadline_ms = 7.0;
  std::vector<std::future<RerankResult>> futures;
  for (const RerankRequest& request : requests) {
    futures.push_back(queue.Push(request));
  }
  // Expiry is `now >= admitted + deadline`: advancing virtual time to the
  // exact expiry instant — not a tick further — must shed entry 1.
  clock.SleepUntil(7.0);
  EXPECT_EQ(clock.NowMs(), 7.0);
  std::vector<RequestQueue::Pending> batch = queue.TryPopBatch(2);
  ASSERT_EQ(batch.size(), 2u);  // Entry 1 shed, entries 0 and 2 popped.
  EXPECT_EQ(batch[0].ticket, 0u);
  EXPECT_EQ(batch[1].ticket, 2u);
  EXPECT_EQ(queue.shed_count(), 1u);
  // AwaitFuture, not a bare get(): the shed answer carries a PreWake token
  // that the awaiting side must consume (as every scheduler's Submit does).
  EXPECT_EQ(AwaitFuture(&clock, std::move(futures[1])).status.code(),
            StatusCode::kDeadlineExceeded);
  for (auto& pending : batch) {
    pending.promise.set_value(RerankResult{});
  }
  EXPECT_TRUE(queue.TryPopBatch(2).empty());
}

TEST(RequestQueueTryPopTest, EpochTagsAtDrainAndBumpsThroughQueue) {
  RequestQueue queue;
  const ModelConfig config = TestModel();
  const RerankRequest request = TestRequest(config, 8, 2);
  std::atomic<uint64_t> epoch{41};
  auto future = queue.Push(request);
  // Empty pops are not admission events: no bump (but the entry drains out
  // of staging here, picking up its tag).
  EXPECT_TRUE(queue.TryPopBatch(0, &epoch).empty());
  EXPECT_EQ(epoch.load(), 41u);
  std::vector<RequestQueue::Pending> batch = queue.TryPopBatch(1, &epoch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].tag, 41u);     // Tagged at drain...
  EXPECT_EQ(epoch.load(), 42u);     // ...bumped by the non-empty pop.
  EXPECT_EQ(epoch.load() - batch[0].tag, 1u);  // Exactly one admission event.
  batch[0].promise.set_value(RerankResult{});
  future.get();
}

}  // namespace
}  // namespace prism

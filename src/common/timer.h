// Wall-clock timing helpers used by the latency benchmarks.
#ifndef PRISM_SRC_COMMON_TIMER_H_
#define PRISM_SRC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace prism {

// Monotonic wall clock, microsecond resolution.
//
// This is the *measurement* clock — it times real compute and device work
// (bench latencies, SSD transfer charging, stage attribution), which runs at
// wall speed even under a SimClock (see src/common/clock.h: only waiting is
// virtualized). Anything that *schedules* — deadlines, arrivals, sleeps,
// TTLs — must go through the Clock seam instead, so the project linter bans
// raw std::chrono clock reads; this helper is the audited exception.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // prism-lint: allow(wall-clock): the measurement clock for real
             // compute/device-domain durations; scheduling time lives on the
             // Clock seam (src/common/clock.h).
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class WallTimer {
 public:
  WallTimer() : start_(NowMicros()) {}

  void Reset() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedMicros()) / 1e6; }

 private:
  int64_t start_;
};

// Accumulates elapsed time into a counter on destruction; for attributing
// latency to pipeline stages.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(int64_t* accum_micros) : accum_(accum_micros) {}
  ~ScopedAccumulator() { *accum_ += timer_.ElapsedMicros(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  int64_t* accum_;
  WallTimer timer_;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_TIMER_H_

// Tiny leveled logger. Thread-safe at the line level (single fprintf per line).
#ifndef PRISM_SRC_COMMON_LOGGING_H_
#define PRISM_SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace prism {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; lines below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging. Prepends "[LEVEL] " and appends a newline.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace prism

#define PRISM_LOG_DEBUG(...) ::prism::Logf(::prism::LogLevel::kDebug, __VA_ARGS__)
#define PRISM_LOG_INFO(...) ::prism::Logf(::prism::LogLevel::kInfo, __VA_ARGS__)
#define PRISM_LOG_WARN(...) ::prism::Logf(::prism::LogLevel::kWarn, __VA_ARGS__)
#define PRISM_LOG_ERROR(...) ::prism::Logf(::prism::LogLevel::kError, __VA_ARGS__)

#endif  // PRISM_SRC_COMMON_LOGGING_H_

// Figure 11: RAG personal-assistant pipeline.
//  (a) stacked stage latencies + accuracy, HF vs PRISM, on both platforms
//      (paper: Qwen3-0.6B reranker on Apple, BGE-MiniCPM on NVIDIA);
//  (b,c) memory footprint over time of the retrieve→rerank window.
//
// Flags: --queries=N --corpus=N --devices=nvidia,apple
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "src/apps/corpus.h"
#include "src/apps/rag.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 3));
  const size_t background = static_cast<size_t>(flags.GetInt("corpus", 300));
  const std::vector<std::string> devices = SplitCsv(flags.GetString("devices", "nvidia,apple"));

  PrintHeader("Figure 11 — RAG pipeline: latency, accuracy, memory");

  for (const std::string& device_name : devices) {
    const DeviceProfile device = DeviceByName(device_name);
    // The paper pairs Qwen3-0.6B with Apple and BGE-MiniCPM with NVIDIA.
    const ModelConfig model =
        device.name == "apple" ? Qwen3Reranker0_6B() : BgeRerankerV2MiniCpm();
    const SearchCorpus corpus(DatasetByName("wikipedia"), model, queries, 5, background, 0xF11);
    RagOptions options;  // Server-class generator defaults (Qwen3-32B on A800s).
    RagPipeline rag(&corpus, options);

    std::printf("\n[%s / %s]\n", device.name.c_str(), model.name.c_str());
    for (const char* system : {"HF", "PRISM"}) {
      MemoryTracker::Global().Reset();
      std::unique_ptr<Runner> hf;
      std::unique_ptr<PrismEngine> prism;
      Runner* runner;
      if (std::string(system) == "HF") {
        hf = MakeHf(model, device, Precision::kFp32);
        runner = hf.get();
      } else {
        prism = MakePrism(model, device, kThresholdLow, Precision::kFp32);
        runner = prism.get();
      }
      double sparse = 0.0;
      double dense = 0.0;
      double rerank = 0.0;
      double first_token = 0.0;
      double total = 0.0;
      double accuracy = 0.0;
      MemoryTracker::Global().StartTimeline();
      for (size_t q = 0; q < queries; ++q) {
        const RagResult result = rag.Query(q, runner);
        sparse += result.sparse_ms;
        dense += result.dense_ms;
        rerank += result.rerank_ms;
        first_token += result.first_token_ms;
        total += result.total_ms;
        accuracy += result.accuracy;
      }
      MemoryTracker::Global().StopTimeline();
      const auto n = static_cast<double>(queries);
      std::printf("  %-6s sparse %6.1f ms | dense %6.1f ms | rerank %8.1f ms | "
                  "first-token %7.1f ms | total %8.1f ms | acc %.3f\n",
                  system, sparse / n, dense / n, rerank / n, first_token / n, total / n,
                  accuracy / n);
      std::printf("         memory: peak %8.2f MiB, avg %8.2f MiB\n",
                  MiB(MemoryTracker::Global().PeakTotal()),
                  MiB(static_cast<int64_t>(MemoryTracker::Global().AverageTotal())));
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

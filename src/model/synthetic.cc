#include "src/model/synthetic.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/model/weights.h"
#include "src/storage/blob_file.h"
#include "src/tensor/quant.h"

namespace prism {

namespace {

// Fills `n` floats with N(0, std²).
void FillGaussian(Rng& rng, float* dst, size_t n, float std) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(rng.NextGaussian()) * std;
  }
}

std::span<const uint8_t> AsBytes(const std::vector<float>& v) {
  return {reinterpret_cast<const uint8_t*>(v.data()), v.size() * sizeof(float)};
}

// Builds one fp32 layer blob. Init scales follow the residual-perturbation
// calibration in DESIGN.md: with RMSNorm'd inputs (per-component ≈ 1), a
// projection with entries N(0, s²) produces outputs with per-component RMS
// ≈ s·√D, so chaining two projections (attention value→output, FFN up→down)
// yields ≈ s²·D. Solving s²·D = layer_noise gives s = √(layer_noise / D).
//
// On top of the random base, Wv and Wo receive a rank-1 v·vᵀ component
// (`config.amplify`): the value of every token carries its hidden state's
// v-component, and the output projection writes it back along v. Attention
// therefore aggregates the doc-tokens' planted relevance into the pooled
// position a little more each layer — the mechanism behind the progressive
// score divergence of Fig 2(a).
std::vector<float> MakeLayerBlob(const ModelConfig& config, Rng& rng,
                                 const std::vector<float>& v) {
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  const float s_attn = std::sqrt(config.layer_noise / static_cast<float>(d));
  const float s_ffn = std::sqrt(config.layer_noise / std::sqrt(static_cast<float>(d * f)));
  std::vector<float> blob(LayerBlobBytes(config, Precision::kFp32) / sizeof(float));
  float* p = blob.data();
  FillGaussian(rng, p, d * d, s_attn);  // wq
  p += d * d;
  FillGaussian(rng, p, d * d, s_attn);  // wk
  p += d * d;
  FillGaussian(rng, p, d * d, s_attn);  // wv
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      p[i * d + j] += config.amplify * v[i] * v[j];
    }
  }
  p += d * d;
  FillGaussian(rng, p, d * d, s_attn);  // wo
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      p[i * d + j] += config.amplify * v[i] * v[j];
    }
  }
  p += d * d;
  if (config.arch == ModelArch::kDecoderOnly) {
    FillGaussian(rng, p, f * d, s_ffn);  // w_gate
    p += f * d;
  }
  FillGaussian(rng, p, f * d, s_ffn);  // w_up
  p += f * d;
  FillGaussian(rng, p, d * f, s_ffn);  // w_down
  p += d * f;
  // Norm gains near 1 with small jitter; biases near 0.
  for (size_t i = 0; i < d; ++i) {
    p[i] = 1.0f + 0.02f * static_cast<float>(rng.NextGaussian());
  }
  p += d;
  for (size_t i = 0; i < d; ++i) {
    p[i] = 0.01f * static_cast<float>(rng.NextGaussian());
  }
  p += d;
  for (size_t i = 0; i < d; ++i) {
    p[i] = 1.0f + 0.02f * static_cast<float>(rng.NextGaussian());
  }
  p += d;
  for (size_t i = 0; i < d; ++i) {
    p[i] = 0.01f * static_cast<float>(rng.NextGaussian());
  }
  return blob;
}

// Re-encodes the big matrices of an fp32 layer blob at a reduced precision;
// norms stay fp32.
std::vector<uint8_t> ConvertLayerBlob(const ModelConfig& config,
                                      const std::vector<float>& f32_blob, Precision precision) {
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  std::vector<std::pair<size_t, size_t>> dims = {{d, d}, {d, d}, {d, d}, {d, d}};
  if (config.arch == ModelArch::kDecoderOnly) {
    dims.push_back({f, d});
  }
  dims.push_back({f, d});
  dims.push_back({d, f});

  std::vector<uint8_t> out(LayerBlobBytes(config, precision));
  const float* src = f32_blob.data();
  uint8_t* dst = out.data();
  for (const auto& [rows, cols] : dims) {
    EncodeMatrix(precision, src, rows, cols, config.quant_group, dst);
    dst += MatrixSpanBytes(precision, rows, cols, config.quant_group);
    src += rows * cols;
  }
  // Copy the trailing norm floats verbatim.
  const size_t norm_bytes = 4 * d * sizeof(float);
  std::memcpy(dst, src, norm_bytes);
  return out;
}

// Checkpoint file suffix per precision ("f32", "f16", "i8", "q4" keep the
// historic spellings short enough for /tmp listings).
const char* PrecisionFileTag(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "f32";
    case Precision::kFp16:
      return "f16";
    case Precision::kInt8:
      return "i8";
    case Precision::kW4:
      return "q4";
  }
  return "f32";
}

}  // namespace

Status GenerateCheckpoint(const ModelConfig& config, uint64_t seed, const std::string& path,
                          Precision precision) {
  PRISM_CHECK_EQ(config.hidden % config.n_heads, 0u);
  PRISM_CHECK_EQ(config.hidden % config.quant_group, 0u);
  PRISM_CHECK_EQ(config.ffn % config.quant_group, 0u);

  BlobFileWriter writer(path);
  const bool grouped = precision == Precision::kInt8 || precision == Precision::kW4;
  const uint32_t layer_group = grouped ? static_cast<uint32_t>(config.quant_group) : 0;

  // Classifier / planted-signal direction v (unit norm), generated first so
  // the layer weights' rank-1 amplification components can reference it.
  const size_t d = config.hidden;
  std::vector<float> v(d);
  {
    Rng head_rng(MixSeed(seed, 0x3000));
    FillGaussian(head_rng, v.data(), d, 1.0f);
    float norm = 0.0f;
    for (size_t i = 0; i < d; ++i) {
      norm += v[i] * v[i];
    }
    norm = std::sqrt(norm);
    for (size_t i = 0; i < d; ++i) {
      v[i] /= norm;
    }
  }

  // Embedding table: unit-norm random rows. Rows are generated independently
  // per token id (seeded by MixSeed) so row content does not depend on vocab
  // iteration order.
  {
    std::vector<float> table(config.vocab_size * d);
    for (size_t tok = 0; tok < config.vocab_size; ++tok) {
      Rng row_rng(MixSeed(seed, 0x1000 + tok));
      float* row = table.data() + tok * d;
      FillGaussian(row_rng, row, d, 1.0f);
      float norm = 0.0f;
      for (size_t i = 0; i < d; ++i) {
        norm += row[i] * row[i];
      }
      norm = std::sqrt(norm);
      for (size_t i = 0; i < d; ++i) {
        row[i] /= norm;
      }
    }
    writer.AddBlob(AsBytes(table));  // Embedding stays fp32 at every tier.
  }

  // Transformer layers.
  for (size_t layer = 0; layer < config.n_layers; ++layer) {
    Rng layer_rng(MixSeed(seed, 0x2000 + layer));
    const std::vector<float> blob = MakeLayerBlob(config, layer_rng, v);
    if (precision == Precision::kFp32) {
      writer.AddBlob(AsBytes(blob), Precision::kFp32, 0);
    } else {
      const std::vector<uint8_t> encoded = ConvertLayerBlob(config, blob, precision);
      writer.AddBlob(encoded, precision, layer_group);
    }
  }

  // Head: classifier weight = head_scale · v, zero bias.
  {
    std::vector<float> head(d + 1);
    for (size_t i = 0; i < d; ++i) {
      head[i] = config.head_scale * v[i];
    }
    head[d] = 0.0f;  // bias
    writer.AddBlob(AsBytes(head));
  }

  return writer.Finish();
}

std::string EnsureCheckpoint(const ModelConfig& config, uint64_t seed, Precision precision) {
  std::string name = config.name;
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  // The "v2" in the base name keeps these distinct from stale format-v1
  // checkpoints left in /tmp by older builds.
  const std::string base = "/tmp/prism_ckpt_v2_" + name + "_" + std::to_string(seed);
  const std::string path = base + "." + PrecisionFileTag(precision) + ".bin";
  struct stat st{};
  const bool have = ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
  if (!have) {
    // Generate under a pid-unique name and publish with rename() so that
    // concurrent processes (e.g. `ctest -j` binaries sharing a model) never
    // observe a half-written checkpoint; rename() also makes the last
    // concurrent generator win wholesale instead of interleaving writes.
    const std::string tmp = path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const Status status = GenerateCheckpoint(config, seed, tmp, precision);
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
    PRISM_CHECK(::rename(tmp.c_str(), path.c_str()) == 0);
  }
  return path;
}

}  // namespace prism

// RAG personal assistant (paper §6.3): hybrid sparse+dense retrieval over a
// personal corpus, PRISM reranking, and simulated LLM generation — printing
// the stage breakdown the paper's Fig 11 reports.
#include <cstdio>

#include "src/apps/corpus.h"
#include "src/apps/rag.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"

int main() {
  using namespace prism;

  const ModelConfig model = BgeRerankerV2MiniCpm();  // The paper's NVIDIA pairing.
  const DeviceProfile device = NvidiaProfile();
  const std::string checkpoint = EnsureCheckpoint(model, 42);

  const SearchCorpus corpus(DatasetByName("wikipedia"), model, /*n_queries=*/2,
                            /*relevant_per_query=*/5, /*background_docs=*/250, 0x4A9);
  RagOptions options;  // Dense = IVF index (Milvus stand-in), top-10+10 → rerank top-10.
  RagPipeline rag(&corpus, options);

  PrismOptions prism_options;
  prism_options.device = device;
  prism_options.dispersion_threshold = 0.15f;
  PrismEngine prism(model, checkpoint, prism_options);

  for (size_t q = 0; q < corpus.queries().size(); ++q) {
    const RagResult result = rag.Query(q, &prism);
    std::printf("query %zu: sparse %5.1f ms | dense %5.1f ms | rerank %8.1f ms | "
                "first token %7.1f ms | total %8.1f ms | accuracy %.2f\n",
                q, result.sparse_ms, result.dense_ms, result.rerank_ms, result.first_token_ms,
                result.total_ms, result.accuracy);
  }
  return 0;
}

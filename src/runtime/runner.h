// Common reranker-runner interface shared by the baselines and PRISM.
//
// Contract:
//  - Rerank() is synchronous: it returns only when `result.status` and, on
//    success, `result.topk` (best first) and `result.scores` (NaN for
//    candidates pruned before scoring) are final. When `status.ok()`,
//    `topk.size() == min(request.k, request.docs.size())`; when it is not
//    (an injected fault, a shed deadline), topk is empty and scores carry
//    no ranking (empty or all-NaN) — callers must check `status` before
//    touching either.
//  - Determinism: the same request against the same checkpoint and options
//    yields bit-identical topk/scores; only the timing fields of
//    RerankStats may vary between runs.
//  - Threading: implementations are not required to be thread-safe;
//    serialise calls externally (RerankService's SerialScheduler) unless an
//    implementation documents stronger guarantees. PrismEngine does:
//    concurrent Rerank/RerankBatch calls are safe, and batching preserves
//    the per-request determinism above.
#ifndef PRISM_SRC_RUNTIME_RUNNER_H_
#define PRISM_SRC_RUNTIME_RUNNER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/dataset.h"
#include "src/model/config.h"

namespace prism {

class ThreadPool;

struct RerankRequest {
  std::vector<uint32_t> query;
  std::vector<std::vector<uint32_t>> docs;
  std::vector<float> planted_r;  // One per doc (see pair_encoder.h).
  size_t k = 5;

  // Admission class: higher-priority requests are dispatched first
  // (priority-then-FIFO, see RequestQueue in src/core/scheduler.h). 0 is the
  // default class; runners themselves ignore the field.
  int priority = 0;

  // Time budget measured from admission (Scheduler::Submit). <= 0 means no
  // deadline. A request still queued when its budget expires is shed: it
  // returns a kDeadlineExceeded result without burning an engine pass.
  double deadline_ms = 0.0;

  static RerankRequest FromQuery(const RerankQuery& q, size_t k);
};

struct RerankStats {
  double latency_ms = 0.0;
  double embed_ms = 0.0;
  double compute_ms = 0.0;
  double io_stall_ms = 0.0;   // Compute-visible I/O waits.
  int64_t candidate_layers = 0;  // Σ over layers of active candidates (work).
  int64_t bytes_streamed = 0;
  double embed_cache_hit_rate = -1.0;  // <0 when no cache in use.
  size_t layers_until_done = 0;        // Last layer index executed + 1.
};

struct RerankResult {
  // Ok for a served request. kDeadlineExceeded when the request was shed
  // before reaching an engine, kIoError (etc.) when a device fault surfaced;
  // topk/scores carry no ranking in either failure case.
  Status status;
  std::vector<size_t> topk;    // Candidate indices, best first.
  std::vector<float> scores;   // Score per candidate; NaN if pruned early.
  RerankStats stats;
};

class Runner {
 public:
  virtual ~Runner() = default;
  virtual RerankResult Rerank(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

// A runner that can additionally serve several requests as one coalesced
// pass. BatchScheduler drives this interface, which is what lets tests slot
// a fault-injection wrapper (tests/fault_injection.h) between the scheduler
// and the real engine. The contract extends Runner's: results[i] corresponds
// to requests[i], each result's status is per-request (one failing request
// must not poison its batchmates), and when `compute_pool` is non-null the
// implementation may fan per-request work out across it.
class BatchRunner : public Runner {
 public:
  virtual std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                                ThreadPool* compute_pool = nullptr) = 0;
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_RUNNER_H_

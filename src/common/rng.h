// Deterministic pseudo-random number generation.
//
// Everything stochastic in the repository (synthetic weights, datasets, noise)
// derives from an explicit 64-bit seed via these generators, so every
// experiment is bit-reproducible. SplitMix64 is used for seeding/hashing,
// xoshiro256** as the bulk generator.
#ifndef PRISM_SRC_COMMON_RNG_H_
#define PRISM_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace prism {

// One SplitMix64 step; also useful as a 64-bit mixing/hash function.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless mix of two 64-bit values into one (for deriving per-item seeds).
inline uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ULL);
  return SplitMix64(s);
}

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Standard normal via Box–Muller (one value per call; the pair's second
  // member is cached).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_RNG_H_

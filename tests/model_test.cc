#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/timer.h"
#include "src/model/config.h"
#include "src/model/embedding.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"
#include "src/model/synthetic.h"
#include "src/model/tokenizer.h"
#include "src/model/weights.h"
#include "src/storage/blob_file.h"
#include "tests/test_util.h"

namespace prism {
namespace {

SsdConfig Unthrottled() {
  SsdConfig config;
  config.throttle = false;
  return config;
}

TEST(ConfigTest, ZooHasFivePaperModels) {
  const auto zoo = ModelZoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].name, "Qwen3-Reranker-0.6B");
  EXPECT_EQ(zoo[4].arch, ModelArch::kEncoderOnly);  // BGE-M3 is encoder-only.
  // Parameter ordering mirrors the paper's model sizes.
  EXPECT_LT(ModelByName("Qwen3-Reranker-0.6B").TotalParams(),
            ModelByName("Qwen3-Reranker-4B").TotalParams());
  EXPECT_LT(ModelByName("Qwen3-Reranker-4B").TotalParams(),
            ModelByName("Qwen3-Reranker-8B").TotalParams());
}

TEST(ConfigTest, LayerParamsCountsArchDifference) {
  ModelConfig dec = TestModel(ModelArch::kDecoderOnly);
  ModelConfig enc = TestModel(ModelArch::kEncoderOnly);
  // Decoder has a gate matrix the encoder lacks.
  EXPECT_EQ(dec.LayerParams() - enc.LayerParams(), dec.hidden * dec.ffn);
}

TEST(ConfigTest, HeadDimDividesHidden) {
  for (const ModelConfig& config : ModelZoo()) {
    EXPECT_EQ(config.hidden % config.n_heads, 0u) << config.name;
    EXPECT_EQ(config.hidden % config.quant_group, 0u) << config.name;
    EXPECT_EQ(config.ffn % config.quant_group, 0u) << config.name;
  }
}

TEST(SyntheticTest, CheckpointIsDeterministic) {
  const ModelConfig config = TestModel();
  const std::string a = MakeTempDevicePath("ckpt_a");
  const std::string b = MakeTempDevicePath("ckpt_b");
  ASSERT_TRUE(GenerateCheckpoint(config, 7, a).ok());
  ASSERT_TRUE(GenerateCheckpoint(config, 7, b).ok());
  auto ra = BlobFileReader::Open(a, Unthrottled());
  auto rb = BlobFileReader::Open(b, Unthrottled());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t i = 0; i < ra.value()->blob_count(); ++i) {
    std::vector<uint8_t> ba(static_cast<size_t>(ra.value()->BlobSize(i)));
    std::vector<uint8_t> bb(static_cast<size_t>(rb.value()->BlobSize(i)));
    ASSERT_TRUE(ra.value()->ReadBlob(i, ba).ok());
    ASSERT_TRUE(rb.value()->ReadBlob(i, bb).ok());
    EXPECT_EQ(ba, bb) << "blob " << i;
  }
  ::unlink(a.c_str());
  ::unlink(b.c_str());
}

TEST(SyntheticTest, BlobCountAndSizesMatchConfig) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value()->blob_count(), config.n_layers + 2);
  EXPECT_EQ(reader.value()->BlobSize(EmbeddingBlobIndex()),
            static_cast<int64_t>(config.EmbeddingBlobBytes()));
  EXPECT_EQ(reader.value()->BlobSize(LayerBlobIndex(0)),
            static_cast<int64_t>(LayerBlobBytes(config, Precision::kFp32)));
  EXPECT_EQ(reader.value()->BlobSize(HeadBlobIndex(config)),
            static_cast<int64_t>(config.HeadBlobBytes()));
}

TEST(SyntheticTest, QuantizedCheckpointSmaller) {
  const ModelConfig config = TestModel();
  const std::string f32 = TestCheckpoint(config);
  const std::string q4 = TestCheckpoint(config, Precision::kW4);
  auto rf = BlobFileReader::Open(f32, Unthrottled());
  auto rq = BlobFileReader::Open(q4, Unthrottled());
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rq.ok());
  EXPECT_LT(rq.value()->BlobSize(LayerBlobIndex(0)), rf.value()->BlobSize(LayerBlobIndex(0)) / 3);
}

TEST(SyntheticTest, ClassifierIsScaledUnitVector) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  std::vector<uint8_t> blob(static_cast<size_t>(reader.value()->BlobSize(HeadBlobIndex(config))));
  ASSERT_TRUE(reader.value()->ReadBlob(HeadBlobIndex(config), blob).ok());
  const HeadWeights head = ParseHeadBlob(config, blob);
  float norm = 0.0f;
  for (float w : head.w) {
    norm += w * w;
  }
  EXPECT_NEAR(std::sqrt(norm), config.head_scale, 1e-3f);
  EXPECT_EQ(head.bias, 0.0f);
}

TEST(WeightsTest, LayerViewPointersPartitionBlob) {
  const ModelConfig config = TestModel();
  std::vector<uint8_t> blob(LayerBlobBytes(config, Precision::kFp32));
  const LayerView view = ParseLayerBlob(config, blob);
  const auto* base = reinterpret_cast<const float*>(blob.data());
  EXPECT_EQ(view.wq, base);
  EXPECT_EQ(view.wk, base + config.hidden * config.hidden);
  EXPECT_NE(view.w_gate, nullptr);  // Decoder layout.
  EXPECT_EQ(view.norm2_bias.size(), config.hidden);
  // The last norm ends exactly at the blob end.
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(view.norm2_bias.data() + config.hidden),
            blob.data() + blob.size());
}

TEST(WeightsTest, EncoderLayoutHasNoGate) {
  const ModelConfig config = TestModel(ModelArch::kEncoderOnly);
  std::vector<uint8_t> blob(LayerBlobBytes(config, Precision::kFp32));
  const LayerView view = ParseLayerBlob(config, blob);
  EXPECT_EQ(view.w_gate, nullptr);
}

TEST(EmbeddingTest, CacheMatchesFullTableBitExact) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  FullEmbeddingTable table(config, reader.value().get(), &tracker);
  EmbeddingCache cache(config, reader.value().get(), 16, &tracker);
  std::vector<float> a(config.hidden);
  std::vector<float> b(config.hidden);
  for (uint32_t token : {0u, 5u, 100u, 5u, 511u, 100u}) {
    table.Lookup(token, a);
    cache.Lookup(token, b);
    EXPECT_EQ(a, b) << "token " << token;
  }
}

TEST(EmbeddingTest, CacheLruEvicts) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  EmbeddingCache cache(config, reader.value().get(), 2, &tracker);
  std::vector<float> buf(config.hidden);
  cache.Lookup(1, buf);
  cache.Lookup(2, buf);
  cache.Lookup(1, buf);  // 1 is now most-recent.
  cache.Lookup(3, buf);  // Evicts 2.
  cache.Lookup(1, buf);  // Hit.
  EXPECT_EQ(cache.resident_rows(), 2u);
  const EmbeddingCacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);    // Second and third lookups of 1.
  EXPECT_EQ(stats.misses, 3);  // 1, 2, 3 first touches.
}

TEST(EmbeddingTest, CacheCapacityNeverExceeded) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  EmbeddingCache cache(config, reader.value().get(), 8, &tracker);
  std::vector<float> buf(config.hidden);
  Rng rng(40);
  for (int i = 0; i < 200; ++i) {
    cache.Lookup(static_cast<uint32_t>(rng.NextBelow(config.vocab_size)), buf);
    EXPECT_LE(cache.resident_rows(), 8u);
  }
}

TEST(EmbeddingTest, ZipfTrafficHasHighHitRate) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  // 10% of the vocabulary, the paper's setting.
  EmbeddingCache cache(config, reader.value().get(), config.vocab_size / 10, &tracker);
  const ZipfSampler zipf(config.vocab_size, 1.1);
  Rng rng(41);
  std::vector<float> buf(config.hidden);
  for (int i = 0; i < 4000; ++i) {
    cache.Lookup(static_cast<uint32_t>(zipf.Sample(rng)), buf);
  }
  EXPECT_GT(cache.stats().HitRate(), 0.5);
}

TEST(EmbeddingTest, ConcurrentLookupsMatchTableBitExactly) {
  // The cache is shared by every in-flight request; parallel lookups and
  // prefetches must return table-exact rows regardless of LRU interleaving
  // (this is also the ThreadSanitizer target for the cache's locking).
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  FullEmbeddingTable table(config, reader.value().get(), &tracker);
  EmbeddingCache cache(config, reader.value().get(), 16, &tracker);  // Tiny: force evictions.
  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(100 + w);
      std::vector<float> expected(config.hidden);
      std::vector<float> got(config.hidden);
      for (int i = 0; i < 200; ++i) {
        if (i % 16 == 0) {
          std::vector<uint32_t> batch;
          for (int j = 0; j < 8; ++j) {
            batch.push_back(static_cast<uint32_t>(rng.NextBelow(config.vocab_size)));
          }
          cache.PrefetchTokens(batch);
        }
        const auto token = static_cast<uint32_t>(rng.NextBelow(config.vocab_size));
        table.Lookup(token, expected);
        cache.Lookup(token, got);
        EXPECT_EQ(expected, got) << "token " << token;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const EmbeddingCacheStats stats = cache.stats();
  EXPECT_GT(stats.misses, 0);
  EXPECT_LE(cache.resident_rows(), 16u);
}

TEST(EmbeddingTest, LookupHitsProceedWhilePrefetchReadsDevice) {
  // PrefetchTokens must not hold the cache mutex across its batched device
  // read: a prefetch of many missing rows on a slow SSD takes hundreds of
  // milliseconds, and concurrent Lookup *hits* — pure memory copies — must
  // not wait behind it. (This is the regression test for the lock-holding
  // bug: with the lock held across ReadBlobRanges, the hit below blocked
  // for the whole device wait.)
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  SsdConfig slow;
  slow.throttle = true;
  // 128 B rows at 16 KiB/s: a 48-row prefetch models ~375 ms of device
  // time; a single warm-up row miss ~8 ms.
  slow.bandwidth_bytes_per_sec = 16.0 * 1024;
  slow.latency_micros = 200;
  auto reader = BlobFileReader::Open(path, slow);
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  EmbeddingCache cache(config, reader.value().get(), 64, &tracker);
  std::vector<float> buf(config.hidden);
  cache.Lookup(7, buf);  // Warm one row (pays a single slow row read).

  std::vector<uint32_t> missing;
  for (uint32_t t = 100; t < 148; ++t) {
    missing.push_back(t);
  }
  const WallTimer prefetch_timer;
  std::thread prefetcher([&] { cache.PrefetchTokens(missing); });
  // Land the hits inside the prefetch's device window.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  double max_hit_ms = 0.0;
  std::vector<float> hit(config.hidden);
  for (int i = 0; i < 20; ++i) {
    const WallTimer timer;
    cache.Lookup(7, hit);
    max_hit_ms = std::max(max_hit_ms, timer.ElapsedMillis());
  }
  EXPECT_EQ(hit, buf);
  prefetcher.join();
  const double prefetch_ms = prefetch_timer.ElapsedMillis();
  // The prefetch spent its life on the device; the hits never touched it.
  // Bound generous enough for TSan, still far below the device read.
  EXPECT_GT(prefetch_ms, 200.0);
  EXPECT_LT(max_hit_ms, 100.0);
  EXPECT_EQ(cache.resident_rows(), 49u);  // 48 prefetched + the warm row.
}

TEST(PairEncoderTest, FixedLengthWithMarkers) {
  const ModelConfig config = TestModel();
  const std::vector<uint32_t> query = {20, 21, 22};
  const std::vector<uint32_t> doc = {30, 31};
  const PairInput pair = BuildPairInput(config, query, doc, 0.7f, 16);
  ASSERT_EQ(pair.tokens.size(), 16u);
  EXPECT_EQ(pair.tokens.front(), kBosToken);
  EXPECT_EQ(pair.tokens.back(), kEosToken);
  EXPECT_NE(std::find(pair.tokens.begin(), pair.tokens.end(), kSepToken), pair.tokens.end());
  // Short doc cycles to fill.
  int count30 = 0;
  for (uint32_t t : pair.tokens) {
    count30 += t == 30 ? 1 : 0;
  }
  EXPECT_GT(count30, 1);
}

TEST(PairEncoderTest, ChooseSeqLenClamps) {
  const ModelConfig config = TestModel();  // max_seq = 32
  const std::vector<uint32_t> query(4, 20);
  EXPECT_EQ(ChooseSeqLen(config, query, {{30, 31}}), 9u);
  const std::vector<std::vector<uint32_t>> long_docs = {std::vector<uint32_t>(100, 30)};
  EXPECT_EQ(ChooseSeqLen(config, query, long_docs), config.max_seq);
}

TEST(PairEncoderTest, PoolRowByArch) {
  const ModelConfig dec = TestModel(ModelArch::kDecoderOnly);
  const ModelConfig enc = TestModel(ModelArch::kEncoderOnly);
  EXPECT_EQ(PoolRow(dec, 2, 10), 2 * 10 + 9);  // Last token.
  EXPECT_EQ(PoolRow(enc, 2, 10), 2 * 10);      // CLS.
}


TEST(EmbeddingTest, PrefetchTokensBatchesMisses) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  FullEmbeddingTable table(config, reader.value().get(), &tracker);
  EmbeddingCache cache(config, reader.value().get(), 32, &tracker);
  const std::vector<uint32_t> tokens = {5, 9, 9, 5, 200, 333, 200};
  cache.PrefetchTokens(tokens);
  EXPECT_EQ(cache.resident_rows(), 4u);  // Unique tokens only.
  // All subsequent lookups hit and match the table bit-exactly.
  const int64_t misses_after_prefetch = cache.stats().misses;
  std::vector<float> a(config.hidden);
  std::vector<float> b(config.hidden);
  for (uint32_t token : tokens) {
    table.Lookup(token, a);
    cache.Lookup(token, b);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(cache.stats().misses, misses_after_prefetch);
}

TEST(EmbeddingTest, PrefetchClampsToCapacity) {
  const ModelConfig config = TestModel();
  const std::string path = TestCheckpoint(config);
  auto reader = BlobFileReader::Open(path, Unthrottled());
  ASSERT_TRUE(reader.ok());
  MemoryTracker tracker;
  EmbeddingCache cache(config, reader.value().get(), 4, &tracker);
  std::vector<uint32_t> tokens;
  for (uint32_t t = 0; t < 20; ++t) {
    tokens.push_back(t);
  }
  cache.PrefetchTokens(tokens);
  EXPECT_LE(cache.resident_rows(), 4u);
}

TEST(TokenizerTest, DeterministicAndInRange) {
  const ModelConfig config = TestModel();
  const SyntheticTokenizer tokenizer(config);
  const auto a = tokenizer.Encode("Hello, World! hello");
  const auto b = tokenizer.Encode("hello world hello");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);  // Case/punctuation-insensitive.
  EXPECT_EQ(a[0], a[2]);
  for (uint32_t t : a) {
    EXPECT_GE(t, kFirstWordToken);
    EXPECT_LT(t, config.vocab_size);
  }
}

TEST(TokenizerTest, DifferentWordsUsuallyDiffer) {
  const ModelConfig config = TestModel();
  const SyntheticTokenizer tokenizer(config);
  EXPECT_NE(tokenizer.TokenOf("alpha"), tokenizer.TokenOf("beta"));
}

}  // namespace
}  // namespace prism

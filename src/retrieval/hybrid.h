// Hybrid first-stage retrieval (Fig 1): keyword (BM25) top-n plus dense
// (bi-encoder + vector index) top-n, deduplicated and backfilled to exactly
// the requested candidate count, preserving each source's rank order.
#ifndef PRISM_SRC_RETRIEVAL_HYBRID_H_
#define PRISM_SRC_RETRIEVAL_HYBRID_H_

#include <vector>

#include "src/retrieval/bm25.h"

namespace prism {

// Interleaves `sparse` and `dense` hit lists (sparse first at each rank),
// dropping duplicate doc ids, until `total` unique docs are collected or both
// lists are exhausted.
std::vector<size_t> FuseHits(const std::vector<RetrievalHit>& sparse,
                             const std::vector<RetrievalHit>& dense, size_t total);

}  // namespace prism

#endif  // PRISM_SRC_RETRIEVAL_HYBRID_H_

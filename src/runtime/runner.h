// Common reranker-runner interface shared by the baselines and PRISM.
//
// Contract:
//  - Rerank() is synchronous: it returns only when `result.topk` (best
//    first) and `result.scores` (NaN for candidates pruned before scoring)
//    are final. `topk.size() == min(request.k, request.docs.size())`.
//  - Determinism: the same request against the same checkpoint and options
//    yields bit-identical topk/scores; only the timing fields of
//    RerankStats may vary between runs.
//  - Threading: implementations are not required to be thread-safe;
//    serialise calls externally (RerankService's SerialScheduler) unless an
//    implementation documents stronger guarantees. PrismEngine does:
//    concurrent Rerank/RerankBatch calls are safe, and batching preserves
//    the per-request determinism above.
#ifndef PRISM_SRC_RUNTIME_RUNNER_H_
#define PRISM_SRC_RUNTIME_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/model/config.h"

namespace prism {

struct RerankRequest {
  std::vector<uint32_t> query;
  std::vector<std::vector<uint32_t>> docs;
  std::vector<float> planted_r;  // One per doc (see pair_encoder.h).
  size_t k = 5;

  static RerankRequest FromQuery(const RerankQuery& q, size_t k);
};

struct RerankStats {
  double latency_ms = 0.0;
  double embed_ms = 0.0;
  double compute_ms = 0.0;
  double io_stall_ms = 0.0;   // Compute-visible I/O waits.
  int64_t candidate_layers = 0;  // Σ over layers of active candidates (work).
  int64_t bytes_streamed = 0;
  double embed_cache_hit_rate = -1.0;  // <0 when no cache in use.
  size_t layers_until_done = 0;        // Last layer index executed + 1.
};

struct RerankResult {
  std::vector<size_t> topk;    // Candidate indices, best first.
  std::vector<float> scores;   // Score per candidate; NaN if pruned early.
  RerankStats stats;
};

class Runner {
 public:
  virtual ~Runner() = default;
  virtual RerankResult Rerank(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_RUNNER_H_

// Figures 12–13: agent-memory application.
//  Fig 12: average task latency (env / inference / rerank breakdown) and task
//          success rate for video & community workloads, three systems:
//          memory Disabled, HF reranker, PRISM ("Ours").
//  Fig 13: memory footprint during reranked steps (peak comparison).
//
// Flags: --device=nvidia|apple --tasks=N --steps=N
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/agent_memory.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const ModelConfig model = Qwen3Reranker0_6B();  // The paper's agent reranker.

  PrintHeader("Figures 12–13 — agent memory (" + device.name + ", " + model.name + ")");

  for (AgentWorkloadProfile profile : {VideoWorkload(), CommunityWorkload()}) {
    if (flags.Has("tasks")) {
      profile.n_tasks = static_cast<size_t>(flags.GetInt("tasks", profile.n_tasks));
    }
    if (flags.Has("steps")) {
      profile.steps_per_task = static_cast<size_t>(flags.GetInt("steps", profile.steps_per_task));
    }
    AgentMemoryApp app(profile, model, 0xA6E47);
    std::printf("\n[%s workload: %zu tasks × %zu steps]\n", profile.name.c_str(),
                profile.n_tasks, profile.steps_per_task);
    std::printf("  %-10s %12s %8s %10s %10s %10s %10s\n", "system", "task lat", "success",
                "env", "inference", "rerank", "peak MiB");

    auto report = [&](const char* name, Runner* runner) {
      const AgentRunResult result = app.Run(runner);
      std::printf("  %-10s %9.0f ms %8.3f %7.0f ms %7.0f ms %7.0f ms %10.2f\n", name,
                  result.avg_task_latency_ms, result.success_rate, result.env_ms,
                  result.inference_ms, result.rerank_ms,
                  MiB(MemoryTracker::Global().PeakTotal()));
    };
    MemoryTracker::Global().Reset();
    report("Disable", nullptr);
    {
      auto runner = FreshRunner([&] { return MakeHf(model, device, Precision::kFp32); });
      report("HF", runner.get());
    }
    {
      auto engine = FreshRunner([&] { return MakePrism(model, device, kThresholdLow, Precision::kFp32); });
      report("Ours", engine.get());
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

// ServicePool tests: load-balancer placement, result invariance across
// replicas, deadline-aware admission (priority ordering + shedding), and
// pool-wide stats aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/core/service_pool.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class ServicePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    for (size_t i = 0; i < 8; ++i) {
      requests_.push_back(TestRequest(config_, 10 + i % 3, 3, i));
    }
  }

  ServicePoolOptions PoolOptions(size_t pool_size, LoadBalancePolicy policy,
                                 size_t max_inflight = 1) const {
    ServicePoolOptions options;
    options.service.engine.device = FastDevice();
    options.service.max_inflight = max_inflight;
    options.service.compute_threads = 2;
    options.pool_size = pool_size;
    options.balancer = policy;
    return options;
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> requests_;
};

TEST_F(ServicePoolTest, ResultsInvariantAcrossReplicaCountAndPolicy) {
  MemoryTracker t0;
  ServicePoolOptions single = PoolOptions(1, LoadBalancePolicy::kRoundRobin);
  ServicePool reference(config_, ckpt_, single, &t0);
  std::vector<RerankResult> expected;
  for (const RerankRequest& request : requests_) {
    expected.push_back(reference.Rerank(request));
  }

  for (const LoadBalancePolicy policy :
       {LoadBalancePolicy::kRoundRobin, LoadBalancePolicy::kLeastLoaded,
        LoadBalancePolicy::kQueryAffinity}) {
    MemoryTracker tracker;
    ServicePool pool(config_, ckpt_, PoolOptions(3, policy, /*max_inflight=*/2), &tracker);
    std::vector<RerankResult> results(requests_.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests_.size(); ++i) {
      clients.emplace_back([&, i] { results[i] = pool.Rerank(requests_[i]); });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < requests_.size(); ++i) {
      EXPECT_TRUE(results[i].status.ok());
      EXPECT_EQ(results[i].topk, expected[i].topk)
          << pool.balancer().name() << " request " << i;
      EXPECT_EQ(results[i].scores, expected[i].scores)
          << pool.balancer().name() << " request " << i;
    }
  }
}

TEST_F(ServicePoolTest, RoundRobinSpreadsSequentialTraffic) {
  MemoryTracker tracker;
  ServicePool pool(config_, ckpt_, PoolOptions(4, LoadBalancePolicy::kRoundRobin), &tracker);
  for (size_t i = 0; i < 8; ++i) {
    pool.Rerank(requests_[i % requests_.size()]);
  }
  const PoolStats stats = pool.stats();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stats.replica_requests[i], 2u) << "replica " << i;
  }
  EXPECT_EQ(stats.aggregate.requests, 8u);
}

TEST_F(ServicePoolTest, QueryAffinityPinsRepeatedQueries) {
  MemoryTracker tracker;
  ServicePool pool(config_, ckpt_, PoolOptions(3, LoadBalancePolicy::kQueryAffinity), &tracker);
  // The same query must always land on the same replica (a warm
  // EmbeddingCache); distinct queries may differ.
  const size_t expected_replica = static_cast<size_t>(QueryHash(requests_[0]) % 3);
  std::vector<RerankResult> results;
  for (int round = 0; round < 3; ++round) {
    results.push_back(pool.Rerank(requests_[0]));
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.replica_requests[expected_replica], 3u);
  for (size_t i = 0; i < 3; ++i) {
    if (i != expected_replica) {
      EXPECT_EQ(stats.replica_requests[i], 0u) << "replica " << i;
    }
  }
  EXPECT_EQ(pool.replica(expected_replica).stats().requests, 3u);
  // The point of affinity: the pinned replica's embedding cache warms up
  // across the repeats. The cumulative hit rate must strictly rise from the
  // cold first request to the third identical one.
  EXPECT_GT(results[2].stats.embed_cache_hit_rate, results[0].stats.embed_cache_hit_rate);
  EXPECT_GT(results[2].stats.embed_cache_hit_rate, 0.0);
}

TEST_F(ServicePoolTest, LeastLoadedAvoidsBusyReplica) {
  // Two replicas; jam one with a long-running request (slow simulated SSD on
  // a big candidate set), then check new traffic routes to the idle one.
  ServicePoolOptions options = PoolOptions(2, LoadBalancePolicy::kLeastLoaded);
  options.service.engine.device = SlowSsdDevice(2.0 * 1024 * 1024);  // ~60ms/request.
  MemoryTracker tracker;
  ServicePool pool(config_, ckpt_, options, &tracker);
  const RerankRequest big = TestRequest(config_, 24, 5, 1);
  std::thread busy([&] { pool.Rerank(big); });
  // Wait (bounded) until the busy request is admitted. If it raced to
  // completion before we observed it, the routing assertion below still
  // holds — both replicas are idle again and either choice is "least
  // loaded" — so give up waiting rather than spin forever.
  for (int spin = 0; spin < 10000; ++spin) {
    const PoolStats stats = pool.stats();
    if (stats.replica_inflight[0] + stats.replica_inflight[1] > 0) {
      break;
    }
    std::this_thread::yield();
  }
  const PoolStats before = pool.stats();
  const size_t busy_replica = before.replica_inflight[0] > 0 ? 0 : 1;
  const RerankResult result = pool.Rerank(requests_[2]);
  EXPECT_TRUE(result.status.ok());
  busy.join();
  const PoolStats after = pool.stats();
  EXPECT_GE(after.replica_requests[1 - busy_replica], 1u)
      << "least-loaded routed into the busy replica";
}

TEST_F(ServicePoolTest, DeadlineSheddingUnderOverload) {
  // One replica, serial scheduler: the first request holds the runner while
  // the rest wait on the mutex past their deadlines.
  MemoryTracker tracker;
  ServicePoolOptions options = PoolOptions(1, LoadBalancePolicy::kRoundRobin);
  // Throttled SSD so a request takes real wall time.
  options.service.engine.device = SlowSsdDevice(24.0 * 1024 * 1024);
  ServicePool pool(config_, ckpt_, options, &tracker);

  std::atomic<size_t> shed{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (size_t i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      RerankRequest request = requests_[i];
      if (i > 0) {
        request.deadline_ms = 0.5;  // Expires while the first request runs.
      }
      const RerankResult result = pool.Rerank(request);
      if (result.status.code() == StatusCode::kDeadlineExceeded) {
        EXPECT_TRUE(result.topk.empty());
        shed.fetch_add(1);
      } else {
        EXPECT_TRUE(result.status.ok());
        served.fetch_add(1);
      }
    });
    if (i == 0) {
      // Give the long request a head start so the rest genuinely queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_GE(served.load(), 1u);
  EXPECT_GE(shed.load(), 1u) << "no request was shed despite 0.5ms deadlines under load";
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.aggregate.shed, shed.load());
  EXPECT_EQ(stats.aggregate.requests, 4u);
}

TEST_F(ServicePoolTest, HighPriorityDispatchesBeforeEarlierLowPriority) {
  // A BatchScheduler draining one request per cycle makes queue order
  // observable through completion order: while a blocker occupies the
  // engine, a low-priority request is admitted first and a high-priority
  // one second; the high one must still dispatch (and finish) first.
  MemoryTracker tracker;
  PrismOptions engine_options;
  engine_options.device = SlowSsdDevice(2.0 * 1024 * 1024);  // ~60ms/request.
  PrismEngine engine(config_, ckpt_, engine_options, &tracker);
  BatchScheduler scheduler(&engine, /*max_inflight=*/1, /*compute_threads=*/1);

  std::atomic<int> finish_seq{0};
  int low_finished_at = -1;
  int high_finished_at = -1;

  std::thread blocker([&] { scheduler.Submit(requests_[0]); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // Blocker dispatched.
  std::thread low_client([&] {
    RerankRequest low = requests_[1];
    low.priority = -1;
    const RerankResult result = scheduler.Submit(low);
    EXPECT_TRUE(result.status.ok());
    low_finished_at = finish_seq.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // Low admitted first.
  std::thread high_client([&] {
    RerankRequest high = requests_[2];
    high.priority = 7;
    const RerankResult result = scheduler.Submit(high);
    EXPECT_TRUE(result.status.ok());
    high_finished_at = finish_seq.fetch_add(1);
  });
  blocker.join();
  low_client.join();
  high_client.join();
  EXPECT_LT(high_finished_at, low_finished_at)
      << "the later-admitted high-priority request should have dispatched first";
}

TEST_F(ServicePoolTest, AggregateStatsMergeReplicaWindows) {
  MemoryTracker tracker;
  ServicePool pool(config_, ckpt_, PoolOptions(2, LoadBalancePolicy::kRoundRobin), &tracker);
  for (size_t i = 0; i < 6; ++i) {
    pool.Rerank(requests_[i]);
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.aggregate.requests, 6u);
  EXPECT_EQ(stats.replica_requests[0] + stats.replica_requests[1], 6u);
  EXPECT_GT(stats.aggregate.MeanLatencyMs(), 0.0);
  EXPECT_GE(stats.aggregate.max_latency_ms, stats.aggregate.P50LatencyMs());
  EXPECT_EQ(stats.aggregate.latency_samples.size(), 6u);  // Both reservoirs merged.
  EXPECT_GT(stats.aggregate.total_candidates, 0);
}

}  // namespace
}  // namespace prism

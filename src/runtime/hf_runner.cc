#include "src/runtime/hf_runner.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/data/metrics.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"

namespace prism {

RerankRequest RerankRequest::FromQuery(const RerankQuery& q, size_t k) {
  RerankRequest request;
  request.query = q.tokens;
  for (const CandidateDoc& c : q.candidates) {
    request.docs.push_back(c.tokens);
    request.planted_r.push_back(c.planted_r);
  }
  request.k = k;
  return request;
}

HfRunner::HfRunner(const ModelConfig& config, const std::string& checkpoint_path,
                   HfRunnerOptions options, MemoryTracker* tracker)
    : config_(config), options_(options), tracker_(tracker) {
  if (options_.batch_size == 0) {
    options_.batch_size = options_.device.hf_batch_size;
  }
  // Loading the checkpoint happens once at startup; it is charged through the
  // device model like any other read (the paper's HF baseline pays it too,
  // but outside the per-request latency we report).
  SsdConfig load_config = options_.device.ssd;
  load_config.throttle = false;
  auto reader = BlobFileReader::Open(checkpoint_path, load_config);
  PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
  reader_ = std::move(reader).value();
  const Status ckpt_status = ValidateCheckpoint(*reader_, config_, options_.precision);
  PRISM_CHECK_MSG(ckpt_status.ok(), ckpt_status.ToString().c_str());

  embedding_ = std::make_unique<FullEmbeddingTable>(config_, reader_.get(), tracker_);
  int64_t total_layer_bytes = 0;
  for (size_t layer = 0; layer < config_.n_layers; ++layer) {
    std::vector<uint8_t> blob(static_cast<size_t>(reader_->BlobSize(LayerBlobIndex(layer))));
    const Status status = reader_->ReadBlob(LayerBlobIndex(layer), blob);
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
    total_layer_bytes += static_cast<int64_t>(blob.size());
    layer_blobs_.push_back(std::move(blob));
  }
  layers_claim_ = MemClaim(tracker_, MemCategory::kWeights, total_layer_bytes);

  std::vector<uint8_t> head_blob(static_cast<size_t>(reader_->BlobSize(HeadBlobIndex(config_))));
  const Status status = reader_->ReadBlob(HeadBlobIndex(config_), head_blob);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  head_ = ParseHeadBlob(config_, head_blob);
}

RerankResult HfRunner::Rerank(const RerankRequest& request) {
  const WallTimer total_timer;
  RerankResult result;
  const size_t n = request.docs.size();
  PRISM_CHECK_EQ(n, request.planted_r.size());
  const size_t seq_len = ChooseSeqLen(config_, request.query, request.docs);
  result.scores.assign(n, 0.0f);

  const size_t batch = std::min(options_.batch_size, n);
  LayerScratch scratch = LayerScratch::Make(config_, batch * seq_len, seq_len, tracker_);

  for (size_t b0 = 0; b0 < n; b0 += batch) {
    const size_t b1 = std::min(b0 + batch, n);
    const size_t bsz = b1 - b0;
    Tensor hidden(bsz * seq_len, config_.hidden, MemCategory::kHiddenStates, tracker_);

    {
      const WallTimer embed_timer;
      for (size_t c = 0; c < bsz; ++c) {
        const PairInput pair = BuildPairInput(config_, request.query, request.docs[b0 + c],
                                              request.planted_r[b0 + c], seq_len);
        EmbedPairInto(config_, embedding_.get(), head_, pair, c, seq_len, &hidden);
      }
      result.stats.embed_ms += embed_timer.ElapsedMillis();
    }

    const WallTimer compute_timer;
    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      const AnyLayerView view =
          ParseAnyLayerBlob(config_, layer_blobs_[layer], options_.precision);
      LayerForward(config_, view, seq_len, &hidden, &scratch);
      result.stats.candidate_layers += static_cast<int64_t>(bsz);
    }
    std::vector<float> batch_scores;
    ScoreChunk(config_, head_, hidden, seq_len, &batch_scores);
    for (size_t c = 0; c < bsz; ++c) {
      result.scores[b0 + c] = batch_scores[c];
    }
    const int64_t compute_micros = compute_timer.ElapsedMicros();
    result.stats.compute_ms += static_cast<double>(compute_micros) / 1000.0;
    ApplyComputeSlowdown(options_.device, compute_micros);
  }

  result.topk = TopKIndices(result.scores, request.k);
  result.stats.layers_until_done = config_.n_layers;
  result.stats.latency_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace prism

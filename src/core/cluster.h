// 1-D k-means over candidate scores (paper §4.1).
//
// Scores are scalar, so k-means produces contiguous intervals of the sorted
// score axis — which is what makes cluster-granular pruning safe: every
// member of a higher cluster outscores every member of the boundary cluster.
// k is chosen by silhouette over k ∈ [2, max_k]; kmeans++ seeding and Lloyd
// iterations are fully deterministic for a given seed.
#ifndef PRISM_SRC_CORE_CLUSTER_H_
#define PRISM_SRC_CORE_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prism {

struct Clustering {
  // Cluster id per input value; ids are ordered by center descending
  // (cluster 0 = highest-scoring cluster).
  std::vector<int> assignment;
  // Cluster centers, descending.
  std::vector<double> centers;
  // Member count per cluster.
  std::vector<size_t> sizes;
  double silhouette = 0.0;

  int k() const { return static_cast<int>(centers.size()); }
};

// Lloyd's k-means on scalar values with kmeans++ init (deterministic).
Clustering KMeans1D(const std::vector<float>& values, int k, uint64_t seed);

// Runs KMeans1D for k in [2, max_k] and returns the clustering with the best
// silhouette. Falls back to k=1 (single cluster) when fewer than 3 distinct
// values exist.
Clustering ClusterScores(const std::vector<float>& values, int max_k, uint64_t seed);

}  // namespace prism

#endif  // PRISM_SRC_CORE_CLUSTER_H_

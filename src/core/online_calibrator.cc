#include "src/core/online_calibrator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/data/metrics.h"

namespace prism {

size_t OnlineCalibrator::pending_samples() const {
  MutexLock lock(mu_);
  return log_.size();
}

size_t OnlineCalibrator::requests_served() const {
  MutexLock lock(mu_);
  return served_;
}

OnlineCalibrator::OnlineCalibrator(PrismEngine* engine, Runner* reference,
                                   OnlineCalibratorOptions options)
    : engine_(engine), reference_(reference), options_(options) {
  PRISM_CHECK_GT(options_.sample_every, 0u);
  PRISM_CHECK_GT(options_.max_samples, 0u);
}

RerankResult OnlineCalibrator::Rerank(const RerankRequest& request) {
  const RerankResult result = engine_->Rerank(request);
  MutexLock lock(mu_);
  if (served_++ % options_.sample_every == 0) {
    if (log_.size() == options_.max_samples) {
      log_.pop_front();
    }
    log_.push_back(Sample{request, result.topk});
  }
  return result;
}

double OnlineCalibrator::RunIdleCycle(size_t budget) {
  double agreement = 0.0;
  size_t processed = 0;
  while (processed < budget) {
    Sample sample;
    {
      MutexLock lock(mu_);
      if (log_.empty()) {
        break;
      }
      sample = std::move(log_.front());
      log_.pop_front();
    }
    // Full inference without pruning → ground truth (outside the lock: the
    // reference run is slow and serving threads only need the log).
    const RerankResult truth = reference_->Rerank(sample.request);
    agreement += TopKOverlap(sample.topk, truth.topk, sample.request.k);
    ++processed;
  }
  if (processed == 0) {
    return std::nan("");
  }
  agreement /= static_cast<double>(processed);

  float threshold = engine_->dispersion_threshold();
  if (agreement < options_.target_precision) {
    threshold *= options_.raise_factor;  // Precision first.
  } else {
    threshold *= options_.lower_factor;  // Room to prune harder.
  }
  threshold = std::clamp(threshold, options_.min_threshold, options_.max_threshold);
  engine_->set_dispersion_threshold(threshold);
  return agreement;
}

}  // namespace prism

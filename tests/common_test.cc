#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "src/common/flags.h"
#include "src/common/memory_tracker.h"
#include "src/common/percentile.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/common/zipf.h"

namespace prism {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, MixSeedSpreads) {
  EXPECT_NE(MixSeed(1, 2), MixSeed(2, 1));
  EXPECT_NE(MixSeed(0, 0), 0u);
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  const ZipfSampler zipf(1000, 1.2);
  Rng rng(5);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++low;
    }
  }
  // With skew 1.2, the top-10 ranks carry a large share of the mass.
  EXPECT_GT(low, n / 4);
}

TEST(ZipfTest, ZeroSkewIsUniformish) {
  const ZipfSampler zipf(100, 0.0);
  Rng rng(6);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.10, 0.02);
}

TEST(ZipfTest, SamplesInRange) {
  const ZipfSampler zipf(50, 1.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 50u);
  }
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--alpha=3", "--name=hello", "--flag", "--ratio=0.5"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_TRUE(flags.GetBool("flag", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", 17), 17);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Allocate(MemCategory::kWeights, 100);
  tracker.Allocate(MemCategory::kActivations, 50);
  EXPECT_EQ(tracker.CurrentTotal(), 150);
  tracker.Release(MemCategory::kActivations, 50);
  EXPECT_EQ(tracker.CurrentTotal(), 100);
  EXPECT_EQ(tracker.PeakTotal(), 150);
  EXPECT_EQ(tracker.PeakBytes(MemCategory::kWeights), 100);
}

TEST(MemoryTrackerTest, ClaimReleasesOnDestruction) {
  MemoryTracker tracker;
  {
    MemClaim claim(&tracker, MemCategory::kEmbedding, 64);
    EXPECT_EQ(tracker.CurrentBytes(MemCategory::kEmbedding), 64);
  }
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kEmbedding), 0);
}

TEST(MemoryTrackerTest, ClaimMoveTransfersOwnership) {
  MemoryTracker tracker;
  MemClaim a(&tracker, MemCategory::kScratch, 32);
  MemClaim b = std::move(a);
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kScratch), 32);
  b.ReleaseNow();
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kScratch), 0);
}

TEST(MemoryTrackerTest, TimelineRecordsEvents) {
  MemoryTracker tracker;
  tracker.StartTimeline();
  tracker.Allocate(MemCategory::kWeights, 10);
  tracker.Allocate(MemCategory::kWeights, 20);
  tracker.Release(MemCategory::kWeights, 30);
  tracker.StopTimeline();
  const auto timeline = tracker.Timeline();
  ASSERT_GE(timeline.size(), 4u);
  EXPECT_EQ(timeline.back().total(), 0);
  // Timestamps are monotone.
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].t_micros, timeline[i - 1].t_micros);
  }
}

TEST(MemoryTrackerTest, ResetClearsEverything) {
  MemoryTracker tracker;
  tracker.Allocate(MemCategory::kWeights, 10);
  tracker.Reset();
  EXPECT_EQ(tracker.CurrentTotal(), 0);
  EXPECT_EQ(tracker.PeakTotal(), 0);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, 100, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(PercentileTest, EmptySampleIsZero) {
  EXPECT_EQ(PercentileOverSorted({}, 0.0), 0.0);
  EXPECT_EQ(PercentileOverSorted({}, 50.0), 0.0);
  EXPECT_EQ(PercentileOverSorted({}, 100.0), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {42.0};
  EXPECT_EQ(PercentileOverSorted(one, 0.0), 42.0);
  EXPECT_EQ(PercentileOverSorted(one, 50.0), 42.0);
  EXPECT_EQ(PercentileOverSorted(one, 99.0), 42.0);
  EXPECT_EQ(PercentileOverSorted(one, 100.0), 42.0);
}

TEST(PercentileTest, ExtremesPickFirstAndLast) {
  // Ceil-rank convention: p=0 rounds to rank 1 (the minimum); p=100 covers
  // the whole sample (the maximum) — neither may over- or under-shoot the
  // index range.
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(PercentileOverSorted(sorted, 0.0), 1.0);
  EXPECT_EQ(PercentileOverSorted(sorted, 100.0), 4.0);
  // p=25 on 4 samples is exactly rank 1; a hair above lands rank 2.
  EXPECT_EQ(PercentileOverSorted(sorted, 25.0), 1.0);
  EXPECT_EQ(PercentileOverSorted(sorted, 25.1), 2.0);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.ElapsedMicros(), 9000);
}

TEST(TimerTest, ScopedAccumulatorAddsUp) {
  int64_t accum = 0;
  {
    ScopedAccumulator scope(&accum);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    ScopedAccumulator scope(&accum);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(accum, 8000);
}

}  // namespace
}  // namespace prism

// On-disk weight layout and in-memory weight views.
//
// A model checkpoint is a blob file with the layout:
//   blob 0               embedding table, fp32 [vocab, hidden]
//   blob 1 .. n_layers   one transformer layer each
//   blob n_layers + 1    head: classifier weight [hidden] + bias [1], fp32
//
// A layer blob is either fp32 or 4-bit quantised (whole checkpoint is one or
// the other). The fp32 layout, in floats:
//   wq[D·D] wk[D·D] wv[D·D] wo[D·D]
//   w_gate[F·D]   (decoder-only; absent for encoder models)
//   w_up[F·D] w_down[D·F]
//   norm1_gain[D] norm1_bias[D] norm2_gain[D] norm2_bias[D]
// The quantised layout replaces each big matrix with its packed-nibble +
// scales serialisation (QuantMatrixView::SpanBytes) and keeps norms fp32.
#ifndef PRISM_SRC_MODEL_WEIGHTS_H_
#define PRISM_SRC_MODEL_WEIGHTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/model/config.h"
#include "src/tensor/quant.h"

namespace prism {

// Blob indices within a checkpoint.
inline size_t EmbeddingBlobIndex() { return 0; }
inline size_t LayerBlobIndex(size_t layer) { return 1 + layer; }
inline size_t HeadBlobIndex(const ModelConfig& config) { return 1 + config.n_layers; }

// Byte size of a single (possibly quantised) layer blob.
size_t LayerBlobBytes(const ModelConfig& config, bool quantized);

// Non-owning fp32 view into a layer blob.
struct LayerView {
  const float* wq = nullptr;
  const float* wk = nullptr;
  const float* wv = nullptr;
  const float* wo = nullptr;
  const float* w_gate = nullptr;  // null for encoder models
  const float* w_up = nullptr;
  const float* w_down = nullptr;
  std::span<const float> norm1_gain;
  std::span<const float> norm1_bias;
  std::span<const float> norm2_gain;
  std::span<const float> norm2_bias;
};

// Non-owning quantised view into a layer blob.
struct QuantLayerView {
  QuantMatrixView wq, wk, wv, wo;
  QuantMatrixView w_gate;  // rows == 0 for encoder models
  QuantMatrixView w_up, w_down;
  std::span<const float> norm1_gain;
  std::span<const float> norm1_bias;
  std::span<const float> norm2_gain;
  std::span<const float> norm2_bias;
};

// Either-or wrapper passed to the layer forward.
struct AnyLayerView {
  bool quantized = false;
  LayerView f32;
  QuantLayerView q4;
};

// Parses views out of a raw layer blob (no copy; blob must outlive the view).
LayerView ParseLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob);
QuantLayerView ParseQuantLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob);
AnyLayerView ParseAnyLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob,
                               bool quantized);

// Classifier head (copied out of its blob; it is a handful of floats).
struct HeadWeights {
  std::vector<float> w;  // [hidden] — also the planted relevance direction.
  float bias = 0.0f;
};

HeadWeights ParseHeadBlob(const ModelConfig& config, std::span<const uint8_t> blob);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_WEIGHTS_H_

// Figure 1: per-stage latency and peak memory of the semantic file search
// pipeline (keyword retrieve + embedding retrieve → top-K selection).
//
// The paper reports, on a Mac Mini with Qwen3-Reranker-0.6B selecting top-5
// of 20 candidates: retrieval ≈ 8 ms / 50 MiB, reranker 5754 ms / 1184 MiB —
// 96.3% of latency and 67.6% of memory. The reproduction shows the same
// dominance structure for the HF baseline, and what PRISM does to it.
//
// Flags: --device=apple|nvidia --queries=N --corpus=N --model=<zoo name>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/corpus.h"
#include "src/apps/file_search.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "apple"));
  const ModelConfig model = ModelByName(flags.GetString("model", "Qwen3-Reranker-0.6B"));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 3));
  const size_t background = static_cast<size_t>(flags.GetInt("corpus", 300));

  PrintHeader("Figure 1 — semantic file search: per-stage latency & memory (" + device.name +
              ", " + model.name + ", top-5 of 20)");

  const SearchCorpus corpus(DatasetByName("wikipedia"), model, queries, 4, background, 0xF16);
  const FileSearchApp app(&corpus, /*per_source=*/10);

  struct StageCost {
    double keyword_ms = 0.0;
    double embed_ms = 0.0;
    double rerank_ms = 0.0;
    double precision = 0.0;
    double retrieval_peak_mib = 0.0;
    double rerank_peak_mib = 0.0;
  };

  auto measure = [&](Runner* runner) {
    StageCost cost;
    for (size_t q = 0; q < queries; ++q) {
      const FileSearchResult result = app.Search(q, 5, runner);
      cost.keyword_ms += result.keyword_ms;
      cost.embed_ms += result.embed_ms;
      cost.rerank_ms += result.rerank_ms;
      cost.precision += result.precision;
    }
    cost.rerank_peak_mib = MiB(MemoryTracker::Global().PeakTotal()) * queries;
    const auto n = static_cast<double>(queries);
    cost.keyword_ms /= n;
    cost.embed_ms /= n;
    cost.rerank_ms /= n;
    cost.precision /= n;
    cost.rerank_peak_mib /= n;
    // Retrieval memory: the indexes (BM25 postings + dense vectors) — a rough
    // byte count of the dense index, the dominant part.
    cost.retrieval_peak_mib =
        MiB(static_cast<int64_t>(corpus.docs().size() * 48 * sizeof(float)));
    return cost;
  };

  for (const char* system : {"HF", "PRISM"}) {
    MemoryTracker::Global().Reset();  // Before runner construction: claims count.
    std::unique_ptr<Runner> runner;
    std::unique_ptr<PrismEngine> prism;
    if (std::string(system) == "HF") {
      runner = MakeHf(model, device, Precision::kFp32);
    } else {
      prism = MakePrism(model, device, kThresholdLow, Precision::kFp32);
    }
    Runner* r = runner != nullptr ? runner.get() : prism.get();
    const StageCost cost = measure(r);
    const double retrieval_ms = cost.keyword_ms + cost.embed_ms;
    const double total = retrieval_ms + cost.rerank_ms;
    std::printf("\n[%s reranker]\n", system);
    std::printf("  %-22s %10s %10s\n", "stage", "latency", "share");
    std::printf("  %-22s %8.1f ms %8.1f%%\n", "keyword retrieve", cost.keyword_ms,
                100.0 * cost.keyword_ms / total);
    std::printf("  %-22s %8.1f ms %8.1f%%\n", "embedding retrieve", cost.embed_ms,
                100.0 * cost.embed_ms / total);
    std::printf("  %-22s %8.1f ms %8.1f%%\n", "semantic selection", cost.rerank_ms,
                100.0 * cost.rerank_ms / total);
    std::printf("  %-22s %8.2f MiB (retrieval)  %8.2f MiB (selection peak)\n", "memory",
                cost.retrieval_peak_mib, cost.rerank_peak_mib);
    std::printf("  Precision@5 = %.3f\n", cost.precision);
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

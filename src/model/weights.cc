#include "src/model/weights.h"

#include <cstring>

#include "src/common/check.h"

namespace prism {

namespace {

// Sizes of the big matrices of one layer, in order of appearance.
struct MatrixDims {
  size_t rows;
  size_t cols;
};

std::vector<MatrixDims> LayerMatrices(const ModelConfig& config) {
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  std::vector<MatrixDims> dims = {{d, d}, {d, d}, {d, d}, {d, d}};  // wq wk wv wo
  if (config.arch == ModelArch::kDecoderOnly) {
    dims.push_back({f, d});  // w_gate
  }
  dims.push_back({f, d});  // w_up
  dims.push_back({d, f});  // w_down
  return dims;
}

size_t NormBytes(const ModelConfig& config) { return 4 * config.hidden * sizeof(float); }

}  // namespace

size_t LayerBlobBytes(const ModelConfig& config, bool quantized) {
  size_t bytes = 0;
  for (const MatrixDims& m : LayerMatrices(config)) {
    bytes += quantized ? QuantMatrixView::SpanBytes(m.rows, m.cols, config.quant_group)
                       : m.rows * m.cols * sizeof(float);
  }
  return bytes + NormBytes(config);
}

LayerView ParseLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob) {
  PRISM_CHECK_EQ(blob.size(), LayerBlobBytes(config, /*quantized=*/false));
  const float* p = reinterpret_cast<const float*>(blob.data());
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  LayerView view;
  view.wq = p;
  p += d * d;
  view.wk = p;
  p += d * d;
  view.wv = p;
  p += d * d;
  view.wo = p;
  p += d * d;
  if (config.arch == ModelArch::kDecoderOnly) {
    view.w_gate = p;
    p += f * d;
  }
  view.w_up = p;
  p += f * d;
  view.w_down = p;
  p += d * f;
  view.norm1_gain = {p, d};
  p += d;
  view.norm1_bias = {p, d};
  p += d;
  view.norm2_gain = {p, d};
  p += d;
  view.norm2_bias = {p, d};
  return view;
}

QuantLayerView ParseQuantLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob) {
  PRISM_CHECK_EQ(blob.size(), LayerBlobBytes(config, /*quantized=*/true));
  const uint8_t* p = blob.data();
  const size_t group = config.quant_group;
  auto take = [&](size_t rows, size_t cols) {
    QuantMatrixView view;
    view.rows = rows;
    view.cols = cols;
    view.group_size = group;
    view.packed = p;
    view.scales = reinterpret_cast<const float*>(p + rows * cols / 2);
    p += QuantMatrixView::SpanBytes(rows, cols, group);
    return view;
  };
  const size_t d = config.hidden;
  const size_t f = config.ffn;
  QuantLayerView view;
  view.wq = take(d, d);
  view.wk = take(d, d);
  view.wv = take(d, d);
  view.wo = take(d, d);
  if (config.arch == ModelArch::kDecoderOnly) {
    view.w_gate = take(f, d);
  }
  view.w_up = take(f, d);
  view.w_down = take(d, f);
  const float* fp = reinterpret_cast<const float*>(p);
  view.norm1_gain = {fp, d};
  fp += d;
  view.norm1_bias = {fp, d};
  fp += d;
  view.norm2_gain = {fp, d};
  fp += d;
  view.norm2_bias = {fp, d};
  return view;
}

AnyLayerView ParseAnyLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob,
                               bool quantized) {
  AnyLayerView any;
  any.quantized = quantized;
  if (quantized) {
    any.q4 = ParseQuantLayerBlob(config, blob);
  } else {
    any.f32 = ParseLayerBlob(config, blob);
  }
  return any;
}

HeadWeights ParseHeadBlob(const ModelConfig& config, std::span<const uint8_t> blob) {
  PRISM_CHECK_EQ(blob.size(), config.HeadBlobBytes());
  HeadWeights head;
  head.w.resize(config.hidden);
  std::memcpy(head.w.data(), blob.data(), config.hidden * sizeof(float));
  std::memcpy(&head.bias, blob.data() + config.hidden * sizeof(float), sizeof(float));
  return head;
}

}  // namespace prism

// Golden numeric regression: one canonical RerankResult for the default
// config, serialized into tests/golden/. Any refactor that changes the
// engine's numerics — kernel order, pruning decisions, embedding layout —
// fails this test with a readable per-candidate diff instead of silently
// shifting every benchmark.
//
// To regenerate after an *intentional* numeric change:
//   PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the rewritten fixture alongside the change that explains it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/service.h"
#include "tests/test_util.h"

namespace prism {
namespace {

#ifndef PRISM_TEST_DATA_DIR
#error "PRISM_TEST_DATA_DIR must point at the tests/ source directory"
#endif

std::string GoldenPath() {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_default.txt";
}

std::string CarouselGoldenPath() {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_carousel.txt";
}

struct GoldenRecord {
  std::vector<size_t> topk;
  std::vector<float> scores;
};

// Scores are serialized as hexfloats (bit-exact round trip) with a decimal
// rendering alongside for human diffs.
std::string Serialize(const GoldenRecord& record, const std::string& variant) {
  std::ostringstream out;
  out << "# Canonical RerankResult (" << variant
      << "): TestModel, wikipedia query 0, 12 candidates, k=3.\n";
  out << "# Regenerate with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
  out << "topk";
  for (size_t id : record.topk) {
    out << ' ' << id;
  }
  out << '\n';
  for (size_t i = 0; i < record.scores.size(); ++i) {
    char line[80];
    std::snprintf(line, sizeof(line), "score %zu %a  # %.6f\n", i,
                  static_cast<double>(record.scores[i]),
                  static_cast<double>(record.scores[i]));
    out << line;
  }
  return out.str();
}

bool ParseGolden(const std::string& path, GoldenRecord* record) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "topk") {
      size_t id;
      while (fields >> id) {
        record->topk.push_back(id);
      }
    } else if (tag == "score") {
      size_t index;
      std::string hex;
      fields >> index >> hex;
      EXPECT_EQ(index, record->scores.size()) << "out-of-order score line: " << line;
      record->scores.push_back(std::strtof(hex.c_str(), nullptr));
    }
  }
  return true;
}

GoldenRecord ComputeCanonical() {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  PrismOptions options;  // Default engine configuration...
  options.device = FastDevice();  // ...timing model off; numerics unaffected.
  MemoryTracker tracker;
  PrismEngine engine(config, ckpt, options, &tracker);
  const RerankResult result = engine.Rerank(TestRequest(config));
  EXPECT_TRUE(result.status.ok());
  return GoldenRecord{result.topk, result.scores};
}

// The same canonical request served through the carousel scheduler (the
// ServiceOptions knob, so the whole service path is on the hook).
GoldenRecord ComputeCanonicalViaCarousel() {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.scheduler = SchedulerKind::kCarousel;
  options.max_inflight = 2;
  MemoryTracker tracker;
  RerankService service(config, ckpt, options, &tracker);
  const RerankResult result = service.Rerank(TestRequest(config));
  EXPECT_TRUE(result.status.ok());
  return GoldenRecord{result.topk, result.scores};
}

void CompareToFixture(const GoldenRecord& actual, const std::string& path,
                      const std::string& variant) {
  if (std::getenv("PRISM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << Serialize(actual, variant);
    GTEST_SKIP() << "rewrote " << path;
  }

  GoldenRecord expected;
  ASSERT_TRUE(ParseGolden(path, &expected))
      << "missing fixture " << path
      << " — generate it with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test";

  EXPECT_EQ(actual.topk, expected.topk) << "top-K order changed";
  ASSERT_EQ(actual.scores.size(), expected.scores.size()) << "candidate count changed";
  for (size_t i = 0; i < actual.scores.size(); ++i) {
    const bool both_nan = std::isnan(actual.scores[i]) && std::isnan(expected.scores[i]);
    if (both_nan) {
      continue;  // Pruned-before-scoring in both runs.
    }
    EXPECT_EQ(actual.scores[i], expected.scores[i])
        << "score[" << i << "] drifted: expected " << expected.scores[i] << " (hex "
        << std::hexfloat << static_cast<double>(expected.scores[i]) << "), got "
        << std::defaultfloat << actual.scores[i] << " (hex " << std::hexfloat
        << static_cast<double>(actual.scores[i]) << ")";
  }
}

TEST(GoldenTest, DefaultConfigMatchesFixture) {
  CompareToFixture(ComputeCanonical(), GoldenPath(), "serial engine path");
}

// The carousel path must reproduce the canonical hexfloat result exactly —
// continuous batching changes fetch sharing and admission timing, never
// numerics. Its fixture is byte-for-byte the same record as the serial one
// (only the header comment differs), and both are pinned independently so a
// carousel-only numeric drift cannot hide behind the serial fixture.
TEST(GoldenTest, CarouselPathMatchesFixture) {
  CompareToFixture(ComputeCanonicalViaCarousel(), CarouselGoldenPath(), "carousel scheduler");
}

TEST(GoldenTest, CarouselAndSerialFixturesAgree) {
  GoldenRecord serial;
  GoldenRecord carousel;
  ASSERT_TRUE(ParseGolden(GoldenPath(), &serial));
  ASSERT_TRUE(ParseGolden(CarouselGoldenPath(), &carousel));
  EXPECT_EQ(serial.topk, carousel.topk);
  ASSERT_EQ(serial.scores.size(), carousel.scores.size());
  for (size_t i = 0; i < serial.scores.size(); ++i) {
    const bool both_nan = std::isnan(serial.scores[i]) && std::isnan(carousel.scores[i]);
    EXPECT_TRUE(both_nan || serial.scores[i] == carousel.scores[i]) << "score " << i;
  }
}

// The fixture itself must be reproducible: two engines, same checkpoint,
// same result. Guards against the canonical request accidentally depending
// on ambient state (cache warmth, request ids).
TEST(GoldenTest, CanonicalResultIsStableAcrossEngines) {
  const GoldenRecord first = ComputeCanonical();
  const GoldenRecord second = ComputeCanonical();
  EXPECT_EQ(first.topk, second.topk);
  for (size_t i = 0; i < first.scores.size(); ++i) {
    const bool both_nan = std::isnan(first.scores[i]) && std::isnan(second.scores[i]);
    EXPECT_TRUE(both_nan || first.scores[i] == second.scores[i]) << "score " << i;
  }
}

}  // namespace
}  // namespace prism

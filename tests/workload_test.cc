// The serving-workload layer: scenario harnesses over the app pipelines and
// the multi-client driver. Load-bearing properties: (a) RerankService and
// ServicePool are drop-in Runners for every app pipeline, (b) selections are
// deterministic per query id no matter which scheduler/pool serves the
// reranks or how many clients share the pipeline, and (c) the driver's
// report accounts exactly for served/shed under deadlines. Also a
// ThreadSanitizer target: many clients share one const pipeline and one
// service.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/service_pool.h"
#include "src/data/metrics.h"
#include "src/serving/workload.h"
#include "src/tensor/quant.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
  }

  ScenarioOptions FastScenario() const {
    ScenarioOptions options;
    options.n_queries = 4;
    return options;
  }

  ServiceOptions FastService(SchedulerKind kind, size_t max_inflight) const {
    ServiceOptions options;
    options.engine.device = FastDevice();
    options.scheduler = kind;
    options.max_inflight = max_inflight;
    options.compute_threads = 4;
    return options;
  }

  ModelConfig config_;
  std::string ckpt_;
};

TEST_F(WorkloadTest, HarnessSelectionsAreDeterministicPerQuery) {
  MemoryTracker tracker;
  PrismOptions eopts;
  eopts.device = FastDevice();
  PrismEngine engine(config_, ckpt_, eopts, &tracker);
  for (ScenarioKind kind : AllScenarios()) {
    const ScenarioHarness harness(kind, config_, FastScenario());
    ASSERT_GT(harness.n_queries(), 0u) << ScenarioKindName(kind);
    for (size_t q = 0; q < harness.n_queries(); ++q) {
      const ScenarioOutcome a = harness.Run(q, &engine);
      const ScenarioOutcome b = harness.Run(q, &engine);
      EXPECT_TRUE(a.served);
      EXPECT_FALSE(a.selection.empty()) << ScenarioKindName(kind);
      EXPECT_EQ(a.selection, b.selection) << ScenarioKindName(kind) << " query " << q;
    }
  }
}

TEST_F(WorkloadTest, ServiceAndPoolAreDropInRunnersForEveryScenario) {
  // The same pipeline, served by a raw engine, a batching service, and a
  // two-replica pool: identical selections everywhere. This is the apps →
  // Runner → service/pool layering the serving stack promises.
  MemoryTracker tracker;
  PrismOptions eopts;
  eopts.device = FastDevice();
  PrismEngine engine(config_, ckpt_, eopts, &tracker);
  RerankService service(config_, ckpt_, FastService(SchedulerKind::kBatch, 3), &tracker);
  ServicePoolOptions pool_options;
  pool_options.service = FastService(SchedulerKind::kAuto, 2);
  pool_options.pool_size = 2;
  ServicePool pool(config_, ckpt_, pool_options, &tracker);
  for (ScenarioKind kind : AllScenarios()) {
    const ScenarioHarness harness(kind, config_, FastScenario());
    const std::vector<std::vector<size_t>> baseline = BaselineSelections(harness, &engine);
    for (size_t q = 0; q < harness.n_queries(); ++q) {
      EXPECT_EQ(harness.Run(q, &service).selection, baseline[q])
          << ScenarioKindName(kind) << " via " << service.name();
      EXPECT_EQ(harness.Run(q, &pool).selection, baseline[q])
          << ScenarioKindName(kind) << " via " << pool.name();
    }
  }
}

TEST_F(WorkloadTest, ServedPrecisionTiersMatchTheirSerialBaselines) {
  // Per reduced tier: a batching service under concurrent closed-loop
  // clients reports zero mismatches against that tier's own single-client
  // serial baseline (concurrency never changes what a tier serves), and the
  // tier's selections stay above its calibrated agreement floor against the
  // fp32 baseline (the same floors golden_test pins in its fixtures).
  const ScenarioHarness harness(ScenarioKind::kFileSearch, config_, FastScenario());
  MemoryTracker fp32_tracker;
  PrismOptions fp32_opts;
  fp32_opts.device = FastDevice();
  PrismEngine fp32_engine(config_, ckpt_, fp32_opts, &fp32_tracker);
  const std::vector<std::vector<size_t>> fp32_baseline =
      BaselineSelections(harness, &fp32_engine);

  struct Tier {
    Precision precision;
    double min_agreement;
  };
  for (const Tier tier : {Tier{Precision::kFp16, 1.0}, Tier{Precision::kInt8, 0.66},
                          Tier{Precision::kW4, 0.66}}) {
    const std::string ckpt = TestCheckpoint(config_, tier.precision);
    ServiceOptions sopts = FastService(SchedulerKind::kBatch, 3);
    sopts.engine.precision = tier.precision;
    MemoryTracker tracker;
    RerankService service(config_, ckpt, sopts, &tracker);
    const std::vector<std::vector<size_t>> baseline = BaselineSelections(harness, &service);
    WorkloadOptions options;
    options.clients = 4;
    options.requests = 12;
    options.warmup = 2;
    const WorkloadReport report = RunWorkload(harness, &service, options, &baseline);
    EXPECT_EQ(report.served, 12u) << PrecisionName(tier.precision);
    EXPECT_EQ(report.errors, 0u) << PrecisionName(tier.precision);
    EXPECT_EQ(report.mismatches, 0u) << PrecisionName(tier.precision);
    ASSERT_EQ(baseline.size(), fp32_baseline.size());
    for (size_t q = 0; q < baseline.size(); ++q) {
      EXPECT_GE(TopKOverlap(baseline[q], fp32_baseline[q], baseline[q].size()),
                tier.min_agreement)
          << PrecisionName(tier.precision) << " query " << q;
    }
  }
}

TEST_F(WorkloadTest, ClosedLoopClientsMatchSerialBaseline) {
  MemoryTracker tracker;
  RerankService service(config_, ckpt_, FastService(SchedulerKind::kBatch, 4), &tracker);
  const ScenarioHarness harness(ScenarioKind::kFileSearch, config_, FastScenario());
  const std::vector<std::vector<size_t>> baseline = BaselineSelections(harness, &service);
  WorkloadOptions options;
  options.clients = 4;
  options.requests = 16;
  options.warmup = 4;
  const WorkloadReport report = RunWorkload(harness, &service, options, &baseline);
  EXPECT_EQ(report.requests, 16u);
  EXPECT_EQ(report.served, 16u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_GT(report.requests_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(report.served_per_sec, report.requests_per_sec);  // Nothing shed.
  EXPECT_LE(report.p50_ms, report.p99_ms);
  EXPECT_LE(report.p99_ms, report.max_ms);
  EXPECT_GT(report.mean_quality, 0.0);
  EXPECT_DOUBLE_EQ(report.slo_attainment, 1.0);  // No SLO set.
  // Baseline (4 queries) + warmup + measured requests all hit the service.
  EXPECT_EQ(service.stats().requests, 24u);
}

TEST_F(WorkloadTest, OpenLoopPoissonArrivalsServeAndMatch) {
  MemoryTracker tracker;
  RerankService service(config_, ckpt_, FastService(SchedulerKind::kCarousel, 3), &tracker);
  const ScenarioHarness harness(ScenarioKind::kLcs, config_, FastScenario());
  const std::vector<std::vector<size_t>> baseline = BaselineSelections(harness, &service);
  WorkloadOptions options;
  options.clients = 3;
  options.requests = 9;
  options.warmup = 3;
  options.arrival_hz = 200.0;  // Brisk but sustainable on the fast device.
  const WorkloadReport report = RunWorkload(harness, &service, options, &baseline);
  EXPECT_EQ(report.served, 9u);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_GT(report.p50_ms, 0.0);
}

TEST_F(WorkloadTest, DeadlinesShedUnderOverloadAndAreAccountedExactly) {
  // Many clients, one serial replica, a deadline shorter than the queue
  // under contention: requests shed. Retimed onto a SimClock with the
  // virtual service-cost model: the 10 virtual-ms serial service time and
  // the 25 virtual-ms deadline make overload — and therefore the shed set —
  // a deterministic property of the schedule, where the old wall-clock
  // version (deadline 0.01 real ms) depended on host speed. The report and
  // the service stats must agree, shed requests must carry their queue
  // wait, and the served-only percentiles must stay self-consistent (no
  // ~0 ms shed turnarounds pulling them down).
  SimClock clock;
  MemoryTracker tracker;
  ServiceOptions sopts = FastService(SchedulerKind::kSerial, 1);
  sopts.clock = &clock;
  sopts.sim.enabled = true;  // pass_ms 8 + per_request_ms 2 = 10 per request.
  RerankService service(config_, ckpt_, sopts, &tracker);
  const ScenarioHarness harness(ScenarioKind::kFileSearch, config_, FastScenario());
  WorkloadOptions options;
  options.clients = 6;
  options.requests = 18;
  options.warmup = 0;
  options.deadline_ms = 25.0;  // Third in line waits 2 × 10 ms; fourth sheds.
  options.high_fraction = 0.5;
  options.clock = &clock;
  const WorkloadReport report = RunWorkload(harness, &service, options);
  EXPECT_EQ(report.served + report.shed + report.errors, 18u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.served, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.shed_fraction, 0.0);
  // Shed turnarounds are not delivered throughput.
  EXPECT_LT(report.served_per_sec, report.requests_per_sec);
  // Shed requests carried their (virtual) queue wait into the report.
  EXPECT_GT(report.mean_queue_wait_ms, 0.0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 18u);
  EXPECT_EQ(stats.shed, report.shed);
  EXPECT_EQ(stats.served(), report.served);
  // Served-only reservoir: one latency sample per served request (under
  // capacity nothing is subsampled), each at least the 10 virtual-ms
  // service charge.
  EXPECT_EQ(stats.latency_samples.size(), stats.served());
  if (stats.served() > 0) {
    EXPECT_GE(stats.LatencyPercentileMs(0.0), 10.0);
  }
}

TEST_F(WorkloadTest, SimulatedWorkloadReplaysByteIdentically) {
  // The tentpole determinism property: one seed fully determines a
  // simulated run. Every scheduler, single service and two-replica pool,
  // open loop at an overloading rate with deadlines (so served/shed
  // sequencing is exercised, not just selections): two runs must agree on
  // every per-request status and every metric to the last bit.
  const ScenarioHarness harness(ScenarioKind::kFileSearch, config_, FastScenario());
  for (const SchedulerKind kind :
       {SchedulerKind::kSerial, SchedulerKind::kBatch, SchedulerKind::kCarousel}) {
    for (const size_t pool_size : {size_t{1}, size_t{2}}) {
      const auto run = [&] {
        SimClock clock;
        MemoryTracker tracker;
        ServiceOptions sopts = FastService(kind, kind == SchedulerKind::kSerial ? 1 : 3);
        sopts.clock = &clock;
        sopts.sim.enabled = true;
        WorkloadOptions wopts;
        wopts.clients = 4;
        wopts.requests = 24;
        wopts.warmup = 4;
        wopts.arrival_hz = 150.0;  // ~1.5× the serial service rate: overload.
        wopts.deadline_ms = 40.0;
        wopts.high_fraction = 0.25;
        wopts.clock = &clock;
        WorkloadReport report;
        if (pool_size == 1) {
          RerankService service(config_, ckpt_, sopts, &tracker);
          report = RunWorkload(harness, &service, wopts);
        } else {
          ServicePoolOptions popts;
          popts.service = sopts;
          popts.pool_size = pool_size;
          ServicePool pool(config_, ckpt_, popts, &tracker);
          report = RunWorkload(harness, &pool, wopts);
        }
        EXPECT_EQ(report.statuses.size(), wopts.requests);
        return report.SummaryJson();
      };
      const std::string first = run();
      const std::string second = run();
      EXPECT_EQ(first, second) << "scheduler " << static_cast<int>(kind) << " pool_size "
                               << pool_size;
    }
  }
}

TEST_F(WorkloadTest, CacheFrontedSimulatedWorkloadReplaysByteIdentically) {
  // The result-cache tier joins the determinism contract: a serial-scheduler
  // stack fronted by a ResultCache — coalesced waiters, staggered releases,
  // fills failing under shed pressure and all — must replay byte-identically
  // under a SimClock. Open loop at an overloading rate with deadlines so the
  // cache's park/shed paths are actually exercised.
  const ScenarioHarness harness(ScenarioKind::kFileSearch, config_, FastScenario());
  const auto run = [&] {
    SimClock clock;
    MemoryTracker tracker;
    ServiceOptions sopts = FastService(SchedulerKind::kSerial, 1);
    sopts.clock = &clock;
    sopts.sim.enabled = true;
    RerankService service(config_, ckpt_, sopts, &tracker);
    ResultCacheOptions copts;
    copts.capacity = 2;  // Head-sized: hits, evictions, and refills all occur.
    copts.clock = &clock;
    ResultCache cache(&service, copts);
    WorkloadOptions wopts;
    wopts.clients = 6;
    wopts.requests = 48;
    wopts.warmup = 4;
    wopts.arrival_hz = 200.0;
    wopts.deadline_ms = 30.0;
    wopts.clock = &clock;
    WorkloadReport report = RunWorkload(harness, &cache, wopts);
    report.AttachCacheStats(cache.stats());
    EXPECT_EQ(report.statuses.size(), wopts.requests);
    EXPECT_GT(report.cache_hits + report.cache_coalesced, 0u);
    return report.SummaryJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
}

TEST_F(WorkloadTest, TaggingRunnerStampsPriorityAndDeadline) {
  class CaptureRunner : public Runner {
   public:
    RerankResult Rerank(const RerankRequest& request) override {
      priority = request.priority;
      deadline_ms = request.deadline_ms;
      RerankResult result;
      result.topk.resize(std::min(request.k, request.docs.size()));
      return result;
    }
    std::string name() const override { return "capture"; }
    int priority = -1;
    double deadline_ms = -1.0;
  };
  CaptureRunner capture;
  TaggingRunner tagged(&capture, /*priority=*/2, /*deadline_ms=*/33.0);
  RerankRequest request;
  request.docs.resize(3);
  request.k = 2;
  tagged.Rerank(request);
  EXPECT_EQ(capture.priority, 2);
  EXPECT_DOUBLE_EQ(capture.deadline_ms, 33.0);
}

}  // namespace
}  // namespace prism

#include "src/data/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace prism {

double PrecisionAtK(const std::vector<size_t>& topk, const std::vector<size_t>& relevant,
                    size_t k) {
  if (relevant.empty() || k == 0) {
    return 0.0;
  }
  size_t hits = 0;
  const size_t limit = std::min(k, topk.size());
  for (size_t i = 0; i < limit; ++i) {
    if (std::find(relevant.begin(), relevant.end(), topk[i]) != relevant.end()) {
      ++hits;
    }
  }
  const size_t denom = std::min(k, relevant.size());
  return static_cast<double>(hits) / static_cast<double>(denom);
}

double TopKOverlap(const std::vector<size_t>& a, const std::vector<size_t>& b, size_t k) {
  if (k == 0) {
    return 1.0;
  }
  const size_t ka = std::min(k, a.size());
  const size_t kb = std::min(k, b.size());
  size_t hits = 0;
  for (size_t i = 0; i < ka; ++i) {
    for (size_t j = 0; j < kb; ++j) {
      if (a[i] == b[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

namespace {

// Shared concordant/discordant counter; `filter(i, j)` selects pairs.
template <typename Filter>
double GammaImpl(const std::vector<float>& scores, const std::vector<float>& final_scores,
                 Filter filter) {
  PRISM_CHECK_EQ(scores.size(), final_scores.size());
  int64_t concordant = 0;
  int64_t discordant = 0;
  const size_t n = scores.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!filter(i, j)) {
        continue;
      }
      const float da = scores[i] - scores[j];
      const float db = final_scores[i] - final_scores[j];
      if (da == 0.0f || db == 0.0f) {
        continue;  // Ties are skipped in Goodman–Kruskal γ.
      }
      if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const int64_t total = concordant + discordant;
  return total == 0 ? 1.0 : static_cast<double>(concordant - discordant) /
                                static_cast<double>(total);
}

}  // namespace

double GoodmanKruskalGamma(const std::vector<float>& scores,
                           const std::vector<float>& final_scores) {
  return GammaImpl(scores, final_scores, [](size_t, size_t) { return true; });
}

double ClusterGamma(const std::vector<float>& scores, const std::vector<float>& final_scores,
                    const std::vector<int>& clusters) {
  PRISM_CHECK_EQ(scores.size(), clusters.size());
  return GammaImpl(scores, final_scores,
                   [&clusters](size_t i, size_t j) { return clusters[i] != clusters[j]; });
}

double KendallTau(const std::vector<float>& a, const std::vector<float>& b) {
  PRISM_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) {
    return 1.0;
  }
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const float da = a[i] - a[j];
      const float db = b[i] - b[j];
      if (da == 0.0f || db == 0.0f) {
        continue;
      }
      if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

double NdcgAtK(const std::vector<size_t>& ranking, const std::vector<float>& grades, size_t k) {
  const size_t kk = std::min(k, grades.size());
  if (kk == 0) {
    return 0.0;
  }
  auto discounted = [](float gain, size_t rank) {
    return static_cast<double>(gain) / std::log2(static_cast<double>(rank) + 2.0);
  };
  double dcg = 0.0;
  for (size_t rank = 0; rank < std::min(kk, ranking.size()); ++rank) {
    PRISM_CHECK_LT(ranking[rank], grades.size());
    dcg += discounted(grades[ranking[rank]], rank);
  }
  std::vector<float> ideal(grades);
  std::sort(ideal.rbegin(), ideal.rend());
  double idcg = 0.0;
  for (size_t rank = 0; rank < kk; ++rank) {
    idcg += discounted(ideal[rank], rank);
  }
  return idcg == 0.0 ? 0.0 : dcg / idcg;
}

double CoefficientOfVariation(const std::vector<float>& scores) {
  if (scores.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (float s : scores) {
    mean += s;
  }
  mean /= static_cast<double>(scores.size());
  if (mean == 0.0) {
    return 0.0;
  }
  double var = 0.0;
  for (float s : scores) {
    const double d = s - mean;
    var += d * d;
  }
  var /= static_cast<double>(scores.size());
  return std::fabs(std::sqrt(var) / mean);
}

std::vector<size_t> TopKIndices(const std::vector<float>& scores, size_t k) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t kk = std::min(k, scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(kk), order.end(),
                    [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  order.resize(kk);
  return order;
}

}  // namespace prism

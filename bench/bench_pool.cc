// ServicePool scaling: aggregate throughput across replicas × max_inflight.
//
// N client threads hammer one ServicePool; the sweep varies the replica
// count (each replica owns its own engine, hence its own simulated device
// queue, spill pool, and embedding cache) and the per-replica batching depth
// (ServiceOptions::max_inflight). Sharding scales the device dimension —
// two replicas stream layers from two independent SSD queues — while
// batching amortises each queue across coalesced requests, so the two knobs
// compose. Every configuration's results are checked bit-identical against
// the 1-replica serial baseline: routing and coalescing must never change a
// ranking.
//
// A second phase overloads the pool with deadline-carrying requests and
// reports shedding behaviour: how many requests were answered cheaply with
// kDeadlineExceeded, and the worst overshoot past a deadline (bounded by one
// batch interval — a request sheds the next time the dispatcher looks at the
// queue).
//
// Flags: --model=Qwen3-Reranker-0.6B --device=nvidia|apple --clients=8
//        --requests=16 --candidates=3 --k=2 --max_replicas=2
//        --max_inflight=4 --balancer=least_loaded --threshold=0.40
//        --ssd_mbps=12 (0 = device profile default)
//        --deadline_ms=0 (0 = derive from the serial service time)
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/service_pool.h"

namespace prism {
namespace {

struct LoadRun {
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t shed = 0;
  std::vector<std::vector<size_t>> topks;
  std::vector<double> latencies_ms;  // Client-observed, indexed by request.
};

LoadRun RunLoad(ServicePool* pool, const std::vector<BenchCase>& cases, size_t clients,
                size_t total_requests, double deadline_ms) {
  LoadRun run;
  run.topks.resize(total_requests);
  run.latencies_ms.resize(total_requests);
  std::atomic<size_t> next{0};
  std::atomic<size_t> shed{0};
  const WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < total_requests) {
        RerankRequest request = cases[i % cases.size()].request;
        request.deadline_ms = deadline_ms;
        const WallTimer timer;
        const RerankResult result = pool->Rerank(request);
        run.latencies_ms[i] = timer.ElapsedMillis();
        if (result.status.ok()) {
          run.topks[i] = result.topk;
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  run.wall_seconds = wall.ElapsedSeconds();
  run.requests_per_sec = static_cast<double>(total_requests) / run.wall_seconds;
  run.shed = shed.load();
  const PoolStats stats = pool->stats();
  run.p50_ms = stats.aggregate.P50LatencyMs();
  run.p99_ms = stats.aggregate.P99LatencyMs();
  return run;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const ModelConfig model = ModelByName(flags.GetString("model", "Qwen3-Reranker-0.6B"));
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  const size_t total_requests = static_cast<size_t>(flags.GetInt("requests", 16));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 3));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 2));
  const size_t max_replicas = static_cast<size_t>(flags.GetInt("max_replicas", 2));
  const size_t max_inflight = static_cast<size_t>(flags.GetInt("max_inflight", 4));
  const LoadBalancePolicy policy =
      LoadBalancePolicyByName(flags.GetString("balancer", "least_loaded"));
  const float threshold = static_cast<float>(flags.GetDouble("threshold", kThresholdHigh));
  double deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  // Sharding scales the *device* dimension, so the sweep defaults to the
  // SSD-bound regime the paper targets (big models, streaming-dominated): a
  // slowed SSD stands in for the paper's larger checkpoints, whose layer
  // loads dwarf this scaled-down zoo's single-core compute. 0 = profile
  // default (compute-bound on a small host; sharding then shows little).
  const double ssd_mbps = flags.GetDouble("ssd_mbps", 12.0);

  PrintHeader("ServicePool scaling — replicas × max_inflight (" + model.name + ", " +
              device.name + ", " + std::to_string(clients) + " clients, " +
              std::to_string(total_requests) + " requests of " + std::to_string(candidates) +
              " candidates, balancer=" + LoadBalancePolicyName(policy) + ")");

  const auto cases = MakeCases(model, "wikipedia", /*queries=*/8, candidates, k);
  const std::string checkpoint = EnsureCheckpoint(model, kBenchSeed);
  // Same total compute budget for every configuration: the fan-out threads
  // are split across replicas, so 2 replicas do not get 2× the workers.
  const size_t total_threads =
      std::max<size_t>(std::thread::hardware_concurrency(), max_inflight);

  auto make_pool = [&](size_t replicas, size_t inflight) {
    MemoryTracker::Global().Reset();
    ServicePoolOptions options;
    options.service.engine.device = device;
    if (ssd_mbps > 0.0) {
      options.service.engine.device.ssd.bandwidth_bytes_per_sec = ssd_mbps * 1024.0 * 1024.0;
    }
    options.service.engine.dispersion_threshold = threshold;
    options.service.max_inflight = inflight;
    options.service.compute_threads = std::max<size_t>(1, total_threads / replicas);
    options.pool_size = replicas;
    options.balancer = policy;
    return std::make_unique<ServicePool>(model, checkpoint, options);
  };

  std::printf("%-30s %10s %12s %10s %10s %10s\n", "configuration", "wall s", "req/s", "p50 ms",
              "p99 ms", "speedup");
  std::vector<size_t> inflight_sweep = {1};
  if (max_inflight > 1) {
    inflight_sweep.push_back(max_inflight);
  }
  std::vector<std::vector<size_t>> reference_topks;
  double reference_rps = 0.0;
  size_t mismatches = 0;
  // req/s indexed by [replica step][inflight step] for the scaling summary.
  std::map<size_t, std::map<size_t, double>> rps;
  double serial_service_ms = 0.0;  // Unloaded single-request pass, measured.
  double batch_interval_ms = 0.0;  // One max_inflight dispatch cycle.
  for (size_t replicas = 1; replicas <= max_replicas; replicas *= 2) {
    for (const size_t inflight : inflight_sweep) {
      auto pool = make_pool(replicas, inflight);
      const LoadRun run = RunLoad(pool.get(), cases, clients, total_requests,
                                  /*deadline_ms=*/0.0);
      if (reference_topks.empty()) {
        reference_topks = run.topks;
        reference_rps = run.requests_per_sec;
      } else {
        for (size_t i = 0; i < total_requests; ++i) {
          if (run.topks[i] != reference_topks[i]) {
            ++mismatches;
          }
        }
      }
      rps[replicas][inflight] = run.requests_per_sec;
      if (replicas == 1 && inflight == 1) {
        // Serial single replica: wall / requests is the per-request service
        // time with queueing excluded.
        serial_service_ms = 1000.0 * run.wall_seconds / static_cast<double>(total_requests);
      }
      if (replicas == 1 && inflight == inflight_sweep.back()) {
        batch_interval_ms = 1000.0 * run.wall_seconds /
                            static_cast<double>(total_requests) *
                            static_cast<double>(inflight);
      }
      const std::string name = "replicas=" + std::to_string(replicas) +
                               " max_inflight=" + std::to_string(inflight);
      std::printf("%-30s %10.2f %12.2f %10.2f %10.2f %9.2fx\n", name.c_str(), run.wall_seconds,
                  run.requests_per_sec, run.p50_ms, run.p99_ms,
                  run.requests_per_sec / reference_rps);
    }
  }
  std::printf("\nresult mismatches across all configurations: %zu (expected 0)\n", mismatches);
  // The sharding win proper holds the batching depth fixed and doubles the
  // replica count (each bringing its own device queue).
  if (rps.count(2) != 0) {
    for (const size_t inflight : inflight_sweep) {
      std::printf("2 replicas vs 1 at max_inflight=%zu: %.2fx (target >= 1.8x at matched "
                  "inflight)\n",
                  inflight, rps[2][inflight] / rps[1][inflight]);
    }
  }

  // --- Deadline-shedding phase -------------------------------------------
  if (deadline_ms <= 0.0) {
    // Tighter than one dispatch cycle: anything still queued when the first
    // cycle completes has expired, so a backlog must shed.
    deadline_ms = 1.2 * serial_service_ms;
  }
  // Twice the pool's admission capacity, so a backlog actually forms.
  const size_t shed_clients = clients * 2;
  std::printf("\ndeadline-shedding run: %zu clients, deadline %.2f ms\n", shed_clients,
              deadline_ms);
  auto pool = make_pool(std::min<size_t>(max_replicas, 2), max_inflight);
  const LoadRun shed_run =
      RunLoad(pool.get(), cases, shed_clients, total_requests, deadline_ms);
  // A request can overrun its deadline only by the dispatch cycle that was
  // already in flight when it expired: shedding happens the next time the
  // dispatcher (or the serial mutex) looks at the queue.
  double worst_overshoot_ms = 0.0;
  for (const double latency : shed_run.latencies_ms) {
    worst_overshoot_ms = std::max(worst_overshoot_ms, latency - deadline_ms);
  }
  std::printf("served %zu, shed %zu (%.0f%%), req/s %.2f\n",
              total_requests - shed_run.shed, shed_run.shed,
              100.0 * static_cast<double>(shed_run.shed) / static_cast<double>(total_requests),
              shed_run.requests_per_sec);
  const double interval_ms = batch_interval_ms > 0.0 ? batch_interval_ms : serial_service_ms;
  std::printf("worst client-observed overshoot past deadline: %.2f ms "
              "(bound: one batch interval ~= %.2f ms)\n",
              worst_overshoot_ms, interval_ms);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

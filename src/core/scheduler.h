// Request admission for RerankService.
//
// A Scheduler decides how concurrent Rerank calls reach the engine:
//
//   SerialScheduler  — one request at a time through a Runner (the original
//                      behaviour; callers queue on a mutex). Required when
//                      the runner is stateful, e.g. the OnlineCalibrator.
//   BatchScheduler   — callers enqueue into a ticketed FIFO RequestQueue; a
//                      dispatcher thread drains it, coalescing up to
//                      `max_inflight` requests into one PrismEngine batch.
//                      The batch shares a single layer-streaming pass (each
//                      layer's weights are fetched once for every in-flight
//                      request — the paper's §3.3 global view extended
//                      across requests) and fans per-request compute out on
//                      a worker pool. Admission order, not thread timing,
//                      determines batch composition, and per-request pruning
//                      keeps every result bit-identical to a serial run.
#ifndef PRISM_SRC_CORE_SCHEDULER_H_
#define PRISM_SRC_CORE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/runtime/runner.h"

namespace prism {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Blocks until the request has been served; thread-safe.
  virtual RerankResult Submit(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

// Mutex-serialised pass-through to a Runner.
class SerialScheduler : public Scheduler {
 public:
  explicit SerialScheduler(Runner* runner) : runner_(runner) {}

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "serial"; }

 private:
  Runner* runner_;
  std::mutex mu_;
};

// Ticketed FIFO of pending requests. Pushes never block; PopBatch blocks
// until at least one request is pending (or the queue is closed) and then
// drains up to `max_batch` entries in admission order.
class RequestQueue {
 public:
  struct Pending {
    const RerankRequest* request = nullptr;
    std::promise<RerankResult> promise;
    uint64_t ticket = 0;
  };

  std::future<RerankResult> Push(const RerankRequest& request);
  std::vector<Pending> PopBatch(size_t max_batch);

  // Wakes PopBatch; subsequent pushes are rejected (CHECK).
  void Close();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  uint64_t next_ticket_ = 0;
  bool closed_ = false;
};

class BatchScheduler : public Scheduler {
 public:
  // `compute_threads` sizes the per-request fan-out pool (0 = one per core).
  BatchScheduler(PrismEngine* engine, size_t max_inflight, size_t compute_threads = 0);
  ~BatchScheduler() override;

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  RerankResult Submit(const RerankRequest& request) override;
  std::string name() const override { return "batch"; }

  size_t max_inflight() const { return max_inflight_; }

 private:
  void DispatchLoop();

  PrismEngine* engine_;
  size_t max_inflight_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::thread dispatcher_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SCHEDULER_H_

#include "src/model/layer.h"

#include <cmath>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace prism {

LayerScratch LayerScratch::Make(const ModelConfig& config, size_t max_rows, size_t seq_len,
                                MemoryTracker* tracker) {
  LayerScratch s;
  const auto cat = MemCategory::kActivations;
  s.normed = Tensor(max_rows, config.hidden, cat, tracker);
  s.q = Tensor(max_rows, config.hidden, cat, tracker);
  s.k = Tensor(max_rows, config.hidden, cat, tracker);
  s.v = Tensor(max_rows, config.hidden, cat, tracker);
  s.attn_ctx = Tensor(max_rows, config.hidden, cat, tracker);
  s.attn_out = Tensor(max_rows, config.hidden, cat, tracker);
  s.ffn_up = Tensor(max_rows, config.ffn, cat, tracker);
  if (config.arch == ModelArch::kDecoderOnly) {
    s.ffn_gate = Tensor(max_rows, config.ffn, cat, tracker);
  }
  s.ffn_down = Tensor(max_rows, config.hidden, cat, tracker);
  s.scores = Tensor(seq_len, seq_len, cat, tracker);
  return s;
}

int64_t LayerScratch::BytesFor(const ModelConfig& config, size_t rows, size_t seq_len) {
  int64_t floats = 0;
  floats += static_cast<int64_t>(rows) * static_cast<int64_t>(config.hidden) * 7;
  floats += static_cast<int64_t>(rows) * static_cast<int64_t>(config.ffn) *
            (config.arch == ModelArch::kDecoderOnly ? 2 : 1);
  floats += static_cast<int64_t>(seq_len) * static_cast<int64_t>(seq_len);
  return floats * static_cast<int64_t>(sizeof(float));
}

namespace {

// Projects rows of `x` through one of the layer's weight matrices, letting
// the view dispatch on its storage precision (fused dequantising GEMM).
void Project(const Tensor& x, size_t rows, const WeightView& w, size_t out_dim, Tensor* out) {
  PRISM_CHECK_GE(out->rows(), rows);
  PRISM_CHECK_EQ(out->cols(), out_dim);
  PRISM_CHECK_EQ(w.cols, x.cols());
  PRISM_CHECK_EQ(w.rows, out_dim);
  w.MatMulTransB(x.data(), rows, out->data());
}

void ApplyNorm(const ModelConfig& config, Tensor* t, size_t rows, std::span<const float> gain,
               std::span<const float> bias) {
  // Norm only the first `rows` rows: build a temporary span-view via row loop.
  for (size_t r = 0; r < rows; ++r) {
    auto row = t->row(r);
    if (config.arch == ModelArch::kDecoderOnly) {
      // RMSNorm.
      double sum_sq = 0.0;
      for (float v : row) {
        sum_sq += static_cast<double>(v) * v;
      }
      const float inv_rms =
          1.0f / std::sqrt(static_cast<float>(sum_sq / static_cast<double>(row.size())) + 1e-5f);
      for (size_t c = 0; c < row.size(); ++c) {
        row[c] = row[c] * inv_rms * gain[c];
      }
    } else {
      // LayerNorm.
      double mean = 0.0;
      for (float v : row) {
        mean += v;
      }
      mean /= static_cast<double>(row.size());
      double var = 0.0;
      for (float v : row) {
        const double d = v - mean;
        var += d * d;
      }
      var /= static_cast<double>(row.size());
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + 1e-5f);
      for (size_t c = 0; c < row.size(); ++c) {
        row[c] = (row[c] - static_cast<float>(mean)) * inv_std * gain[c] + bias[c];
      }
    }
  }
}

}  // namespace

void LayerForward(const ModelConfig& config, const AnyLayerView& w, size_t seq_len,
                  Tensor* hidden, LayerScratch* scratch) {
  const size_t rows = hidden->rows();
  PRISM_CHECK_EQ(rows % seq_len, 0u);
  PRISM_CHECK_LE(rows, scratch->normed.rows());
  const size_t candidates = rows / seq_len;
  const size_t d = config.hidden;
  const size_t heads = config.n_heads;
  const size_t dh = config.head_dim();
  const bool causal = config.arch == ModelArch::kDecoderOnly;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  // --- Attention sublayer (pre-norm residual) ---
  std::copy(hidden->data(), hidden->data() + rows * d, scratch->normed.data());
  ApplyNorm(config, &scratch->normed, rows, w.norm1_gain, w.norm1_bias);
  Project(scratch->normed, rows, w.wq, d, &scratch->q);
  Project(scratch->normed, rows, w.wk, d, &scratch->k);
  Project(scratch->normed, rows, w.wv, d, &scratch->v);

  for (size_t c = 0; c < candidates; ++c) {
    const size_t base = c * seq_len;
    for (size_t h = 0; h < heads; ++h) {
      const size_t col0 = h * dh;
      // scores[i][j] = q_i · k_j / sqrt(dh), within this candidate and head.
      for (size_t i = 0; i < seq_len; ++i) {
        const float* qi = scratch->q.data() + (base + i) * d + col0;
        float* srow = scratch->scores.data() + i * seq_len;
        for (size_t j = 0; j < seq_len; ++j) {
          const float* kj = scratch->k.data() + (base + j) * d + col0;
          float acc = 0.0f;
          for (size_t x = 0; x < dh; ++x) {
            acc += qi[x] * kj[x];
          }
          srow[j] = acc * inv_sqrt_dh;
        }
        SoftmaxRowInPlace({srow, seq_len}, causal ? static_cast<ptrdiff_t>(i) : -1);
      }
      // ctx_i = Σ_j scores[i][j] · v_j.
      for (size_t i = 0; i < seq_len; ++i) {
        float* ctx = scratch->attn_ctx.data() + (base + i) * d + col0;
        for (size_t x = 0; x < dh; ++x) {
          ctx[x] = 0.0f;
        }
        const float* srow = scratch->scores.data() + i * seq_len;
        const size_t jmax = causal ? i + 1 : seq_len;
        for (size_t j = 0; j < jmax; ++j) {
          const float sv = srow[j];
          if (sv == 0.0f) {
            continue;
          }
          const float* vj = scratch->v.data() + (base + j) * d + col0;
          for (size_t x = 0; x < dh; ++x) {
            ctx[x] += sv * vj[x];
          }
        }
      }
    }
  }

  Project(scratch->attn_ctx, rows, w.wo, d, &scratch->attn_out);
  // Residual add (only the active rows).
  {
    float* ph = hidden->data();
    const float* pa = scratch->attn_out.data();
    for (size_t i = 0; i < rows * d; ++i) {
      ph[i] += pa[i];
    }
  }

  // --- FFN sublayer (pre-norm residual) ---
  std::copy(hidden->data(), hidden->data() + rows * d, scratch->normed.data());
  ApplyNorm(config, &scratch->normed, rows, w.norm2_gain, w.norm2_bias);
  const size_t f = config.ffn;
  if (config.arch == ModelArch::kDecoderOnly) {
    // SwiGLU: down( silu(gate(x)) ⊙ up(x) ).
    Project(scratch->normed, rows, w.w_gate, f, &scratch->ffn_gate);
    Project(scratch->normed, rows, w.w_up, f, &scratch->ffn_up);
    float* pg = scratch->ffn_gate.data();
    const float* pu = scratch->ffn_up.data();
    for (size_t i = 0; i < rows * f; ++i) {
      pg[i] = pg[i] * Sigmoid(pg[i]) * pu[i];
    }
    Project(scratch->ffn_gate, rows, w.w_down, d, &scratch->ffn_down);
  } else {
    // GELU MLP: down( gelu(up(x)) ).
    Project(scratch->normed, rows, w.w_up, f, &scratch->ffn_up);
    float* pu = scratch->ffn_up.data();
    constexpr float kSqrt2OverPi = 0.7978845608028654f;
    for (size_t i = 0; i < rows * f; ++i) {
      const float x = pu[i];
      pu[i] = 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
    }
    Project(scratch->ffn_up, rows, w.w_down, d, &scratch->ffn_down);
  }
  {
    float* ph = hidden->data();
    const float* pf = scratch->ffn_down.data();
    for (size_t i = 0; i < rows * d; ++i) {
      ph[i] += pf[i];
    }
  }
}

size_t PoolRow(const ModelConfig& config, size_t candidate, size_t seq_len) {
  return config.arch == ModelArch::kDecoderOnly ? candidate * seq_len + (seq_len - 1)
                                                : candidate * seq_len;
}

void ScoreChunk(const ModelConfig& config, const HeadWeights& head, const Tensor& hidden,
                size_t seq_len, std::vector<float>* scores_out) {
  PRISM_CHECK_EQ(hidden.rows() % seq_len, 0u);
  const size_t candidates = hidden.rows() / seq_len;
  for (size_t c = 0; c < candidates; ++c) {
    const auto row = hidden.row(PoolRow(config, c, seq_len));
    const float logit = Dot(row, {head.w.data(), head.w.size()}) + head.bias;
    scores_out->push_back(Sigmoid(logit));
  }
}

}  // namespace prism

// The linter's own tests: each rule fires on a minimal fixture, each allow
// directive suppresses exactly its rule, and — the point of the exercise —
// the real tree is clean (every exception in src/ carries an explicit,
// reasoned allow directive).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace prism::lint {
namespace {

std::vector<std::string> Rules(const std::vector<Violation>& violations) {
  std::vector<std::string> rules;
  rules.reserve(violations.size());
  for (const Violation& v : violations) {
    rules.push_back(v.rule);
  }
  return rules;
}

bool HasRule(const std::vector<Violation>& violations, const std::string& rule) {
  const auto rules = Rules(violations);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- Rule 1: include-layering. -------------------------------------------

TEST(LintLayering, UpwardIncludeFires) {
  // storage (rank 2) including core (rank 6): a back-edge in the DAG.
  const auto v = LintFile("src/storage/ssd.cc", "#include \"src/core/engine.h\"\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "layering");
  EXPECT_EQ(v[0].line, 1u);
}

TEST(LintLayering, SiblingIncludeFires) {
  // retrieval and runtime share a rank: neither may include the other.
  EXPECT_TRUE(HasRule(LintFile("src/retrieval/bm25.cc", "#include \"src/runtime/runner.h\"\n"),
                      "layering"));
  EXPECT_TRUE(
      HasRule(LintFile("src/apps/file_search.cc", "#include \"src/core/engine.h\"\n"),
              "layering"));
}

TEST(LintLayering, DownwardAndSameLayerIncludesAreClean) {
  EXPECT_TRUE(LintFile("src/core/engine.cc", "#include \"src/common/check.h\"\n").empty());
  EXPECT_TRUE(LintFile("src/core/engine.cc", "#include \"src/core/stages.h\"\n").empty());
  // serving is the sink: it may include apps.
  EXPECT_TRUE(
      LintFile("src/serving/workload.cc", "#include \"src/apps/agent_memory.h\"\n").empty());
}

TEST(LintLayering, CommentedOutIncludeDoesNotCount) {
  EXPECT_TRUE(LintFile("src/storage/ssd.cc", "// #include \"src/core/engine.h\"\n").empty());
}

// --- Rule 2: wall-clock discipline. --------------------------------------

TEST(LintWallClock, RawClockReadFires) {
  const auto v = LintFile("src/core/engine.cc",
                          "int64_t t = std::chrono::steady_clock::now().time_since_epoch();\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "wall-clock");
}

TEST(LintWallClock, SleepAndRawCondVarFire) {
  EXPECT_TRUE(HasRule(
      LintFile("src/storage/ssd.cc", "std::this_thread::sleep_for(d);\n"), "wall-clock"));
  EXPECT_TRUE(HasRule(
      LintFile("src/model/embedding.h", "std::condition_variable cv_;\n"), "wall-clock"));
}

TEST(LintWallClock, ClockSeamItselfIsExempt) {
  EXPECT_TRUE(
      LintFile("src/common/clock.cc", "cv_.wait_until(lock, steady_clock::now());\n").empty());
}

TEST(LintWallClock, AllowDirectiveOnSameLineSuppresses) {
  EXPECT_TRUE(LintFile("src/common/timer.h",
                       "auto t = std::chrono::steady_clock::now();  "
                       "// prism-lint: allow(wall-clock): the measurement clock\n")
                  .empty());
}

TEST(LintWallClock, AllowDirectiveAboveCoversNextCodeLine) {
  const std::string content =
      "// prism-lint: allow(wall-clock): device-domain throttle, wall by design\n"
      "// (continued rationale on a second comment line)\n"
      "std::this_thread::sleep_for(d);\n"
      "std::this_thread::sleep_for(d);\n";  // NOT covered: only the first code line is.
  const auto v = LintFile("src/storage/ssd.cc", content);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 4u);
}

TEST(LintWallClock, DirectiveWithoutReasonIsItselfAViolation) {
  const auto v = LintFile("src/storage/ssd.cc",
                          "// prism-lint: allow(wall-clock):\n"
                          "std::this_thread::sleep_for(d);\n");
  // The empty-reason directive both fails and fails to suppress.
  EXPECT_TRUE(HasRule(v, "directive"));
  EXPECT_TRUE(HasRule(v, "wall-clock"));
}

TEST(LintWallClock, TokenInsideCommentOrStringDoesNotCount) {
  EXPECT_TRUE(LintFile("src/core/engine.cc", "// uses steady_clock under the hood\n").empty());
  EXPECT_TRUE(
      LintFile("src/core/engine.cc", "const char* k = \"steady_clock\";\n").empty());
}

// --- Rule 3: atomics hygiene. --------------------------------------------

TEST(LintAtomics, ImplicitSeqCstFiresInScope) {
  const auto v = LintFile("src/core/scheduler.cc", "size_t n = staged_count_.load();\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "atomics");
}

TEST(LintAtomics, ExplicitOrderIsClean) {
  EXPECT_TRUE(LintFile("src/core/scheduler.cc",
                       "size_t n = staged_count_.load(std::memory_order_seq_cst);\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/serving/result_cache.cc",
                       "counter.fetch_add(1, std::memory_order_relaxed);\n")
                  .empty());
  // Multi-line argument lists are scanned to the balancing paren.
  EXPECT_TRUE(LintFile("src/core/scheduler.cc",
                       "staged_count_.store(\n    0,\n    std::memory_order_seq_cst);\n")
                  .empty());
}

TEST(LintAtomics, OutOfScopeLayersAreNotChecked) {
  // The rule targets the concurrency-dense layers only.
  EXPECT_TRUE(LintFile("src/storage/ssd.cc", "counter.fetch_add(1);\n").empty());
  EXPECT_TRUE(LintFile("src/common/logging.cc", "level_.load();\n").empty());
  // ...but striped.h is in scope by name.
  EXPECT_TRUE(HasRule(LintFile("src/common/striped.h", "cell_.load();\n"), "atomics"));
}

TEST(LintAtomics, NonMemberIdentifierDoesNotCount) {
  // `load` as a free function or part of a longer name must not fire.
  EXPECT_TRUE(LintFile("src/core/engine.cc", "LoadCheckpoint(path); reload(x);\n").empty());
  EXPECT_TRUE(LintFile("src/core/engine.cc", "size_t payload(int);\n").empty());
}

// --- Rule 4: raw mutexes. ------------------------------------------------

TEST(LintRawMutex, RawMutexAndGuardsFire) {
  EXPECT_TRUE(HasRule(LintFile("src/core/service.cc", "std::mutex mu_;\n"), "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintFile("src/model/embedding.cc", "std::lock_guard<std::mutex> lock(mu_);\n"),
      "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintFile("src/storage/ssd.cc", "std::unique_lock<std::mutex> lock(mu_);\n"), "raw-mutex"));
  EXPECT_TRUE(
      HasRule(LintFile("src/core/service.cc", "std::scoped_lock lock(a, b);\n"), "raw-mutex"));
}

TEST(LintRawMutex, WrapperHeaderIsExempt) {
  EXPECT_TRUE(LintFile("src/common/mutex.h", "using NativeMutex = std::mutex;\n").empty());
}

TEST(LintRawMutex, PrismMutexIsClean) {
  EXPECT_TRUE(LintFile("src/core/service.cc", "Mutex mu_;\nMutexLock lock(mu_);\n").empty());
}

TEST(LintRawMutex, TestsAndToolsAreOutOfScope) {
  EXPECT_TRUE(LintFile("tests/foo_test.cc", "std::mutex mu;\n").empty());
  EXPECT_TRUE(LintFile("tools/lint/lint.cc", "std::mutex mu;\n").empty());
}

// --- The real tree. -------------------------------------------------------

#ifndef PRISM_SOURCE_ROOT
#error "PRISM_SOURCE_ROOT must point at the repository root"
#endif

TEST(LintTreeTest, RealTreeIsClean) {
  const std::vector<Violation> violations = LintTree(PRISM_SOURCE_ROOT);
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.ToString();
  }
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace prism::lint

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/quant.h"

namespace prism {
namespace {

std::vector<float> RandomWeights(size_t n, uint64_t seed, float scale = 0.1f) {
  std::vector<float> w(n);
  Rng rng(seed);
  for (float& v : w) {
    v = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return w;
}

// Property sweep over matrix shapes and group sizes.
class QuantRoundTripTest : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(QuantRoundTripTest, ErrorBoundedByHalfScale) {
  const auto [rows, cols, group] = GetParam();
  MemoryTracker tracker;
  const std::vector<float> w = RandomWeights(rows * cols, rows * 31 + cols);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, group, MemCategory::kScratch, &tracker);
  std::vector<float> back(rows * cols);
  qm.Dequantize(back.data());
  // Symmetric 4-bit rounding: |err| <= scale/2 everywhere; check against the
  // global max scale (a loose but always-valid bound).
  const float bound = qm.MaxScale() * 0.5f + 1e-6f;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i] - back[i]), bound) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QuantRoundTripTest,
                         ::testing::Values(std::make_tuple(8, 32, 16),
                                           std::make_tuple(16, 64, 32),
                                           std::make_tuple(3, 32, 32),
                                           std::make_tuple(32, 128, 64),
                                           std::make_tuple(5, 96, 32)));

TEST(QuantTest, ByteSizeIsRoughlyQuarter) {
  MemoryTracker tracker;
  const size_t rows = 64;
  const size_t cols = 128;
  const std::vector<float> w = RandomWeights(rows * cols, 9);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  const size_t f32_bytes = rows * cols * sizeof(float);
  EXPECT_LT(qm.ByteSize(), f32_bytes / 3);  // 4 bits + scales < a third of fp32.
}

TEST(QuantTest, MatMulMatchesDequantizedMatMul) {
  MemoryTracker tracker;
  const size_t rows = 12;
  const size_t cols = 32;
  const size_t m = 5;
  const std::vector<float> w = RandomWeights(rows * cols, 10);
  const std::vector<float> a = RandomWeights(m * cols, 11, 1.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 16, MemCategory::kScratch, &tracker);

  std::vector<float> dequant(rows * cols);
  qm.Dequantize(dequant.data());
  std::vector<float> expected(m * rows, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < cols; ++k) {
        acc += static_cast<double>(a[i * cols + k]) * dequant[j * cols + k];
      }
      expected[i * rows + j] = static_cast<float>(acc);
    }
  }
  std::vector<float> got(m * rows, 0.0f);
  qm.MatMulTransB(a.data(), m, got.data());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-3f);
  }
}

TEST(QuantTest, SerializeDeserializeRoundTrip) {
  MemoryTracker tracker;
  const size_t rows = 8;
  const size_t cols = 64;
  const std::vector<float> w = RandomWeights(rows * cols, 12);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  std::vector<uint8_t> buf(qm.SerializedSize());
  qm.SerializeTo(buf.data());
  const QuantizedMatrix back = QuantizedMatrix::Deserialize(buf.data(), rows, cols, 32,
                                                            MemCategory::kScratch, &tracker);
  std::vector<float> w1(rows * cols);
  std::vector<float> w2(rows * cols);
  qm.Dequantize(w1.data());
  back.Dequantize(w2.data());
  EXPECT_EQ(w1, w2);
}

TEST(QuantTest, ViewMatchesOwningMatrix) {
  MemoryTracker tracker;
  const size_t rows = 8;
  const size_t cols = 32;
  const size_t m = 4;
  const std::vector<float> w = RandomWeights(rows * cols, 13);
  const std::vector<float> a = RandomWeights(m * cols, 14, 1.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 16, MemCategory::kScratch, &tracker);
  std::vector<uint8_t> buf(qm.SerializedSize());
  qm.SerializeTo(buf.data());

  QuantMatrixView view;
  view.rows = rows;
  view.cols = cols;
  view.group_size = 16;
  view.packed = buf.data();
  view.scales = reinterpret_cast<const float*>(buf.data() + rows * cols / 2);

  std::vector<float> got_owning(m * rows);
  std::vector<float> got_view(m * rows);
  qm.MatMulTransB(a.data(), m, got_owning.data());
  view.MatMulTransB(a.data(), m, got_view.data());
  EXPECT_EQ(got_owning, got_view);
}

TEST(QuantTest, SpanBytesMatchesSerializedSize) {
  MemoryTracker tracker;
  const size_t rows = 16;
  const size_t cols = 64;
  const std::vector<float> w = RandomWeights(rows * cols, 15);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  EXPECT_EQ(qm.SerializedSize(), QuantMatrixView::SpanBytes(rows, cols, 32));
}

TEST(QuantTest, ZeroMatrixQuantizesToZero) {
  MemoryTracker tracker;
  const std::vector<float> w(8 * 16, 0.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), 8, 16, 16, MemCategory::kScratch, &tracker);
  std::vector<float> back(8 * 16, 1.0f);
  qm.Dequantize(back.data());
  for (float v : back) {
    EXPECT_EQ(v, 0.0f);
  }
}

// --- int8 tier ------------------------------------------------------------

class Int8RoundTripTest : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(Int8RoundTripTest, ErrorBoundedByHalfScale) {
  const auto [rows, cols, group] = GetParam();
  const std::vector<float> w = RandomWeights(rows * cols, rows * 37 + cols);
  std::vector<uint8_t> encoded(MatrixSpanBytes(Precision::kInt8, rows, cols, group));
  std::vector<float> back(rows * cols);
  EncodeMatrix(Precision::kInt8, w.data(), rows, cols, group, encoded.data());
  DecodeMatrix(Precision::kInt8, encoded.data(), rows, cols, group, back.data());
  const float bound = Int8MaxScale(encoded.data(), rows, cols, group) * 0.5f + 1e-7f;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i] - back[i]), bound) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Int8RoundTripTest,
                         ::testing::Values(std::make_tuple(8, 32, 16),
                                           std::make_tuple(16, 64, 32),
                                           std::make_tuple(3, 32, 32),
                                           std::make_tuple(5, 96, 32)));

TEST(Int8Test, MatMulMatchesDequantizedMatMul) {
  const size_t rows = 12;
  const size_t cols = 32;
  const size_t group = 16;
  const size_t m = 5;
  const std::vector<float> w = RandomWeights(rows * cols, 20);
  const std::vector<float> a = RandomWeights(m * cols, 21, 1.0f);
  std::vector<uint8_t> encoded(MatrixSpanBytes(Precision::kInt8, rows, cols, group));
  EncodeMatrix(Precision::kInt8, w.data(), rows, cols, group, encoded.data());
  std::vector<float> dequant(rows * cols);
  DecodeMatrix(Precision::kInt8, encoded.data(), rows, cols, group, dequant.data());

  std::vector<float> expected(m * rows, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < cols; ++k) {
        acc += static_cast<double>(a[i * cols + k]) * dequant[j * cols + k];
      }
      expected[i * rows + j] = static_cast<float>(acc);
    }
  }
  Int8MatrixView view;
  view.rows = rows;
  view.cols = cols;
  view.group_size = group;
  view.values = reinterpret_cast<const int8_t*>(encoded.data());
  view.scales = reinterpret_cast<const float*>(encoded.data() + rows * cols);
  std::vector<float> got(m * rows, 0.0f);
  view.MatMulTransB(a.data(), m, got.data());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-3f);
  }
}

TEST(Int8Test, SpanBytesIsValuesPlusScales) {
  EXPECT_EQ(Int8MatrixView::SpanBytes(16, 64, 32), 16 * 64 + 16 * 2 * sizeof(float));
  EXPECT_EQ(MatrixSpanBytes(Precision::kInt8, 16, 64, 32),
            Int8MatrixView::SpanBytes(16, 64, 32));
}

TEST(Int8Test, ZeroMatrixRoundTripsToZero) {
  const std::vector<float> w(8 * 16, 0.0f);
  std::vector<uint8_t> encoded(MatrixSpanBytes(Precision::kInt8, 8, 16, 16));
  std::vector<float> back(8 * 16, 1.0f);
  EncodeMatrix(Precision::kInt8, w.data(), 8, 16, 16, encoded.data());
  DecodeMatrix(Precision::kInt8, encoded.data(), 8, 16, 16, back.data());
  for (float v : back) {
    EXPECT_EQ(v, 0.0f);
  }
}

// --- fp16 tier ------------------------------------------------------------

TEST(Fp16Test, ExactValuesRoundTripExactly) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 0.25f, 1024.0f, 65504.0f, -65504.0f,
                  1.5f, 0.099975586f /* representable in binary16 */}) {
    EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(v)), v) << v;
  }
}

TEST(Fp16Test, OverflowSaturatesToMaxHalf) {
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(65536.0f)), 65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(-65536.0f)), -65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(std::numeric_limits<float>::infinity())), 65504.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(-std::numeric_limits<float>::infinity())), -65504.0f);
  // 65520 is the rounding boundary: round-to-nearest-even would overflow to
  // infinity; saturation must clamp it back to 65504.
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(65520.0f)), 65504.0f);
}

TEST(Fp16Test, NanIsPreserved) {
  const uint16_t h = Fp32ToFp16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(h & 0x7C00u, 0x7C00u);  // Exponent all ones...
  EXPECT_NE(h & 0x03FFu, 0u);       // ...nonzero mantissa: a NaN, not inf.
  EXPECT_TRUE(std::isnan(Fp16ToFp32(h)));
}

TEST(Fp16Test, SubnormalsRoundTrip) {
  // Largest and smallest positive binary16 subnormals, and one in between.
  for (float v : {5.9604645e-8f, 6.097555e-5f, 3.0517578e-5f}) {
    EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(v)), v) << v;
    EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(-v)), -v) << -v;
  }
  // Below half the smallest subnormal: flushes to (signed) zero.
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(1e-9f)), 0.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(-1e-9f)), -0.0f);
}

TEST(Fp16Test, RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10): ties
  // go to the even mantissa, i.e. 1.0. Just above the tie rounds up.
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(1.0f + 4.8828125e-4f)), 1.0f);
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(1.0f + 4.9e-4f)), 1.0f + 9.765625e-4f);
  // 1 + 3·2^-11 ties between consecutive halves: even side is the upper.
  EXPECT_EQ(Fp16ToFp32(Fp32ToFp16(1.0f + 3 * 4.8828125e-4f)), 1.0f + 2 * 9.765625e-4f);
}

TEST(Fp16Test, AllFiniteHalfBitPatternsRoundTrip) {
  // Exhaustive: decode→encode is the identity on every finite half. The
  // exponent-all-ones patterns are excluded — inf saturates to ±65504 by
  // design and NaNs canonicalise.
  for (uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    if ((h & 0x7C00u) == 0x7C00u) {
      continue;
    }
    EXPECT_EQ(Fp32ToFp16(Fp16ToFp32(h)), h) << "bits " << bits;
  }
}

TEST(Fp16Test, MatMulMatchesDecodedMatMul) {
  const size_t rows = 12;
  const size_t cols = 32;
  const size_t m = 5;
  const std::vector<float> w = RandomWeights(rows * cols, 22);
  const std::vector<float> a = RandomWeights(m * cols, 23, 1.0f);
  std::vector<uint8_t> encoded(MatrixSpanBytes(Precision::kFp16, rows, cols, 0));
  EncodeMatrix(Precision::kFp16, w.data(), rows, cols, 0, encoded.data());
  std::vector<float> decoded(rows * cols);
  DecodeMatrix(Precision::kFp16, encoded.data(), rows, cols, 0, decoded.data());

  std::vector<float> expected(m * rows, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < cols; ++k) {
        acc += static_cast<double>(a[i * cols + k]) * decoded[j * cols + k];
      }
      expected[i * rows + j] = static_cast<float>(acc);
    }
  }
  Fp16MatrixView view;
  view.rows = rows;
  view.cols = cols;
  view.data = reinterpret_cast<const uint16_t*>(encoded.data());
  std::vector<float> got(m * rows, 0.0f);
  view.MatMulTransB(a.data(), m, got.data());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-3f);
  }
}

TEST(Fp16Test, SpanBytesIsTwoPerValue) {
  EXPECT_EQ(Fp16MatrixView::SpanBytes(16, 64), 16 * 64 * 2);
  EXPECT_EQ(MatrixSpanBytes(Precision::kFp16, 16, 64, 32), Fp16MatrixView::SpanBytes(16, 64));
}

// --- precision axis -------------------------------------------------------

TEST(PrecisionTest, NamesRoundTrip) {
  for (const Precision precision : kAllPrecisions) {
    Precision back = Precision::kW4;
    ASSERT_TRUE(PrecisionByName(PrecisionName(precision), &back));
    EXPECT_EQ(back, precision);
  }
  Precision out = Precision::kFp32;
  EXPECT_FALSE(PrecisionByName("fp8", &out));
  EXPECT_FALSE(PrecisionByName("", &out));
}

TEST(PrecisionTest, SpanBytesOrderingMatchesTiers) {
  const size_t rows = 32;
  const size_t cols = 64;
  const size_t group = 16;
  const size_t f32 = MatrixSpanBytes(Precision::kFp32, rows, cols, group);
  const size_t f16 = MatrixSpanBytes(Precision::kFp16, rows, cols, group);
  const size_t i8 = MatrixSpanBytes(Precision::kInt8, rows, cols, group);
  const size_t w4 = MatrixSpanBytes(Precision::kW4, rows, cols, group);
  EXPECT_EQ(f32, rows * cols * 4);
  EXPECT_EQ(f16, f32 / 2);
  EXPECT_LT(i8, f16);
  EXPECT_LT(w4, i8);
}

}  // namespace
}  // namespace prism

// RerankService: the deployment-facing facade.
//
// Owns a model's checkpoint, a PRISM engine, an optional full-inference
// reference for online calibration, and rolling service statistics — the
// piece an application (file search, RAG, agent) embeds. Single-threaded by
// design: on-device rerank requests are serial, and the engine's internal
// I/O threads provide the only concurrency the workload needs.
#ifndef PRISM_SRC_CORE_SERVICE_H_
#define PRISM_SRC_CORE_SERVICE_H_

#include <memory>
#include <string>

#include "src/core/engine.h"
#include "src/core/online_calibrator.h"

namespace prism {

struct ServiceOptions {
  PrismOptions engine;
  // When set, a pruning-disabled twin engine is created and every Nth request
  // is sampled for idle-time calibration toward `target_precision`.
  bool online_calibration = false;
  OnlineCalibratorOptions calibration;
};

struct ServiceStats {
  size_t requests = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t total_candidate_layers = 0;
  int64_t total_candidates = 0;
  int64_t bytes_streamed = 0;

  double MeanLatencyMs() const {
    return requests == 0 ? 0.0 : total_latency_ms / static_cast<double>(requests);
  }
  // Fraction of full-inference work actually executed (1.0 = no pruning win).
  double WorkFraction(size_t n_layers) const {
    const auto full = static_cast<double>(total_candidates) * static_cast<double>(n_layers);
    return full == 0.0 ? 0.0 : static_cast<double>(total_candidate_layers) / full;
  }
};

class RerankService {
 public:
  RerankService(const ModelConfig& config, const std::string& checkpoint_path,
                ServiceOptions options, MemoryTracker* tracker = &MemoryTracker::Global());

  RerankResult Rerank(const RerankRequest& request);

  // Idle hook: runs one online-calibration cycle if enabled (no-op
  // otherwise). Returns the measured agreement or NaN.
  double OnIdle();

  const ServiceStats& stats() const { return stats_; }
  const ModelConfig& config() const { return config_; }
  float current_threshold() const { return engine_->options().dispersion_threshold; }

 private:
  ModelConfig config_;
  std::unique_ptr<PrismEngine> engine_;
  std::unique_ptr<PrismEngine> reference_;  // Pruning-off twin (calibration).
  std::unique_ptr<OnlineCalibrator> calibrator_;
  ServiceStats stats_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SERVICE_H_

// Indexed-blob container on top of SimulatedSsd.
//
// Model checkpoints are laid out as a sequence of blobs (embedding table,
// one blob per transformer layer, classifier head) so that the layer streamer
// can fetch exactly one layer's bytes per request. Format v2 tags every blob
// with its storage precision so checkpoints are self-describing:
//
//   [magic u32][version u32][count u64]                          header
//   v2: count × { offset u64, size u64, precision u32, group u32 }  table
//   v1: count × { offset u64, size u64 }                            table
//   blob bytes ...                                                data
//
// v1 files (written before the precision axis existed) still open; their
// blobs read as untagged (fp32, group 0).
#ifndef PRISM_SRC_STORAGE_BLOB_FILE_H_
#define PRISM_SRC_STORAGE_BLOB_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/ssd.h"
#include "src/tensor/quant.h"

namespace prism {

inline constexpr uint32_t kBlobFileMagic = 0x50524C42;  // "PRLB"
inline constexpr uint32_t kBlobFileVersion = 2;
inline constexpr uint32_t kBlobFileVersionLegacy = 1;

class BlobFileWriter {
 public:
  // Writes blobs sequentially through an *unthrottled* SSD handle (checkpoint
  // creation is setup work, not part of any measured experiment).
  explicit BlobFileWriter(const std::string& path);

  // Appends a blob; returns its index. The default overload tags the blob
  // fp32 / group 0 (raw bytes, no quantisation metadata).
  size_t AddBlob(std::span<const uint8_t> bytes);
  size_t AddBlob(std::span<const uint8_t> bytes, Precision precision, uint32_t quant_group);

  // Writes the header + table. Must be called exactly once, after all blobs.
  Status Finish();

 private:
  struct Entry {
    int64_t offset = 0;
    int64_t size = 0;
    Precision precision = Precision::kFp32;
    uint32_t quant_group = 0;
  };

  std::string path_;
  std::unique_ptr<SimulatedSsd> ssd_;
  std::vector<Entry> table_;
  std::vector<uint8_t> scratch_;  // Staged blob bytes until Finish.
  int64_t data_cursor_ = 0;
  bool finished_ = false;
};

class BlobFileReader {
 public:
  // Opens an existing blob file through a throttled simulated device.
  static Result<std::unique_ptr<BlobFileReader>> Open(const std::string& path, SsdConfig config);

  size_t blob_count() const { return table_.size(); }
  int64_t BlobSize(size_t index) const;

  // Format version of the opened file (kBlobFileVersion or the legacy 1).
  uint32_t version() const { return version_; }
  bool has_precision_tags() const { return version_ >= 2; }

  // Per-blob precision tag. v1 files report kFp32 / group 0 for every blob
  // (the legacy format carried no metadata; callers that streamed w4 from v1
  // files supplied the precision out of band).
  Precision BlobPrecision(size_t index) const;
  uint32_t BlobQuantGroup(size_t index) const;

  // Reads blob `index` fully into `dest` (must be exactly BlobSize bytes).
  Status ReadBlob(size_t index, std::span<uint8_t> dest);

  // Reads a byte range within blob `index` (for row-granular embedding-table
  // fetches on cache miss, §4.4).
  Status ReadBlobRange(size_t index, int64_t offset_in_blob, std::span<uint8_t> dest);

  // Scattered ranges within one blob as a single device request (§4.5's
  // batched unique-token load).
  Status ReadBlobRanges(size_t index,
                        std::span<const std::pair<int64_t, std::span<uint8_t>>> ranges);

  SimulatedSsd& ssd() { return *ssd_; }

 private:
  struct Entry {
    int64_t offset = 0;
    int64_t size = 0;
    Precision precision = Precision::kFp32;
    uint32_t quant_group = 0;
  };

  BlobFileReader() = default;

  std::unique_ptr<SimulatedSsd> ssd_;
  std::vector<Entry> table_;
  uint32_t version_ = kBlobFileVersion;
};

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_BLOB_FILE_H_

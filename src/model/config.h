// Model configurations and the scaled model zoo.
//
// The paper evaluates five rerankers (Table 1). Real checkpoints are not
// available here, so the zoo mirrors each model's *architecture* (encoder vs.
// decoder, layer count, parameter ratios) at hidden sizes reduced by the
// documented scale factor, keeping every experiment laptop-runnable on one
// core while preserving the compute/IO/memory ratios PRISM's techniques
// depend on. See DESIGN.md §1 and §4 for the substitution rationale.
#ifndef PRISM_SRC_MODEL_CONFIG_H_
#define PRISM_SRC_MODEL_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prism {

enum class ModelArch {
  kEncoderOnly,  // Bidirectional self-attention, LayerNorm, GELU FFN (BERT-style).
  kDecoderOnly,  // Causal self-attention, RMSNorm, SwiGLU FFN (Qwen/GPT-style).
};

struct ModelConfig {
  std::string name;
  ModelArch arch = ModelArch::kDecoderOnly;
  size_t vocab_size = 16384;
  size_t hidden = 96;
  size_t ffn = 192;
  size_t n_heads = 4;
  size_t n_layers = 28;
  size_t max_seq = 64;
  // 4-bit quantisation group size (must divide hidden and ffn).
  size_t quant_group = 32;
  // --- Planted-relevance model (DESIGN.md §4) ---
  // Relevance enters on *document tokens* (each doc-token embedding gains
  // (r−0.5)·signal_gain·v) and is aggregated into the pooled position layer
  // by layer through rank-1 components planted in Wv/Wo (v→v value routing),
  // so provisional scores start compressed near 0.5 and progressively
  // diverge — the paper's Fig-2 dynamics.
  float signal_gain = 1.2f;
  // Small direct seed of the signal at the pooled position (fraction of the
  // doc-token gain) so the very first layers carry weak coarse information.
  float pool_seed = 0.3f;
  // Strength of the planted v→v rank-1 component in Wv and Wo.
  float amplify = 0.1f;
  // Classifier scale: head weight = head_scale · v (v unit-norm).
  float head_scale = 4.0f;
  // Scale of the per-layer random residual perturbations. Larger values →
  // noisier intermediate rankings → later convergence.
  float layer_noise = 0.065f;

  size_t head_dim() const { return hidden / n_heads; }

  // Float parameter counts.
  size_t EmbeddingParams() const { return vocab_size * hidden; }
  size_t LayerParams() const;
  size_t HeadParams() const { return hidden + 1; }  // classifier w + bias
  size_t TotalParams() const {
    return EmbeddingParams() + n_layers * LayerParams() + HeadParams();
  }

  // Byte sizes of on-disk blobs (fp32 path).
  size_t EmbeddingBlobBytes() const { return EmbeddingParams() * sizeof(float); }
  size_t LayerBlobBytes() const { return LayerParams() * sizeof(float); }
  size_t HeadBlobBytes() const { return HeadParams() * sizeof(float); }

  // The factor by which hidden dimensions were divided relative to the paper
  // model this config mirrors (for documentation output).
  double paper_scale = 8.0;
};

// The five models of Table 1, scaled. Names match the paper.
ModelConfig Qwen3Reranker0_6B();
ModelConfig Qwen3Reranker4B();
ModelConfig Qwen3Reranker8B();
ModelConfig BgeRerankerV2MiniCpm();
ModelConfig BgeRerankerV2M3();

// All five, in the paper's Table-1 order.
std::vector<ModelConfig> ModelZoo();

// Zoo lookup by paper name (CHECK-fails if unknown).
ModelConfig ModelByName(const std::string& name);

// A deliberately tiny config for unit tests (fast, 4 layers).
ModelConfig TestModel(ModelArch arch = ModelArch::kDecoderOnly);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_CONFIG_H_

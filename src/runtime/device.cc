#include "src/runtime/device.h"

#include <chrono>
#include <thread>

#include "src/common/check.h"

namespace prism {

DeviceProfile NvidiaProfile() {
  DeviceProfile d;
  d.name = "nvidia";
  // Scaled PCIe-4.0 SSD: chosen so a 0.6B-proxy layer (~0.5 MiB) loads in
  // roughly 0.6–0.9× the time a monolithic 20-candidate batch computes it.
  d.ssd.bandwidth_bytes_per_sec = 40.0 * 1024 * 1024;
  d.ssd.latency_micros = 120;
  d.compute_slowdown = 1.0;
  d.activation_budget_bytes = 4 * 1024 * 1024;
  d.hf_batch_size = 4;
  return d;
}

DeviceProfile AppleProfile() {
  DeviceProfile d;
  d.name = "apple";
  d.ssd.bandwidth_bytes_per_sec = 28.0 * 1024 * 1024;
  d.ssd.latency_micros = 150;
  d.compute_slowdown = 2.0;
  d.activation_budget_bytes = 2 * 1024 * 1024;
  d.hf_batch_size = 4;
  return d;
}

DeviceProfile DeviceByName(const std::string& name) {
  if (name == "nvidia") {
    return NvidiaProfile();
  }
  if (name == "apple") {
    return AppleProfile();
  }
  PRISM_CHECK_MSG(false, ("unknown device: " + name).c_str());
  return {};
}

void ApplyComputeSlowdown(const DeviceProfile& device, int64_t elapsed_micros) {
  if (device.compute_slowdown <= 1.0) {
    return;
  }
  const auto extra =
      static_cast<int64_t>(static_cast<double>(elapsed_micros) * (device.compute_slowdown - 1.0));
  if (extra > 0) {
    // prism-lint: allow(wall-clock): device-domain stretch. Slower devices
    // are modelled by padding *measured wall compute* by the slowdown
    // factor; like the SSD throttle, real compute runs at wall speed even
    // under a SimClock (simulated runs charge service time through
    // SimulatedRunner on the virtual timeline instead).
    std::this_thread::sleep_for(std::chrono::microseconds(extra));
  }
}

}  // namespace prism

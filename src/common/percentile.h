// Shared percentile convention for latency reporting.
//
// Every surface that quotes a pXX (ServiceStats, the workload driver's
// report) must use the same definition or their numbers stop being
// comparable; this is the single implementation they share.
#ifndef PRISM_SRC_COMMON_PERCENTILE_H_
#define PRISM_SRC_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace prism {

// Ceil-rank percentile (p in [0, 100]) over an ascending-sorted sample:
// the smallest element whose rank covers p% of the sample. 0 when empty.
inline double PercentileOverSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const size_t index =
      rank <= 1.0 ? 0 : std::min(sorted.size() - 1, static_cast<size_t>(rank) - 1);
  return sorted[index];
}

}  // namespace prism

#endif  // PRISM_SRC_COMMON_PERCENTILE_H_

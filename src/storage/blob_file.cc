#include "src/storage/blob_file.h"

#include <unistd.h>

#include <cstring>

#include "src/common/check.h"

namespace prism {

namespace {

// v2 table entries carry {offset u64, size u64, precision u32, group u32};
// legacy v1 entries are just {offset u64, size u64}.
constexpr size_t kEntryBytesV2 = 24;
constexpr size_t kEntryBytesV1 = 16;

size_t HeaderBytes(size_t count) { return 16 + count * kEntryBytesV2; }

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t at = buf.size();
  buf.resize(at + 4);
  std::memcpy(buf.data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  const size_t at = buf.size();
  buf.resize(at + 8);
  std::memcpy(buf.data() + at, &v, 8);
}

}  // namespace

BlobFileWriter::BlobFileWriter(const std::string& path) : path_(path) {
  SsdConfig config;
  config.throttle = false;
  ::unlink(path.c_str());
  ssd_ = std::make_unique<SimulatedSsd>(path, config);
}

size_t BlobFileWriter::AddBlob(std::span<const uint8_t> bytes) {
  return AddBlob(bytes, Precision::kFp32, 0);
}

size_t BlobFileWriter::AddBlob(std::span<const uint8_t> bytes, Precision precision,
                               uint32_t quant_group) {
  PRISM_CHECK(!finished_);
  // Blob bytes are staged in memory and flushed after the header in Finish,
  // once the table size (and thus the data-region start) is known.
  table_.push_back(Entry{data_cursor_, static_cast<int64_t>(bytes.size()), precision, quant_group});
  data_cursor_ += static_cast<int64_t>(bytes.size());
  scratch_.insert(scratch_.end(), bytes.begin(), bytes.end());
  return table_.size() - 1;
}

Status BlobFileWriter::Finish() {
  PRISM_CHECK(!finished_);
  finished_ = true;
  const size_t header = HeaderBytes(table_.size());
  std::vector<uint8_t> buf;
  buf.reserve(header + scratch_.size());
  PutU32(buf, kBlobFileMagic);
  PutU32(buf, kBlobFileVersion);
  PutU64(buf, table_.size());
  for (const Entry& entry : table_) {
    PutU64(buf, static_cast<uint64_t>(entry.offset + static_cast<int64_t>(header)));
    PutU64(buf, static_cast<uint64_t>(entry.size));
    PutU32(buf, static_cast<uint32_t>(entry.precision));
    PutU32(buf, entry.quant_group);
  }
  buf.insert(buf.end(), scratch_.begin(), scratch_.end());
  PRISM_RETURN_IF_ERROR(ssd_->Write(0, buf));
  scratch_.clear();
  return Status::Ok();
}

Result<std::unique_ptr<BlobFileReader>> BlobFileReader::Open(const std::string& path,
                                                             SsdConfig config) {
  auto reader = std::unique_ptr<BlobFileReader>(new BlobFileReader());
  reader->ssd_ = std::make_unique<SimulatedSsd>(path, config);
  uint8_t header[16];
  {
    // Header reads bypass the device model (they happen once at open).
    SsdConfig raw = config;
    raw.throttle = false;
    SimulatedSsd probe(path, raw);
    PRISM_RETURN_IF_ERROR(probe.Read(0, header));
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t count = 0;
    std::memcpy(&magic, header, 4);
    std::memcpy(&version, header + 4, 4);
    std::memcpy(&count, header + 8, 8);
    if (magic != kBlobFileMagic) {
      return Status::InvalidArgument("bad blob file magic in " + path);
    }
    if (version != kBlobFileVersion && version != kBlobFileVersionLegacy) {
      return Status::InvalidArgument("unsupported blob file version " + std::to_string(version));
    }
    reader->version_ = version;
    const size_t entry_bytes = version >= 2 ? kEntryBytesV2 : kEntryBytesV1;
    std::vector<uint8_t> table(count * entry_bytes);
    PRISM_RETURN_IF_ERROR(probe.Read(16, table));
    reader->table_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t* at = table.data() + i * entry_bytes;
      Entry entry;
      uint64_t offset = 0;
      uint64_t size = 0;
      std::memcpy(&offset, at, 8);
      std::memcpy(&size, at + 8, 8);
      entry.offset = static_cast<int64_t>(offset);
      entry.size = static_cast<int64_t>(size);
      if (version >= 2) {
        uint32_t precision = 0;
        std::memcpy(&precision, at + 16, 4);
        std::memcpy(&entry.quant_group, at + 20, 4);
        if (precision > static_cast<uint32_t>(Precision::kW4)) {
          return Status::InvalidArgument("unknown precision tag " + std::to_string(precision) +
                                         " for blob " + std::to_string(i) + " in " + path);
        }
        entry.precision = static_cast<Precision>(precision);
      }
      reader->table_.push_back(entry);
    }
  }
  return reader;
}

int64_t BlobFileReader::BlobSize(size_t index) const {
  PRISM_CHECK_LT(index, table_.size());
  return table_[index].size;
}

Precision BlobFileReader::BlobPrecision(size_t index) const {
  PRISM_CHECK_LT(index, table_.size());
  return table_[index].precision;
}

uint32_t BlobFileReader::BlobQuantGroup(size_t index) const {
  PRISM_CHECK_LT(index, table_.size());
  return table_[index].quant_group;
}

Status BlobFileReader::ReadBlob(size_t index, std::span<uint8_t> dest) {
  PRISM_CHECK_LT(index, table_.size());
  const Entry& entry = table_[index];
  PRISM_CHECK_EQ(static_cast<int64_t>(dest.size()), entry.size);
  return ssd_->Read(entry.offset, dest);
}

Status BlobFileReader::ReadBlobRange(size_t index, int64_t offset_in_blob,
                                     std::span<uint8_t> dest) {
  PRISM_CHECK_LT(index, table_.size());
  const Entry& entry = table_[index];
  PRISM_CHECK_LE(offset_in_blob + static_cast<int64_t>(dest.size()), entry.size);
  return ssd_->Read(entry.offset + offset_in_blob, dest);
}

Status BlobFileReader::ReadBlobRanges(
    size_t index, std::span<const std::pair<int64_t, std::span<uint8_t>>> ranges) {
  PRISM_CHECK_LT(index, table_.size());
  const Entry& entry = table_[index];
  std::vector<std::pair<int64_t, std::span<uint8_t>>> absolute;
  absolute.reserve(ranges.size());
  for (const auto& [range_offset, dest] : ranges) {
    PRISM_CHECK_LE(range_offset + static_cast<int64_t>(dest.size()), entry.size);
    absolute.emplace_back(entry.offset + range_offset, dest);
  }
  return ssd_->ReadScattered(absolute);
}

}  // namespace prism

// Fault-injection tests: a failing request must surface its error to exactly
// its own caller — no poisoned batchmates, no wedged dispatcher, no leaked
// SpillPool entries — whether the fault arrives through a BatchScheduler, a
// SerialScheduler, or a whole ServicePool of flaky replicas.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/scheduler.h"
#include "src/core/service_pool.h"
#include "tests/fault_injection.h"
#include "tests/test_util.h"

namespace prism {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    for (size_t i = 0; i < 8; ++i) {
      requests_.push_back(TestRequest(config_, 10 + i % 3, 3, i));
    }
  }

  PrismOptions EngineOptions() const {
    PrismOptions options;
    options.device = FastDevice();
    return options;
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> requests_;
};

TEST_F(FaultInjectionTest, BatchSchedulerSurfacesErrorsPerRequest) {
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  // Serial reference for the requests that must still succeed.
  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);

  FaultPlan plan;
  plan.fail_sequence = {false, true, false, true, true, false, false, false};
  FlakyRunner flaky(&engine, plan);
  BatchScheduler scheduler(&flaky, /*max_inflight=*/4, /*compute_threads=*/2);

  std::vector<RerankResult> results(requests_.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests_.size(); ++i) {
    clients.emplace_back([&, i] { results[i] = scheduler.Submit(requests_[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  size_t failed = 0;
  for (size_t i = 0; i < requests_.size(); ++i) {
    if (!results[i].status.ok()) {
      ++failed;
      EXPECT_EQ(results[i].status.code(), StatusCode::kIoError);
      EXPECT_TRUE(results[i].topk.empty());
      for (float score : results[i].scores) {
        EXPECT_TRUE(std::isnan(score));
      }
    } else {
      // Survivors are bit-identical to a serial run — a failing batchmate
      // must not perturb them.
      const RerankResult expected = reference.Rerank(requests_[i]);
      EXPECT_EQ(results[i].topk, expected.topk) << "request " << i;
      EXPECT_EQ(results[i].scores, expected.scores) << "request " << i;
    }
  }
  EXPECT_EQ(failed, 3u);
  EXPECT_EQ(flaky.injected_failures(), 3u);

  // The dispatcher must still be alive after the faults: later requests run.
  const RerankResult after = scheduler.Submit(requests_[0]);
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.topk, reference.Rerank(requests_[0]).topk);
}

// Mixed fault/success traffic over a spill-enabled engine: injected
// failures are answered above the engine (the seam sits between scheduler
// and runner), so this pins down two cleanup paths — a failed request must
// not strand anything, and every *served* request (including ones pruning
// terminated early, whose chunks were parked on disk) must Drop its pool
// entries by the time its caller unblocks. Engine-internal read faults
// CHECK-fail today rather than returning Status, so there is no deeper
// fault path to exercise yet.
TEST_F(FaultInjectionTest, FaultsDoNotLeakSpillPoolEntries) {
  PrismOptions options = EngineOptions();
  options.offload_hidden = true;
  options.chunk_candidates = 3;
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  ASSERT_NE(engine.spill_pool(), nullptr);

  FaultPlan plan;
  plan.fail_probability = 0.4;
  plan.seed = 7;
  FlakyRunner flaky(&engine, plan);
  BatchScheduler scheduler(&flaky, /*max_inflight=*/3, /*compute_threads=*/2);

  std::vector<std::thread> clients;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  for (size_t round = 0; round < 3; ++round) {
    clients.clear();
    for (size_t i = 0; i < requests_.size(); ++i) {
      clients.emplace_back([&, i] {
        const RerankResult result = scheduler.Submit(requests_[i]);
        (result.status.ok() ? ok : failed).fetch_add(1);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    // Every request — served, pruned early, or failed — must have released
    // its parked chunks by the time its caller unblocked.
    EXPECT_EQ(engine.spill_pool()->live_entries(), 0u) << "round " << round;
  }
  EXPECT_EQ(ok.load() + failed.load(), 3 * requests_.size());
  EXPECT_GT(failed.load(), 0u);  // p=0.4 over 24 draws: ~1e-6 to miss.
  EXPECT_GT(ok.load(), 0u);
}

TEST_F(FaultInjectionTest, CarouselSurfacesErrorsPerRequestWithoutWedging) {
  // FlakyRunner composes with the carousel through the same runner seam:
  // doomed requests fail during a Step — mid-cycle, with co-resident
  // requests in flight — and must surface kIoError to exactly their own
  // caller while batchmates stay bit-identical to serial and the carousel
  // keeps revolving.
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);

  FaultPlan plan;
  plan.fail_sequence = {false, true, false, true, true, false, false, false};
  FlakyRunner flaky(&engine, plan);
  CarouselScheduler scheduler(&flaky, /*max_inflight=*/4, /*compute_threads=*/2);

  std::vector<RerankResult> results(requests_.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests_.size(); ++i) {
    clients.emplace_back([&, i] { results[i] = scheduler.Submit(requests_[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  size_t failed = 0;
  for (size_t i = 0; i < requests_.size(); ++i) {
    if (!results[i].status.ok()) {
      ++failed;
      EXPECT_EQ(results[i].status.code(), StatusCode::kIoError);
      EXPECT_TRUE(results[i].topk.empty());
      for (float score : results[i].scores) {
        EXPECT_TRUE(std::isnan(score));
      }
    } else {
      const RerankResult expected = reference.Rerank(requests_[i]);
      EXPECT_EQ(results[i].topk, expected.topk) << "request " << i;
      EXPECT_EQ(results[i].scores, expected.scores) << "request " << i;
    }
  }
  EXPECT_EQ(failed, 3u);
  EXPECT_EQ(flaky.injected_failures(), 3u);

  // The carousel must still be alive after the faults: later requests run.
  const RerankResult after = scheduler.Submit(requests_[0]);
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.topk, reference.Rerank(requests_[0]).topk);
}

TEST_F(FaultInjectionTest, CarouselFaultsDoNotLeakSpillPoolEntries) {
  // Spill-enabled engine under seeded random faults through the carousel:
  // a doomed request's inner ticket is abandoned mid-flight, which must
  // drop its parked chunks; served requests release theirs at exit. After
  // every round the pool is back to baseline.
  PrismOptions options = EngineOptions();
  options.offload_hidden = true;
  options.chunk_candidates = 3;
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, options, &tracker);
  ASSERT_NE(engine.spill_pool(), nullptr);

  FaultPlan plan;
  plan.fail_probability = 0.4;
  plan.seed = 11;
  FlakyRunner flaky(&engine, plan);
  CarouselScheduler scheduler(&flaky, /*max_inflight=*/3, /*compute_threads=*/2);

  std::vector<std::thread> clients;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> failed{0};
  for (size_t round = 0; round < 3; ++round) {
    clients.clear();
    for (size_t i = 0; i < requests_.size(); ++i) {
      clients.emplace_back([&, i] {
        const RerankResult result = scheduler.Submit(requests_[i]);
        (result.status.ok() ? ok : failed).fetch_add(1);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    EXPECT_EQ(engine.spill_pool()->live_entries(), 0u) << "round " << round;
  }
  EXPECT_EQ(ok.load() + failed.load(), 3 * requests_.size());
  EXPECT_GT(failed.load(), 0u);  // p=0.4 over 24 draws: ~1e-6 to miss.
  EXPECT_GT(ok.load(), 0u);
}

TEST_F(FaultInjectionTest, SerialSchedulerForwardsInjectedErrors) {
  MemoryTracker tracker;
  PrismEngine engine(config_, ckpt_, EngineOptions(), &tracker);
  FaultPlan plan;
  plan.fail_sequence = {true, false};
  FlakyRunner flaky(&engine, plan);
  SerialScheduler scheduler(&flaky);

  const RerankResult failed = scheduler.Submit(requests_[0]);
  EXPECT_EQ(failed.status.code(), StatusCode::kIoError);
  const RerankResult served = scheduler.Submit(requests_[0]);
  EXPECT_TRUE(served.status.ok());
  EXPECT_EQ(served.topk.size(), 3u);
}

TEST_F(FaultInjectionTest, ServicePoolSurfacesReplicaFaultsAndKeepsServing) {
  // Two flaky replicas behind a pool: each replica's scheduler drives a
  // FlakyRunner wrapping that replica's own engine (runner_override seam).
  MemoryTracker tracker;
  std::vector<std::unique_ptr<PrismEngine>> engines;
  std::vector<std::unique_ptr<FlakyRunner>> flakies;
  std::vector<std::unique_ptr<RerankService>> replicas;
  FaultPlan plan;
  plan.fail_probability = 0.3;
  for (size_t i = 0; i < 2; ++i) {
    engines.push_back(std::make_unique<PrismEngine>(config_, ckpt_, EngineOptions(), &tracker));
    plan.seed = 100 + i;
    flakies.push_back(std::make_unique<FlakyRunner>(engines.back().get(), plan));
    ServiceOptions options;
    options.engine = EngineOptions();
    options.max_inflight = 2;
    options.compute_threads = 2;
    options.runner_override = flakies.back().get();
    replicas.push_back(std::make_unique<RerankService>(config_, ckpt_, options, &tracker));
  }
  ServicePoolOptions pool_options;
  pool_options.balancer = LoadBalancePolicy::kRoundRobin;
  ServicePool pool(std::move(replicas), pool_options);

  MemoryTracker ref_tracker;
  PrismEngine reference(config_, ckpt_, EngineOptions(), &ref_tracker);

  constexpr size_t kRounds = 4;
  std::atomic<size_t> failed{0};
  for (size_t round = 0; round < kRounds; ++round) {
    std::vector<RerankResult> results(requests_.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests_.size(); ++i) {
      clients.emplace_back([&, i] { results[i] = pool.Rerank(requests_[i]); });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < requests_.size(); ++i) {
      if (!results[i].status.ok()) {
        EXPECT_EQ(results[i].status.code(), StatusCode::kIoError);
        failed.fetch_add(1);
      } else {
        EXPECT_EQ(results[i].topk, reference.Rerank(requests_[i]).topk) << "request " << i;
      }
    }
  }
  EXPECT_GT(failed.load(), 0u);  // p=0.3 over 32 draws.

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.aggregate.requests, kRounds * requests_.size());
  EXPECT_EQ(stats.aggregate.errors, failed.load());
  EXPECT_EQ(stats.aggregate.shed, 0u);
  // Round-robin: every replica kept taking traffic even while faulting.
  for (size_t i = 0; i < pool.pool_size(); ++i) {
    EXPECT_GT(stats.replica_requests[i], 0u) << "replica " << i;
    EXPECT_EQ(stats.replica_inflight[i], 0u) << "replica " << i;
  }
}

}  // namespace
}  // namespace prism

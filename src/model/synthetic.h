// Synthetic checkpoint generation.
//
// Generates deterministic, seeded weights implementing the planted-relevance
// residual-stream model described in DESIGN.md §4: random layer weights whose
// init scale is chosen so each layer adds a bounded perturbation to the
// residual stream, an embedding table of unit-norm random rows, and a
// unit-norm classifier direction. The same seed always produces bit-identical
// checkpoints.
#ifndef PRISM_SRC_MODEL_SYNTHETIC_H_
#define PRISM_SRC_MODEL_SYNTHETIC_H_

#include <string>

#include "src/common/status.h"
#include "src/model/config.h"

namespace prism {

// Writes an fp32 checkpoint for `config` to `path`. When `quantized_path` is
// non-empty, also writes a W4 checkpoint quantised from the same weights.
Status GenerateCheckpoint(const ModelConfig& config, uint64_t seed, const std::string& path,
                          const std::string& quantized_path = "");

// Convenience: generates (once) under /tmp and returns the path; subsequent
// calls with the same config+seed reuse the existing file.
std::string EnsureCheckpoint(const ModelConfig& config, uint64_t seed, bool quantized = false);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_SYNTHETIC_H_

// Continuous batching: fixed batches vs. the layer carousel.
//
// Two traffic shapes, each run once per scheduler:
//
//  - staggered: open-loop arrivals, one request every --stagger_us. This is
//    the regime the carousel targets: requests trickle in while earlier ones
//    are in flight or just finished. The BatchScheduler restarts its layer
//    prefetch cold on every pass, so each arrival pays the first-fetch
//    stall; the carousel admits at warm layer-0 boundaries (the cyclic
//    prefetcher loads the next cycle's head across the wrap, and a drained
//    pass lingers warm), so time-to-first-layer collapses to the embed.
//  - burst: closed-loop, --clients threads hammering the service. Measures
//    aggregate req/s when coalescing, not admission, is the bottleneck.
//
// Time-to-first-layer (ttfl) = RerankStats::queue_wait_ms (queueing until
// admission) + first_layer_ms (embed + wait for layer-0 weights). Results
// are bit-identical across schedulers (checked against a serial reference),
// so the comparison is pure scheduling.
//
// Flags: --model=Qwen3-Reranker-0.6B --device=nvidia|apple
//        --staggered_requests=20 --stagger_us=700000
//        --clients=8 --burst_requests=48 --candidates=4 --k=2
//        --max_inflight=4 --compute_threads=0 --threshold=0.40
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/service.h"

namespace prism {
namespace {

struct LoadRun {
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;   // Client-observed latency.
  double p99_ms = 0.0;
  double ttfl_p50_ms = 0.0;  // Time-to-first-layer.
  double ttfl_p99_ms = 0.0;
  std::vector<std::vector<size_t>> topks;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const size_t index =
      rank <= 1.0 ? 0 : std::min(values.size() - 1, static_cast<size_t>(rank) - 1);
  return values[index];
}

LoadRun Summarize(const WallTimer& wall, std::vector<std::vector<size_t>> topks,
                  const std::vector<double>& latencies, const std::vector<double>& waits) {
  LoadRun run;
  run.wall_seconds = wall.ElapsedSeconds();
  run.requests_per_sec = static_cast<double>(topks.size()) / run.wall_seconds;
  run.p50_ms = Percentile(latencies, 50.0);
  run.p99_ms = Percentile(latencies, 99.0);
  run.ttfl_p50_ms = Percentile(waits, 50.0);
  run.ttfl_p99_ms = Percentile(waits, 99.0);
  run.topks = std::move(topks);
  return run;
}

// Open loop: request i is submitted at t0 + i * stagger, regardless of how
// earlier requests are doing (one thread per request). One warmup request
// first, excluded from every reported number (latency percentiles are
// measured client-side here, not read from the ServiceStats ring), so
// percentiles reflect the steady state rather than the very first spin-up
// (which is cold for both schedulers).
LoadRun RunStaggered(RerankService* service, const std::vector<BenchCase>& cases,
                     size_t total_requests, int64_t stagger_us) {
  service->Rerank(cases[0].request);
  std::vector<std::vector<size_t>> topks(total_requests);
  std::vector<double> latencies(total_requests, 0.0);
  std::vector<double> waits(total_requests, 0.0);
  const WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(total_requests);
  for (size_t i = 0; i < total_requests; ++i) {
    threads.emplace_back([&, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(stagger_us * static_cast<int64_t>(i)));
      const WallTimer observed;
      const RerankResult result = service->Rerank(cases[i % cases.size()].request);
      latencies[i] = observed.ElapsedMillis();
      topks[i] = result.topk;
      waits[i] = result.stats.queue_wait_ms + result.stats.first_layer_ms;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return Summarize(wall, std::move(topks), latencies, waits);
}

// Closed loop: `clients` threads submit back to back until the request
// budget is exhausted.
LoadRun RunBurst(RerankService* service, const std::vector<BenchCase>& cases, size_t clients,
                 size_t total_requests) {
  std::vector<std::vector<size_t>> topks(total_requests);
  std::vector<double> latencies(total_requests, 0.0);
  std::vector<double> waits(total_requests, 0.0);
  std::atomic<size_t> next{0};
  const WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < total_requests) {
        const WallTimer observed;
        const RerankResult result = service->Rerank(cases[i % cases.size()].request);
        latencies[i] = observed.ElapsedMillis();
        topks[i] = result.topk;
        waits[i] = result.stats.queue_wait_ms + result.stats.first_layer_ms;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return Summarize(wall, std::move(topks), latencies, waits);
}

void PrintRow(const std::string& name, const LoadRun& run) {
  std::printf("%-26s %8.2f %10.2f %9.2f %9.2f %12.2f %12.2f\n", name.c_str(), run.wall_seconds,
              run.requests_per_sec, run.p50_ms, run.p99_ms, run.ttfl_p50_ms, run.ttfl_p99_ms);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const ModelConfig model = ModelByName(flags.GetString("model", "Qwen3-Reranker-0.6B"));
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t staggered_requests = static_cast<size_t>(flags.GetInt("staggered_requests", 20));
  const int64_t stagger_us = flags.GetInt("stagger_us", 700000);
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  const size_t burst_requests = static_cast<size_t>(flags.GetInt("burst_requests", 48));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 4));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 2));
  const size_t max_inflight = static_cast<size_t>(flags.GetInt("max_inflight", 4));
  const size_t compute_threads = static_cast<size_t>(flags.GetInt("compute_threads", 0));
  const float threshold = static_cast<float>(flags.GetDouble("threshold", kThresholdHigh));

  PrintHeader("Continuous batching — fixed batches vs. layer carousel (" + model.name + ", " +
              device.name + ", max_inflight " + std::to_string(max_inflight) + ")");

  const auto cases = MakeCases(model, "wikipedia", /*queries=*/8, candidates, k);
  const std::string checkpoint = EnsureCheckpoint(model, kBenchSeed);

  // Serial reference for the correctness cross-check.
  std::vector<std::vector<size_t>> reference(cases.size());
  {
    MemoryTracker::Global().Reset();
    ServiceOptions options;
    options.engine.device = device;
    options.engine.dispersion_threshold = threshold;
    RerankService service(model, checkpoint, options);
    for (size_t i = 0; i < cases.size(); ++i) {
      reference[i] = service.Rerank(cases[i].request).topk;
    }
  }

  auto make_service = [&](SchedulerKind kind) {
    MemoryTracker::Global().Reset();
    ServiceOptions options;
    options.engine.device = device;
    options.engine.dispersion_threshold = threshold;
    options.scheduler = kind;
    options.max_inflight = max_inflight;
    options.compute_threads = compute_threads;
    // Keep the carousel warm across the staggered gaps; the cost is two
    // layer blobs resident while idle.
    options.carousel_linger_ms = 2000.0;
    return std::make_unique<RerankService>(model, checkpoint, options);
  };

  size_t mismatches = 0;
  auto check = [&](const LoadRun& run) {
    for (size_t i = 0; i < run.topks.size(); ++i) {
      if (run.topks[i] != reference[i % cases.size()]) {
        ++mismatches;
      }
    }
  };

  std::printf("staggered arrivals — open loop, 1 request per %.0f ms, %zu requests\n",
              static_cast<double>(stagger_us) / 1000.0, staggered_requests);
  std::printf("%-26s %8s %10s %9s %9s %12s %12s\n", "scheduler", "wall s", "req/s", "p50 ms",
              "p99 ms", "ttfl p50 ms", "ttfl p99 ms");
  LoadRun stag_batch;
  LoadRun stag_carousel;
  {
    auto service = make_service(SchedulerKind::kBatch);
    stag_batch = RunStaggered(service.get(), cases, staggered_requests, stagger_us);
    PrintRow("batch", stag_batch);
    check(stag_batch);
  }
  {
    auto service = make_service(SchedulerKind::kCarousel);
    stag_carousel = RunStaggered(service.get(), cases, staggered_requests, stagger_us);
    PrintRow("carousel", stag_carousel);
    check(stag_carousel);
  }

  std::printf("\nburst — closed loop, %zu clients, %zu requests\n", clients, burst_requests);
  std::printf("%-26s %8s %10s %9s %9s %12s %12s\n", "scheduler", "wall s", "req/s", "p50 ms",
              "p99 ms", "ttfl p50 ms", "ttfl p99 ms");
  LoadRun burst_batch;
  LoadRun burst_carousel;
  {
    auto service = make_service(SchedulerKind::kBatch);
    burst_batch = RunBurst(service.get(), cases, clients, burst_requests);
    PrintRow("batch", burst_batch);
    check(burst_batch);
  }
  {
    auto service = make_service(SchedulerKind::kCarousel);
    burst_carousel = RunBurst(service.get(), cases, clients, burst_requests);
    PrintRow("carousel", burst_carousel);
    check(burst_carousel);
  }

  std::printf("\nburst req/s: %.2fx   staggered p99 ttfl: %.2fx lower\n",
              burst_carousel.requests_per_sec / burst_batch.requests_per_sec,
              stag_batch.ttfl_p99_ms / std::max(stag_carousel.ttfl_p99_ms, 1e-9));
  std::printf("result mismatches vs serial: %zu (expected 0)\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

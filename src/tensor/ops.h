// Dense kernels used by the transformer forward pass.
//
// All matrices are row-major. Weight matrices follow the PyTorch convention
// W[out, in], so projections are computed with MatMulTransB (y = x · Wᵀ).
#ifndef PRISM_SRC_TENSOR_OPS_H_
#define PRISM_SRC_TENSOR_OPS_H_

#include <cstddef>
#include <span>

#include "src/tensor/tensor.h"

namespace prism {

// C[m,n] = A[m,k] · B[k,n]. C must be pre-sized; contents are overwritten.
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);

// C[m,n] = A[m,k] · B[n,k]ᵀ (B given row-major as [n, k]).
void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* c);

// Raw-pointer variant of MatMulTransB for callers holding weight blobs.
void MatMulTransBRaw(const float* a, size_t m, size_t k, const float* b, size_t n, float* c);

// y += x, elementwise. Shapes must match.
void AddInPlace(Tensor* y, const Tensor& x);

// Each row r of t gets bias added: t[r, c] += bias[c].
void AddBiasInPlace(Tensor* t, std::span<const float> bias);

// In-place row-wise RMSNorm with learned gain: x ← x / rms(x) * gain.
void RmsNormInPlace(Tensor* t, std::span<const float> gain, float eps = 1e-5f);

// In-place row-wise LayerNorm with learned gain and bias.
void LayerNormInPlace(Tensor* t, std::span<const float> gain, std::span<const float> bias,
                      float eps = 1e-5f);

// In-place row-wise softmax. If `causal_limit` >= 0, entries with column index
// > causal_limit are masked to -inf before the softmax (decoder-only models).
void SoftmaxRowInPlace(std::span<float> row, ptrdiff_t causal_limit = -1);

// x ← x * sigmoid(x) (SiLU / swish), elementwise.
void SiluInPlace(Tensor* t);

// tanh-approximation GELU, elementwise.
void GeluInPlace(Tensor* t);

// y ← y ⊙ x elementwise (SwiGLU gating).
void MulInPlace(Tensor* y, const Tensor& x);

// Numerically stable logistic function.
float Sigmoid(float x);

// Dot product of equal-length spans.
float Dot(std::span<const float> a, std::span<const float> b);

}  // namespace prism

#endif  // PRISM_SRC_TENSOR_OPS_H_

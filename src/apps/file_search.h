// Semantic file search — the Fig-1 motivating pipeline.
//
// Keyword retrieval (BM25) and embedding retrieval (bi-encoder + flat index)
// each surface candidates from the corpus; their fusion feeds the
// cross-encoder reranker, which selects the final top-K for the downstream
// consumer. Reports per-stage latency and selection precision.
#ifndef PRISM_SRC_APPS_FILE_SEARCH_H_
#define PRISM_SRC_APPS_FILE_SEARCH_H_

#include <memory>
#include <vector>

#include "src/apps/corpus.h"
#include "src/retrieval/bi_encoder.h"
#include "src/retrieval/bm25.h"
#include "src/retrieval/vector_index.h"

namespace prism {

struct FileSearchResult {
  std::vector<size_t> top_docs;  // Corpus doc ids, best first.
  double keyword_ms = 0.0;
  double embed_ms = 0.0;
  double rerank_ms = 0.0;
  double precision = 0.0;  // Precision@K against the query's planted docs.
};

class FileSearchApp {
 public:
  // Indexes the corpus (BM25 + dense). `per_source` candidates come from each
  // retrieval arm (the paper's 10 + 10).
  FileSearchApp(const SearchCorpus* corpus, size_t per_source = 10, size_t embed_dim = 48,
                uint64_t seed = 0xF5);

  // Runs one query end to end; `runner` performs the semantic selection.
  // Thread-safe: both indexes and the encoder are immutable after
  // construction, so concurrent clients can share one app instance against
  // one (thread-safe) runner.
  FileSearchResult Search(size_t query_idx, size_t k, Runner* runner) const;

  const SearchCorpus& corpus() const { return *corpus_; }

 private:
  const SearchCorpus* corpus_;
  size_t per_source_;
  BiEncoder encoder_;
  Bm25Index keyword_;
  FlatIndex dense_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_FILE_SEARCH_H_

#include "src/core/stages.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/data/metrics.h"
#include "src/storage/layer_streamer.h"

namespace prism {

namespace {
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
}  // namespace

Tensor TakeChunkHidden(const StageResources& res, RequestContext* ctx, size_t chunk_index) {
  ChunkState& chunk = ctx->chunks[chunk_index];
  if (chunk.spilled) {
    chunk.spilled = false;
    return res.spill->Take(ctx->SpillKey(chunk_index));
  }
  Tensor t = std::move(*chunk.hidden);
  chunk.hidden.reset();
  return t;
}

void StowChunkHidden(const StageResources& res, RequestContext* ctx, size_t chunk_index,
                     Tensor hidden, bool more_layers) {
  ChunkState& chunk = ctx->chunks[chunk_index];
  if (res.options->offload_hidden && more_layers) {
    res.spill->SpillAsync(ctx->SpillKey(chunk_index), std::move(hidden));
    chunk.spilled = true;
  } else {
    chunk.hidden = std::move(hidden);
    chunk.spilled = false;
  }
}

void ReleaseSpilledChunks(const StageResources& res, RequestContext* ctx) {
  if (res.spill == nullptr) {
    return;
  }
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    if (ctx->chunks[ci].spilled) {
      res.spill->Drop(ctx->SpillKey(ci));
      ctx->chunks[ci].spilled = false;
    }
  }
}

size_t ChunkPlanner::PlanCandidates(size_t n, size_t seq_len) const {
  const PrismOptions& options = *res_.options;
  if (!options.chunked) {
    return n;
  }
  if (options.chunk_candidates > 0) {
    return std::min(options.chunk_candidates, n);
  }
  // Largest c with scratch(c·T) within the activation budget; floor 2 keeps
  // each chunk's compute window wide enough to overlap a layer load.
  size_t best = 1;
  for (size_t c = 1; c <= n; ++c) {
    if (LayerScratch::BytesFor(*res_.config, c * seq_len, seq_len) <=
        options.device.activation_budget_bytes) {
      best = c;
    } else {
      break;
    }
  }
  return std::max<size_t>(std::min<size_t>(2, n), best);
}

std::vector<ChunkState> ChunkPlanner::Partition(const std::vector<size_t>& ids,
                                                size_t chunk_cand) {
  std::vector<ChunkState> chunks;
  for (size_t at = 0; at < ids.size(); at += chunk_cand) {
    ChunkState chunk;
    const size_t end = std::min(at + chunk_cand, ids.size());
    chunk.ids.assign(ids.begin() + static_cast<ptrdiff_t>(at),
                     ids.begin() + static_cast<ptrdiff_t>(end));
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

void ChunkPlanner::Begin(RequestContext* ctx) const {
  const RerankRequest& request = *ctx->request;
  const size_t n = ctx->n();
  PRISM_CHECK_EQ(n, request.planted_r.size());
  PRISM_CHECK_GT(request.k, 0u);
  ctx->seq_len = ChooseSeqLen(*res_.config, request.query, request.docs);
  ctx->result.scores.assign(n, kNan);
  ctx->remaining_k = std::min(request.k, n);

  ctx->chunk_cand = PlanCandidates(n, ctx->seq_len);
  ctx->scratch.emplace(
      LayerScratch::Make(*res_.config, ctx->chunk_cand * ctx->seq_len, ctx->seq_len,
                         res_.tracker));

  ctx->active.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ctx->active[i] = i;
  }
  ctx->chunks = Partition(ctx->active, ctx->chunk_cand);
}

void EmbedStage::Run(RequestContext* ctx) const {
  const WallTimer embed_timer;
  const ModelConfig& config = *res_.config;
  const RerankRequest& request = *ctx->request;
  const size_t n = ctx->n();
  const size_t seq_len = ctx->seq_len;
  // Build all pair inputs first so the cache can batch-load the request's
  // unique missing tokens in one device read (§4.5).
  ctx->pairs.reserve(n);
  std::vector<uint32_t> all_tokens;
  for (size_t id = 0; id < n; ++id) {
    ctx->pairs.push_back(BuildPairInput(config, request.query, request.docs[id],
                                        request.planted_r[id], seq_len));
    all_tokens.insert(all_tokens.end(), ctx->pairs.back().tokens.begin(),
                      ctx->pairs.back().tokens.end());
  }
  if (res_.cache != nullptr) {
    res_.cache->PrefetchTokens(all_tokens);
  }
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    ChunkState& chunk = ctx->chunks[ci];
    Tensor hidden(chunk.ids.size() * seq_len, config.hidden, MemCategory::kHiddenStates,
                  res_.tracker);
    for (size_t c = 0; c < chunk.ids.size(); ++c) {
      EmbedPairInto(config, res_.embedding, *res_.head, ctx->pairs[chunk.ids[c]], c, seq_len,
                    &hidden);
    }
    StowChunkHidden(res_, ctx, ci, std::move(hidden), /*more_layers=*/true);
  }
  ctx->result.stats.embed_ms = embed_timer.ElapsedMillis();
}

bool PruneStage::AfterLayer(RequestContext* ctx, size_t layer, bool last_layer) const {
  const PrismOptions& options = *res_.options;
  const size_t n = ctx->n();
  std::vector<size_t>& active = ctx->active;
  std::vector<float>& scores_active = ctx->scores_active;

  // Record provisional scores for all active candidates.
  PRISM_CHECK_EQ(scores_active.size(), active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    ctx->result.scores[active[i]] = scores_active[i];
  }

  // Trace mode: record everything, prune nothing.
  if (options.trace) {
    LayerTraceEntry entry;
    entry.layer = layer;
    entry.active = active.size();
    entry.cv = CoefficientOfVariation(scores_active);
    entry.scores.assign(n, kNan);
    entry.clusters.assign(n, -1);
    const Clustering clustering =
        ClusterScores(scores_active, options.kmeans_max_k, options.seed);
    for (size_t i = 0; i < active.size(); ++i) {
      entry.scores[active[i]] = scores_active[i];
      entry.clusters[active[i]] = clustering.assignment[i];
    }
    ctx->trace.push_back(std::move(entry));
    return false;
  }

  // Progressive cluster pruning between layers (skip after the last layer —
  // final scores settle the remaining candidates anyway).
  if (!options.pruning || last_layer) {
    return false;
  }
  const PruneDecision decision = DecidePrune(scores_active, ctx->remaining_k,
                                             ctx->pruner_options);
  LayerTraceEntry entry;
  entry.layer = layer;
  entry.active = active.size();
  entry.cv = decision.cv;
  entry.prune_triggered = decision.triggered;
  entry.selected = decision.selected.size();
  entry.dropped = decision.dropped.size();
  ctx->trace.push_back(std::move(entry));
  if (!decision.triggered && !decision.terminate) {
    return false;
  }

  for (size_t idx : decision.selected) {
    ctx->finalized.emplace_back(scores_active[idx], active[idx]);
  }
  PRISM_CHECK_GE(ctx->remaining_k, decision.selected.size());
  ctx->remaining_k -= decision.selected.size();

  if (decision.terminate || ctx->remaining_k == 0 || decision.deferred.empty()) {
    ctx->terminated = true;
    return true;
  }

  if (decision.selected.empty() && decision.dropped.empty()) {
    return false;  // Triggered but nothing to prune; chunks stay as they are.
  }

  // Compact: gather surviving candidates' hidden rows into fresh chunks
  // (the paper's shrinking monolithic batch, Fig 3: BS 20 → 16 → 10).
  std::vector<size_t> survivors;
  survivors.reserve(decision.deferred.size());
  for (size_t idx : decision.deferred) {
    survivors.push_back(active[idx]);
  }
  // Map original id → (chunk, slot) for row gathering.
  const size_t seq_len = ctx->seq_len;
  const size_t hidden_dim = res_.config->hidden;
  std::vector<std::pair<size_t, size_t>> location(n, {SIZE_MAX, SIZE_MAX});
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    for (size_t c = 0; c < ctx->chunks[ci].ids.size(); ++c) {
      location[ctx->chunks[ci].ids[c]] = {ci, c};
    }
  }
  std::vector<Tensor> materialized;
  materialized.reserve(ctx->chunks.size());
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    materialized.push_back(TakeChunkHidden(res_, ctx, ci));
  }
  // The old chunks' tensors were all taken above; replace them wholesale.
  ctx->chunks = ChunkPlanner::Partition(survivors, ctx->chunk_cand);
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    ChunkState& chunk = ctx->chunks[ci];
    Tensor hidden(chunk.ids.size() * seq_len, hidden_dim, MemCategory::kHiddenStates,
                  res_.tracker);
    for (size_t c = 0; c < chunk.ids.size(); ++c) {
      const auto [src_chunk, src_slot] = location[chunk.ids[c]];
      PRISM_CHECK_NE(src_chunk, SIZE_MAX);
      const float* src = materialized[src_chunk].data() + src_slot * seq_len * hidden_dim;
      std::copy(src, src + seq_len * hidden_dim, hidden.data() + c * seq_len * hidden_dim);
    }
    StowChunkHidden(res_, ctx, ci, std::move(hidden), /*more_layers=*/true);
  }
  materialized.clear();
  ctx->active = std::move(survivors);
  return false;
}

void PruneStage::Finalize(RequestContext* ctx) const {
  // Early termination can leave chunks parked on disk; release their pool
  // entries so a long-running service stays bounded.
  ReleaseSpilledChunks(res_, ctx);

  // Fill any remaining top-K slots from the still-active candidates by final
  // provisional score.
  if (!ctx->terminated && ctx->remaining_k > 0) {
    const std::vector<size_t> order = TopKIndices(ctx->scores_active, ctx->remaining_k);
    for (size_t idx : order) {
      ctx->finalized.emplace_back(ctx->scores_active[idx], ctx->active[idx]);
    }
  }

  std::sort(ctx->finalized.begin(), ctx->finalized.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  const size_t want = std::min(ctx->request->k, ctx->n());
  for (const auto& [score, id] : ctx->finalized) {
    if (ctx->result.topk.size() == want) {
      break;
    }
    ctx->result.topk.push_back(id);
  }

  if (res_.cache != nullptr) {
    ctx->result.stats.embed_cache_hit_rate = res_.cache->stats().HitRate();
  }
  ctx->result.stats.latency_ms = ctx->timer.ElapsedMillis();
}

void LayerLoop::ForwardOneLayer(RequestContext* ctx, const AnyLayerView& view,
                                bool last_layer) const {
  const ModelConfig& config = *res_.config;
  const PrismOptions& options = *res_.options;
  const size_t seq_len = ctx->seq_len;
  ctx->scores_active.clear();
  if (options.offload_hidden && !ctx->chunks.empty() && ctx->chunks[0].spilled) {
    res_.spill->PrefetchAsync(ctx->SpillKey(0));
  }
  for (size_t ci = 0; ci < ctx->chunks.size(); ++ci) {
    Tensor hidden = TakeChunkHidden(res_, ctx, ci);
    if (options.offload_hidden && ci + 1 < ctx->chunks.size() && ctx->chunks[ci + 1].spilled) {
      res_.spill->PrefetchAsync(ctx->SpillKey(ci + 1));
    }
    const WallTimer compute_timer;
    LayerForward(config, view, seq_len, &hidden, &*ctx->scratch);
    ScoreChunk(config, *res_.head, hidden, seq_len, &ctx->scores_active);
    const int64_t compute_micros = compute_timer.ElapsedMicros();
    ctx->result.stats.compute_ms += static_cast<double>(compute_micros) / 1000.0;
    ApplyComputeSlowdown(options.device, compute_micros);
    StowChunkHidden(res_, ctx, ci, std::move(hidden), !last_layer);
  }
}

void LayerLoop::ForwardGroup(std::span<RequestContext* const> group, size_t layer,
                             const AnyLayerView& view, bool last_layer,
                             ThreadPool* compute_pool) const {
  // The depth invariant: every context in the group must need exactly this
  // layer next. Layers are strictly sequential per request, so this is what
  // guarantees no request is ever forwarded outside its plan.
  for (RequestContext* ctx : group) {
    PRISM_CHECK_MSG(!ctx->done, "ForwardGroup on a finished context");
    PRISM_CHECK_EQ(ctx->next_layer, layer);
    if (layer == 0) {
      // The request's first layer is about to run (its weights are already
      // acquired): everything since admission — embed, queueing behind
      // batchmates, a cold layer-0 fetch — is its time-to-first-layer.
      ctx->result.stats.first_layer_ms = ctx->timer.ElapsedMillis();
    }
  }

  // Forward every grouped request's chunks through this layer. Contexts are
  // independent, so the group fans out across pool threads; results are
  // bit-identical to the serial order.
  if (compute_pool != nullptr && group.size() > 1) {
    compute_pool->ParallelFor(0, group.size(), [&](size_t i) {
      ForwardOneLayer(group[i], view, last_layer);
    });
  } else {
    for (RequestContext* ctx : group) {
      ForwardOneLayer(ctx, view, last_layer);
    }
  }
}

void LayerLoop::SettleGroup(std::span<RequestContext* const> group, size_t layer,
                            bool last_layer) const {
  // Between-layer bookkeeping and pruning, per request in admission order.
  for (RequestContext* ctx : group) {
    ctx->result.stats.candidate_layers += static_cast<int64_t>(ctx->active.size());
    ctx->result.stats.layers_until_done = layer + 1;
    ctx->next_layer = layer + 1;
    if (prune_.AfterLayer(ctx, layer, last_layer) || last_layer) {
      ctx->done = true;
    }
  }
}

void LayerLoop::StepLayer(std::span<RequestContext* const> group, size_t layer,
                          const AnyLayerView& view, bool last_layer,
                          ThreadPool* compute_pool) const {
  ForwardGroup(group, layer, view, last_layer, compute_pool);
  SettleGroup(group, layer, last_layer);
}

void LayerLoop::Run(std::span<RequestContext* const> ctxs, ThreadPool* compute_pool) const {
  const ModelConfig& config = *res_.config;
  const PrismOptions& options = *res_.options;

  std::unique_ptr<LayerStreamer> streamer;
  if (options.streaming) {
    std::vector<size_t> schedule;
    for (size_t layer = 0; layer < config.n_layers; ++layer) {
      schedule.push_back(LayerBlobIndex(layer));
    }
    streamer = std::make_unique<LayerStreamer>(res_.reader, std::move(schedule),
                                               /*buffer_count=*/2, res_.tracker);
  }

  std::vector<RequestContext*> live;
  live.reserve(ctxs.size());
  for (size_t layer = 0; layer < config.n_layers; ++layer) {
    live.clear();
    for (RequestContext* ctx : ctxs) {
      if (!ctx->done) {
        live.push_back(ctx);
      }
    }

    // Acquire weights: prefetched by the streamer, or resident. One fetch
    // serves every live request; the stall is split across them.
    std::span<const uint8_t> blob;
    if (streamer != nullptr) {
      const WallTimer stall_timer;
      blob = streamer->Acquire(layer);
      const double stall_share = stall_timer.ElapsedMillis() / static_cast<double>(live.size());
      for (RequestContext* ctx : live) {
        ctx->result.stats.io_stall_ms += stall_share;
      }
    } else {
      blob = (*res_.resident_layers)[layer];
    }
    const AnyLayerView view = ParseAnyLayerBlob(config, blob, options.precision);

    const bool last_layer = layer + 1 == config.n_layers;
    ForwardGroup(live, layer, view, last_layer, compute_pool);
    // Release before settling: pruning runs while the prefetcher pulls the
    // next layer into the freed buffer.
    if (streamer != nullptr) {
      streamer->Release(layer);
    }
    SettleGroup(live, layer, last_layer);

    bool all_done = true;
    for (RequestContext* ctx : ctxs) {
      all_done = all_done && ctx->done;
    }
    if (all_done) {
      if (streamer != nullptr && !last_layer) {
        streamer->TruncateSchedule(layer);
      }
      break;
    }
  }

  if (streamer != nullptr) {
    const StreamerStats stats = streamer->stats();
    const int64_t share = stats.bytes_loaded / static_cast<int64_t>(ctxs.size());
    for (RequestContext* ctx : ctxs) {
      ctx->result.stats.bytes_streamed = share;
    }
    streamer.reset();
  }
}

}  // namespace prism

// Precision × model-size sweep for the storage tiers (w4 / int8 / fp16 vs
// fp32). For each model in the sweep and each precision the bench reports
//
//   - layer blob bytes and the compression ratio vs fp32 (static, from
//     LayerBlobBytes — what the streamer actually reads per layer),
//   - the encode→decode roundtrip max-abs error of the first layer's
//     attention matrix (the kernel-level fidelity of the tier),
//   - an engine pass over a fixed query set: bytes streamed per pass, mean
//     pass latency, max score drift vs the fp32 pass over scored candidates,
//     and top-k selection agreement.
//
// --deterministic omits the wall-clock latency column and disables pruning
// (early exit makes the prefetched-byte count race thread timing) so the
// output is a pure function of the checkpoint bytes; the CI lane runs the
// bench twice and diffs the two outputs byte for byte.
//
// Flags: --models=comma-list (default three zoo sizes)
//        --precisions=fp32,fp16,int8,w4 --queries=4 --candidates=12 --k=3
//        --deterministic=false
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace prism {
namespace {

// Max-abs encode→decode error of a synthetic [rows, cols] matrix drawn from
// the same distribution as the checkpoint weights.
double RoundtripError(Precision precision, size_t rows, size_t cols, size_t group_size) {
  std::mt19937_64 rng(kBenchSeed);
  std::normal_distribution<float> dist(0.0f, 0.05f);
  std::vector<float> w(rows * cols);
  for (float& v : w) {
    v = dist(rng);
  }
  std::vector<uint8_t> encoded(MatrixSpanBytes(precision, rows, cols, group_size));
  std::vector<float> decoded(w.size());
  EncodeMatrix(precision, w.data(), rows, cols, group_size, encoded.data());
  DecodeMatrix(precision, encoded.data(), rows, cols, group_size, decoded.data());
  double max_err = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(w[i] - decoded[i])));
  }
  return max_err;
}

struct PassResult {
  double bytes_per_pass = 0.0;
  double pass_ms = 0.0;
  std::vector<std::vector<size_t>> topks;
  std::vector<float> scores;
};

PassResult RunPass(const ModelConfig& model, Precision precision,
                   const std::vector<BenchCase>& cases, bool deterministic) {
  PassResult result;
  PrismOptions options;
  options.device = NvidiaProfile();
  options.device.ssd.throttle = false;  // The sweep measures bytes + fidelity, not I/O waits.
  options.device.compute_slowdown = 1.0;
  options.dispersion_threshold = kThresholdHigh;
  options.precision = precision;
  // Deterministic mode must make streamed bytes a pure function of the
  // checkpoint, but with early exit the prefetcher races the truncation
  // point — whether layer i+1 was already in flight when the pass finished
  // at layer i is thread timing. Disabling pruning walks the full schedule,
  // so the byte column is exact and drift is pure quantisation error.
  options.pruning = !deterministic;
  auto engine = FreshRunner([&] { return MakePrismWith(model, options); });
  double bytes = 0.0;
  double ms = 0.0;
  for (const BenchCase& bench_case : cases) {
    const RerankResult r = engine->Rerank(bench_case.request);
    bytes += static_cast<double>(r.stats.bytes_streamed);
    ms += r.stats.latency_ms;
    result.topks.push_back(r.topk);
    result.scores.insert(result.scores.end(), r.scores.begin(), r.scores.end());
  }
  result.bytes_per_pass = bytes / static_cast<double>(cases.size());
  result.pass_ms = ms / static_cast<double>(cases.size());
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool deterministic = flags.GetBool("deterministic", false);
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 4));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 12));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 3));

  std::vector<ModelConfig> models;
  for (const std::string& name : SplitCsv(flags.GetString(
           "models", "Qwen3-Reranker-0.6B,Bge-Reranker-v2-M3,Qwen3-Reranker-8B"))) {
    models.push_back(name == "test-decoder" ? TestModel() : ModelByName(name));
  }
  std::vector<Precision> precisions;
  for (const std::string& name : SplitCsv(flags.GetString("precisions", "fp32,fp16,int8,w4"))) {
    Precision p = Precision::kFp32;
    if (!PrecisionByName(name, &p)) {
      std::fprintf(stderr, "unknown precision: %s\n", name.c_str());
      return 1;
    }
    precisions.push_back(p);
  }

  PrintHeader("Precision x model-size sweep — " + std::to_string(queries) + " queries x " +
              std::to_string(candidates) + " candidates, k=" + std::to_string(k) +
              (deterministic ? ", deterministic columns only" : ""));
  if (deterministic) {
    std::printf("%-26s %-5s %10s %7s %10s %12s %10s %7s\n", "model", "prec", "layer KiB",
                "ratio", "rt err", "KiB/pass", "max drift", "agree");
  } else {
    std::printf("%-26s %-5s %10s %7s %10s %12s %9s %10s %7s\n", "model", "prec", "layer KiB",
                "ratio", "rt err", "KiB/pass", "pass ms", "max drift", "agree");
  }

  bool ok = true;
  for (const ModelConfig& model : models) {
    const std::vector<BenchCase> cases = MakeCases(model, "wikipedia", queries, candidates, k);
    const size_t fp32_layer_bytes = LayerBlobBytes(model, Precision::kFp32);
    const PassResult fp32 = RunPass(model, Precision::kFp32, cases, deterministic);
    for (const Precision precision : precisions) {
      const size_t layer_bytes = LayerBlobBytes(model, precision);
      const double ratio =
          static_cast<double>(fp32_layer_bytes) / static_cast<double>(layer_bytes);
      const double rt_err =
          RoundtripError(precision, model.hidden, model.hidden, model.quant_group);
      const PassResult pass =
          precision == Precision::kFp32 ? fp32 : RunPass(model, precision, cases, deterministic);
      // Drift over candidates neither run pruned (the fp32 top-k that also
      // survived at reduced precision); pruned candidates carry scores from
      // whatever layer dropped them. Survivors can still exit at different
      // depths, so this is the end-to-end score perturbation of the tier as
      // served — quantisation error plus its effect on exit depth.
      double drift = 0.0;
      double agreement = 0.0;
      size_t offset = 0;
      for (size_t q = 0; q < pass.topks.size(); ++q) {
        for (const size_t c : fp32.topks[q]) {
          const bool kept = std::find(pass.topks[q].begin(), pass.topks[q].end(), c) !=
                            pass.topks[q].end();
          if (kept) {
            drift = std::max(drift, static_cast<double>(std::abs(
                                        fp32.scores[offset + c] - pass.scores[offset + c])));
          }
        }
        agreement += TopKOverlap(fp32.topks[q], pass.topks[q], k);
        offset += cases[q].request.docs.size();
      }
      agreement /= static_cast<double>(pass.topks.size());
      // Reduced tiers must actually shrink the stream; fp16's matrix halving
      // nets just under 2x with the fp32 norm vectors included.
      const double floor = precision == Precision::kFp32  ? 1.0
                           : precision == Precision::kFp16 ? 1.9
                                                           : 2.0;
      ok = ok && ratio >= floor;
      if (deterministic) {
        std::printf("%-26s %-5s %10.1f %6.2fx %10.2e %12.1f %10.4f %6.0f%%\n",
                    model.name.c_str(), PrecisionName(precision),
                    static_cast<double>(layer_bytes) / 1024.0, ratio, rt_err,
                    pass.bytes_per_pass / 1024.0, drift, 100.0 * agreement);
      } else {
        std::printf("%-26s %-5s %10.1f %6.2fx %10.2e %12.1f %9.2f %10.4f %6.0f%%\n",
                    model.name.c_str(), PrecisionName(precision),
                    static_cast<double>(layer_bytes) / 1024.0, ratio, rt_err,
                    pass.bytes_per_pass / 1024.0, pass.pass_ms, drift, 100.0 * agreement);
      }
    }
  }
  std::printf("\ncompression floors (fp16 1.9x, int8/w4 2x): %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

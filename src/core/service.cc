#include "src/core/service.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/percentile.h"
#include "src/common/rng.h"

namespace prism {

void ServiceStats::Observe(const RerankRequest& request, const RerankResult& result,
                           double observed_ms) {
  ++requests;
  if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      ++shed;
    } else {
      ++errors;
    }
    // A shed or failed request never ran, so its ~0 ms latency must not
    // enter the samples, mean, or max: feeding it in would *improve* p50/p99
    // exactly when overload should degrade them. It is already counted in
    // shed/errors above; any bytes a failing request did stream are still
    // real device traffic.
    bytes_streamed += result.stats.bytes_streamed;
    return;
  }
  total_latency_ms += observed_ms;
  max_latency_ms = std::max(max_latency_ms, observed_ms);
  total_candidate_layers += result.stats.candidate_layers;
  total_candidates += static_cast<int64_t>(request.docs.size());
  bytes_streamed += result.stats.bytes_streamed;
  // Reservoir sampling (algorithm R): after n observations every one of
  // them had an equal latency_capacity/n chance of being retained, so the
  // percentiles describe the whole run, not its tail. The replacement index
  // comes from a seeded SplitMix64 stream: the retained set is a pure
  // function of the observation sequence.
  const size_t capacity = std::max<size_t>(latency_capacity, 1);
  if (latency_samples.size() < capacity) {
    latency_samples.push_back(observed_ms);
  } else {
    const size_t j = static_cast<size_t>(SplitMix64(reservoir_state) %
                                         static_cast<uint64_t>(latency_observed + 1));
    if (j < capacity) {
      latency_samples[j] = observed_ms;
    }
  }
  ++latency_observed;
}

namespace {

// Deterministically keeps `keep` of the vector's samples: a seeded partial
// Fisher-Yates draws a uniform `keep`-subset into the front, then truncates.
// Order within the kept set is irrelevant (percentiles sort), uniformity is
// not — every sample must survive with equal probability or the subsample
// re-biases the merge it serves.
void SubsampleTo(std::vector<double>* samples, size_t keep, uint64_t seed) {
  if (keep >= samples->size()) {
    return;
  }
  Rng rng(seed);
  for (size_t i = 0; i < keep; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBelow(samples->size() - i));
    std::swap((*samples)[i], (*samples)[j]);
  }
  samples->resize(keep);
}

// Merges `other`'s reservoir into (samples, observed) with observed-count
// weighting. Each side's per-sample weight is observed/|samples| (how many
// real observations one retained sample stands for); the lighter side is
// subsampled until both weights match, then the samples concatenate. When
// both sides are exact (weight 1 each — no reservoir overflow), this is a
// plain concatenation, which is itself exact. `state` seeds the subsample
// and advances, so repeated folds stay deterministic.
void MergeLatencyReservoirs(std::vector<double>* samples, size_t observed,
                            std::vector<double> other_samples, size_t other_observed,
                            uint64_t* state) {
  if (other_observed == 0 || other_samples.empty()) {
    return;
  }
  if (observed == 0 || samples->empty()) {
    *samples = std::move(other_samples);
    return;
  }
  const double weight = static_cast<double>(observed) / static_cast<double>(samples->size());
  const double other_weight =
      static_cast<double>(other_observed) / static_cast<double>(other_samples.size());
  const double target = std::max(weight, other_weight);
  const auto keep_for = [target](size_t n_observed) {
    return std::max<size_t>(
        1, static_cast<size_t>(std::llround(static_cast<double>(n_observed) / target)));
  };
  if (weight < target) {
    SubsampleTo(samples, keep_for(observed), SplitMix64(*state));
  } else if (other_weight < target) {
    SubsampleTo(&other_samples, keep_for(other_observed), SplitMix64(*state));
  }
  samples->insert(samples->end(), other_samples.begin(), other_samples.end());
}

}  // namespace

void ServiceStats::Merge(const ServiceStats& other) {
  requests += other.requests;
  shed += other.shed;
  errors += other.errors;
  total_latency_ms += other.total_latency_ms;
  max_latency_ms = std::max(max_latency_ms, other.max_latency_ms);
  total_candidate_layers += other.total_candidate_layers;
  total_candidates += other.total_candidates;
  bytes_streamed += other.bytes_streamed;
  embed_hits += other.embed_hits;
  embed_misses += other.embed_misses;
  embed_miss_bytes += other.embed_miss_bytes;
  MergeLatencyReservoirs(&latency_samples, latency_observed, other.latency_samples,
                         other.latency_observed, &reservoir_state);
  latency_observed += other.latency_observed;
}

double ServiceStats::LatencyPercentileMs(double p) const {
  std::vector<double> sorted(latency_samples);
  std::sort(sorted.begin(), sorted.end());
  return PercentileOverSorted(sorted, p);
}

ConcurrentServiceStats::ConcurrentServiceStats(size_t latency_capacity)
    : latency_capacity_(std::max<size_t>(latency_capacity, 1)), stripes_(kStripes) {
  // Distinct deterministic reservoir stream per stripe, derived from the
  // same base seed the plain struct uses.
  for (size_t i = 0; i < stripes_.size(); ++i) {
    stripes_[i].rng_state = MixSeed(ServiceStats{}.reservoir_state, static_cast<uint64_t>(i));
  }
}

void ConcurrentServiceStats::Observe(const RerankRequest& request, const RerankResult& result,
                                     double observed_ms) {
  Stripe& stripe = stripes_[ThreadOrdinal() % stripes_.size()];
  stripe.requests.Add(1);
  if (!result.status.ok()) {
    // Same accounting as ServiceStats::Observe: a shed or failed request
    // never enters the latency aggregates, only shed/errors and the bytes it
    // did stream.
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      stripe.shed.Add(1);
    } else {
      stripe.errors.Add(1);
    }
    stripe.bytes_streamed.Add(result.stats.bytes_streamed);
    return;
  }
  stripe.total_latency_ms.Add(observed_ms);
  stripe.max_latency_ms.UpdateMax(observed_ms);
  stripe.candidate_layers.Add(result.stats.candidate_layers);
  stripe.candidates.Add(static_cast<int64_t>(request.docs.size()));
  stripe.bytes_streamed.Add(result.stats.bytes_streamed);
  MutexLock lock(stripe.reservoir_mu);
  if (stripe.samples.size() < latency_capacity_) {
    stripe.samples.push_back(observed_ms);
  } else {
    const size_t j = static_cast<size_t>(SplitMix64(stripe.rng_state) %
                                         static_cast<uint64_t>(stripe.observed + 1));
    if (j < latency_capacity_) {
      stripe.samples[j] = observed_ms;
    }
  }
  ++stripe.observed;
}

ServiceStats ConcurrentServiceStats::Snapshot() const {
  ServiceStats snapshot;
  snapshot.latency_capacity = latency_capacity_;
  for (const Stripe& stripe : stripes_) {
    ServiceStats part;
    part.requests = static_cast<size_t>(stripe.requests.Load());
    part.shed = static_cast<size_t>(stripe.shed.Load());
    part.errors = static_cast<size_t>(stripe.errors.Load());
    part.total_latency_ms = stripe.total_latency_ms.Load();
    part.max_latency_ms = stripe.max_latency_ms.Load();
    part.total_candidate_layers = stripe.candidate_layers.Load();
    part.total_candidates = stripe.candidates.Load();
    part.bytes_streamed = stripe.bytes_streamed.Load();
    {
      MutexLock lock(stripe.reservoir_mu);
      part.latency_samples = stripe.samples;
      part.latency_observed = stripe.observed;
    }
    // The stripe fold is the same observed-count-weighted merge the pool
    // uses across replicas, so an uneven thread→stripe mapping cannot bias
    // the snapshot's percentiles.
    snapshot.Merge(part);
  }
  return snapshot;
}

SchedulerKind SchedulerKindByName(const std::string& name) {
  if (name == "auto") {
    return SchedulerKind::kAuto;
  }
  if (name == "serial") {
    return SchedulerKind::kSerial;
  }
  if (name == "batch") {
    return SchedulerKind::kBatch;
  }
  if (name == "carousel") {
    return SchedulerKind::kCarousel;
  }
  PRISM_CHECK_MSG(false, ("unknown scheduler: " + name).c_str());
  return SchedulerKind::kAuto;
}

RerankService::RerankService(const ModelConfig& config, const std::string& checkpoint_path,
                             ServiceOptions options, MemoryTracker* tracker)
    : config_(config), clock_(ResolveClock(options.clock)) {
  if (options.latency_sample_capacity > 0) {
    stats_.latency_capacity = options.latency_sample_capacity;
  }
  if (options.lockfree_stats) {
    striped_stats_ = std::make_unique<ConcurrentServiceStats>(stats_.latency_capacity);
  }
  engine_ = std::make_unique<PrismEngine>(config, checkpoint_path, options.engine, tracker);
  SchedulerKind kind = options.scheduler;
  if (kind == SchedulerKind::kAuto) {
    kind = options.max_inflight > 1 ? SchedulerKind::kBatch : SchedulerKind::kSerial;
  }
  if (options.online_calibration) {
    PRISM_CHECK_MSG(kind == SchedulerKind::kSerial,
                    "online calibration samples through a serial log; use the serial scheduler "
                    "(max_inflight == 1)");
    PRISM_CHECK_MSG(options.runner_override == nullptr,
                    "runner_override would bypass the calibrator's sample log");
    PrismOptions reference_options = options.engine;
    reference_options.pruning = false;
    // Ground-truth runs happen at idle time; they should not distort the
    // serving path's memory accounting or wait on the simulated device.
    reference_options.streaming = false;
    reference_options.embed_cache = false;
    reference_options.shared_embed_cache = nullptr;
    reference_options.device.ssd.throttle = false;
    reference_ = std::make_unique<PrismEngine>(config, checkpoint_path, reference_options,
                                               tracker);
    calibrator_ = std::make_unique<OnlineCalibrator>(engine_.get(), reference_.get(),
                                                     options.calibration);
  }
  BatchRunner* target =
      options.runner_override != nullptr ? options.runner_override : engine_.get();
  if (options.sim.enabled) {
    PRISM_CHECK_MSG(!options.online_calibration,
                    "online calibration measures real engine timing; it cannot run through the "
                    "simulated cost model");
    sim_runner_ = std::make_unique<SimulatedRunner>(target, options.sim, config.n_layers, clock_);
    target = sim_runner_.get();
  }
  const size_t inflight = std::max<size_t>(options.max_inflight, 1);
  switch (kind) {
    case SchedulerKind::kBatch:
      scheduler_ = std::make_unique<BatchScheduler>(target, inflight, options.compute_threads,
                                                    clock_, options.lockfree_admission);
      break;
    case SchedulerKind::kCarousel:
      scheduler_ = std::make_unique<CarouselScheduler>(target, inflight, options.compute_threads,
                                                       options.carousel_linger_ms, clock_,
                                                       options.lockfree_admission);
      break;
    case SchedulerKind::kSerial: {
      Runner* runner = calibrator_ != nullptr ? static_cast<Runner*>(calibrator_.get())
                                              : static_cast<Runner*>(target);
      scheduler_ = std::make_unique<SerialScheduler>(runner, clock_);
      break;
    }
    case SchedulerKind::kAuto:
      PRISM_CHECK_MSG(false, "kAuto resolved above");
      break;
  }
}

RerankResult RerankService::Rerank(const RerankRequest& request) {
  // Client-observed latency on the service's clock: wall time by default,
  // virtual time under simulation — either way queueing is included.
  const double start_ms = clock_->NowMs();
  RerankResult result = scheduler_->Submit(request);
  const double observed_ms = clock_->NowMs() - start_ms;
  if (striped_stats_ != nullptr) {
    striped_stats_->Observe(request, result, observed_ms);
  } else {
    MutexLock lock(stats_mu_);
    stats_.Observe(request, result, observed_ms);
  }
  return result;
}

double RerankService::OnIdle() {
  if (calibrator_ == nullptr) {
    return std::nan("");
  }
  return calibrator_->RunIdleCycle();
}

ServiceStats RerankService::stats() const {
  ServiceStats snapshot;
  if (striped_stats_ != nullptr) {
    snapshot = striped_stats_->Snapshot();
  } else {
    MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  // Embedding-cache counters ride the snapshot (they live in the cache, not
  // under stats_mu_) — but only for a cache this engine owns; a pool-shared
  // cache is counted once by ServicePool::stats().
  if (engine_->owns_embed_cache()) {
    const std::optional<EmbeddingCacheStats> embed = engine_->embed_cache_stats();
    if (embed.has_value()) {
      snapshot.embed_hits = embed->hits;
      snapshot.embed_misses = embed->misses;
      snapshot.embed_miss_bytes = embed->miss_bytes;
    }
  }
  return snapshot;
}

}  // namespace prism

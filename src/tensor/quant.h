// 4-bit group-wise symmetric weight quantisation (the W4A16 baseline, §6.1).
//
// Weights W[out, in] are quantised along the `in` dimension in groups of
// `group_size`: each group stores a float scale and packs two signed 4-bit
// values per byte. The dequantising GEMM reconstructs weights on the fly,
// reproducing GPTQ-style W4A16 behaviour: 4× smaller weight bytes (and thus
// 4× less streaming I/O) at the cost of a small dequantisation overhead and a
// bounded precision perturbation.
#ifndef PRISM_SRC_TENSOR_QUANT_H_
#define PRISM_SRC_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/tensor/tensor.h"

namespace prism {

// Non-owning view of a quantised matrix laid out as [packed nibbles][scales]
// inside a larger blob (e.g. a streamed layer). Provides the same
// dequantising GEMM without copying.
struct QuantMatrixView {
  const uint8_t* packed = nullptr;
  const float* scales = nullptr;
  size_t rows = 0;
  size_t cols = 0;
  size_t group_size = 0;

  // C[m, rows] = A[m, cols] · Wᵀ with on-the-fly dequantisation.
  void MatMulTransB(const float* a, size_t m, float* c) const;

  // Bytes this view spans inside its blob.
  static size_t SpanBytes(size_t rows, size_t cols, size_t group_size) {
    return rows * cols / 2 + rows * (cols / group_size) * sizeof(float);
  }
};

class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  // Quantises `w` (row-major [rows, cols]); cols must be a multiple of
  // group_size.
  static QuantizedMatrix Quantize(const float* w, size_t rows, size_t cols, size_t group_size,
                                  MemCategory category = MemCategory::kWeights,
                                  MemoryTracker* tracker = &MemoryTracker::Global());

  // Reconstructs the full matrix (for tests / error measurement).
  void Dequantize(float* out) const;

  // C[m, rows] = A[m, cols] · Wᵀ with on-the-fly dequantisation.
  void MatMulTransB(const float* a, size_t m, float* c) const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t group_size() const { return group_size_; }

  // Bytes of the quantised representation (packed nibbles + scales).
  size_t ByteSize() const { return packed_.size() + scales_.size() * sizeof(float); }

  // Serialisation into/out of flat buffers (for the weight store).
  size_t SerializedSize() const;
  void SerializeTo(uint8_t* out) const;
  static QuantizedMatrix Deserialize(const uint8_t* in, size_t rows, size_t cols,
                                     size_t group_size, MemCategory category,
                                     MemoryTracker* tracker);

  // Worst-case absolute reconstruction error for a group with scale s is s/2
  // (rounding half step) — checked by property tests.
  float MaxScale() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t group_size_ = 0;
  std::vector<uint8_t> packed_;  // Two 4-bit values per byte, row-major.
  std::vector<float> scales_;    // rows * (cols / group_size) scales.
  MemClaim claim_;
};

}  // namespace prism

#endif  // PRISM_SRC_TENSOR_QUANT_H_

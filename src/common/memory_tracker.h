// Category-level memory accounting.
//
// The paper's evaluation plots *model memory* over time (weights, activations,
// hidden states, embedding table / cache) — Figures 9, 11, 13, 15, 16. Rather
// than sampling process RSS (noisy, allocator-dependent), every tensor, weight
// buffer, and cache in this codebase registers its bytes with a MemoryTracker
// under a category. The tracker keeps current/peak per category plus an
// optional timestamped timeline for plotting footprint-over-time curves.
#ifndef PRISM_SRC_COMMON_MEMORY_TRACKER_H_
#define PRISM_SRC_COMMON_MEMORY_TRACKER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace prism {

enum class MemCategory : int {
  kWeights = 0,      // Transformer layer weights resident in memory.
  kEmbedding,        // Embedding table or embedding cache.
  kActivations,      // Transient per-layer intermediate tensors.
  kHiddenStates,     // Residual-stream hidden states held across layers.
  kScratch,          // Misc scratch buffers (scores, token ids, ...).
  kCount,
};

const char* MemCategoryName(MemCategory category);

struct MemSnapshot {
  int64_t t_micros = 0;  // Relative to tracker timeline start.
  std::array<int64_t, static_cast<size_t>(MemCategory::kCount)> bytes{};

  int64_t total() const {
    int64_t sum = 0;
    for (int64_t b : bytes) {
      sum += b;
    }
    return sum;
  }
};

class MemoryTracker {
 public:
  MemoryTracker() = default;

  void Allocate(MemCategory category, int64_t bytes);
  void Release(MemCategory category, int64_t bytes);

  int64_t CurrentBytes(MemCategory category) const;
  int64_t CurrentTotal() const;
  int64_t PeakTotal() const;
  int64_t PeakBytes(MemCategory category) const;

  // Time-weighted mean of total footprint since timeline start (0 if the
  // timeline was never started).
  double AverageTotal() const;

  // Starts (or restarts) the footprint-over-time recording; every subsequent
  // Allocate/Release appends a snapshot.
  void StartTimeline();
  void StopTimeline();
  std::vector<MemSnapshot> Timeline() const;

  // Resets counters, peaks and timeline. Outstanding allocations become
  // untracked, so only call between experiments.
  void Reset();

  // The process-wide tracker used by default-constructed tensors.
  static MemoryTracker& Global();

 private:
  void RecordLocked(int64_t now) PRISM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::array<int64_t, static_cast<size_t>(MemCategory::kCount)> current_ PRISM_GUARDED_BY(mu_){};
  std::array<int64_t, static_cast<size_t>(MemCategory::kCount)> peak_ PRISM_GUARDED_BY(mu_){};
  int64_t peak_total_ PRISM_GUARDED_BY(mu_) = 0;
  bool timeline_on_ PRISM_GUARDED_BY(mu_) = false;
  int64_t timeline_start_ PRISM_GUARDED_BY(mu_) = 0;
  std::vector<MemSnapshot> timeline_ PRISM_GUARDED_BY(mu_);
  // Time-weighted average accumulators.
  double weighted_bytes_micros_ PRISM_GUARDED_BY(mu_) = 0.0;
  int64_t last_event_micros_ PRISM_GUARDED_BY(mu_) = 0;
  int64_t last_total_ PRISM_GUARDED_BY(mu_) = 0;
};

// RAII claim: registers `bytes` on construction, releases on destruction.
class MemClaim {
 public:
  MemClaim() = default;
  MemClaim(MemoryTracker* tracker, MemCategory category, int64_t bytes)
      : tracker_(tracker), category_(category), bytes_(bytes) {
    if (tracker_ != nullptr && bytes_ > 0) {
      tracker_->Allocate(category_, bytes_);
    }
  }
  ~MemClaim() { ReleaseNow(); }

  MemClaim(MemClaim&& other) noexcept { *this = std::move(other); }
  MemClaim& operator=(MemClaim&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      tracker_ = other.tracker_;
      category_ = other.category_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemClaim(const MemClaim&) = delete;
  MemClaim& operator=(const MemClaim&) = delete;

  void ReleaseNow() {
    if (tracker_ != nullptr && bytes_ > 0) {
      tracker_->Release(category_, bytes_);
    }
    tracker_ = nullptr;
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  MemCategory category_ = MemCategory::kScratch;
  int64_t bytes_ = 0;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_MEMORY_TRACKER_H_

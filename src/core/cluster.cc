#include "src/core/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace prism {

namespace {

// Mean silhouette coefficient for a 1-D clustering (O(n²), n ≤ a few dozen).
double Silhouette(const std::vector<float>& values, const std::vector<int>& assignment, int k) {
  const size_t n = values.size();
  if (k < 2) {
    return 0.0;
  }
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> dist_sum(static_cast<size_t>(k), 0.0);
    std::vector<size_t> count(static_cast<size_t>(k), 0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      dist_sum[static_cast<size_t>(assignment[j])] += std::fabs(values[i] - values[j]);
      ++count[static_cast<size_t>(assignment[j])];
    }
    const auto own = static_cast<size_t>(assignment[i]);
    if (count[own] == 0) {
      continue;  // Singleton cluster: silhouette undefined for this point.
    }
    const double a = dist_sum[own] / static_cast<double>(count[own]);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (c == own || count[c] == 0) {
        continue;
      }
      b = std::min(b, dist_sum[c] / static_cast<double>(count[c]));
    }
    if (!std::isfinite(b)) {
      continue;
    }
    const double denom = std::max(a, b);
    total += denom > 0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

Clustering KMeans1D(const std::vector<float>& values, int k, uint64_t seed) {
  const size_t n = values.size();
  PRISM_CHECK_GE(k, 1);
  PRISM_CHECK_GE(n, static_cast<size_t>(k));
  Rng rng(seed);

  // kmeans++ seeding.
  std::vector<double> centers;
  centers.push_back(values[rng.NextBelow(n)]);
  while (centers.size() < static_cast<size_t>(k)) {
    std::vector<double> d2(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centers) {
        best = std::min(best, (values[i] - c) * (values[i] - c));
      }
      d2[i] = best;
      sum += best;
    }
    if (sum <= 0.0) {
      // All remaining points coincide with existing centers; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    double pick = rng.NextDouble() * sum;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(values[chosen]);
  }

  // Lloyd iterations.
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < 32; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = std::fabs(values[i] - centers[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    std::vector<double> sums(static_cast<size_t>(k), 0.0);
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      sums[static_cast<size_t>(assignment[i])] += values[i];
      ++counts[static_cast<size_t>(assignment[i])];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        centers[static_cast<size_t>(c)] =
            sums[static_cast<size_t>(c)] / static_cast<double>(counts[static_cast<size_t>(c)]);
      }
    }
    if (!changed && iter > 0) {
      break;
    }
  }

  // Relabel clusters so id 0 has the highest center (drop empty clusters).
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> counts(static_cast<size_t>(k), 0);
  for (int a : assignment) {
    ++counts[static_cast<size_t>(a)];
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    // Empty clusters sink to the end; otherwise sort by center descending.
    const bool ea = counts[static_cast<size_t>(a)] == 0;
    const bool eb = counts[static_cast<size_t>(b)] == 0;
    if (ea != eb) {
      return eb;
    }
    return centers[static_cast<size_t>(a)] > centers[static_cast<size_t>(b)];
  });
  std::vector<int> relabel(static_cast<size_t>(k));
  int next_id = 0;
  Clustering out;
  for (int old_id : order) {
    if (counts[static_cast<size_t>(old_id)] == 0) {
      relabel[static_cast<size_t>(old_id)] = -1;
      continue;
    }
    relabel[static_cast<size_t>(old_id)] = next_id++;
    out.centers.push_back(centers[static_cast<size_t>(old_id)]);
    out.sizes.push_back(counts[static_cast<size_t>(old_id)]);
  }
  out.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.assignment[i] = relabel[static_cast<size_t>(assignment[i])];
    PRISM_CHECK_GE(out.assignment[i], 0);
  }
  out.silhouette = Silhouette(values, out.assignment, static_cast<int>(out.centers.size()));
  return out;
}

Clustering ClusterScores(const std::vector<float>& values, int max_k, uint64_t seed) {
  const std::set<float> distinct(values.begin(), values.end());
  const int limit = std::min<int>(max_k, static_cast<int>(distinct.size()));
  if (limit < 2) {
    Clustering single;
    single.assignment.assign(values.size(), 0);
    double mean = 0.0;
    for (float v : values) {
      mean += v;
    }
    single.centers = {values.empty() ? 0.0 : mean / static_cast<double>(values.size())};
    single.sizes = {values.size()};
    return single;
  }
  Clustering best;
  double best_sil = -2.0;
  for (int k = 2; k <= limit; ++k) {
    Clustering c = KMeans1D(values, k, MixSeed(seed, static_cast<uint64_t>(k)));
    if (c.silhouette > best_sil) {
      best_sil = c.silhouette;
      best = std::move(c);
    }
  }
  return best;
}

}  // namespace prism

#include "src/storage/layer_streamer.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

LayerStreamer::LayerStreamer(BlobFileReader* reader, std::vector<size_t> schedule,
                             size_t buffer_count, MemoryTracker* tracker, bool cyclic)
    : reader_(reader), schedule_(std::move(schedule)), tracker_(tracker), cyclic_(cyclic) {
  PRISM_CHECK_GE(buffer_count, 2u);
  PRISM_CHECK_GT(schedule_.size(), 0u);
  buffers_.resize(buffer_count);
  schedule_end_ = cyclic_ ? SIZE_MAX : schedule_.size();
  prefetcher_ = std::thread([this] { PrefetchLoop(); });
}

LayerStreamer::~LayerStreamer() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  prefetcher_.join();
}

StreamerCycleStats& LayerStreamer::CycleSlotLocked(size_t seq) {
  const size_t cycle =
      std::min(seq / schedule_.size(), StreamerStats::kMaxTrackedCycles - 1);
  if (stats_.per_cycle.size() <= cycle) {
    stats_.per_cycle.resize(cycle + 1);
  }
  return stats_.per_cycle[cycle];
}

void LayerStreamer::FreeBufferLocked(Buffer* buf) {
  buf->seq = SIZE_MAX;
  buf->ready = false;
  buf->bytes.clear();
  buf->bytes.shrink_to_fit();
  buf->claim.ReleaseNow();
}

std::span<const uint8_t> LayerStreamer::Acquire(size_t seq) {
  const int64_t start = NowMicros();
  MutexLock lock(mu_);
  PRISM_CHECK_LT(seq, schedule_end_);
  PRISM_CHECK_GE(seq, release_floor_);  // Released or skipped positions are gone.
  Buffer* hit = nullptr;
  for (;;) {
    for (auto& buf : buffers_) {
      if (buf.seq == seq && buf.ready) {
        hit = &buf;
        break;
      }
    }
    if (hit != nullptr) {
      break;
    }
    cv_.Wait(mu_);
  }
  const int64_t stalled = NowMicros() - start;
  stats_.stall_micros += stalled;
  CycleSlotLocked(seq).stall_micros += stalled;
  return {hit->bytes.data(), hit->bytes.size()};
}

void LayerStreamer::Release(size_t seq) {
  {
    MutexLock lock(mu_);
    bool found = false;
    for (auto& buf : buffers_) {
      if (buf.seq == seq) {
        FreeBufferLocked(&buf);
        found = true;
        break;
      }
    }
    PRISM_CHECK_MSG(found, "Release of blob that is not resident");
    release_floor_ = std::max(release_floor_, seq + 1);
  }
  cv_.NotifyAll();
}

void LayerStreamer::TruncateSchedule(size_t last_seq) {
  {
    MutexLock lock(mu_);
    schedule_end_ = std::min(schedule_end_, last_seq + 1);
  }
  cv_.NotifyAll();
}

void LayerStreamer::SkipTo(size_t seq) {
  {
    MutexLock lock(mu_);
    PRISM_CHECK_GE(seq, release_floor_);
    release_floor_ = seq;
    next_to_load_ = std::max(next_to_load_, seq);
    for (auto& buf : buffers_) {
      // Ready buffers below the new floor are dead weight; free them now. A
      // buffer still loading (seq set, !ready) is being written outside the
      // lock — the prefetcher frees it on completion instead.
      if (buf.seq != SIZE_MAX && buf.seq < seq && buf.ready) {
        FreeBufferLocked(&buf);
      }
    }
  }
  cv_.NotifyAll();
}

StreamerStats LayerStreamer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void LayerStreamer::PrefetchLoop() {
  for (;;) {
    size_t seq = 0;
    Buffer* target = nullptr;
    size_t blob_index = 0;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (shutting_down_) {
          return;
        }
        // A position must be pending, within `buffer_count` of the release
        // floor (so at most that many blobs are ever resident), and a free
        // buffer must exist.
        if (next_to_load_ < schedule_end_ &&
            next_to_load_ < release_floor_ + buffers_.size()) {
          for (auto& buf : buffers_) {
            if (buf.seq == SIZE_MAX) {
              target = &buf;
              break;
            }
          }
        }
        if (target != nullptr) {
          break;
        }
        cv_.Wait(mu_);
      }
      seq = next_to_load_++;
      blob_index = schedule_[seq % schedule_.size()];
      target->seq = seq;
      target->ready = false;
      const int64_t size = reader_->BlobSize(blob_index);
      target->bytes.resize(static_cast<size_t>(size));
      target->claim = MemClaim(tracker_, MemCategory::kWeights, size);
    }
    // I/O happens outside the lock; the device model inside SimulatedSsd
    // provides the timing.
    const Status status = reader_->ReadBlob(blob_index, target->bytes);
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
    {
      MutexLock lock(mu_);
      stats_.bytes_loaded += static_cast<int64_t>(target->bytes.size());
      ++stats_.blobs_loaded;
      StreamerCycleStats& cycle = CycleSlotLocked(target->seq);
      cycle.bytes_loaded += static_cast<int64_t>(target->bytes.size());
      ++cycle.blobs_loaded;
      if (target->seq < release_floor_) {
        // The position was skipped while the read was in flight; the bytes
        // were paid for (counted above) but nobody will consume them.
        FreeBufferLocked(target);
      } else {
        target->ready = true;
      }
    }
    cv_.NotifyAll();
  }
}

}  // namespace prism

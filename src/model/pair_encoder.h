// Cross-encoder input construction with planted relevance.
//
// A (query, candidate) pair becomes the token sequence
//   [BOS] query... [SEP] doc... [EOS]
// padded/cycled to exactly `seq_len` tokens. After embedding lookup and
// sinusoidal position encoding, the pooled position (EOS for decoder models,
// BOS/CLS for encoder models) receives the planted relevance component
// (r − 0.5) · signal_gain · v, where v is the classifier direction. This is
// the point where the pair "meets" — the joint-encoding step a real
// cross-encoder performs with learned weights (see DESIGN.md §1/§4 for why
// this substitution preserves the behaviour PRISM exploits).
#ifndef PRISM_SRC_MODEL_PAIR_ENCODER_H_
#define PRISM_SRC_MODEL_PAIR_ENCODER_H_

#include <cstdint>
#include <vector>

#include "src/model/config.h"
#include "src/model/embedding.h"
#include "src/model/weights.h"
#include "src/tensor/tensor.h"

namespace prism {

// Reserved token ids; dataset generators must emit tokens >= kFirstWordToken.
inline constexpr uint32_t kPadToken = 0;
inline constexpr uint32_t kBosToken = 1;
inline constexpr uint32_t kSepToken = 2;
inline constexpr uint32_t kEosToken = 3;
inline constexpr uint32_t kFirstWordToken = 16;

struct PairInput {
  std::vector<uint32_t> tokens;  // Exactly seq_len entries.
  float relevance = 0.5f;        // Planted r ∈ [0, 1].
};

// Builds the fixed-length token sequence for one pair. Query is truncated to
// at most seq_len/3 tokens; the document fills the rest (cycled if short).
PairInput BuildPairInput(const ModelConfig& config, const std::vector<uint32_t>& query,
                         const std::vector<uint32_t>& doc, float relevance, size_t seq_len);

// Embeds `pair` into rows [candidate·seq_len, (candidate+1)·seq_len) of
// `hidden`: embedding lookup through `source`, position encoding, planted
// signal at the pooled position (direction = head.w).
void EmbedPairInto(const ModelConfig& config, EmbeddingSource* source, const HeadWeights& head,
                   const PairInput& pair, size_t candidate, size_t seq_len, Tensor* hidden);

// Chooses the common sequence length for a request: the longest pair's
// natural length (1 + |q| + 1 + |d| + 1), clamped to [8, config.max_seq].
size_t ChooseSeqLen(const ModelConfig& config, const std::vector<uint32_t>& query,
                    const std::vector<std::vector<uint32_t>>& docs);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_PAIR_ENCODER_H_

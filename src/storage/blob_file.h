// Indexed-blob container on top of SimulatedSsd.
//
// Model checkpoints are laid out as a sequence of blobs (embedding table,
// one blob per transformer layer, classifier head) so that the layer streamer
// can fetch exactly one layer's bytes per request. The format is:
//
//   [magic u32][version u32][count u64]            header
//   count × { offset u64, size u64 }               table
//   blob bytes ...                                 data
#ifndef PRISM_SRC_STORAGE_BLOB_FILE_H_
#define PRISM_SRC_STORAGE_BLOB_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/ssd.h"

namespace prism {

inline constexpr uint32_t kBlobFileMagic = 0x50524C42;  // "PRLB"
inline constexpr uint32_t kBlobFileVersion = 1;

class BlobFileWriter {
 public:
  // Writes blobs sequentially through an *unthrottled* SSD handle (checkpoint
  // creation is setup work, not part of any measured experiment).
  explicit BlobFileWriter(const std::string& path);

  // Appends a blob; returns its index.
  size_t AddBlob(std::span<const uint8_t> bytes);

  // Writes the header + table. Must be called exactly once, after all blobs.
  Status Finish();

 private:
  std::string path_;
  std::unique_ptr<SimulatedSsd> ssd_;
  std::vector<std::pair<int64_t, int64_t>> table_;  // offset, size
  std::vector<uint8_t> scratch_;                    // Staged blob bytes until Finish.
  int64_t data_cursor_ = 0;
  bool finished_ = false;
};

class BlobFileReader {
 public:
  // Opens an existing blob file through a throttled simulated device.
  static Result<std::unique_ptr<BlobFileReader>> Open(const std::string& path, SsdConfig config);

  size_t blob_count() const { return table_.size(); }
  int64_t BlobSize(size_t index) const;

  // Reads blob `index` fully into `dest` (must be exactly BlobSize bytes).
  Status ReadBlob(size_t index, std::span<uint8_t> dest);

  // Reads a byte range within blob `index` (for row-granular embedding-table
  // fetches on cache miss, §4.4).
  Status ReadBlobRange(size_t index, int64_t offset_in_blob, std::span<uint8_t> dest);

  // Scattered ranges within one blob as a single device request (§4.5's
  // batched unique-token load).
  Status ReadBlobRanges(size_t index,
                        std::span<const std::pair<int64_t, std::span<uint8_t>>> ranges);

  SimulatedSsd& ssd() { return *ssd_; }

 private:
  BlobFileReader() = default;

  std::unique_ptr<SimulatedSsd> ssd_;
  std::vector<std::pair<int64_t, int64_t>> table_;
};

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_BLOB_FILE_H_

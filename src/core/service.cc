#include "src/core/service.h"

#include <algorithm>
#include <cmath>

namespace prism {

RerankService::RerankService(const ModelConfig& config, const std::string& checkpoint_path,
                             ServiceOptions options, MemoryTracker* tracker)
    : config_(config) {
  engine_ = std::make_unique<PrismEngine>(config, checkpoint_path, options.engine, tracker);
  if (options.online_calibration) {
    PrismOptions reference_options = options.engine;
    reference_options.pruning = false;
    // Ground-truth runs happen at idle time; they should not distort the
    // serving path's memory accounting or wait on the simulated device.
    reference_options.streaming = false;
    reference_options.embed_cache = false;
    reference_options.device.ssd.throttle = false;
    reference_ = std::make_unique<PrismEngine>(config, checkpoint_path, reference_options,
                                               tracker);
    calibrator_ = std::make_unique<OnlineCalibrator>(engine_.get(), reference_.get(),
                                                     options.calibration);
  }
}

RerankResult RerankService::Rerank(const RerankRequest& request) {
  Runner* runner = calibrator_ != nullptr ? static_cast<Runner*>(calibrator_.get())
                                          : static_cast<Runner*>(engine_.get());
  const RerankResult result = runner->Rerank(request);
  ++stats_.requests;
  stats_.total_latency_ms += result.stats.latency_ms;
  stats_.max_latency_ms = std::max(stats_.max_latency_ms, result.stats.latency_ms);
  stats_.total_candidate_layers += result.stats.candidate_layers;
  stats_.total_candidates += static_cast<int64_t>(request.docs.size());
  stats_.bytes_streamed += result.stats.bytes_streamed;
  return result;
}

double RerankService::OnIdle() {
  if (calibrator_ == nullptr) {
    return std::nan("");
  }
  return calibrator_->RunIdleCycle();
}

}  // namespace prism

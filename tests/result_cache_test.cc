// ResultCache: the exact-key result-cache tier (src/serving/result_cache.h).
// Load-bearing properties, pinned on a SimClock so every instant is exact:
// TTL expiry lands on precisely t + ttl_ms, LRU eviction follows recency
// order, single-flight coalesces concurrent identical queries onto one inner
// pass, a failed fill neither poisons its key nor wedges its waiters, and a
// waiter whose deadline expires while parked sheds with its true residence.
// Also a ThreadSanitizer target: many client threads share one cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/service_pool.h"
#include "src/serving/result_cache.h"
#include "src/runtime/runner.h"

namespace prism {
namespace {

RerankRequest MakeRequest(uint32_t id, size_t k = 2) {
  RerankRequest request;
  request.query = {id, id + 1};
  request.docs = {{id}, {id + 10}, {id + 20}};
  request.k = k;
  return request;
}

// Inner runner with a scripted per-call outcome: counts calls, optionally
// charges virtual service time on a clock, and fails calls whose index is in
// `fail_calls`. Thread-safe.
class ScriptedRunner : public Runner {
 public:
  explicit ScriptedRunner(Clock* clock = nullptr, double service_ms = 0.0)
      : clock_(ResolveClock(clock)), service_ms_(service_ms) {}

  RerankResult Rerank(const RerankRequest& request) override {
    const size_t call = calls_.fetch_add(1);
    if (service_ms_ > 0.0) {
      clock_->SleepFor(service_ms_);
    }
    RerankResult result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t fail : fail_calls_) {
        if (fail == call) {
          result.status = Status(StatusCode::kIoError, "injected");
          return result;
        }
      }
    }
    // Deterministic ranking derived from the request so distinct keys get
    // distinct cached payloads.
    for (size_t i = 0; i < std::min(request.k, request.docs.size()); ++i) {
      result.topk.push_back((request.query[0] + i) % request.docs.size());
      result.scores.push_back(static_cast<float>(request.query[0] + i));
    }
    result.stats.latency_ms = service_ms_;
    return result;
  }

  std::string name() const override { return "scripted"; }

  size_t calls() const { return calls_.load(); }
  void FailCall(size_t call) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_calls_.push_back(call);
  }

 private:
  Clock* clock_;
  double service_ms_;
  std::atomic<size_t> calls_{0};
  std::mutex mu_;
  std::vector<size_t> fail_calls_;
};

TEST(ResultCacheTest, ExactHitReturnsCachedRankingWithScrubbedTiming) {
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 8;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(3);

  const RerankResult first = cache.Rerank(request);
  const RerankResult second = cache.Rerank(request);
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_TRUE(second.status.ok());
  EXPECT_EQ(second.topk, first.topk);
  EXPECT_EQ(second.scores, first.scores);
  // The hit's timing belongs to this caller (an immediate hit waited ~0),
  // not to the original fill.
  EXPECT_EQ(second.stats.bytes_streamed, 0);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyTouchedFirst) {
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 2;
  options.shards = 1;  // One shard so recency order is globally observable.
  ResultCache cache(&inner, options);

  cache.Rerank(MakeRequest(0));  // Fill A.
  cache.Rerank(MakeRequest(1));  // Fill B. LRU order: B, A.
  cache.Rerank(MakeRequest(0));  // Hit A. LRU order: A, B.
  cache.Rerank(MakeRequest(2));  // Fill C evicts B (least recent).
  EXPECT_EQ(cache.stats().evicted, 1u);

  const size_t calls_before = inner.calls();
  cache.Rerank(MakeRequest(0));  // A survived the eviction.
  cache.Rerank(MakeRequest(2));  // C is resident.
  EXPECT_EQ(inner.calls(), calls_before);
  cache.Rerank(MakeRequest(1));  // B was evicted: a fresh inner pass.
  EXPECT_EQ(inner.calls(), calls_before + 1);
}

TEST(ResultCacheTest, ShardAndCapacityClampsKeepTinyCachesExact) {
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 3;
  options.shards = 8;  // More shards than entries: clamped to the capacity.
  ResultCache cache(&inner, options);
  for (uint32_t id = 0; id < 16; ++id) {
    cache.Rerank(MakeRequest(id));
  }
  EXPECT_LE(cache.size(), 3u);
  EXPECT_GT(cache.stats().evicted, 0u);
}

TEST(ResultCacheTest, TtlExpiresAtTheExactVirtualInstant) {
  SimClock clock;
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 4;
  options.ttl_ms = 10.0;
  options.clock = &clock;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(1);

  cache.Rerank(request);  // Filled at t = 0.
  clock.SleepUntil(9.999999);
  cache.Rerank(request);  // Any instant before t + ttl is a hit.
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  clock.SleepUntil(10.0);  // The expiry instant itself misses.
  cache.Rerank(request);
  EXPECT_EQ(inner.calls(), 2u);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.misses, 2u);

  // The refill restarts the TTL window from its own fill instant.
  clock.SleepUntil(19.999999);
  cache.Rerank(request);
  EXPECT_EQ(inner.calls(), 2u);
}

TEST(ResultCacheTest, InvalidateDropsExactlyTheNamedKey) {
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 8;
  ResultCache cache(&inner, options);
  cache.Rerank(MakeRequest(0));
  cache.Rerank(MakeRequest(1));

  EXPECT_TRUE(cache.Invalidate(MakeRequest(0)));
  EXPECT_FALSE(cache.Invalidate(MakeRequest(0)));  // Already gone.
  EXPECT_FALSE(cache.Invalidate(MakeRequest(7)));  // Never cached.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidated, 1u);

  const size_t calls_before = inner.calls();
  cache.Rerank(MakeRequest(1));  // Untouched key still serves.
  EXPECT_EQ(inner.calls(), calls_before);
  cache.Rerank(MakeRequest(0));  // Invalidated key refills.
  EXPECT_EQ(inner.calls(), calls_before + 1);

  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidated, 3u);
}

TEST(ResultCacheTest, SingleFlightCoalescesConcurrentIdenticalQueries) {
  SimClock clock;
  ScriptedRunner inner(&clock, /*service_ms=*/10.0);
  ResultCacheOptions options;
  options.capacity = 4;
  options.clock = &clock;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(2);

  constexpr size_t kClients = 4;
  clock.ExpectParticipants(kClients);
  std::mutex mu;
  std::vector<RerankResult> results;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      const ClockMembership membership(&clock);
      RerankResult result = cache.Rerank(request);
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(result));
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // One engine pass served all four callers, every ranking identical.
  EXPECT_EQ(inner.calls(), 1u);
  ASSERT_EQ(results.size(), kClients);
  for (const RerankResult& result : results) {
    EXPECT_TRUE(result.status.ok());
    EXPECT_EQ(result.topk, results[0].topk);
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kClients);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);
  EXPECT_DOUBLE_EQ(stats.CoalescedRate(),
                   static_cast<double>(kClients - 1) / static_cast<double>(kClients));
}

TEST(ResultCacheTest, SingleFlightOffEveryConcurrentMisserFillsItself) {
  SimClock clock;
  ScriptedRunner inner(&clock, /*service_ms=*/10.0);
  ResultCacheOptions options;
  options.capacity = 4;
  options.single_flight = false;
  options.clock = &clock;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(2);

  constexpr size_t kClients = 3;
  clock.ExpectParticipants(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      const ClockMembership membership(&clock);
      EXPECT_TRUE(cache.Rerank(request).status.ok());
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(inner.calls(), kClients);
  EXPECT_EQ(cache.stats().coalesced, 0u);
}

TEST(ResultCacheTest, FailedFillNeitherPoisonsTheKeyNorWedgesWaiters) {
  SimClock clock;
  ScriptedRunner inner(&clock, /*service_ms=*/5.0);
  inner.FailCall(0);  // Whoever leads the first fill gets an IO error.
  ResultCacheOptions options;
  options.capacity = 4;
  options.clock = &clock;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(6);

  clock.ExpectParticipants(2);
  std::mutex mu;
  std::vector<RerankResult> results;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      const ClockMembership membership(&clock);
      RerankResult result = cache.Rerank(request);
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(result));
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // The leader's error surfaced to its own caller only; the parked waiter
  // re-led a fresh fill and was served. Two inner passes total.
  EXPECT_EQ(inner.calls(), 2u);
  ASSERT_EQ(results.size(), 2u);
  size_t ok_count = 0;
  for (const RerankResult& result : results) {
    if (result.status.ok()) {
      ++ok_count;
    } else {
      EXPECT_EQ(result.status.code(), StatusCode::kIoError);
    }
  }
  EXPECT_EQ(ok_count, 1u);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fill_errors, 1u);
  EXPECT_EQ(stats.misses, 2u);

  // The key is not poisoned: the successful refill serves hits.
  EXPECT_TRUE(cache.Rerank(request).status.ok());
  EXPECT_EQ(inner.calls(), 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCacheTest, DeadlineExpiringWhileParkedShedsWithTrueResidence) {
  SimClock clock;
  ScriptedRunner inner(&clock, /*service_ms=*/20.0);
  ResultCacheOptions options;
  options.capacity = 4;
  options.clock = &clock;
  ResultCache cache(&inner, options);

  clock.ExpectParticipants(2);
  RerankResult waiter_result;
  std::thread leader([&] {
    const ClockMembership membership(&clock);
    // Leads the fill at t = 0; the inner pass runs until t = 20.
    EXPECT_TRUE(cache.Rerank(MakeRequest(4)).status.ok());
  });
  std::thread waiter([&] {
    const ClockMembership membership(&clock);
    clock.SleepUntil(1.0);  // Park strictly after the leader's fill starts.
    RerankRequest request = MakeRequest(4);
    request.deadline_ms = 5.0;
    waiter_result = cache.Rerank(request);
  });
  leader.join();
  waiter.join();

  // The waiter's budget ran out at exactly t = 1 + 5, long before the fill
  // finished: it shed with its true parked residence.
  EXPECT_EQ(waiter_result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(waiter_result.stats.latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(waiter_result.stats.queue_wait_ms, 5.0);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.shed_waiting, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
}

// Inner runner that also implements the HashAwareRunner seam, recording the
// hash each forwarded miss carried.
class HashRecordingRunner : public Runner, public HashAwareRunner {
 public:
  RerankResult Rerank(const RerankRequest&) override {
    ++plain_calls_;
    return Served();
  }
  RerankResult RerankHashed(const RerankRequest&, uint64_t hash) override {
    ++hashed_calls_;
    last_hash_ = hash;
    return Served();
  }
  std::string name() const override { return "hash_recording"; }

  size_t plain_calls_ = 0;
  size_t hashed_calls_ = 0;
  uint64_t last_hash_ = 0;

 private:
  static RerankResult Served() {
    RerankResult result;
    result.topk = {0};
    result.scores = {1.0f};
    return result;
  }
};

TEST(ResultCacheTest, MissesForwardThePrecomputedHashThroughTheSeam) {
  HashRecordingRunner inner;
  ResultCacheOptions options;
  options.capacity = 4;
  ResultCache cache(&inner, options);
  const RerankRequest request = MakeRequest(9, /*k=*/1);
  cache.Rerank(request);
  EXPECT_EQ(inner.plain_calls_, 0u);  // The seam was used, not Rerank.
  EXPECT_EQ(inner.hashed_calls_, 1u);
  EXPECT_EQ(inner.last_hash_, QueryHash(request));
}

TEST(ResultCacheTest, SimilarityTierServesCosineNeighboursOnlyWhenEnabled) {
  // Embedder keyed on the first query token: ids 0 and 1 embed nearly
  // parallel, id 2 orthogonal.
  const QueryEmbedder embedder = [](const RerankRequest& request) {
    switch (request.query[0]) {
      case 0:
        return std::vector<float>{1.0f, 0.0f};
      case 1:
        return std::vector<float>{0.999f, 0.045f};
      default:
        return std::vector<float>{0.0f, 1.0f};
    }
  };

  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 4;
  options.shards = 1;  // The similarity probe scans its own shard only.
  options.similarity = 0.99;
  ResultCache cache(&inner, options, embedder);

  const RerankResult filled = cache.Rerank(MakeRequest(0));
  const RerankResult near = cache.Rerank(MakeRequest(1));  // cos ≈ 0.999.
  EXPECT_EQ(inner.calls(), 1u);  // Served by the neighbour's entry.
  EXPECT_EQ(near.topk, filled.topk);
  EXPECT_EQ(cache.stats().similarity_hits, 1u);

  cache.Rerank(MakeRequest(2));  // Orthogonal: a genuine miss.
  EXPECT_EQ(inner.calls(), 2u);

  // Same traffic with the tier off: the near-duplicate must miss.
  ScriptedRunner exact_inner;
  ResultCacheOptions exact_options;
  exact_options.capacity = 4;
  exact_options.shards = 1;
  ResultCache exact(&exact_inner, exact_options, embedder);
  exact.Rerank(MakeRequest(0));
  exact.Rerank(MakeRequest(1));
  EXPECT_EQ(exact_inner.calls(), 2u);
  EXPECT_EQ(exact.stats().similarity_hits, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficKeepsCountersConsistent) {
  // Wall-clock stress for the TSan lane: many threads, overlapping keys,
  // invalidations racing hits and fills. Counters must balance exactly.
  ScriptedRunner inner;
  ResultCacheOptions options;
  options.capacity = 8;
  options.shards = 4;
  ResultCache cache(&inner, options);

  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 200;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        const uint32_t id = static_cast<uint32_t>((t + i) % 12);
        const RerankResult result = cache.Rerank(MakeRequest(id));
        EXPECT_TRUE(result.status.ok());
        if (i % 50 == 49) {
          cache.Invalidate(MakeRequest(id));
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kThreads * kIterations);
  // Every lookup is accounted in exactly one outcome bucket.
  EXPECT_EQ(stats.hits + stats.similarity_hits + stats.coalesced + stats.shed_waiting +
                stats.misses,
            stats.lookups);
  EXPECT_EQ(stats.fill_errors, 0u);
  EXPECT_LE(cache.size(), 8u);
}

}  // namespace
}  // namespace prism

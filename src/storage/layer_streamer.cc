#include "src/storage/layer_streamer.h"

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

LayerStreamer::LayerStreamer(BlobFileReader* reader, std::vector<size_t> schedule,
                             size_t buffer_count, MemoryTracker* tracker)
    : reader_(reader), schedule_(std::move(schedule)), tracker_(tracker) {
  PRISM_CHECK_GE(buffer_count, 2u);
  buffers_.resize(buffer_count);
  schedule_end_ = schedule_.size();
  prefetcher_ = std::thread([this] { PrefetchLoop(); });
}

LayerStreamer::~LayerStreamer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  prefetcher_.join();
}

std::span<const uint8_t> LayerStreamer::Acquire(size_t seq) {
  const int64_t start = NowMicros();
  std::unique_lock<std::mutex> lock(mu_);
  PRISM_CHECK_LT(seq, schedule_end_);
  Buffer* hit = nullptr;
  cv_.wait(lock, [&] {
    for (auto& buf : buffers_) {
      if (buf.seq == seq && buf.ready) {
        hit = &buf;
        return true;
      }
    }
    return false;
  });
  stats_.stall_micros += NowMicros() - start;
  return {hit->bytes.data(), hit->bytes.size()};
}

void LayerStreamer::Release(size_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    for (auto& buf : buffers_) {
      if (buf.seq == seq) {
        buf.seq = SIZE_MAX;
        buf.ready = false;
        buf.bytes.clear();
        buf.bytes.shrink_to_fit();
        buf.claim.ReleaseNow();
        found = true;
        break;
      }
    }
    PRISM_CHECK_MSG(found, "Release of blob that is not resident");
    release_floor_ = std::max(release_floor_, seq + 1);
  }
  cv_.notify_all();
}

void LayerStreamer::TruncateSchedule(size_t last_seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    schedule_end_ = std::min(schedule_end_, last_seq + 1);
  }
  cv_.notify_all();
}

StreamerStats LayerStreamer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LayerStreamer::PrefetchLoop() {
  for (;;) {
    size_t seq = 0;
    Buffer* target = nullptr;
    size_t blob_index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (shutting_down_) {
          return true;
        }
        if (next_to_load_ >= schedule_end_) {
          return false;  // Nothing (currently) left to load.
        }
        // Only run `buffer_count` blobs ahead of the release floor so that at
        // most that many blobs are ever resident.
        if (next_to_load_ >= release_floor_ + buffers_.size()) {
          return false;
        }
        for (auto& buf : buffers_) {
          if (buf.seq == SIZE_MAX) {
            target = &buf;
            return true;
          }
        }
        return false;
      });
      if (shutting_down_) {
        return;
      }
      seq = next_to_load_++;
      blob_index = schedule_[seq];
      target->seq = seq;
      target->ready = false;
      const int64_t size = reader_->BlobSize(blob_index);
      target->bytes.resize(static_cast<size_t>(size));
      target->claim = MemClaim(tracker_, MemCategory::kWeights, size);
    }
    // I/O happens outside the lock; the device model inside SimulatedSsd
    // provides the timing.
    const Status status = reader_->ReadBlob(blob_index, target->bytes);
    PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
    {
      std::lock_guard<std::mutex> lock(mu_);
      target->ready = true;
      stats_.bytes_loaded += static_cast<int64_t>(target->bytes.size());
      ++stats_.blobs_loaded;
    }
    cv_.notify_all();
  }
}

}  // namespace prism

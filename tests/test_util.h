// Shared helpers for the test suite: tiny models, fast (unthrottled) device
// profiles, and canned rerank requests.
#ifndef PRISM_TESTS_TEST_UTIL_H_
#define PRISM_TESTS_TEST_UTIL_H_

#include <string>

#include "src/data/dataset.h"
#include "src/model/config.h"
#include "src/model/synthetic.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"

namespace prism {

// Device profile with the SSD model disabled — tests that don't measure
// timing shouldn't pay simulated I/O waits.
inline DeviceProfile FastDevice() {
  DeviceProfile device = NvidiaProfile();
  device.ssd.throttle = false;
  device.compute_slowdown = 1.0;
  return device;
}

// A throttled but quick device for timing-sensitive tests.
inline DeviceProfile SlowSsdDevice(double bytes_per_sec, int64_t latency_micros = 50) {
  DeviceProfile device = NvidiaProfile();
  device.ssd.bandwidth_bytes_per_sec = bytes_per_sec;
  device.ssd.latency_micros = latency_micros;
  return device;
}

inline std::string TestCheckpoint(const ModelConfig& config,
                                  Precision precision = Precision::kFp32, uint64_t seed = 99) {
  return EnsureCheckpoint(config, seed, precision);
}

inline RerankRequest TestRequest(const ModelConfig& config, size_t n_candidates = 12,
                                 size_t k = 3, size_t query_index = 0,
                                 const char* dataset = "wikipedia") {
  const SyntheticDataset data(DatasetByName(dataset), config, 1234);
  return RerankRequest::FromQuery(data.MakeQuery(query_index, n_candidates), k);
}

}  // namespace prism

#endif  // PRISM_TESTS_TEST_UTIL_H_

#include "src/storage/ssd.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

SimulatedSsd::SimulatedSsd(std::string path, SsdConfig config)
    : path_(std::move(path)), config_(config) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  PRISM_CHECK_MSG(fd_ >= 0, path_.c_str());
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  PRISM_CHECK_GE(end, 0);
  append_offset_ = static_cast<int64_t>(end);
}

SimulatedSsd::~SimulatedSsd() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status SimulatedSsd::Read(int64_t offset, std::span<uint8_t> dest) {
  size_t done = 0;
  while (done < dest.size()) {
    const ssize_t n = ::pread(fd_, dest.data() + done, dest.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::OutOfRange("read past end of device");
    }
    done += static_cast<size_t>(n);
  }
  ChargeTransfer(static_cast<int64_t>(dest.size()));
  {
    MutexLock lock(mu_);
    stats_.bytes_read += static_cast<int64_t>(dest.size());
    ++stats_.read_requests;
  }
  return Status::Ok();
}

Status SimulatedSsd::ReadScattered(
    std::span<const std::pair<int64_t, std::span<uint8_t>>> requests) {
  int64_t total = 0;
  for (const auto& [offset, dest] : requests) {
    size_t done = 0;
    while (done < dest.size()) {
      const ssize_t n = ::pread(fd_, dest.data() + done, dest.size() - done,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        return Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) {
        return Status::OutOfRange("read past end of device");
      }
      done += static_cast<size_t>(n);
    }
    total += static_cast<int64_t>(dest.size());
  }
  ChargeTransfer(total);
  {
    MutexLock lock(mu_);
    stats_.bytes_read += total;
    ++stats_.read_requests;
  }
  return Status::Ok();
}

Status SimulatedSsd::Write(int64_t offset, std::span<const uint8_t> src) {
  size_t done = 0;
  while (done < src.size()) {
    const ssize_t n = ::pwrite(fd_, src.data() + done, src.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  ChargeTransfer(static_cast<int64_t>(src.size()));
  {
    MutexLock lock(mu_);
    stats_.bytes_written += static_cast<int64_t>(src.size());
    ++stats_.write_requests;
    append_offset_ = std::max(append_offset_, offset + static_cast<int64_t>(src.size()));
  }
  return Status::Ok();
}

Result<int64_t> SimulatedSsd::Append(std::span<const uint8_t> src) {
  int64_t offset;
  {
    MutexLock lock(mu_);
    offset = append_offset_;
    append_offset_ += static_cast<int64_t>(src.size());
  }
  PRISM_RETURN_IF_ERROR(Write(offset, src));
  return offset;
}

int64_t SimulatedSsd::SizeBytes() const {
  MutexLock lock(mu_);
  return append_offset_;
}

SsdStats SimulatedSsd::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void SimulatedSsd::ChargeTransfer(int64_t bytes) {
  if (!config_.throttle) {
    return;
  }
  const int64_t duration =
      config_.latency_micros +
      static_cast<int64_t>(static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec * 1e6);
  int64_t wake_at;
  {
    MutexLock lock(mu_);
    const int64_t now = NowMicros();
    const int64_t start = std::max(now, device_free_at_micros_);
    device_free_at_micros_ = start + duration;
    stats_.busy_micros += duration;
    wake_at = device_free_at_micros_;
  }
  const int64_t now = NowMicros();
  if (wake_at > now) {
    // prism-lint: allow(wall-clock): device-domain throttle. The SSD model
    // stretches *real* I/O to the modelled bandwidth, and real work runs at
    // wall speed even under a SimClock (src/common/clock.h: only waiting is
    // virtualized — simulated runs replace this device with SimulatedRunner
    // charges on the virtual timeline instead).
    std::this_thread::sleep_for(std::chrono::microseconds(wake_at - now));
  }
}

std::string MakeTempDevicePath(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  return "/tmp/prism_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) + ".bin";
}

}  // namespace prism

// Fixed-size worker pool.
//
// PRISM separates compute from I/O: the compute path runs on the caller's
// thread while weight prefetch / hidden-state spill run on pool workers (the
// C++ analogue of the paper's dedicated I/O process, §5). The pool is also
// used by ParallelFor to split large GEMMs when more than one core exists.
#ifndef PRISM_SRC_COMMON_THREAD_POOL_H_
#define PRISM_SRC_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace prism {

class ThreadPool {
 public:
  // `num_threads` == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`; the returned future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

  // Runs fn(i) for i in [begin, end), splitting the range across workers and
  // the calling thread. Blocks until all iterations complete.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ PRISM_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  bool shutting_down_ PRISM_GUARDED_BY(mu_) = false;
};

// Process-wide pool for I/O offload (lazily constructed, 2 workers).
ThreadPool& GlobalIoPool();

}  // namespace prism

#endif  // PRISM_SRC_COMMON_THREAD_POOL_H_

#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/model/pair_encoder.h"

namespace prism {

std::vector<DatasetProfile> AllDatasetProfiles() {
  // name, query_terms, doc_terms, vocab_skew, grade_gap, grade_noise, rel_frac
  return {
      {"beir-trec-covid", 7, 30, 1.00, 0.40, 0.12, 0.35},
      {"beir-nfcorpus", 6, 26, 1.05, 0.35, 0.14, 0.30},
      {"beir-nq", 9, 28, 1.00, 0.50, 0.08, 0.25},
      {"beir-hotpotqa", 11, 30, 1.00, 0.55, 0.07, 0.25},
      {"beir-fiqa", 8, 26, 1.05, 0.35, 0.15, 0.30},
      {"beir-arguana", 14, 34, 1.05, 0.30, 0.16, 0.25},
      {"beir-webis-touche", 8, 34, 1.00, 0.30, 0.17, 0.30},
      {"beir-cqadupstack", 8, 24, 1.10, 0.40, 0.12, 0.30},
      {"beir-quora", 7, 12, 1.10, 0.55, 0.07, 0.25},
      {"beir-dbpedia", 6, 26, 1.00, 0.40, 0.12, 0.35},
      {"beir-scidocs", 9, 30, 1.10, 0.30, 0.16, 0.30},
      {"beir-fever", 8, 28, 1.00, 0.55, 0.07, 0.25},
      {"beir-climate-fever", 9, 28, 1.00, 0.40, 0.13, 0.30},
      {"beir-scifact", 10, 32, 1.10, 0.50, 0.09, 0.25},
      {"beir-msmarco", 7, 24, 1.00, 0.50, 0.09, 0.25},
      {"lotte", 9, 28, 1.05, 0.40, 0.12, 0.30},
      {"wikipedia", 8, 30, 1.00, 0.50, 0.08, 0.30},
      {"coderag", 10, 36, 1.25, 0.45, 0.11, 0.25},
  };
}

DatasetProfile DatasetByName(const std::string& name) {
  for (const DatasetProfile& p : AllDatasetProfiles()) {
    if (p.name == name) {
      return p;
    }
  }
  PRISM_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  return {};
}

SyntheticDataset::SyntheticDataset(DatasetProfile profile, const ModelConfig& model,
                                   uint64_t seed)
    : profile_(std::move(profile)),
      vocab_size_(model.vocab_size),
      seed_(seed),
      zipf_(model.vocab_size - kFirstWordToken, profile_.vocab_skew) {}

std::vector<uint32_t> SyntheticDataset::DrawTokens(Rng& rng, size_t n) const {
  std::vector<uint32_t> tokens;
  tokens.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back(kFirstWordToken + static_cast<uint32_t>(zipf_.Sample(rng)));
  }
  return tokens;
}

RerankQuery SyntheticDataset::MakeQuery(size_t index, size_t n_candidates) const {
  uint64_t name_hash = 0;
  for (char ch : profile_.name) {
    name_hash = name_hash * 131 + static_cast<uint8_t>(ch);
  }
  Rng rng(MixSeed(MixSeed(seed_, name_hash), index));

  RerankQuery query;
  query.tokens = DrawTokens(rng, profile_.query_terms);

  const size_t n_relevant = std::max<size_t>(
      1, static_cast<size_t>(std::lround(profile_.relevant_fraction *
                                         static_cast<double>(n_candidates))));
  for (size_t c = 0; c < n_candidates; ++c) {
    CandidateDoc doc;
    const bool is_relevant = c < n_relevant;  // Shuffled below.
    // Grade: relevant docs sit at 0.5 + gap/2 ± spread, irrelevant at
    // 0.5 − gap/2 ± spread, clamped to [0, 1].
    const double center = is_relevant ? 0.5 + profile_.grade_gap / 2 : 0.5 - profile_.grade_gap / 2;
    const double spread = profile_.grade_gap / 4 + 0.05;
    doc.grade = static_cast<float>(
        std::clamp(center + spread * rng.NextGaussian(), is_relevant ? 0.5 : 0.0,
                   is_relevant ? 1.0 : 0.4999));

    // Document text: a fraction of tokens copied from the query proportional
    // to the grade (lexical overlap), rest drawn from the Zipf vocabulary.
    const size_t len = std::max<size_t>(
        4, profile_.doc_terms + static_cast<size_t>(rng.NextBelow(profile_.doc_terms / 2 + 1)) -
               profile_.doc_terms / 4);
    const size_t overlap_tokens = static_cast<size_t>(
        std::lround(static_cast<double>(doc.grade) * 0.5 * static_cast<double>(len)));
    doc.tokens = DrawTokens(rng, len);
    for (size_t i = 0; i < std::min(overlap_tokens, len); ++i) {
      doc.tokens[rng.NextBelow(len)] = query.tokens[rng.NextBelow(query.tokens.size())];
    }

    // Planted relevance: grade + measured lexical overlap + noise.
    size_t shared = 0;
    for (uint32_t qt : query.tokens) {
      if (std::find(doc.tokens.begin(), doc.tokens.end(), qt) != doc.tokens.end()) {
        ++shared;
      }
    }
    const double overlap = static_cast<double>(shared) / static_cast<double>(query.tokens.size());
    const double r =
        0.7 * doc.grade + 0.2 * overlap + profile_.grade_noise * rng.NextGaussian() + 0.05;
    doc.planted_r = static_cast<float>(std::clamp(r, 0.0, 1.0));
    query.candidates.push_back(std::move(doc));
  }

  // Shuffle candidate order so relevant ones are not all at the front.
  for (size_t i = query.candidates.size(); i > 1; --i) {
    const size_t j = rng.NextBelow(i);
    std::swap(query.candidates[i - 1], query.candidates[j]);
  }
  for (size_t c = 0; c < query.candidates.size(); ++c) {
    if (query.candidates[c].grade >= 0.5f) {
      query.relevant.push_back(c);
    }
  }
  return query;
}

}  // namespace prism

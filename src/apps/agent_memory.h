// Agent-memory application (paper §6.3, Figs 12–13; MobiAgent-style).
//
// A GUI agent caches past successful action trajectories keyed by task
// description. For each step of a task, the agent either (a) asks the VLM to
// decide the next action — expensive — or (b) retrieves candidate
// trajectories from memory and lets the reranker pick the most semantically
// relevant one to replay — cheap when the pick is right. Task success fails
// only when a wrong trajectory is replayed (the VLM path is assumed correct).
#ifndef PRISM_SRC_APPS_AGENT_MEMORY_H_
#define PRISM_SRC_APPS_AGENT_MEMORY_H_

#include <string>
#include <vector>

#include "src/apps/sim_llm.h"
#include "src/data/dataset.h"
#include "src/runtime/runner.h"

namespace prism {

struct AgentWorkloadProfile {
  std::string name;          // "video" | "community"
  size_t n_tasks = 6;
  size_t steps_per_task = 4;
  size_t memory_entries = 48;   // Cached trajectories.
  size_t candidates = 20;       // Retrieved per step for reranking.
  double env_step_ms = 280.0;   // UI action execution time.
  // A VLM decision ingests a screenshot + instruction (~3.5k tokens here) and
  // decodes an action plan — substantially costlier than one rerank, which is
  // the premise of caching trajectories at all.
  size_t vlm_prompt_tokens = 3500;
  size_t vlm_new_tokens = 30;
  DatasetProfile text;          // Token statistics of task descriptions.
};

AgentWorkloadProfile VideoWorkload();
AgentWorkloadProfile CommunityWorkload();

struct AgentRunResult {
  double avg_task_latency_ms = 0.0;
  double success_rate = 0.0;
  double rerank_ms = 0.0;     // Mean per task.
  double inference_ms = 0.0;  // Mean per task (VLM).
  double env_ms = 0.0;        // Mean per task.
};

class AgentMemoryApp {
 public:
  AgentMemoryApp(AgentWorkloadProfile profile, const ModelConfig& model, uint64_t seed);

  // `runner` == nullptr disables agent memory (every step goes to the VLM).
  AgentRunResult Run(Runner* runner);

 private:
  struct Trajectory {
    std::vector<uint32_t> description;
    size_t task_type = 0;
  };

  AgentWorkloadProfile profile_;
  uint64_t seed_;
  std::vector<Trajectory> memory_;
  std::vector<Trajectory> tasks_;  // task_type is the ground truth.
  SimulatedLlm vlm_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_AGENT_MEMORY_H_

// Simulated downstream generator (LLM / VLM).
//
// The real-world pipelines (Figs 11–15) include a generation stage served by
// Qwen3-32B or a 7B VLM on A800 servers. Its internals are out of scope —
// only its latency and memory contribution to the end-to-end pipeline matter
// — so this cost model sleeps for prefill (∝ prompt tokens) plus decode
// (∝ generated tokens) and claims a context-dependent activation footprint
// while "generating".
#ifndef PRISM_SRC_APPS_SIM_LLM_H_
#define PRISM_SRC_APPS_SIM_LLM_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/memory_tracker.h"

namespace prism {

struct SimLlmConfig {
  double prefill_tokens_per_sec = 6000.0;
  double decode_tokens_per_sec = 280.0;
  // Per-prompt-token activation footprint while the request is in flight
  // (stands in for KV-cache growth).
  int64_t bytes_per_context_token = 2048;
  int64_t base_bytes = 8 * 1024 * 1024;
};

struct SimLlmResult {
  double latency_ms = 0.0;
  double first_token_ms = 0.0;
  size_t generated_tokens = 0;
};

class SimulatedLlm {
 public:
  // `clock` is the time source for the modelled generation latency. nullptr
  // (default) = the shared wall clock — the generator really blocks for the
  // modelled time, as before. Point it at a SimClock to charge generation
  // on virtual time instead.
  explicit SimulatedLlm(SimLlmConfig config, MemoryTracker* tracker = &MemoryTracker::Global(),
                        Clock* clock = nullptr)
      : config_(config), tracker_(tracker), clock_(ResolveClock(clock)) {}

  // Blocks for the modelled generation time. Thread-safe (the generator
  // holds no mutable state; the tracker is internally synchronized), so one
  // simulated server can serve many concurrent pipeline clients.
  SimLlmResult Generate(size_t prompt_tokens, size_t max_new_tokens) const;

  const SimLlmConfig& config() const { return config_; }

 private:
  SimLlmConfig config_;
  MemoryTracker* tracker_;
  Clock* clock_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_SIM_LLM_H_

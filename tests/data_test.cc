#include <gtest/gtest.h>

#include <cmath>

#include "src/data/dataset.h"
#include "src/data/metrics.h"
#include "src/model/pair_encoder.h"
#include "tests/test_util.h"

namespace prism {
namespace {

TEST(DatasetTest, EighteenProfiles) {
  const auto profiles = AllDatasetProfiles();
  EXPECT_EQ(profiles.size(), 18u);
  // Names are unique.
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = i + 1; j < profiles.size(); ++j) {
      EXPECT_NE(profiles[i].name, profiles[j].name);
    }
  }
}

TEST(DatasetTest, QueriesAreDeterministic) {
  const ModelConfig config = TestModel();
  const SyntheticDataset a(DatasetByName("beir-nq"), config, 5);
  const SyntheticDataset b(DatasetByName("beir-nq"), config, 5);
  const RerankQuery qa = a.MakeQuery(3, 10);
  const RerankQuery qb = b.MakeQuery(3, 10);
  EXPECT_EQ(qa.tokens, qb.tokens);
  ASSERT_EQ(qa.candidates.size(), qb.candidates.size());
  for (size_t i = 0; i < qa.candidates.size(); ++i) {
    EXPECT_EQ(qa.candidates[i].tokens, qb.candidates[i].tokens);
    EXPECT_EQ(qa.candidates[i].planted_r, qb.candidates[i].planted_r);
  }
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  const ModelConfig config = TestModel();
  const SyntheticDataset a(DatasetByName("beir-nq"), config, 5);
  const SyntheticDataset b(DatasetByName("beir-nq"), config, 6);
  EXPECT_NE(a.MakeQuery(0, 10).tokens, b.MakeQuery(0, 10).tokens);
}

TEST(DatasetTest, RelevantFractionRoughlyRespected) {
  const ModelConfig config = TestModel();
  const SyntheticDataset data(DatasetByName("wikipedia"), config, 5);
  size_t total_relevant = 0;
  for (size_t i = 0; i < 10; ++i) {
    total_relevant += data.MakeQuery(i, 20).relevant.size();
  }
  // wikipedia profile: relevant_fraction 0.3 → about 6 of 20 per query.
  EXPECT_NEAR(static_cast<double>(total_relevant) / 10.0, 6.0, 2.0);
}

TEST(DatasetTest, TokensInWordRange) {
  const ModelConfig config = TestModel();
  const SyntheticDataset data(DatasetByName("coderag"), config, 5);
  const RerankQuery q = data.MakeQuery(0, 8);
  for (uint32_t t : q.tokens) {
    EXPECT_GE(t, kFirstWordToken);
    EXPECT_LT(t, config.vocab_size);
  }
  for (const CandidateDoc& c : q.candidates) {
    EXPECT_FALSE(c.tokens.empty());
    for (uint32_t t : c.tokens) {
      EXPECT_GE(t, kFirstWordToken);
      EXPECT_LT(t, config.vocab_size);
    }
  }
}

TEST(DatasetTest, PlantedRelevanceCorrelatesWithGrade) {
  const ModelConfig config = TestModel();
  const SyntheticDataset data(DatasetByName("beir-fever"), config, 5);
  std::vector<float> grades;
  std::vector<float> planted;
  for (size_t i = 0; i < 8; ++i) {
    const RerankQuery q = data.MakeQuery(i, 16);
    for (const CandidateDoc& c : q.candidates) {
      grades.push_back(c.grade);
      planted.push_back(c.planted_r);
    }
  }
  EXPECT_GT(KendallTau(grades, planted), 0.5);
}

TEST(MetricsTest, PrecisionAtKBasics) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3}, {1, 2, 3}, 3), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 9, 8}, {1, 2, 3}, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({9, 8, 7}, {1}, 3), 0.0);
}

TEST(MetricsTest, PrecisionDenominatorUsesGroundTruthWhenSmaller) {
  // Paper §6.1: when |relevant| < K the denominator is |relevant|.
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 9, 8, 7, 6}, {1}, 5), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 8, 7, 6}, {1, 2}, 5), 1.0);
}

TEST(MetricsTest, TopKOverlapOrderInsensitive) {
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {3, 2, 1}, 3), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {1, 5, 6}, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {1}, 0), 1.0);
}

TEST(MetricsTest, GammaPerfectAndReversed) {
  const std::vector<float> final_scores = {0.9f, 0.7f, 0.5f, 0.3f};
  EXPECT_DOUBLE_EQ(GoodmanKruskalGamma({0.8f, 0.6f, 0.4f, 0.2f}, final_scores), 1.0);
  EXPECT_DOUBLE_EQ(GoodmanKruskalGamma({0.2f, 0.4f, 0.6f, 0.8f}, final_scores), -1.0);
}

TEST(MetricsTest, GammaSkipsTies) {
  const std::vector<float> a = {0.5f, 0.5f, 0.1f};
  const std::vector<float> b = {0.9f, 0.8f, 0.1f};
  // Pair (0,1) tied in a → skipped; the other two pairs concordant.
  EXPECT_DOUBLE_EQ(GoodmanKruskalGamma(a, b), 1.0);
}

TEST(MetricsTest, ClusterGammaIgnoresIntraClusterPairs) {
  const std::vector<float> final_scores = {0.9f, 0.8f, 0.2f, 0.1f};
  // Intra-cluster order is wrong, inter-cluster order is right.
  const std::vector<float> scores = {0.7f, 0.75f, 0.05f, 0.1f};
  const std::vector<int> clusters = {0, 0, 1, 1};
  EXPECT_LT(GoodmanKruskalGamma(scores, final_scores), 1.0);
  EXPECT_DOUBLE_EQ(ClusterGamma(scores, final_scores, clusters), 1.0);
}

TEST(MetricsTest, KendallTauRange) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> b = {4.0f, 3.0f, 2.0f, 1.0f};
  EXPECT_DOUBLE_EQ(KendallTau(a, a), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(a, b), -1.0);
}

TEST(MetricsTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({2.0f, 2.0f, 2.0f}), 0.0);
  const double cv = CoefficientOfVariation({1.0f, 3.0f});
  EXPECT_NEAR(cv, 0.5, 1e-9);  // std=1, mean=2.
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(MetricsTest, TopKIndicesOrderAndTies) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.9f};
  const auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // Tie with 3 broken by lower index.
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(MetricsTest, TopKIndicesClampsToSize) {
  const std::vector<float> scores = {0.3f, 0.1f};
  EXPECT_EQ(TopKIndices(scores, 10).size(), 2u);
}

}  // namespace
}  // namespace prism

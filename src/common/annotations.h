// Portable thread-safety annotations (clang -Wthread-safety).
//
// Under clang these expand to the capability attributes that drive the
// static thread-safety analysis: a field tagged PRISM_GUARDED_BY(mu_) can
// only be touched while mu_ is held, a method tagged PRISM_REQUIRES(mu_)
// can only be called with mu_ held, and the analysis proves it at compile
// time. Under any other compiler (g++ builds this tree too) they expand to
// nothing, so the annotations are pure documentation there.
//
// The annotated primitives live in src/common/mutex.h; the conventions —
// which fields to tag, how `…Locked()` helpers are named — are documented
// in docs/ARCHITECTURE.md ("Static analysis & concurrency contracts").
#ifndef PRISM_SRC_COMMON_ANNOTATIONS_H_
#define PRISM_SRC_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PRISM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRISM_THREAD_ANNOTATION(x)  // no-op
#endif

// On a class: instances are lockable capabilities (prism::Mutex).
#define PRISM_CAPABILITY(x) PRISM_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires a capability in its constructor and
// releases it in its destructor (prism::MutexLock).
#define PRISM_SCOPED_CAPABILITY PRISM_THREAD_ANNOTATION(scoped_lockable)

// On a field: may only be read or written while the named mutex is held.
#define PRISM_GUARDED_BY(x) PRISM_THREAD_ANNOTATION(guarded_by(x))

// On a pointer field: the pointed-to data (not the pointer itself) is
// protected by the named mutex.
#define PRISM_PT_GUARDED_BY(x) PRISM_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: callers must hold the named mutex(es). The convention for
// private helpers that assume the lock is a `…Locked()` suffix plus this
// annotation.
#define PRISM_REQUIRES(...) PRISM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires the named mutex(es) and returns with them held.
#define PRISM_ACQUIRE(...) PRISM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// On a function: releases the named mutex(es).
#define PRISM_RELEASE(...) PRISM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: acquires the mutex iff it returns `b`.
#define PRISM_TRY_ACQUIRE(...) PRISM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On a function: callers must NOT hold the named mutex(es) — documents
// self-deadlock hazards (e.g. a callback invoked without the lock).
#define PRISM_EXCLUDES(...) PRISM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the named capability without
// acquiring it (prism::Mutex::native()).
#define PRISM_RETURN_CAPABILITY(x) PRISM_THREAD_ANNOTATION(lock_returned(x))

// Opts a function out of the analysis. Reserved for genuine analysis
// boundaries (code the analysis cannot model, such as lock ownership handed
// across an ABI seam); every use carries a comment saying why. Grep for it
// in review — new uses should be rare to never.
#define PRISM_NO_TSA PRISM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PRISM_SRC_COMMON_ANNOTATIONS_H_

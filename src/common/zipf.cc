#include "src/common/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace prism {

ZipfSampler::ZipfSampler(size_t n, double skew) : skew_(skew) {
  PRISM_CHECK_GT(n, 0u);
  PRISM_CHECK_GE(skew, 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = sum;
  }
  for (double& v : cdf_) {
    v /= sum;
  }
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace prism

// The project mutex: std::mutex dressed in thread-safety annotations.
//
// Every lock in src/ is a prism::Mutex (the project linter bans the raw std
// tokens outside this header), so clang's -Wthread-safety analysis sees
// every acquire/release in the tree and can prove GUARDED_BY/REQUIRES
// contracts at compile time. See src/common/annotations.h for the macro set
// and docs/ARCHITECTURE.md for the conventions.
//
// Waiting is deliberately loop-style: CondVar::Wait parks exactly once and
// the caller re-checks its condition in a `while` loop. A predicate-lambda
// API would move the condition check into a closure the analysis cannot
// attribute a capability to; the explicit loop keeps every guarded read
// inside the annotated function. Code on the virtual timeline parks on
// ClockCondVar (src/common/clock.h), which follows the same shape.
#ifndef PRISM_SRC_COMMON_MUTEX_H_
#define PRISM_SRC_COMMON_MUTEX_H_

// prism-lint: allow(wall-clock): this header IS the sanctioned wrapper over
// the native primitives; everything else in src/ goes through it.
#include <condition_variable>
#include <mutex>

#include "src/common/annotations.h"

namespace prism {

// The raw standard primitives, aliased so the handful of places that must
// interoperate with them (condition-variable internals here and in
// clock.cc) never spell the banned tokens.
using NativeMutex = std::mutex;
using NativeMutexLock = std::unique_lock<std::mutex>;

class PRISM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PRISM_ACQUIRE() { mu_.lock(); }
  void Unlock() PRISM_RELEASE() { mu_.unlock(); }
  bool TryLock() PRISM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The underlying std::mutex, for condition-variable plumbing only.
  NativeMutex& native() PRISM_RETURN_CAPABILITY(this) { return mu_; }

 private:
  NativeMutex mu_;
};

// RAII scope lock. Holds a NativeMutexLock internally so condition-variable
// internals (CondVar, SimClock) can park on the owned lock via
// native_lock(); plain callers never touch that.
class PRISM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PRISM_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() PRISM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // The owned lock, for handing to a condition variable's wait.
  NativeMutexLock& native_lock() { return lock_; }

 private:
  NativeMutexLock lock_;
};

// Plain condition variable over a prism::Mutex — the device/compute-domain
// waiter (worker pools, prefetchers). Anything whose wakeup instant should
// exist on the virtual timeline parks on a ClockCondVar instead.
//
// Wait parks once and returns after a notify or a spurious wake; callers
// loop:  while (!cond) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PRISM_REQUIRES(mu) {
    NativeMutexLock lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Still locked; ownership returns to the caller.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // prism-lint: allow(wall-clock): CondVar IS the sanctioned untimed waiter
  // wrapper; it adds no time source (no timed waits — deadlines belong on
  // ClockCondVar so they land on the virtual timeline).
  std::condition_variable cv_;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_MUTEX_H_

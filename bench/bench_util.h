// Shared plumbing for the paper-reproduction bench binaries.
//
// Each binary regenerates one table/figure of the paper's evaluation (see
// DESIGN.md §3). Conventions: the *global* MemoryTracker is reset before each
// measured run so peak/avg/timeline reflect exactly that run; runners are
// constructed fresh per run (checkpoint load time is excluded via a
// post-construction tracker reset where noted).
#ifndef PRISM_BENCH_BENCH_UTIL_H_
#define PRISM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/memory_tracker.h"
#include "src/core/engine.h"
#include "src/data/dataset.h"
#include "src/data/metrics.h"
#include "src/model/synthetic.h"
#include "src/runtime/device.h"
#include "src/runtime/hf_runner.h"
#include "src/runtime/offload_runner.h"

namespace prism {

inline constexpr uint64_t kBenchSeed = 42;
inline constexpr uint64_t kDataSeed = 7;

// Paper-matching "Low"/"High" dispersion thresholds used in Figs 8/10.
inline constexpr float kThresholdLow = 0.15f;
inline constexpr float kThresholdHigh = 0.40f;

// VRAM-budget stand-in for the OOM rows of Table 3 / Fig 8: the paper's RTX
// 5070 (8 GiB) cannot hold the 4B/8B models; our budgets scale that boundary
// to the zoo (0.6B/MiniCPM/M3 fit, 4B/8B do not).
int64_t VramBudgetBytes(const DeviceProfile& device);

// Predicted resident footprint of the HF baseline (weights + embedding +
// batch activations) — used to declare OOM without running.
int64_t EstimateHfPeakBytes(const ModelConfig& config, const DeviceProfile& device,
                            size_t n_candidates, size_t seq_len, Precision precision);

// Runner factories. All read checkpoints generated on demand under /tmp.
std::unique_ptr<Runner> MakeHf(const ModelConfig& config, const DeviceProfile& device,
                               Precision precision);
std::unique_ptr<Runner> MakeOffload(const ModelConfig& config, const DeviceProfile& device,
                                    Precision precision);
std::unique_ptr<PrismEngine> MakePrism(const ModelConfig& config, const DeviceProfile& device,
                                       float threshold, Precision precision);
std::unique_ptr<PrismEngine> MakePrismWith(const ModelConfig& config, PrismOptions options);

// Aggregate over a set of requests with ground truth.
struct BenchRun {
  double mean_latency_ms = 0.0;
  double mean_precision = 0.0;   // Precision@K vs planted ground truth.
  double peak_mib = 0.0;         // Peak tracked memory during the runs.
  double avg_mib = 0.0;          // Time-weighted average.
  double mean_candidate_layers = 0.0;
  double io_stall_ms = 0.0;
  std::vector<std::vector<size_t>> topks;
};

struct BenchCase {
  RerankRequest request;
  std::vector<size_t> relevant;
};

std::vector<BenchCase> MakeCases(const ModelConfig& config, const std::string& dataset,
                                 size_t queries, size_t candidates, size_t k);

// Runs all cases through `runner`, tracking memory on the global tracker.
BenchRun RunCases(Runner* runner, const std::vector<BenchCase>& cases);

double MiB(int64_t bytes);

// Splits a comma-separated flag value, skipping empty items ("a,,b" → a, b).
std::vector<std::string> SplitCsv(const std::string& csv);

// Resets the global tracker, then builds the runner, so construction-time
// claims (resident weights, embedding table/cache) are part of the measured
// footprint. Never reset the tracker while a runner is alive — its
// destructor would release untracked claims.
template <typename Factory>
auto FreshRunner(Factory&& factory) {
  MemoryTracker::Global().Reset();
  return factory();
}

// Writes one formatted row: name then columns.
void PrintHeader(const std::string& title);

}  // namespace prism

#endif  // PRISM_BENCH_BENCH_UTIL_H_

// Online dispersion-threshold calibration (paper §4.1, second half).
//
// "We sample requests at a frequency and log their top-K results. When the
//  device is idle, we re-execute full inference (without pruning) to obtain
//  the ground truth. We then compute the precision of the sampled requests
//  against the ground truth. If the precision falls below the target
//  precision, we raise the dispersion threshold for precision; otherwise, we
//  lower it for performance."
//
// OnlineCalibrator wraps a PrismEngine: every `sample_every`-th request is
// logged together with PRISM's top-K; RunIdleCycle() (invoked whenever the
// host application is idle) replays the logged requests through a
// full-inference reference, measures agreement, and nudges the engine's
// threshold multiplicatively in the indicated direction. The threshold write
// is safe against in-flight requests (the engine stores it atomically), and
// the sample log is mutex-guarded so RunIdleCycle may overlap a serving
// thread; serving itself stays one-request-at-a-time (RerankService's
// SerialScheduler).
#ifndef PRISM_SRC_CORE_ONLINE_CALIBRATOR_H_
#define PRISM_SRC_CORE_ONLINE_CALIBRATOR_H_

#include <deque>
#include <memory>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/core/engine.h"

namespace prism {

struct OnlineCalibratorOptions {
  double target_precision = 0.95;   // Top-K agreement with full inference.
  size_t sample_every = 4;          // Log every Nth request.
  size_t max_samples = 16;          // Bounded log (oldest evicted).
  float raise_factor = 1.30f;       // Threshold multiplier when below target.
  float lower_factor = 0.90f;       // Threshold multiplier when above target.
  float min_threshold = 0.02f;
  float max_threshold = 1.5f;
};

class OnlineCalibrator : public Runner {
 public:
  // `engine` serves traffic; `reference` provides ground truth at idle time
  // (typically the same checkpoint with pruning disabled). Neither is owned.
  OnlineCalibrator(PrismEngine* engine, Runner* reference, OnlineCalibratorOptions options);

  // Serves the request through the engine, sampling per options.
  RerankResult Rerank(const RerankRequest& request) override;
  std::string name() const override { return "PRISM (online-calibrated)"; }

  // Processes up to `budget` logged samples against full inference and
  // adjusts the threshold. Returns the measured agreement (NaN if the log
  // was empty).
  double RunIdleCycle(size_t budget = SIZE_MAX);

  float current_threshold() const { return engine_->dispersion_threshold(); }
  size_t pending_samples() const;
  size_t requests_served() const;

 private:
  struct Sample {
    RerankRequest request;
    std::vector<size_t> topk;
  };

  PrismEngine* engine_;
  Runner* reference_;
  OnlineCalibratorOptions options_;
  mutable Mutex mu_;
  std::deque<Sample> log_ PRISM_GUARDED_BY(mu_);
  size_t served_ PRISM_GUARDED_BY(mu_) = 0;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_ONLINE_CALIBRATOR_H_

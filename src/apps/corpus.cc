#include "src/apps/corpus.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/zipf.h"
#include "src/model/pair_encoder.h"

namespace prism {

namespace {
uint64_t PairKey(size_t query_idx, size_t doc_id) {
  return (static_cast<uint64_t>(query_idx) << 32) | static_cast<uint64_t>(doc_id);
}
}  // namespace

SearchCorpus::SearchCorpus(DatasetProfile profile, const ModelConfig& model, size_t n_queries,
                           size_t relevant_per_query, size_t background_docs, uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  const ZipfSampler zipf(model.vocab_size - kFirstWordToken, profile_.vocab_skew);
  Rng rng(MixSeed(seed, 0xC0));
  auto draw = [&](Rng& r, size_t n) {
    std::vector<uint32_t> tokens;
    tokens.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tokens.push_back(kFirstWordToken + static_cast<uint32_t>(zipf.Sample(r)));
    }
    return tokens;
  };

  // Background documents.
  for (size_t i = 0; i < background_docs; ++i) {
    docs_.push_back(draw(rng, profile_.doc_terms));
  }

  // Queries with planted relevant documents appended to the corpus.
  for (size_t q = 0; q < n_queries; ++q) {
    CorpusQuery query;
    query.tokens = draw(rng, profile_.query_terms);
    for (size_t r = 0; r < relevant_per_query; ++r) {
      std::vector<uint32_t> doc = draw(rng, profile_.doc_terms);
      const float grade = static_cast<float>(
          std::clamp(0.5 + profile_.grade_gap / 2 + 0.1 * rng.NextGaussian(), 0.5, 1.0));
      // Copy query terms in, proportional to the grade.
      const size_t overlap = static_cast<size_t>(
          std::lround(static_cast<double>(grade) * 0.5 * static_cast<double>(doc.size())));
      for (size_t i = 0; i < overlap; ++i) {
        doc[rng.NextBelow(doc.size())] = query.tokens[rng.NextBelow(query.tokens.size())];
      }
      const size_t doc_id = docs_.size();
      docs_.push_back(std::move(doc));
      grades_[PairKey(q, doc_id)] = grade;
      query.relevant.push_back(doc_id);
    }
    queries_.push_back(std::move(query));
  }
}

float SearchCorpus::Grade(size_t query_idx, size_t doc_id) const {
  const auto it = grades_.find(PairKey(query_idx, doc_id));
  return it == grades_.end() ? 0.0f : it->second;
}

float SearchCorpus::PlantedRelevance(size_t query_idx, size_t doc_id) const {
  PRISM_CHECK_LT(query_idx, queries_.size());
  PRISM_CHECK_LT(doc_id, docs_.size());
  const float grade = Grade(query_idx, doc_id);
  const std::vector<uint32_t>& query = queries_[query_idx].tokens;
  const std::vector<uint32_t>& doc = docs_[doc_id];
  size_t shared = 0;
  for (uint32_t qt : query) {
    if (std::find(doc.begin(), doc.end(), qt) != doc.end()) {
      ++shared;
    }
  }
  const double overlap = static_cast<double>(shared) / static_cast<double>(query.size());
  Rng noise_rng(MixSeed(seed_, PairKey(query_idx, doc_id)));
  const double r = 0.7 * grade + 0.2 * overlap + profile_.grade_noise * noise_rng.NextGaussian() +
                   0.05;
  return static_cast<float>(std::clamp(r, 0.0, 1.0));
}

RerankRequest SearchCorpus::MakeRequest(size_t query_idx, const std::vector<size_t>& candidates,
                                        size_t k) const {
  RerankRequest request;
  request.query = queries_[query_idx].tokens;
  for (size_t doc_id : candidates) {
    request.docs.push_back(docs_[doc_id]);
    request.planted_r.push_back(PlantedRelevance(query_idx, doc_id));
  }
  request.k = k;
  return request;
}

}  // namespace prism

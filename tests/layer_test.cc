#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "src/model/embedding.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"
#include "src/model/synthetic.h"
#include "src/model/weights.h"
#include "src/storage/blob_file.h"
#include "tests/test_util.h"

namespace prism {
namespace {

SsdConfig Unthrottled() {
  SsdConfig config;
  config.throttle = false;
  return config;
}

// Loads everything needed to run layers of a test checkpoint in memory, at
// every storage precision.
struct LoadedModel {
  ModelConfig config;
  std::unique_ptr<BlobFileReader> reader;
  std::unique_ptr<FullEmbeddingTable> embedding;
  // Indexed by static_cast<size_t>(Precision), then layer.
  std::array<std::vector<std::vector<uint8_t>>, 4> layers;
  HeadWeights head;
  MemoryTracker tracker;
};

std::unique_ptr<LoadedModel> Load(ModelArch arch) {
  auto m = std::make_unique<LoadedModel>();
  m->config = TestModel(arch);
  auto reader = BlobFileReader::Open(TestCheckpoint(m->config), Unthrottled());
  PRISM_CHECK(reader.ok());
  m->reader = std::move(reader).value();
  m->embedding = std::make_unique<FullEmbeddingTable>(m->config, m->reader.get(), &m->tracker);
  for (const Precision precision : kAllPrecisions) {
    auto r = precision == Precision::kFp32
                 ? nullptr
                 : std::move(BlobFileReader::Open(TestCheckpoint(m->config, precision),
                                                  Unthrottled()))
                       .value();
    BlobFileReader* src = r != nullptr ? r.get() : m->reader.get();
    auto& dst = m->layers[static_cast<size_t>(precision)];
    for (size_t layer = 0; layer < m->config.n_layers; ++layer) {
      std::vector<uint8_t> blob(static_cast<size_t>(src->BlobSize(LayerBlobIndex(layer))));
      PRISM_CHECK(src->ReadBlob(LayerBlobIndex(layer), blob).ok());
      dst.push_back(std::move(blob));
    }
  }
  std::vector<uint8_t> head(static_cast<size_t>(m->reader->BlobSize(HeadBlobIndex(m->config))));
  PRISM_CHECK(m->reader->ReadBlob(HeadBlobIndex(m->config), head).ok());
  m->head = ParseHeadBlob(m->config, head);
  return m;
}

Tensor EmbedBatch(LoadedModel* m, const RerankRequest& request, size_t seq_len) {
  Tensor hidden(request.docs.size() * seq_len, m->config.hidden, MemCategory::kHiddenStates,
                &m->tracker);
  for (size_t c = 0; c < request.docs.size(); ++c) {
    const PairInput pair =
        BuildPairInput(m->config, request.query, request.docs[c], request.planted_r[c], seq_len);
    EmbedPairInto(m->config, m->embedding.get(), m->head, pair, c, seq_len, &hidden);
  }
  return hidden;
}

std::vector<float> ForwardAll(LoadedModel* m, Tensor* hidden, size_t seq_len,
                              Precision precision = Precision::kFp32) {
  LayerScratch scratch = LayerScratch::Make(m->config, hidden->rows(), seq_len, &m->tracker);
  const auto& blobs = m->layers[static_cast<size_t>(precision)];
  for (size_t layer = 0; layer < m->config.n_layers; ++layer) {
    const AnyLayerView view = ParseAnyLayerBlob(m->config, blobs[layer], precision);
    LayerForward(m->config, view, seq_len, hidden, &scratch);
  }
  std::vector<float> scores;
  ScoreChunk(m->config, m->head, *hidden, seq_len, &scores);
  return scores;
}

// Per-precision score tolerance vs fp32 for TestModel-sized layers: fp16 is
// nearly exact, int8 a little looser, w4 the loosest (calibrated once against
// the planted-relevance model, with ~3× headroom over observed drift).
float ScoreTolerance(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return 0.01f;
    case Precision::kInt8:
      return 0.05f;
    default:
      return 0.15f;
  }
}

class LayerArchTest : public ::testing::TestWithParam<ModelArch> {};

TEST_P(LayerArchTest, ForwardIsDeterministic) {
  auto m = Load(GetParam());
  const RerankRequest request = TestRequest(m->config, 6, 2);
  const size_t seq_len = ChooseSeqLen(m->config, request.query, request.docs);
  Tensor h1 = EmbedBatch(m.get(), request, seq_len);
  Tensor h2 = EmbedBatch(m.get(), request, seq_len);
  const auto s1 = ForwardAll(m.get(), &h1, seq_len);
  const auto s2 = ForwardAll(m.get(), &h2, seq_len);
  EXPECT_EQ(s1, s2);
}

TEST_P(LayerArchTest, BatchPartitioningDoesNotChangeScores) {
  // Forward 6 candidates as one batch vs. two batches of 3: per-candidate
  // attention means scores must be bit-identical — the invariant that makes
  // chunked execution exact (§4.3).
  auto m = Load(GetParam());
  const RerankRequest request = TestRequest(m->config, 6, 2);
  const size_t seq_len = ChooseSeqLen(m->config, request.query, request.docs);
  Tensor whole = EmbedBatch(m.get(), request, seq_len);
  const auto s_whole = ForwardAll(m.get(), &whole, seq_len);

  std::vector<float> s_split;
  for (size_t half = 0; half < 2; ++half) {
    RerankRequest sub;
    sub.query = request.query;
    sub.k = request.k;
    for (size_t c = half * 3; c < half * 3 + 3; ++c) {
      sub.docs.push_back(request.docs[c]);
      sub.planted_r.push_back(request.planted_r[c]);
    }
    Tensor part = EmbedBatch(m.get(), sub, seq_len);
    const auto s = ForwardAll(m.get(), &part, seq_len);
    s_split.insert(s_split.end(), s.begin(), s.end());
  }
  ASSERT_EQ(s_whole.size(), s_split.size());
  for (size_t i = 0; i < s_whole.size(); ++i) {
    EXPECT_EQ(s_whole[i], s_split[i]) << "candidate " << i;
  }
}

TEST_P(LayerArchTest, ScoresAreProbabilities) {
  auto m = Load(GetParam());
  const RerankRequest request = TestRequest(m->config, 8, 2);
  const size_t seq_len = ChooseSeqLen(m->config, request.query, request.docs);
  Tensor hidden = EmbedBatch(m.get(), request, seq_len);
  const auto scores = ForwardAll(m.get(), &hidden, seq_len);
  for (float s : scores) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_P(LayerArchTest, ReducedPrecisionScoresCloseToF32) {
  auto m = Load(GetParam());
  const RerankRequest request = TestRequest(m->config, 8, 2);
  const size_t seq_len = ChooseSeqLen(m->config, request.query, request.docs);
  Tensor h1 = EmbedBatch(m.get(), request, seq_len);
  const auto f32 = ForwardAll(m.get(), &h1, seq_len);
  for (const Precision precision :
       {Precision::kFp16, Precision::kInt8, Precision::kW4}) {
    Tensor h2 = EmbedBatch(m.get(), request, seq_len);
    const auto reduced = ForwardAll(m.get(), &h2, seq_len, precision);
    for (size_t i = 0; i < f32.size(); ++i) {
      EXPECT_NEAR(f32[i], reduced[i], ScoreTolerance(precision))
          << PrecisionName(precision) << " candidate " << i;
    }
  }
}

TEST_P(LayerArchTest, PlantedRelevanceDrivesScores) {
  // Two candidates with identical text but extreme planted relevance must
  // separate decisively after the full forward pass.
  auto m = Load(GetParam());
  RerankRequest request;
  request.query = {40, 41, 42, 43};
  request.docs = {std::vector<uint32_t>{60, 61, 62, 63, 64, 65},
                  std::vector<uint32_t>{60, 61, 62, 63, 64, 65}};
  request.planted_r = {0.95f, 0.05f};
  request.k = 1;
  const size_t seq_len = ChooseSeqLen(m->config, request.query, request.docs);
  Tensor hidden = EmbedBatch(m.get(), request, seq_len);
  const auto scores = ForwardAll(m.get(), &hidden, seq_len);
  EXPECT_GT(scores[0], scores[1] + 0.2f);
}

INSTANTIATE_TEST_SUITE_P(Archs, LayerArchTest,
                         ::testing::Values(ModelArch::kDecoderOnly, ModelArch::kEncoderOnly));

TEST(LayerScratchTest, BytesForMatchesAllocation) {
  const ModelConfig config = TestModel();
  MemoryTracker tracker;
  const size_t rows = 4 * 16;
  const LayerScratch scratch = LayerScratch::Make(config, rows, 16, &tracker);
  (void)scratch;
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kActivations),
            LayerScratch::BytesFor(config, rows, 16));
}

TEST(LayerScratchTest, EncoderScratchSmaller) {
  const ModelConfig dec = TestModel(ModelArch::kDecoderOnly);
  const ModelConfig enc = TestModel(ModelArch::kEncoderOnly);
  EXPECT_GT(LayerScratch::BytesFor(dec, 64, 16), LayerScratch::BytesFor(enc, 64, 16));
}

}  // namespace
}  // namespace prism

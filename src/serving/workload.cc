#include "src/serving/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "src/common/check.h"
#include "src/common/percentile.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/data/dataset.h"

namespace prism {

namespace {

// Captures per-request rerank status and admission wait without changing
// the result the pipeline sees. One instance per ScenarioHarness::Run call,
// so no synchronization is needed.
class StatusProbe final : public Runner {
 public:
  explicit StatusProbe(Runner* inner) : inner_(inner) {}

  RerankResult Rerank(const RerankRequest& request) override {
    RerankResult result = inner_->Rerank(request);
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      shed_ = true;
    } else if (!result.status.ok()) {
      error_ = true;
    }
    queue_wait_ms_ = std::max(queue_wait_ms_, result.stats.queue_wait_ms);
    return result;
  }

  std::string name() const override { return inner_->name(); }

  bool shed() const { return shed_; }
  bool error() const { return error_; }
  double queue_wait_ms() const { return queue_wait_ms_; }

 private:
  Runner* inner_;
  bool shed_ = false;
  bool error_ = false;
  double queue_wait_ms_ = 0.0;
};

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kFileSearch:
      return "file_search";
    case ScenarioKind::kRag:
      return "rag";
    case ScenarioKind::kAgentMemory:
      return "agent_memory";
    case ScenarioKind::kLcs:
      return "lcs";
  }
  return "unknown";
}

ScenarioKind ScenarioKindByName(const std::string& name) {
  for (ScenarioKind kind : AllScenarios()) {
    if (name == ScenarioKindName(kind)) {
      return kind;
    }
  }
  PRISM_CHECK_MSG(false, ("unknown scenario: " + name).c_str());
  return ScenarioKind::kFileSearch;
}

std::vector<ScenarioKind> AllScenarios() {
  return {ScenarioKind::kFileSearch, ScenarioKind::kRag, ScenarioKind::kAgentMemory,
          ScenarioKind::kLcs};
}

ScenarioHarness::ScenarioHarness(ScenarioKind kind, const ModelConfig& model,
                                 ScenarioOptions options)
    : kind_(kind), options_(options) {
  PRISM_CHECK_GT(options_.n_queries, 0u);
  switch (kind_) {
    case ScenarioKind::kFileSearch: {
      corpus_ = std::make_unique<SearchCorpus>(DatasetByName("wikipedia"), model,
                                               options_.n_queries, options_.relevant_per_query,
                                               options_.background_docs, options_.seed);
      file_search_ = std::make_unique<FileSearchApp>(corpus_.get(), /*per_source=*/10,
                                                     /*embed_dim=*/48, options_.seed);
      n_queries_ = corpus_->queries().size();
      break;
    }
    case ScenarioKind::kRag: {
      corpus_ = std::make_unique<SearchCorpus>(DatasetByName("beir-nq"), model,
                                               options_.n_queries, options_.relevant_per_query,
                                               options_.background_docs, options_.seed);
      RagOptions rag_options;
      rag_options.k = options_.k;
      rag_options.llm = options_.llm;
      rag_ = std::make_unique<RagPipeline>(corpus_.get(), rag_options, options_.seed);
      n_queries_ = corpus_->queries().size();
      break;
    }
    case ScenarioKind::kAgentMemory: {
      AgentWorkloadProfile profile = VideoWorkload();
      profile.n_tasks = options_.n_queries;
      profile.steps_per_task = options_.agent_steps_per_task;
      profile.env_step_ms = options_.agent_env_step_ms;
      profile.vlm_prompt_tokens = options_.agent_vlm_prompt_tokens;
      profile.vlm_new_tokens = options_.agent_vlm_new_tokens;
      agent_ = std::make_unique<AgentMemoryApp>(profile, model, options_.seed);
      n_queries_ = agent_->n_tasks();
      break;
    }
    case ScenarioKind::kLcs: {
      LcsOptions lcs_options;
      lcs_options.n_segments = options_.lcs_segments;
      lcs_options.relevant_segments = options_.lcs_relevant;
      lcs_options.k = options_.k;
      lcs_options.llm = options_.llm;
      lcs_ = std::make_unique<LcsApp>(lcs_options, model, options_.seed);
      n_queries_ = options_.n_queries;
      break;
    }
  }
  PRISM_CHECK_GT(n_queries_, 0u);
}

ScenarioOutcome ScenarioHarness::Run(size_t query_idx, Runner* runner) const {
  StatusProbe probe(runner);
  const size_t q = query_idx % n_queries_;
  ScenarioOutcome outcome;
  switch (kind_) {
    case ScenarioKind::kFileSearch: {
      const FileSearchResult result = file_search_->Search(q, options_.k, &probe);
      outcome.selection = result.top_docs;
      outcome.quality = result.precision;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kRag: {
      const RagResult result = rag_->Query(q, &probe);
      outcome.selection = result.context_docs;
      outcome.quality = result.accuracy;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kAgentMemory: {
      const AgentTaskResult result = agent_->RunTask(q, &probe);
      outcome.selection = result.picks;
      outcome.quality = result.success ? 1.0 : 0.0;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kLcs: {
      const LcsResult result = lcs_->Answer(q, &probe);
      outcome.selection = result.chosen;
      outcome.quality = result.precision;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
  }
  outcome.shed = probe.shed();
  outcome.error = probe.error();
  outcome.served = !probe.shed() && !probe.error();
  outcome.queue_wait_ms = probe.queue_wait_ms();
  return outcome;
}

RerankResult TaggingRunner::Rerank(const RerankRequest& request) {
  RerankRequest tagged = request;
  tagged.priority = priority_;
  tagged.deadline_ms = deadline_ms_;
  return inner_->Rerank(tagged);
}

std::vector<std::vector<size_t>> BaselineSelections(const ScenarioHarness& scenario,
                                                    Runner* runner) {
  std::vector<std::vector<size_t>> selections;
  selections.reserve(scenario.n_queries());
  for (size_t q = 0; q < scenario.n_queries(); ++q) {
    ScenarioOutcome outcome = scenario.Run(q, runner);
    PRISM_CHECK_MSG(outcome.served, "baseline request was not served");
    selections.push_back(std::move(outcome.selection));
  }
  return selections;
}

void WorkloadReport::AttachServingStats(const ServiceStats& stats) {
  embed_hits = stats.embed_hits;
  embed_misses = stats.embed_misses;
  embed_miss_bytes = stats.embed_miss_bytes;
  embed_hit_rate = stats.EmbedHitRate();
}

void WorkloadReport::AttachCacheStats(const ResultCacheStats& stats) {
  cache_lookups = stats.lookups;
  cache_hits = stats.hits + stats.similarity_hits;
  cache_coalesced = stats.coalesced;
  cache_shed_waiting = stats.shed_waiting;
  cache_hit_rate = stats.HitRate();
}

std::string WorkloadReport::SummaryJson() const {
  char buf[256];
  std::string json = "{";
  const auto add_size = [&](const char* key, size_t value, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%zu%s", key, value, comma ? "," : "");
    json += buf;
  };
  const auto add_double = [&](const char* key, double value, bool comma = true) {
    // %.17g round-trips a double exactly: any bit difference between two
    // runs surfaces as a byte difference here.
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g%s", key, value, comma ? "," : "");
    json += buf;
  };
  add_size("requests", requests);
  add_size("served", served);
  add_size("shed", shed);
  add_size("errors", errors);
  add_size("mismatches", mismatches);
  add_double("wall_seconds", wall_seconds);
  add_double("requests_per_sec", requests_per_sec);
  add_double("served_per_sec", served_per_sec);
  add_double("p50_ms", p50_ms);
  add_double("p99_ms", p99_ms);
  add_double("mean_ms", mean_ms);
  add_double("max_ms", max_ms);
  add_double("shed_fraction", shed_fraction);
  add_double("slo_attainment", slo_attainment);
  add_double("mean_quality", mean_quality);
  add_double("mean_queue_wait_ms", mean_queue_wait_ms);
  add_size("cache_lookups", cache_lookups);
  add_size("cache_hits", cache_hits);
  add_size("cache_coalesced", cache_coalesced);
  add_size("cache_shed_waiting", cache_shed_waiting);
  add_double("cache_hit_rate", cache_hit_rate);
  const auto add_int64 = [&](const char* key, int64_t value) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%lld,", key, static_cast<long long>(value));
    json += buf;
  };
  add_int64("embed_hits", embed_hits);
  add_int64("embed_misses", embed_misses);
  add_int64("embed_miss_bytes", embed_miss_bytes);
  add_double("embed_hit_rate", embed_hit_rate);
  json += "\"selections\":[";
  for (size_t q = 0; q < selections.size(); ++q) {
    json += q == 0 ? "[" : ",[";
    for (size_t i = 0; i < selections[q].size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : ",", selections[q][i]);
      json += buf;
    }
    json += "]";
  }
  json += "],\"statuses\":\"" + statuses + "\"}";
  return json;
}

WorkloadReport RunWorkload(const ScenarioHarness& scenario, Runner* runner,
                           const WorkloadOptions& options,
                           const std::vector<std::vector<size_t>>* baseline) {
  PRISM_CHECK_GT(options.clients, 0u);
  PRISM_CHECK_GT(options.requests, 0u);
  if (baseline != nullptr) {
    PRISM_CHECK_EQ(baseline->size(), scenario.n_queries());
  }
  Clock* clock = ResolveClock(options.clock);
  const size_t total = options.warmup + options.requests;

  struct Record {
    size_t qid = 0;
    bool served = false;
    bool shed = false;
    bool error = false;
    double issue_ms = 0.0;  // Absolute clock instant the request counts from.
    double done_ms = 0.0;   // Absolute clock instant the request completed.
    double latency_ms = 0.0;
    double quality = 0.0;
    double queue_wait_ms = 0.0;
    std::vector<size_t> selection;
  };
  std::vector<Record> records(total);

  // Open loop: one aggregate Poisson arrival process, scheduled up front —
  // the timeline is a pure function of the seed (see the seed-to-schedule
  // contract in workload.h).
  std::vector<double> arrival_ms;
  if (options.arrival_hz > 0.0) {
    arrival_ms.resize(total);
    Rng rng(MixSeed(options.seed, 0xA221));
    const double mean_gap_ms = 1000.0 / options.arrival_hz;
    double t = 0.0;
    for (size_t i = 0; i < total; ++i) {
      // Inverse-CDF exponential; NextDouble is in [0, 1), so 1 - u > 0.
      t += -mean_gap_ms * std::log(1.0 - rng.NextDouble());
      arrival_ms[i] = t;
    }
  }

  // Query-id schedule, pre-generated per request index: request i asks
  // qids[i] regardless of which client thread issues it or when.
  const ZipfSampler popularity(scenario.n_queries(), options.zipf_skew);
  std::vector<size_t> qids(total);
  {
    Rng rng(MixSeed(options.seed, 0x51D5));
    for (size_t i = 0; i < total; ++i) {
      qids[i] = static_cast<size_t>(popularity.Sample(rng));
    }
  }

  const size_t high_clients = static_cast<size_t>(
      std::lround(options.high_fraction * static_cast<double>(options.clients)));
  const double start_ms = clock->NowMs();

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  // Reserve every client's simulation membership before any thread starts
  // (no-op on the wall clock): an early-starting client must not advance
  // virtual time past arrival tags its still-starting peers own.
  clock->ExpectParticipants(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      // Client threads are simulation participants (no-op on wall clock):
      // the SimClock advances only when every one of them is blocked.
      const ClockMembership membership(clock);
      const int priority = c < high_clients ? options.high_priority : 0;
      TaggingRunner tagged(runner, priority, options.deadline_ms);
      // A client-unique sub-millisecond stagger keeps same-instant issues
      // apart in virtual time, so queue tickets — and with them batch
      // composition — are deterministic. Invisible at wall-clock scale.
      const double stagger_ms = static_cast<double>(c + 1) * 1e-3;
      // Static partition: client c owns request indexes ≡ c (mod clients).
      // Unlike a shared work-claiming counter, the request → client mapping
      // (and so each request's priority class) is interleaving-free.
      for (size_t i = c; i < total; i += options.clients) {
        Record& record = records[i];
        if (!arrival_ms.empty()) {
          const double scheduled_ms = start_ms + arrival_ms[i];
          double target_ms = scheduled_ms;
          if (clock->NowMs() >= target_ms) {
            // Behind schedule: issue now (plus the stagger — a client
            // catching up collides with other clients' instants otherwise).
            target_ms = clock->NowMs() + stagger_ms;
          }
          clock->SleepUntil(target_ms);
          // Open-loop latency runs from the *scheduled* arrival: time spent
          // waiting for a free client thread is queueing delay, not a
          // measurement artifact to hide.
          record.issue_ms = scheduled_ms;
        } else {
          // Closed loop: issue as soon as the previous request completed,
          // offset by the stagger (which also spreads the first round's
          // otherwise-simultaneous client starts).
          clock->SleepFor(stagger_ms);
          record.issue_ms = clock->NowMs();
        }
        record.qid = qids[i];
        ScenarioOutcome outcome = scenario.Run(record.qid, &tagged);
        record.done_ms = clock->NowMs();
        record.latency_ms = record.done_ms - record.issue_ms;
        record.served = outcome.served;
        record.shed = outcome.shed;
        record.error = outcome.error;
        record.quality = outcome.quality;
        record.queue_wait_ms = outcome.queue_wait_ms;
        record.selection = std::move(outcome.selection);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  WorkloadReport report;
  report.requests = options.requests;
  report.selections.resize(scenario.n_queries());
  report.statuses.reserve(options.requests);
  std::vector<double> served_latencies;
  served_latencies.reserve(options.requests);
  double quality_sum = 0.0;
  double queue_wait_sum = 0.0;
  size_t within_slo = 0;
  // The measure window, from per-record instants (join-time clock reads
  // would race e.g. a carousel's linger advance): first measured issue to
  // last measured completion.
  double measure_start_ms = records[options.warmup].issue_ms;
  double measure_end_ms = measure_start_ms;
  for (size_t i = options.warmup; i < total; ++i) {
    const Record& record = records[i];
    measure_start_ms = std::min(measure_start_ms, record.issue_ms);
    measure_end_ms = std::max(measure_end_ms, record.done_ms);
    queue_wait_sum += record.queue_wait_ms;
    if (record.shed) {
      report.statuses.push_back('D');
      ++report.shed;
      continue;
    }
    if (!record.served) {
      report.statuses.push_back('E');
      ++report.errors;
      continue;
    }
    report.statuses.push_back('S');
    ++report.served;
    served_latencies.push_back(record.latency_ms);
    report.max_ms = std::max(report.max_ms, record.latency_ms);
    report.mean_ms += record.latency_ms;
    quality_sum += record.quality;
    if (options.slo_ms <= 0.0 || record.latency_ms <= options.slo_ms) {
      ++within_slo;
    }
    // Mismatch check: against the supplied baseline when given, otherwise
    // against the first served occurrence of the same query id.
    const std::vector<size_t>* reference = nullptr;
    if (baseline != nullptr) {
      reference = &(*baseline)[record.qid];
    } else if (!report.selections[record.qid].empty()) {
      reference = &report.selections[record.qid];
    }
    if (reference != nullptr && record.selection != *reference) {
      ++report.mismatches;
    }
    if (report.selections[record.qid].empty()) {
      report.selections[record.qid] = record.selection;
    }
  }
  report.wall_seconds = std::max(1e-9, (measure_end_ms - measure_start_ms) / 1e3);
  report.requests_per_sec = static_cast<double>(options.requests) / report.wall_seconds;
  report.served_per_sec = static_cast<double>(report.served) / report.wall_seconds;
  report.shed_fraction =
      static_cast<double>(report.shed) / static_cast<double>(options.requests);
  report.mean_queue_wait_ms = queue_wait_sum / static_cast<double>(options.requests);
  if (report.served > 0) {
    report.mean_ms /= static_cast<double>(report.served);
    report.mean_quality = quality_sum / static_cast<double>(report.served);
    report.slo_attainment =
        static_cast<double>(within_slo) / static_cast<double>(report.served);
    std::sort(served_latencies.begin(), served_latencies.end());
    report.p50_ms = PercentileOverSorted(served_latencies, 50.0);
    report.p99_ms = PercentileOverSorted(served_latencies, 99.0);
  }
  return report;
}

}  // namespace prism

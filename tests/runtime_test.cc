#include <gtest/gtest.h>

#include <cmath>

#include "src/data/metrics.h"
#include "src/runtime/hf_runner.h"
#include "src/runtime/offload_runner.h"
#include "tests/test_util.h"

namespace prism {
namespace {

TEST(DeviceTest, ProfilesExist) {
  EXPECT_EQ(NvidiaProfile().name, "nvidia");
  EXPECT_EQ(AppleProfile().name, "apple");
  EXPECT_GT(AppleProfile().compute_slowdown, NvidiaProfile().compute_slowdown);
  EXPECT_LT(AppleProfile().ssd.bandwidth_bytes_per_sec,
            NvidiaProfile().ssd.bandwidth_bytes_per_sec);
}

TEST(RequestTest, FromQueryCopiesEverything) {
  const ModelConfig config = TestModel();
  const SyntheticDataset data(DatasetByName("lotte"), config, 3);
  const RerankQuery q = data.MakeQuery(0, 7);
  const RerankRequest request = RerankRequest::FromQuery(q, 4);
  EXPECT_EQ(request.query, q.tokens);
  ASSERT_EQ(request.docs.size(), 7u);
  EXPECT_EQ(request.k, 4u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(request.docs[i], q.candidates[i].tokens);
    EXPECT_EQ(request.planted_r[i], q.candidates[i].planted_r);
  }
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    qckpt_ = TestCheckpoint(config_, Precision::kW4);
    request_ = TestRequest(config_, 10, 3);
  }

  ModelConfig config_;
  std::string ckpt_;
  std::string qckpt_;
  RerankRequest request_;
};

TEST_F(RunnerTest, HfAndOffloadProduceIdenticalScores) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions hopts;
  hopts.device = FastDevice();
  HfRunner hf(config_, ckpt_, hopts, &t1);
  OffloadRunnerOptions oopts;
  oopts.device = FastDevice();
  OffloadRunner off(config_, ckpt_, oopts, &t2);
  const RerankResult a = hf.Rerank(request_);
  const RerankResult b = off.Rerank(request_);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.topk, b.topk);
}

TEST_F(RunnerTest, BatchSizeDoesNotChangeScores) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions small;
  small.device = FastDevice();
  small.batch_size = 2;
  HfRunnerOptions large;
  large.device = FastDevice();
  large.batch_size = 10;
  HfRunner a(config_, ckpt_, small, &t1);
  HfRunner b(config_, ckpt_, large, &t2);
  EXPECT_EQ(a.Rerank(request_).scores, b.Rerank(request_).scores);
}

TEST_F(RunnerTest, QuantizedCloseToF32) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions f32;
  f32.device = FastDevice();
  HfRunnerOptions q4;
  q4.device = FastDevice();
  q4.precision = Precision::kW4;
  HfRunner a(config_, ckpt_, f32, &t1);
  HfRunner b(config_, qckpt_, q4, &t2);
  const RerankResult ra = a.Rerank(request_);
  const RerankResult rb = b.Rerank(request_);
  for (size_t i = 0; i < ra.scores.size(); ++i) {
    EXPECT_NEAR(ra.scores[i], rb.scores[i], 0.15f);
  }
  EXPECT_GE(TopKOverlap(ra.topk, rb.topk, request_.k), 1.0 / 3.0);
}

TEST_F(RunnerTest, HfKeepsAllWeightsResident) {
  MemoryTracker tracker;
  HfRunnerOptions opts;
  opts.device = FastDevice();
  HfRunner hf(config_, ckpt_, opts, &tracker);
  const int64_t expected =
      static_cast<int64_t>(config_.n_layers * LayerBlobBytes(config_, Precision::kFp32));
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kWeights), expected);
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kEmbedding),
            static_cast<int64_t>(config_.EmbeddingBlobBytes()));
}

TEST_F(RunnerTest, OffloadKeepsAtMostOneLayerResident) {
  MemoryTracker tracker;
  OffloadRunnerOptions opts;
  opts.device = FastDevice();
  OffloadRunner off(config_, ckpt_, opts, &tracker);
  off.Rerank(request_);
  EXPECT_LE(tracker.PeakBytes(MemCategory::kWeights),
            static_cast<int64_t>(LayerBlobBytes(config_, Precision::kFp32)));
  // After the request, no layer weights remain resident.
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kWeights), 0);
}

TEST_F(RunnerTest, OffloadReportsStreamedBytes) {
  MemoryTracker tracker;
  OffloadRunnerOptions opts;
  opts.device = FastDevice();
  opts.batch_size = 5;
  OffloadRunner off(config_, ckpt_, opts, &tracker);
  const RerankResult result = off.Rerank(request_);
  // 10 candidates in batches of 5 → every layer loaded twice.
  EXPECT_EQ(result.stats.bytes_streamed,
            static_cast<int64_t>(2 * config_.n_layers * LayerBlobBytes(config_, Precision::kFp32)));
}

TEST_F(RunnerTest, TopKSizeRespectsK) {
  MemoryTracker tracker;
  HfRunnerOptions opts;
  opts.device = FastDevice();
  HfRunner hf(config_, ckpt_, opts, &tracker);
  const RerankResult result = hf.Rerank(request_);
  EXPECT_EQ(result.topk.size(), 3u);
  EXPECT_EQ(result.stats.layers_until_done, config_.n_layers);
  EXPECT_EQ(result.stats.candidate_layers,
            static_cast<int64_t>(10 * config_.n_layers));
}

TEST_F(RunnerTest, ComputeSlowdownStretchesLatency) {
  MemoryTracker t1;
  MemoryTracker t2;
  HfRunnerOptions fast;
  fast.device = FastDevice();
  HfRunnerOptions slow;
  slow.device = FastDevice();
  slow.device.compute_slowdown = 3.0;
  HfRunner a(config_, ckpt_, fast, &t1);
  HfRunner b(config_, ckpt_, slow, &t2);
  const double t_fast = a.Rerank(request_).stats.latency_ms;
  const double t_slow = b.Rerank(request_).stats.latency_ms;
  EXPECT_GT(t_slow, t_fast * 1.8);
}

}  // namespace
}  // namespace prism

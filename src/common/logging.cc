#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace prism {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), buf);
}

}  // namespace prism

// Staged execution pipeline for the PRISM engine.
//
// PrismEngine::Rerank used to be one monolithic 350-line forwarding loop; it
// is now composed of four explicit stages operating on a per-request
// RequestContext:
//
//   ChunkPlanner ─► EmbedStage ─► LayerLoop ◄──► PruneStage
//    (geometry)     (lookup +      (stream +      (CV check, k-means,
//                    planted        forward        compact survivors,
//                    signal)        chunks)        finalize top-K)
//
// Every byte of mutable per-request state — hidden-state chunks, provisional
// scores, trace, stats, the activation scratch — lives in the context; the
// engine retains only shared immutable resources (weights, config, reader),
// bundled here as StageResources. That split is what lets the service
// front-end admit several requests at once: LayerLoop takes a *batch* of
// contexts and forwards all of them through each streamed layer, so one
// weight fetch serves every in-flight request (the paper's §3.3 global view,
// extended across requests), while pruning decisions stay per-request —
// results are bit-identical to serial execution regardless of batch size or
// thread count.
#ifndef PRISM_SRC_CORE_STAGES_H_
#define PRISM_SRC_CORE_STAGES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/pruner.h"
#include "src/model/embedding.h"
#include "src/model/layer.h"
#include "src/model/pair_encoder.h"
#include "src/model/weights.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"
#include "src/storage/blob_file.h"
#include "src/storage/hidden_spill.h"

namespace prism {

struct PrismOptions {
  DeviceProfile device = NvidiaProfile();

  // §4.1 progressive cluster pruning.
  bool pruning = true;
  float dispersion_threshold = 0.35f;
  bool prune_winners = true;  // false → exact-rank mode (Discussion §7).
  int kmeans_max_k = 4;

  // §4.2 overlapped layer streaming (false → all layers resident, HF-style).
  bool streaming = true;

  // §4.3 chunked execution.
  bool chunked = true;
  size_t chunk_candidates = 0;  // 0 = plan from device.activation_budget.
  bool offload_hidden = false;  // Dynamic hidden-state offloading.

  // §4.4 embedding table caching (false → full table resident).
  bool embed_cache = true;
  double embed_cache_fraction = 0.10;
  // Pool-level sharing seam (ServicePoolOptions::share_embed_cache): when
  // non-null and embed_cache is on, the engine uses this externally-owned
  // cache instead of building a private one. The pointee must outlive the
  // engine; it is internally synchronised, so any number of engines may
  // share it.
  EmbeddingCache* shared_embed_cache = nullptr;

  // Layer-blob storage precision; must match the checkpoint's tags. Reduced
  // tiers stream proportionally fewer SSD bytes per pass ("PRISM Quant" etc).
  Precision precision = Precision::kFp32;

  // Trace mode: records per-layer scores/clusters for every candidate and
  // disables pruning (used by the Fig-2 sparsity analysis).
  bool trace = false;

  uint64_t seed = 42;
};

// Per-layer record captured in trace mode (and, lightly, during pruning).
struct LayerTraceEntry {
  size_t layer = 0;
  size_t active = 0;
  double cv = 0.0;
  bool prune_triggered = false;
  size_t selected = 0;
  size_t dropped = 0;
  // Indexed by original candidate id; NaN when the candidate was inactive.
  std::vector<float> scores;
  // Cluster id per original candidate (-1 when unclustered/inactive).
  std::vector<int> clusters;
};

// Shared immutable engine resources handed to every stage. All pointees are
// owned by the engine and outlive any request; the mutable ones
// (EmbeddingCache, SpillPool, MemoryTracker) are internally synchronised so
// stages may touch them from concurrent requests.
struct StageResources {
  const ModelConfig* config = nullptr;
  const PrismOptions* options = nullptr;
  MemoryTracker* tracker = nullptr;
  BlobFileReader* reader = nullptr;
  EmbeddingSource* embedding = nullptr;
  EmbeddingCache* cache = nullptr;  // Null when embed_cache is off.
  const HeadWeights* head = nullptr;
  // Resident layer blobs when streaming is off (empty otherwise).
  const std::vector<std::vector<uint8_t>>* resident_layers = nullptr;
  SpillPool* spill = nullptr;  // Null unless offload_hidden.
};

// One group of candidates advancing through the layers together (§4.3).
struct ChunkState {
  std::vector<size_t> ids;       // Original candidate indices.
  std::optional<Tensor> hidden;  // Resident hidden states (unless spilled).
  bool spilled = false;
};

// All mutable state of one in-flight rerank request. Contexts are built by
// the engine (which assigns the engine-unique `id`), threaded through the
// stages, and torn down when the result is extracted. Nothing in here is
// shared between requests, so a batch of contexts can advance on separate
// threads without synchronisation.
struct RequestContext {
  RequestContext(const RerankRequest& req, uint64_t request_id)
      : request(&req), id(request_id) {}

  const RerankRequest* request;
  uint64_t id;

  // Geometry (ChunkPlanner).
  size_t seq_len = 0;
  size_t chunk_cand = 0;

  // Forwarding state.
  std::vector<PairInput> pairs;
  std::vector<ChunkState> chunks;
  std::vector<size_t> active;        // Original ids still computing.
  std::vector<float> scores_active;  // Scores of `active`, last layer run.
  std::vector<std::pair<float, size_t>> finalized;  // (score, id) selected.
  size_t remaining_k = 0;
  bool terminated = false;  // Pruning stopped the forward pass early.
  bool done = false;        // No more layers to run (terminated or exhausted).

  PrunerOptions pruner_options;
  std::optional<LayerScratch> scratch;
  std::vector<LayerTraceEntry> trace;
  RerankResult result;
  WallTimer timer;

  // Depth tag: the next layer this context must be forwarded through.
  // LayerLoop::StepLayer CHECKs it against the arriving layer, so a context
  // can never run a layer outside its plan (layers are strictly sequential
  // from 0 until `done`). The carousel groups co-resident contexts by this
  // tag.
  size_t next_layer = 0;

  size_t n() const { return request->docs.size(); }

  // Spill keys are namespaced by request id so concurrent requests sharing
  // one SpillPool never collide.
  int64_t SpillKey(size_t chunk_index) const {
    return static_cast<int64_t>(id * kSpillKeysPerRequest + chunk_index);
  }
  static constexpr uint64_t kSpillKeysPerRequest = uint64_t{1} << 20;
};

// Moves a chunk's hidden tensor out of the context (unspilling it from disk
// when parked there) / stows it back (spilling when offload is on and more
// layers remain). Shared by LayerLoop and PruneStage's compaction.
Tensor TakeChunkHidden(const StageResources& res, RequestContext* ctx, size_t chunk_index);
void StowChunkHidden(const StageResources& res, RequestContext* ctx, size_t chunk_index,
                     Tensor hidden, bool more_layers);

// Drops every chunk the context still has parked in the spill pool (no-op
// without one). Called by PruneStage::Finalize and by carousel tickets that
// are abandoned mid-flight, so neither path can leak pool entries.
void ReleaseSpilledChunks(const StageResources& res, RequestContext* ctx);

// Stage 1 — geometry. Validates the request, chooses the common sequence
// length, plans the chunk size against the activation budget (§4.3), builds
// the initial chunks/active set, and allocates the per-request scratch.
class ChunkPlanner {
 public:
  explicit ChunkPlanner(const StageResources& res) : res_(res) {}

  // Chunk size the planner picks for `n` candidates at `seq_len`: the largest
  // count whose scratch fits the activation budget, floored at 2 to keep the
  // compute window wide enough for I/O overlap (min(2, n) for tiny requests).
  size_t PlanCandidates(size_t n, size_t seq_len) const;

  static std::vector<ChunkState> Partition(const std::vector<size_t>& ids, size_t chunk_cand);

  void Begin(RequestContext* ctx) const;

 private:
  StageResources res_;
};

// Stage 2 — embedding. Builds every pair input first so the embedding cache
// can batch-load the request's unique missing tokens in one device read
// (§4.5), then embeds each chunk and stows it.
class EmbedStage {
 public:
  explicit EmbedStage(const StageResources& res) : res_(res) {}

  void Run(RequestContext* ctx) const;

 private:
  StageResources res_;
};

// Stage 4 — pruning. Consumes the provisional scores a layer produced:
// records them into the result, handles trace mode, runs DecidePrune, and on
// a trigger finalizes/drops/compacts (the paper's shrinking monolithic
// batch, Fig 3: BS 20 → 16 → 10). Finalize() fills the top-K once the layer
// loop is over.
class PruneStage {
 public:
  explicit PruneStage(const StageResources& res) : res_(res) {}

  // Processes one completed layer; returns true when the request terminated
  // early (no further layers needed).
  bool AfterLayer(RequestContext* ctx, size_t layer, bool last_layer) const;

  void Finalize(RequestContext* ctx) const;

 private:
  StageResources res_;
};

// Stage 3 — the layer loop. Streams (or reads resident) layer weights and
// forwards every live context's chunks through each layer, invoking
// PruneStage between layers. A batch of contexts shares one LayerStreamer
// pass: each layer's weights are fetched once for all in-flight requests,
// and per-context forwarding fans out on `compute_pool` when provided.
// Streamed-bytes / stall stats are split evenly across the batch.
//
// Run() drives a whole terminating pass (BatchScheduler / direct engine
// calls). StepLayer() is the carousel's entry point: it advances one
// depth-tagged group of contexts through one already-acquired layer, letting
// an external driver own the (cyclic) weight stream and interleave admission
// and exit between layers.
class LayerLoop {
 public:
  explicit LayerLoop(const StageResources& res) : res_(res), prune_(res) {}

  void Run(std::span<RequestContext* const> ctxs, ThreadPool* compute_pool) const;

  // One layer step = ForwardGroup (needs the weights) then SettleGroup
  // (does not): drivers release the layer's streamer buffer in between, so
  // the prefetcher pulls the next blob while pruning runs — the same
  // overlap the monolithic loop had.
  //
  // ForwardGroup forwards every context in `group` through `layer` (weights
  // already parsed into `view`). CHECKs that each context's next_layer tag
  // equals `layer` — no context is ever forwarded through a layer outside
  // its plan. SettleGroup runs the between-layer prune bookkeeping, marking
  // contexts done when they terminate or `last_layer` is set. StepLayer is
  // the composed convenience for drivers with no buffer to release.
  void ForwardGroup(std::span<RequestContext* const> group, size_t layer,
                    const AnyLayerView& view, bool last_layer, ThreadPool* compute_pool) const;
  void SettleGroup(std::span<RequestContext* const> group, size_t layer, bool last_layer) const;
  void StepLayer(std::span<RequestContext* const> group, size_t layer, const AnyLayerView& view,
                 bool last_layer, ThreadPool* compute_pool) const;

 private:
  void ForwardOneLayer(RequestContext* ctx, const AnyLayerView& view, bool last_layer) const;

  StageResources res_;
  PruneStage prune_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_STAGES_H_

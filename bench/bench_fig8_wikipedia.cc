// Figure 8: Wikipedia zoom-in — latency bars (with speedup vs. HF Offload)
// and Precision@K for all 5 models and 7 systems: HF, HF Offload, HF Quant,
// PRISM Low/High threshold, PRISM Quant Low/High.
//
// Flags: --device=nvidia|apple (run twice for both platforms) --queries=N
//        --candidates=N --ks=1,5,10
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 1));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 20));
  std::vector<size_t> ks;
  for (const std::string& item : SplitCsv(flags.GetString("ks", "1,5,10"))) {
    ks.push_back(static_cast<size_t>(std::stoul(item)));
  }

  PrintHeader("Figure 8 — Wikipedia dataset detail (" + device.name + ", " +
              std::to_string(candidates) + " candidates)");

  for (const ModelConfig& model : ModelZoo()) {
    const bool hf_oom =
        EstimateHfPeakBytes(model, device, candidates, model.max_seq, Precision::kFp32) >
        VramBudgetBytes(device);

    for (size_t k : ks) {
      const auto cases = MakeCases(model, "wikipedia", queries, candidates, k);

      struct Row {
        const char* name;
        double latency_ms = 0.0;
        double precision = 0.0;
        bool oom = false;
      };
      std::vector<Row> rows;

      auto run = [&](const char* name, auto factory) {
        auto runner = FreshRunner(factory);
        const BenchRun r = RunCases(runner.get(), cases);
        rows.push_back({name, r.mean_latency_ms, r.mean_precision, false});
      };

      if (hf_oom) {
        rows.push_back({"HF", 0.0, 0.0, true});
      } else {
        run("HF", [&] { return MakeHf(model, device, Precision::kFp32); });
      }
      run("HF Offload", [&] { return MakeOffload(model, device, Precision::kFp32); });
      run("HF Quant", [&] { return MakeHf(model, device, Precision::kW4); });
      run("Prism Low", [&] { return MakePrism(model, device, kThresholdLow, Precision::kFp32); });
      run("Prism High", [&] { return MakePrism(model, device, kThresholdHigh, Precision::kFp32); });
      run("PrismQ Low", [&] { return MakePrism(model, device, kThresholdLow, Precision::kW4); });
      run("PrismQ High", [&] { return MakePrism(model, device, kThresholdHigh, Precision::kW4); });

      // Speedups are relative to HF Offload, as in the paper's bar labels.
      double offload_ms = 0.0;
      for (const Row& row : rows) {
        if (std::string(row.name) == "HF Offload") {
          offload_ms = row.latency_ms;
        }
      }
      std::printf("\n%s — Precision@%zu\n", model.name.c_str(), k);
      std::printf("  %-12s %12s %10s %12s\n", "system", "latency", "vs offload", "precision");
      for (const Row& row : rows) {
        if (row.oom) {
          std::printf("  %-12s %12s %10s %12s\n", row.name, "OOM", "-", "-");
        } else {
          std::printf("  %-12s %9.1f ms %9.2fx %12.3f\n", row.name, row.latency_ms,
                      row.latency_ms / offload_ms, row.precision);
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

// Reduced-precision weight storage: the streaming precision tiers.
//
// The hot regime is SSD-bound, so bytes streamed per pass — not compute —
// bound throughput. Three reduced tiers sit beside fp32, each with a fused
// dequantising GEMM so the forward pass never materialises fp32 weights:
//
//   w4    4-bit group-wise symmetric (the W4A16 baseline, §6.1): per group a
//         float scale plus two signed 4-bit values per byte. 4× fewer bytes,
//         bounded perturbation (|err| ≤ scale/2, scale = max|w|/7).
//   int8  8-bit group-wise symmetric: per group a float scale plus one
//         signed byte per value. ~4× smaller error than w4 at 2× its bytes
//         (|err| ≤ scale/2, scale = max|w|/127).
//   fp16  scale-free IEEE binary16 storage (software conversion, no
//         compiler half type needed). Exactly 2× fewer bytes; relative
//         error ≤ one half-precision half-ulp (2⁻¹¹) for normal values.
//
// Weights W[out, in] are grouped along the `in` dimension in groups of
// `group_size` (w4/int8 only; fp16 has no groups).
#ifndef PRISM_SRC_TENSOR_QUANT_H_
#define PRISM_SRC_TENSOR_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/tensor/tensor.h"

namespace prism {

// Weight storage precision, a first-class streaming axis: checkpoints are
// written per precision, BlobFile v2 headers tag every blob with it, and the
// engine streams exactly the tagged bytes. Enumerator values are the on-disk
// v2 tag encoding — do not reorder.
enum class Precision : uint8_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
  kW4 = 3,
};

// "fp32" / "fp16" / "int8" / "w4" (flag spelling and file tags).
const char* PrecisionName(Precision precision);

// Parses a PrecisionName spelling; returns false on an unknown name.
bool PrecisionByName(const std::string& name, Precision* out);

// All precisions, in tag order (for sweeps).
inline constexpr Precision kAllPrecisions[] = {Precision::kFp32, Precision::kFp16,
                                               Precision::kInt8, Precision::kW4};

// Software fp32 ↔ IEEE binary16 conversion (round to nearest even). Values
// beyond the half range saturate to ±65504 so stored weights stay finite.
uint16_t Fp32ToFp16(float v);
float Fp16ToFp32(uint16_t h);

// Non-owning view of a 4-bit quantised matrix laid out as
// [packed nibbles][scales] inside a larger blob (e.g. a streamed layer).
struct QuantMatrixView {
  const uint8_t* packed = nullptr;
  const float* scales = nullptr;
  size_t rows = 0;
  size_t cols = 0;
  size_t group_size = 0;

  // C[m, rows] = A[m, cols] · Wᵀ with on-the-fly dequantisation.
  void MatMulTransB(const float* a, size_t m, float* c) const;

  // Bytes this view spans inside its blob.
  static size_t SpanBytes(size_t rows, size_t cols, size_t group_size) {
    return rows * cols / 2 + rows * (cols / group_size) * sizeof(float);
  }
};

// Non-owning view of an int8 group-wise symmetric matrix laid out as
// [int8 values][scales].
struct Int8MatrixView {
  const int8_t* values = nullptr;
  const float* scales = nullptr;
  size_t rows = 0;
  size_t cols = 0;
  size_t group_size = 0;

  void MatMulTransB(const float* a, size_t m, float* c) const;

  static size_t SpanBytes(size_t rows, size_t cols, size_t group_size) {
    return rows * cols + rows * (cols / group_size) * sizeof(float);
  }
};

// Non-owning view of a matrix stored as packed IEEE binary16 (no scales).
struct Fp16MatrixView {
  const uint16_t* data = nullptr;
  size_t rows = 0;
  size_t cols = 0;

  void MatMulTransB(const float* a, size_t m, float* c) const;

  static size_t SpanBytes(size_t rows, size_t cols) { return rows * cols * sizeof(uint16_t); }
};

// Bytes one [rows, cols] matrix spans at `precision` (group_size ignored for
// fp32/fp16).
size_t MatrixSpanBytes(Precision precision, size_t rows, size_t cols, size_t group_size);

// Serialises `w` (row-major [rows, cols]) at the given precision into `out`
// (MatrixSpanBytes bytes). Deterministic: same input, same bytes. Used by
// checkpoint generation; the matching Decode* reconstruct fp32 for tests and
// error measurement.
void EncodeMatrix(Precision precision, const float* w, size_t rows, size_t cols,
                  size_t group_size, uint8_t* out);
void DecodeMatrix(Precision precision, const uint8_t* in, size_t rows, size_t cols,
                  size_t group_size, float* out);

// Largest per-group scale of an int8 encoding (roundtrip bound: scale/2).
float Int8MaxScale(const uint8_t* in, size_t rows, size_t cols, size_t group_size);

class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  // Quantises `w` (row-major [rows, cols]); cols must be a multiple of
  // group_size.
  static QuantizedMatrix Quantize(const float* w, size_t rows, size_t cols, size_t group_size,
                                  MemCategory category = MemCategory::kWeights,
                                  MemoryTracker* tracker = &MemoryTracker::Global());

  // Reconstructs the full matrix (for tests / error measurement).
  void Dequantize(float* out) const;

  // C[m, rows] = A[m, cols] · Wᵀ with on-the-fly dequantisation.
  void MatMulTransB(const float* a, size_t m, float* c) const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t group_size() const { return group_size_; }

  // Bytes of the quantised representation (packed nibbles + scales).
  size_t ByteSize() const { return packed_.size() + scales_.size() * sizeof(float); }

  // Serialisation into/out of flat buffers (for the weight store).
  size_t SerializedSize() const;
  void SerializeTo(uint8_t* out) const;
  static QuantizedMatrix Deserialize(const uint8_t* in, size_t rows, size_t cols,
                                     size_t group_size, MemCategory category,
                                     MemoryTracker* tracker);

  // Worst-case absolute reconstruction error for a group with scale s is s/2
  // (rounding half step) — checked by property tests.
  float MaxScale() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t group_size_ = 0;
  std::vector<uint8_t> packed_;  // Two 4-bit values per byte, row-major.
  std::vector<float> scales_;    // rows * (cols / group_size) scales.
  MemClaim claim_;
};

}  // namespace prism

#endif  // PRISM_SRC_TENSOR_QUANT_H_

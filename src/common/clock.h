// The clock seam: every timing-sensitive layer of the serving stack (queue
// deadlines, scheduler waits, linger windows, workload arrival schedules,
// latency observation) reads time and blocks through this interface instead
// of touching std::chrono directly.
//
// Two implementations:
//
//   WallClock — the default; a thin veneer over std::steady_clock and
//               std::condition_variable. Behaviour is identical to the
//               pre-seam code: callers that never pass a Clock* see no
//               change at all.
//   SimClock  — a discrete-event virtual clock. Threads that participate in
//               the simulation register themselves (Join/Leave); whenever
//               every participant is blocked — sleeping until a virtual
//               instant, waiting on a ClockCondVar, or parked in an
//               "external" wait for a result another participant will
//               produce — the clock advances virtual time to the earliest
//               scheduled wake tag and resumes exactly the waiters whose
//               tags arrived. Nothing ever waits on the host clock, so a
//               workload that takes minutes of wall time replays in
//               milliseconds, and because time only moves at quiescence the
//               event order (arrivals, deadline expiries, linger timeouts)
//               is a pure function of the scheduled tags — deterministic
//               regardless of host speed or core count. Grounded in the
//               strongly-consistent discrete-event systems construction
//               (Donovan et al., PAPERS.md): components advance a shared
//               virtual clock via tagged events.
//
// What is and isn't virtualized: only *waiting* consumes virtual time.
// Real compute (an engine pass, a thread-pool fan-out, the simulated SSD's
// throttle sleeps) runs at wall speed while virtual time stands still —
// participants executing code are "runnable", and the clock never advances
// past a runnable thread. A simulation that wants service time to pass must
// charge it explicitly through SleepFor (see SimulatedRunner in
// src/runtime/sim_runner.h).
#ifndef PRISM_SRC_COMMON_CLOCK_H_
#define PRISM_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"

namespace prism {

// A condition variable bound to a Clock: Wait/WaitUntil release the caller's
// mutex and block through the clock's notion of time, so a SimClock can both
// account the waiter as blocked and expire its deadline at an exact virtual
// instant. NotifyOne on a SimClock wakes the longest-enrolled waiter, making
// wake order deterministic.
//
// Waiting is loop-style, matching prism::CondVar: one call parks once, the
// caller re-checks its condition in a `while` loop (which keeps every
// guarded read inside the function clang's thread-safety analysis is
// checking — a predicate lambda would be an analysis hole).
class ClockCondVar {
 public:
  virtual ~ClockCondVar() = default;

  // Parks once; returns after a notify (or, on the wall clock, a spurious
  // wake — callers loop on their condition either way).
  virtual void Wait(Mutex& mu) PRISM_REQUIRES(mu) = 0;

  // Parks once, waking no later than the instant the clock reads
  // `deadline_ms`. Returns false iff the deadline has arrived (a deadline
  // at or before the current instant returns false without blocking);
  // callers loop:
  //   while (!cond) {
  //     if (!cv->WaitUntil(mu, deadline_ms)) break;  // cond may hold too
  //   }
  virtual bool WaitUntil(Mutex& mu, double deadline_ms) PRISM_REQUIRES(mu) = 0;

  virtual void NotifyOne() = 0;
  virtual void NotifyAll() = 0;
};

class Clock {
 public:
  virtual ~Clock() = default;

  // Milliseconds since the clock's epoch (process start for the wall clock,
  // 0.0 for a fresh SimClock). Monotonic.
  virtual double NowMs() = 0;

  // Blocks until NowMs() >= wake_ms (no-op if already past).
  virtual void SleepUntil(double wake_ms) = 0;
  void SleepFor(double ms) { SleepUntil(NowMs() + ms); }

  virtual std::unique_ptr<ClockCondVar> MakeCondVar() = 0;

  // --- Discrete-event participation (all no-ops on the wall clock). ------

  // Registers / unregisters the calling thread as a simulation participant.
  // Virtual time advances only when every registered participant is blocked.
  virtual void Join() {}
  virtual void Leave() {}

  // Reserves `n` future participants: a spawner calls this BEFORE starting
  // participant threads, and each thread's Join() consumes one reservation.
  // Advance is forbidden while reservations are outstanding — otherwise the
  // first thread to start could block and advance the clock past tags the
  // not-yet-registered threads were due to wake at (a host-scheduling race
  // that would break determinism at every thread spawn).
  virtual void ExpectParticipants(size_t n) { (void)n; }

  // Blocks the caller (at zero virtual cost) until every other participant
  // is blocked too — i.e. until the current virtual instant has fully played
  // out. Dispatchers call this before draining a queue so that a batch
  // always contains *every* request issued at the instant, independent of
  // host thread interleaving.
  virtual void YieldUntilQuiescent() {}

  // Wake handshake for promises fulfilled across threads: the fulfiller
  // calls PreWake() immediately before promise.set_value, and the awaiting
  // side brackets future.get() with Begin/EndExternalWait (see AwaitFuture).
  // The SimClock refuses to advance while any such wake is in flight, so a
  // woken thread always resumes at the exact virtual instant its result was
  // produced.
  virtual void PreWake() {}
  virtual void BeginExternalWait() {}
  virtual void EndExternalWait() {}
};

// RAII participant registration.
class ClockMembership {
 public:
  explicit ClockMembership(Clock* clock) : clock_(clock) { clock_->Join(); }
  ~ClockMembership() { clock_->Leave(); }
  ClockMembership(const ClockMembership&) = delete;
  ClockMembership& operator=(const ClockMembership&) = delete;

 private:
  Clock* clock_;
};

// Blocks on a future through the clock's external-wait protocol. The
// fulfilling side must call clock->PreWake() right before set_value.
template <typename T>
T AwaitFuture(Clock* clock, std::future<T> future) {
  clock->BeginExternalWait();
  T value = future.get();
  clock->EndExternalWait();
  return value;
}

// Monotonic wall time; the process-wide default. Get() hands out one shared
// instance so every layer that defaults its Clock* sees the same epoch.
class WallClock : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  double NowMs() override;
  void SleepUntil(double wake_ms) override;
  std::unique_ptr<ClockCondVar> MakeCondVar() override;

  static WallClock& Get();

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

// nullptr -> the shared wall clock; anything else passes through. Every
// Clock* option in the stack defaults to nullptr, so existing callers keep
// wall-clock behaviour without naming a clock.
inline Clock* ResolveClock(Clock* clock) {
  return clock != nullptr ? clock : &WallClock::Get();
}

// The discrete-event virtual clock (see file comment). All state lives under
// one mutex; waiters park on one central condition variable and are resumed
// by notifies or by virtual-time advances. Thread-safe throughout.
class SimClock : public Clock {
 public:
  SimClock() = default;
  ~SimClock() override;

  double NowMs() override;
  void SleepUntil(double wake_ms) override;
  std::unique_ptr<ClockCondVar> MakeCondVar() override;

  void Join() override;
  void Leave() override;
  void ExpectParticipants(size_t n) override;
  void YieldUntilQuiescent() override;
  void PreWake() override;
  void BeginExternalWait() override;
  void EndExternalWait() override;

  // Introspection (tests, assertions).
  size_t participants() const;
  // Virtual-time advances performed so far.
  uint64_t advances() const;

 private:
  friend class SimCondVar;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  struct Waiter {
    double wake_ms = kNever;   // Virtual instant at which to resume (inf = untimed).
    bool wake = false;         // Set by a notify or an expired tag.
    bool participant = false;  // Enrolling thread had Join()ed this clock.
    uint64_t seq = 0;          // Enrollment order; NotifyOne resumes lowest.
    const void* cv_tag = nullptr;  // Owning SimCondVar (null for sleepers).
  };

  // All Locked helpers require mu_ held.
  void EnrollLocked(Waiter* waiter) PRISM_REQUIRES(mu_);
  void DeenrollLocked(Waiter* waiter) PRISM_REQUIRES(mu_);
  // Advances virtual time iff every participant is blocked (or in an
  // external wait), no cross-thread wake is in flight, and some waiter has a
  // finite tag. Wakes every waiter whose tag has arrived.
  void MaybeAdvanceLocked() PRISM_REQUIRES(mu_);
  // Parks the caller until its waiter is woken. `lock` owns mu_ on entry
  // (it is the MutexLock's native lock) and owns it again on return.
  void BlockLocked(NativeMutexLock& lock, Waiter* waiter) PRISM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::condition_variable cv_;  // Central: every waiter parks here.
  double now_ms_ PRISM_GUARDED_BY(mu_) = 0.0;
  size_t participants_ PRISM_GUARDED_BY(mu_) = 0;
  // Announced participants not yet Join()ed.
  size_t reserved_ PRISM_GUARDED_BY(mu_) = 0;
  // Participants inside Begin/EndExternalWait.
  size_t external_ PRISM_GUARDED_BY(mu_) = 0;
  // PreWake handshakes not yet consumed.
  size_t pending_wakeups_ PRISM_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ PRISM_GUARDED_BY(mu_) = 0;
  uint64_t advances_ PRISM_GUARDED_BY(mu_) = 0;
  std::vector<Waiter*> waiters_ PRISM_GUARDED_BY(mu_);
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_CLOCK_H_

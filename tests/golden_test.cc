// Golden numeric regression: one canonical RerankResult for the default
// config, serialized into tests/golden/. Any refactor that changes the
// engine's numerics — kernel order, pruning decisions, embedding layout —
// fails this test with a readable per-candidate diff instead of silently
// shifting every benchmark.
//
// To regenerate after an *intentional* numeric change:
//   PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the rewritten fixture alongside the change that explains it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "tests/test_util.h"

namespace prism {
namespace {

#ifndef PRISM_TEST_DATA_DIR
#error "PRISM_TEST_DATA_DIR must point at the tests/ source directory"
#endif

std::string GoldenPath() {
  return std::string(PRISM_TEST_DATA_DIR) + "/golden/rerank_default.txt";
}

struct GoldenRecord {
  std::vector<size_t> topk;
  std::vector<float> scores;
};

// Scores are serialized as hexfloats (bit-exact round trip) with a decimal
// rendering alongside for human diffs.
std::string Serialize(const GoldenRecord& record) {
  std::ostringstream out;
  out << "# Canonical RerankResult: TestModel, wikipedia query 0, 12 candidates, k=3.\n";
  out << "# Regenerate with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
  out << "topk";
  for (size_t id : record.topk) {
    out << ' ' << id;
  }
  out << '\n';
  for (size_t i = 0; i < record.scores.size(); ++i) {
    char line[80];
    std::snprintf(line, sizeof(line), "score %zu %a  # %.6f\n", i,
                  static_cast<double>(record.scores[i]),
                  static_cast<double>(record.scores[i]));
    out << line;
  }
  return out.str();
}

bool ParseGolden(const std::string& path, GoldenRecord* record) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "topk") {
      size_t id;
      while (fields >> id) {
        record->topk.push_back(id);
      }
    } else if (tag == "score") {
      size_t index;
      std::string hex;
      fields >> index >> hex;
      EXPECT_EQ(index, record->scores.size()) << "out-of-order score line: " << line;
      record->scores.push_back(std::strtof(hex.c_str(), nullptr));
    }
  }
  return true;
}

GoldenRecord ComputeCanonical() {
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  PrismOptions options;  // Default engine configuration...
  options.device = FastDevice();  // ...timing model off; numerics unaffected.
  MemoryTracker tracker;
  PrismEngine engine(config, ckpt, options, &tracker);
  const RerankResult result = engine.Rerank(TestRequest(config));
  EXPECT_TRUE(result.status.ok());
  return GoldenRecord{result.topk, result.scores};
}

TEST(GoldenTest, DefaultConfigMatchesFixture) {
  const GoldenRecord actual = ComputeCanonical();

  if (std::getenv("PRISM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out) << "cannot write " << GoldenPath();
    out << Serialize(actual);
    GTEST_SKIP() << "rewrote " << GoldenPath();
  }

  GoldenRecord expected;
  ASSERT_TRUE(ParseGolden(GoldenPath(), &expected))
      << "missing fixture " << GoldenPath()
      << " — generate it with PRISM_UPDATE_GOLDEN=1 ./build/tests/golden_test";

  EXPECT_EQ(actual.topk, expected.topk) << "top-K order changed";
  ASSERT_EQ(actual.scores.size(), expected.scores.size()) << "candidate count changed";
  for (size_t i = 0; i < actual.scores.size(); ++i) {
    const bool both_nan = std::isnan(actual.scores[i]) && std::isnan(expected.scores[i]);
    if (both_nan) {
      continue;  // Pruned-before-scoring in both runs.
    }
    EXPECT_EQ(actual.scores[i], expected.scores[i])
        << "score[" << i << "] drifted: expected " << expected.scores[i] << " (hex "
        << std::hexfloat << static_cast<double>(expected.scores[i]) << "), got "
        << std::defaultfloat << actual.scores[i] << " (hex " << std::hexfloat
        << static_cast<double>(actual.scores[i]) << ")";
  }
}

// The fixture itself must be reproducible: two engines, same checkpoint,
// same result. Guards against the canonical request accidentally depending
// on ambient state (cache warmth, request ids).
TEST(GoldenTest, CanonicalResultIsStableAcrossEngines) {
  const GoldenRecord first = ComputeCanonical();
  const GoldenRecord second = ComputeCanonical();
  EXPECT_EQ(first.topk, second.topk);
  for (size_t i = 0; i < first.scores.size(); ++i) {
    const bool both_nan = std::isnan(first.scores[i]) && std::isnan(second.scores[i]);
    EXPECT_TRUE(both_nan || first.scores[i] == second.scores[i]) << "score " << i;
  }
}

}  // namespace
}  // namespace prism

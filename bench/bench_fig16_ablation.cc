// Figure 16: memory & latency ablation of the four techniques, applied
// incrementally on the Qwen3-0.6B proxy ranking 60 candidates with
// max-length sequences:
//   HF Rerank → +progressive cluster pruning (monolithic batch, all weights
//   resident, full embedding table) → +chunked execution → +overlapped layer
//   streaming (dual-layer sliding window) → +embedding table caching.
//
// Flags: --device=nvidia|apple --candidates=N --k=N
#include <cstdio>

#include "bench/bench_util.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const ModelConfig model = Qwen3Reranker0_6B();
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 60));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));

  PrintHeader("Figure 16 — ablation (" + device.name + ", " + model.name + ", top-" +
              std::to_string(k) + " of " + std::to_string(candidates) + ")");

  // Max-length documents, as in the paper's 500-token-average setup.
  SyntheticDataset base(DatasetByName("wikipedia"), model, kDataSeed);
  DatasetProfile profile = base.profile();
  profile.doc_terms = model.max_seq;
  const SyntheticDataset data(profile, model, kDataSeed);
  const RerankRequest request = RerankRequest::FromQuery(data.MakeQuery(0, candidates), k);

  std::printf("%-34s %12s %12s %12s\n", "configuration", "peak MiB", "avg MiB", "latency");

  auto report = [&](const char* name, auto factory) {
    auto runner = FreshRunner(factory);
    MemoryTracker::Global().StartTimeline();
    const RerankResult result = runner->Rerank(request);
    MemoryTracker::Global().StopTimeline();
    std::printf("%-34s %12.2f %12.2f %9.0f ms\n", name,
                MiB(MemoryTracker::Global().PeakTotal()),
                MiB(static_cast<int64_t>(MemoryTracker::Global().AverageTotal())),
                result.stats.latency_ms);
  };

  report("HF Rerank", [&] { return MakeHf(model, device, Precision::kFp32); });
  {
    // Pruning only: one monolithic batch (no chunking), weights resident,
    // full embedding table — the paper's +44.8% peak-memory step.
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = kThresholdLow;
    options.streaming = false;
    options.chunked = false;
    options.embed_cache = false;
    report("+ Progressive Cluster Pruning", [&, options] { return MakePrismWith(model, options); });
  }
  {
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = kThresholdLow;
    options.streaming = false;
    options.embed_cache = false;
    report("+ Chunked Execution", [&, options] { return MakePrismWith(model, options); });
  }
  {
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = kThresholdLow;
    options.embed_cache = false;
    report("+ Dual-Layer Sliding Window", [&, options] { return MakePrismWith(model, options); });
  }
  {
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = kThresholdLow;
    report("+ Embedding Table Caching", [&, options] { return MakePrismWith(model, options); });
  }
  {
    // Extension beyond the paper's four bars: dynamic hidden-state offload
    // (§4.3 lower half) for the massive-candidate regime.
    PrismOptions options;
    options.device = device;
    options.dispersion_threshold = kThresholdLow;
    options.offload_hidden = true;
    report("+ Hidden-State Offload", [&, options] { return MakePrismWith(model, options); });
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

// Multi-client scenario traffic over the serving stack — the end-to-end
// apps-over-service bench, and the first entries of the perf trajectory.
//
// For each application scenario (file_search, rag, agent_memory, lcs) the
// bench measures a single-client serial baseline (per-query selection
// signatures + unloaded service time), then sweeps
// {scheduler × pool_size × arrival mode} with N concurrent clients and
// Zipf-skewed query popularity, checking every served request's selection
// against the baseline: 0 mismatches means no scheduler/pool combination
// ever changed a decision. A final 2× overload phase per scenario runs with
// deadlines and verifies the serving layer degrades the right way — shed
// fraction rises while served-only p99 stays within one batch interval of
// the unloaded run (only observable since ServiceStats keeps shed requests
// out of the percentiles).
//
// A machine-readable JSON summary is printed to stdout after the human
// table (and optionally written to --json=PATH).
//
// Flags: --model=Qwen3-Reranker-0.6B --device=nvidia|apple --threshold=0.40
//        --precision=fp32|fp16|int8|w4 (storage precision for every stack in
//        the sweep; non-fp32 adds a precision check — bytes/pass, pass time,
//        score drift and selection agreement vs an fp32 pass — gating that
//        the reduced tier streams >= 2x fewer layer bytes, 1.9x for fp16)
//        --scenarios=all|comma-list --schedulers=serial,batch,carousel
//        --pool_sizes=1,2 --clients=6 --requests=24 --warmup=4
//        --n_queries=8 --max_inflight=4 --zipf=0.9 --rates=0.7
//        --ssd_mbps=12 (0 = device profile default) --overload=true
//        --json=PATH
//        --smoke: tiny config (test model, unthrottled device, one scenario
//        per scheduler, closed loop only, no overload phase) for CI —
//        exits nonzero on any mismatch.
//        --sim: discrete-event simulation mode. Every run gets a fresh
//        SimClock and the virtual service-cost model (ServiceOptions::sim):
//        arrivals, queueing, deadlines, and the overload phase all play out
//        in virtual time, so a sweep that takes minutes of wall time —
//        including 10k-request open-loop overloads — finishes in seconds and
//        its JSON is byte-identical run over run (the sim-determinism CI
//        lane diffs two of them). Uses the test model and an unthrottled
//        device: engine passes run once per unique query at frozen virtual
//        instants and are memoized; serving dynamics dominate, which is
//        exactly what the mode studies. Sim defaults: 10000 requests per
//        run, file_search only (serving dynamics are scenario-agnostic;
//        --scenarios=all opts into the slower multi-stage pipelines), and
//        the overload phase becomes an open-loop Poisson flood at 2x the
//        measured serial capacity.
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/core/service_pool.h"
#include "src/serving/result_cache.h"
#include "src/serving/workload.h"

namespace prism {
namespace {

// One serving stack (a single service or a pool, optionally fronted by a
// result cache) behind a Runner*.
struct Stack {
  std::unique_ptr<RerankService> service;
  std::unique_ptr<ServicePool> pool;
  std::unique_ptr<ResultCache> cache;  // Fronts service/pool when non-null.

  Runner* runner() {
    if (cache != nullptr) {
      return cache.get();
    }
    return pool != nullptr ? static_cast<Runner*>(pool.get())
                           : static_cast<Runner*>(service.get());
  }
  ServiceStats Stats() const {
    return pool != nullptr ? pool->stats().aggregate : service->stats();
  }
};

struct StackSpec {
  ModelConfig model;
  std::string checkpoint;
  DeviceProfile device;
  Precision precision = Precision::kFp32;
  float threshold = kThresholdHigh;
  size_t max_inflight = 4;
  size_t total_threads = 4;
  bool sim = false;  // Virtual service-cost model on every stack.
  // Result-cache tier (src/serving/result_cache.h). 0 = no cache.
  size_t cache_capacity = 0;
  double cache_ttl_ms = 0.0;
  double cache_similarity = 0.0;
};

Stack MakeStack(const StackSpec& spec, SchedulerKind kind, size_t pool_size,
                Clock* clock = nullptr) {
  MemoryTracker::Global().Reset();
  ServiceOptions options;
  options.engine.device = spec.device;
  options.engine.precision = spec.precision;
  options.engine.dispersion_threshold = spec.threshold;
  options.scheduler = kind;
  options.max_inflight = kind == SchedulerKind::kSerial ? 1 : spec.max_inflight;
  options.compute_threads = std::max<size_t>(1, spec.total_threads / pool_size);
  options.clock = clock;
  options.sim.enabled = spec.sim;
  Stack stack;
  if (pool_size == 1) {
    stack.service = std::make_unique<RerankService>(spec.model, spec.checkpoint, options);
  } else {
    ServicePoolOptions pool_options;
    pool_options.service = options;
    pool_options.pool_size = pool_size;
    pool_options.balancer = LoadBalancePolicy::kLeastLoaded;
    stack.pool = std::make_unique<ServicePool>(spec.model, spec.checkpoint, pool_options);
  }
  if (spec.cache_capacity > 0) {
    ResultCacheOptions cache_options;
    cache_options.capacity = spec.cache_capacity;
    cache_options.ttl_ms = spec.cache_ttl_ms;
    cache_options.similarity = spec.cache_similarity;
    cache_options.clock = clock;
    QueryEmbedder embedder;
    if (spec.cache_similarity > 0.0 && stack.service != nullptr) {
      embedder = MakeQueryEmbedder(stack.service->engine().embedding_source(),
                                   spec.model.hidden);
    }
    stack.cache = std::make_unique<ResultCache>(stack.pool != nullptr
                                                    ? static_cast<Runner*>(stack.pool.get())
                                                    : static_cast<Runner*>(stack.service.get()),
                                                cache_options, std::move(embedder));
  }
  return stack;
}

struct RunRecord {
  std::string scenario;
  std::string scheduler;
  size_t pool_size = 1;
  std::string mode;  // "closed" | "open" | "overload" | "cache"
  size_t clients = 0;
  double arrival_hz = 0.0;
  double deadline_ms = 0.0;
  size_t cache_capacity = 0;  // Result-cache entries (0 = no cache tier).
  double zipf = 0.0;
  WorkloadReport report;
  double work_fraction = 0.0;
};

// Pulls the post-run accounting (embedding-cache counters from the stack,
// result-cache counters when a cache tier fronted it) into the report so
// every emitted row carries its hit rates. Embedding-cache counters are
// skipped in --sim mode: the embed LRU lives inside the engine's compute
// fan-out, whose thread interleaving is outside the SimClock determinism
// domain, so its hit counts would break byte-identical replay.
void AttachStats(RunRecord& record, const Stack& stack, bool sim) {
  if (!sim) {
    record.report.AttachServingStats(stack.Stats());
  }
  if (stack.cache != nullptr) {
    record.report.AttachCacheStats(stack.cache->stats());
  }
}

void PrintRow(const RunRecord& r) {
  const std::string name = r.scenario + " " + r.scheduler + "x" +
                           std::to_string(r.pool_size) + " " + r.mode;
  // The throughput column is the *served* rate: shed requests turn around
  // in ~0 ms, so counting them would make overload rows look faster.
  // hit% is the result-cache hit rate (blank-equivalent 0 when no cache).
  std::printf("%-36s %8.2f %9.2f %9.2f %7.0f%% %6.0f%% %8.2f %9.2f %6zu\n", name.c_str(),
              r.report.served_per_sec, r.report.p50_ms, r.report.p99_ms,
              100.0 * r.report.shed_fraction, 100.0 * r.report.cache_hit_rate,
              r.report.mean_quality, r.work_fraction, r.report.mismatches);
}

void JsonRun(FILE* out, const RunRecord& r, bool last) {
  std::fprintf(out,
               "    {\"scenario\": \"%s\", \"scheduler\": \"%s\", \"pool_size\": %zu, "
               "\"mode\": \"%s\", \"clients\": %zu, \"arrival_hz\": %.6g, "
               "\"deadline_ms\": %.6g, \"requests\": %zu, \"served\": %zu, \"shed\": %zu, "
               "\"errors\": %zu, \"req_per_sec\": %.6g, \"served_per_sec\": %.6g, "
               "\"p50_ms\": %.6g, \"p99_ms\": %.6g, "
               "\"mean_ms\": %.6g, \"shed_fraction\": %.6g, \"slo_attainment\": %.6g, "
               "\"mean_quality\": %.6g, \"mean_queue_wait_ms\": %.6g, "
               "\"work_fraction\": %.6g, \"mismatches\": %zu, "
               "\"cache_capacity\": %zu, \"zipf\": %.6g, \"cache_lookups\": %zu, "
               "\"cache_hits\": %zu, \"cache_coalesced\": %zu, \"cache_hit_rate\": %.6g, "
               "\"embed_hit_rate\": %.6g}%s\n",
               r.scenario.c_str(), r.scheduler.c_str(), r.pool_size, r.mode.c_str(), r.clients,
               r.arrival_hz, r.deadline_ms, r.report.requests, r.report.served, r.report.shed,
               r.report.errors, r.report.requests_per_sec, r.report.served_per_sec,
               r.report.p50_ms, r.report.p99_ms,
               r.report.mean_ms, r.report.shed_fraction, r.report.slo_attainment,
               r.report.mean_quality, r.report.mean_queue_wait_ms, r.work_fraction,
               r.report.mismatches, r.cache_capacity, r.zipf, r.report.cache_lookups,
               r.report.cache_hits, r.report.cache_coalesced, r.report.cache_hit_rate,
               r.report.embed_hit_rate, last ? "" : ",");
}

struct OverloadCheck {
  std::string scenario;
  double shed_fraction = 0.0;
  double unloaded_shed_fraction = 0.0;
  double p99_ms = 0.0;
  double bound_ms = 0.0;
  bool ok = false;
};

// One cache-sweep comparison: same overloaded open-loop traffic served with
// and without a head-sized result cache. The cache absorbs the Zipf head, so
// the served rate must rise by at least `kCacheSpeedupFloor` while every
// cached answer stays bit-identical (0 mismatches).
constexpr double kCacheSpeedupFloor = 1.5;

struct CacheCheck {
  std::string scenario;
  double zipf = 0.0;
  size_t head_capacity = 0;
  double served_cache_off = 0.0;
  double served_cache_head = 0.0;
  double speedup = 0.0;
  double hit_rate = 0.0;
  size_t mismatches = 0;
  bool ok = false;
};

// Reduced-precision streaming gate (--precision=fp16|int8|w4): a serial
// engine pass at the chosen tier against an fp32 pass over the same queries.
// bytes/pass comes from the engine's own streamed-byte accounting, the drift
// and selection-agreement columns from score comparison. int8/w4 must stream
// >= 2x fewer layer bytes per pass than fp32; fp16's exact matrix halving
// lands just under 2x once the fp32 norm vectors are counted, so its floor
// is 1.9x.
struct PrecisionCheck {
  std::string precision;
  double fp32_bytes_per_pass = 0.0;
  double bytes_per_pass = 0.0;
  double bytes_ratio = 0.0;
  double fp32_pass_ms = 0.0;
  double pass_ms = 0.0;
  double max_score_drift = 0.0;
  double selection_agreement = 0.0;
  double bytes_floor = 0.0;
  bool ok = false;
};

PrecisionCheck RunPrecisionCheck(const StackSpec& spec, size_t n_queries, size_t candidates,
                                 size_t k) {
  PrecisionCheck check;
  check.precision = PrecisionName(spec.precision);
  check.bytes_floor = spec.precision == Precision::kFp16 ? 1.9 : 2.0;
  const std::vector<BenchCase> cases =
      MakeCases(spec.model, "wikipedia", n_queries, candidates, k);

  auto measure = [&](Precision precision, double* bytes_per_pass, double* pass_ms,
                     std::vector<std::vector<size_t>>* topks, std::vector<float>* scores) {
    PrismOptions options;
    options.device = spec.device;
    options.precision = precision;
    options.dispersion_threshold = spec.threshold;
    MemoryTracker tracker;
    PrismEngine engine(spec.model, EnsureCheckpoint(spec.model, kBenchSeed, precision), options,
                       &tracker);
    double bytes = 0.0;
    double ms = 0.0;
    for (const BenchCase& bench_case : cases) {
      const RerankResult result = engine.Rerank(bench_case.request);
      bytes += static_cast<double>(result.stats.bytes_streamed);
      ms += result.stats.latency_ms;
      topks->push_back(result.topk);
      scores->insert(scores->end(), result.scores.begin(), result.scores.end());
    }
    *bytes_per_pass = bytes / static_cast<double>(cases.size());
    *pass_ms = ms / static_cast<double>(cases.size());
  };

  std::vector<std::vector<size_t>> fp32_topks;
  std::vector<std::vector<size_t>> topks;
  std::vector<float> fp32_scores;
  std::vector<float> scores;
  measure(Precision::kFp32, &check.fp32_bytes_per_pass, &check.fp32_pass_ms, &fp32_topks,
          &fp32_scores);
  measure(spec.precision, &check.bytes_per_pass, &check.pass_ms, &topks, &scores);

  // Drift over candidates neither run pruned (the fp32 top-k that also
  // survived at reduced precision); pruned candidates carry scores from
  // whatever layer dropped them. Survivors can still exit at different
  // depths, so this is the end-to-end score perturbation of the tier as
  // served — quantisation error plus its effect on exit depth.
  double agreement = 0.0;
  size_t offset = 0;
  for (size_t q = 0; q < topks.size(); ++q) {
    for (const size_t c : fp32_topks[q]) {
      if (std::find(topks[q].begin(), topks[q].end(), c) != topks[q].end()) {
        check.max_score_drift = std::max(
            check.max_score_drift,
            static_cast<double>(std::abs(fp32_scores[offset + c] - scores[offset + c])));
      }
    }
    agreement += TopKOverlap(fp32_topks[q], topks[q], k);
    offset += cases[q].request.docs.size();
  }
  check.selection_agreement = agreement / static_cast<double>(topks.size());
  check.bytes_ratio =
      check.bytes_per_pass > 0.0 ? check.fp32_bytes_per_pass / check.bytes_per_pass : 0.0;
  check.ok = check.bytes_ratio >= check.bytes_floor;
  return check;
}

void EmitJson(FILE* out, const std::string& model, const std::string& device, bool smoke,
              bool sim, const std::string& precision, const std::vector<RunRecord>& runs,
              const std::vector<OverloadCheck>& overloads,
              const std::vector<CacheCheck>& cache_checks,
              const std::vector<PrecisionCheck>& precision_checks, size_t total_mismatches,
              bool ok) {
  std::fprintf(out,
               "{\n  \"model\": \"%s\",\n  \"device\": \"%s\",\n  \"smoke\": %s,\n"
               "  \"sim\": %s,\n  \"precision\": \"%s\",\n",
               model.c_str(), device.c_str(), smoke ? "true" : "false",
               sim ? "true" : "false", precision.c_str());
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    JsonRun(out, runs[i], i + 1 == runs.size());
  }
  std::fprintf(out, "  ],\n  \"overload\": [\n");
  for (size_t i = 0; i < overloads.size(); ++i) {
    const OverloadCheck& o = overloads[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"shed_fraction\": %.6g, "
                 "\"unloaded_shed_fraction\": %.6g, \"p99_ms\": %.6g, \"bound_ms\": %.6g, "
                 "\"ok\": %s}%s\n",
                 o.scenario.c_str(), o.shed_fraction, o.unloaded_shed_fraction, o.p99_ms,
                 o.bound_ms, o.ok ? "true" : "false", i + 1 == overloads.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n  \"cache_sweep\": [\n");
  for (size_t i = 0; i < cache_checks.size(); ++i) {
    const CacheCheck& c = cache_checks[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"zipf\": %.6g, \"head_capacity\": %zu, "
                 "\"served_cache_off\": %.6g, \"served_cache_head\": %.6g, "
                 "\"speedup\": %.6g, \"hit_rate\": %.6g, \"mismatches\": %zu, \"ok\": %s}%s\n",
                 c.scenario.c_str(), c.zipf, c.head_capacity, c.served_cache_off,
                 c.served_cache_head, c.speedup, c.hit_rate, c.mismatches,
                 c.ok ? "true" : "false", i + 1 == cache_checks.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n  \"precision_check\": [\n");
  for (size_t i = 0; i < precision_checks.size(); ++i) {
    const PrecisionCheck& p = precision_checks[i];
    std::fprintf(out,
                 "    {\"precision\": \"%s\", \"fp32_bytes_per_pass\": %.6g, "
                 "\"bytes_per_pass\": %.6g, \"bytes_ratio\": %.6g, \"bytes_floor\": %.6g, "
                 "\"fp32_pass_ms\": %.6g, \"pass_ms\": %.6g, \"max_score_drift\": %.6g, "
                 "\"selection_agreement\": %.6g, \"ok\": %s}%s\n",
                 p.precision.c_str(), p.fp32_bytes_per_pass, p.bytes_per_pass, p.bytes_ratio,
                 p.bytes_floor, p.fp32_pass_ms, p.pass_ms, p.max_score_drift,
                 p.selection_agreement, p.ok ? "true" : "false",
                 i + 1 == precision_checks.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n  \"total_mismatches\": %zu,\n  \"ok\": %s\n}\n", total_mismatches,
               ok ? "true" : "false");
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const bool sim = flags.GetBool("sim", false);
  const std::string precision_name = flags.GetString("precision", "fp32");
  Precision precision = Precision::kFp32;
  if (!PrecisionByName(precision_name, &precision)) {
    std::fprintf(stderr, "unknown --precision=%s (want fp32|fp16|int8|w4)\n",
                 precision_name.c_str());
    return 1;
  }

  ModelConfig model;
  DeviceProfile device;
  if (smoke || sim) {
    model = TestModel();
    device = DeviceByName("nvidia");
    device.ssd.throttle = false;
    device.compute_slowdown = 1.0;
  } else {
    model = ModelByName(flags.GetString("model", "Qwen3-Reranker-0.6B"));
    device = DeviceByName(flags.GetString("device", "nvidia"));
    // Same rationale as bench_pool: the paper's regime is SSD-bound (large
    // checkpoints dwarf this zoo's compute), so the sweep defaults to a
    // slowed device. 0 = profile default.
    const double ssd_mbps = flags.GetDouble("ssd_mbps", 12.0);
    if (ssd_mbps > 0.0) {
      device.ssd.bandwidth_bytes_per_sec = ssd_mbps * 1024.0 * 1024.0;
    }
  }

  // The sim sweep is about serving dynamics (scheduler × replicas × load ×
  // overload), which are scenario-agnostic; default to the single-stage
  // file_search pipeline so the 10k-request grid stays in the tens of
  // seconds. Multi-stage pipelines (agent_memory issues several reranks per
  // request, each a serialized virtual-clock handshake) are ~10x slower per
  // request — opt in with --scenarios=all.
  std::vector<ScenarioKind> scenarios;
  const std::string scenario_csv = flags.GetString("scenarios", sim ? "file_search" : "all");
  if (scenario_csv == "all") {
    scenarios = AllScenarios();
  } else {
    for (const std::string& name : SplitCsv(scenario_csv)) {
      scenarios.push_back(ScenarioKindByName(name));
    }
  }
  std::vector<SchedulerKind> schedulers;
  for (const std::string& name :
       SplitCsv(flags.GetString("schedulers", "serial,batch,carousel"))) {
    schedulers.push_back(SchedulerKindByName(name));
  }
  std::vector<size_t> pool_sizes;
  for (const std::string& p : SplitCsv(flags.GetString("pool_sizes", "1,2"))) {
    pool_sizes.push_back(static_cast<size_t>(std::stoul(p)));
  }
  std::vector<double> rate_factors;  // Open-loop offered load vs serial capacity.
  for (const std::string& r : SplitCsv(flags.GetString("rates", "0.7"))) {
    rate_factors.push_back(std::stod(r));
  }

  // Virtual time is cheap: the sim sweep defaults to a 10k-request schedule
  // per run — enough for shed fractions and tail percentiles to be properties
  // of the arrival process, not of a 24-sample draw.
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", smoke ? 3 : 6));
  const size_t requests =
      static_cast<size_t>(flags.GetInt("requests", smoke ? 8 : (sim ? 10000 : 24)));
  const size_t warmup =
      static_cast<size_t>(flags.GetInt("warmup", smoke ? 2 : (sim ? 40 : 4)));
  const size_t n_queries = static_cast<size_t>(flags.GetInt("n_queries", smoke ? 4 : 8));
  const double zipf = flags.GetDouble("zipf", 0.9);
  const bool overload = !smoke && flags.GetBool("overload", true);
  // Cache knobs: smoke runs with a full-universe cache in front of every
  // stack (the mismatch gate then proves cached answers are bit-identical);
  // otherwise the main grid runs cache-off and the dedicated cache sweep
  // below measures the tier.
  const size_t cache_capacity = static_cast<size_t>(
      flags.GetInt("cache_capacity", smoke ? static_cast<int>(n_queries) : 0));
  const double cache_ttl_ms = flags.GetDouble("cache_ttl_ms", 0.0);
  const double cache_similarity = flags.GetDouble("cache_similarity", 0.0);
  const bool cache_sweep = !smoke && flags.GetBool("cache_sweep", true);

  StackSpec spec;
  spec.model = model;
  spec.device = device;
  spec.precision = precision;
  spec.threshold = static_cast<float>(flags.GetDouble("threshold", kThresholdHigh));
  spec.max_inflight = static_cast<size_t>(flags.GetInt("max_inflight", smoke ? 2 : 4));
  spec.total_threads =
      std::max<size_t>(std::thread::hardware_concurrency(), spec.max_inflight);
  spec.sim = sim;
  spec.cache_capacity = cache_capacity;
  spec.cache_ttl_ms = cache_ttl_ms;
  spec.cache_similarity = cache_similarity;
  spec.checkpoint = EnsureCheckpoint(model, kBenchSeed, precision);

  PrintHeader("Scenario serving sweep — " + model.name + " on " + device.name + " (" +
              precision_name + "), " +
              std::to_string(clients) + " clients, " + std::to_string(requests) +
              " requests (" + std::to_string(warmup) + " warmup), zipf " +
              std::to_string(zipf) + (sim ? ", simulated time" : ""));
  std::printf("%-36s %8s %9s %9s %8s %7s %8s %9s %6s\n", "scenario config", "req/s", "p50 ms",
              "p99 ms", "shed", "hit", "quality", "workfrac", "misms");

  std::vector<RunRecord> runs;
  std::vector<OverloadCheck> overloads;
  std::vector<CacheCheck> cache_checks;
  std::vector<PrecisionCheck> precision_checks;
  size_t total_mismatches = 0;

  if (precision != Precision::kFp32) {
    const PrecisionCheck check =
        RunPrecisionCheck(spec, n_queries, smoke ? 8 : 12, smoke ? 2 : 3);
    std::printf("precision check (%s): %.2f -> %.2f KiB/pass (%.2fx fewer, floor %.1fx), "
                "pass %.2f -> %.2f ms, max score drift %.4f, selection agreement %.0f%% -> %s\n",
                check.precision.c_str(), check.fp32_bytes_per_pass / 1024.0,
                check.bytes_per_pass / 1024.0, check.bytes_ratio, check.bytes_floor,
                check.fp32_pass_ms, check.pass_ms, check.max_score_drift,
                100.0 * check.selection_agreement, check.ok ? "ok" : "FAIL");
    precision_checks.push_back(check);
  }

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const ScenarioKind kind = scenarios[s];
    ScenarioOptions sopts;
    sopts.n_queries = n_queries;
    const ScenarioHarness harness(kind, model, sopts);

    // --- Single-client serial baseline: selections + unloaded timing. ----
    // Each run gets its own virtual timeline (the clock must outlive the
    // stack, whose dispatcher threads are clock participants).
    std::vector<std::vector<size_t>> baseline;
    WorkloadReport serial_unloaded;
    {
      const std::unique_ptr<SimClock> clk = sim ? std::make_unique<SimClock>() : nullptr;
      // The baseline stack is always cache-free: serial_ms below calibrates
      // deadlines and SLOs, and a cache hit's ~0 ms would deflate it.
      StackSpec baseline_spec = spec;
      baseline_spec.cache_capacity = 0;
      Stack stack = MakeStack(baseline_spec, SchedulerKind::kSerial, 1, clk.get());
      baseline = BaselineSelections(harness, stack.runner());
      WorkloadOptions wopts;
      wopts.clients = 1;
      wopts.requests = std::max<size_t>(requests / 2, harness.n_queries());
      wopts.warmup = std::min<size_t>(warmup, 2);
      wopts.zipf_skew = zipf;
      wopts.clock = clk.get();
      serial_unloaded = RunWorkload(harness, stack.runner(), wopts, &baseline);
    }
    const double serial_ms = std::max(serial_unloaded.mean_ms, 1e-3);
    const double slo_ms = 3.0 * serial_ms;

    // In smoke mode each scenario runs one scheduler (i-th scenario gets the
    // i%3-rd scheduler) so all four apps and all three schedulers are
    // covered end to end in a handful of runs.
    std::vector<SchedulerKind> scenario_schedulers = schedulers;
    if (smoke && !schedulers.empty()) {
      scenario_schedulers = {schedulers[s % schedulers.size()]};
    }

    // Unloaded reference for the overload bound: prefer the batch x1
    // closed-loop run; fall back to the single-client serial run when the
    // sweep has no pool_size-1 config (e.g. --pool_sizes=2).
    double unloaded_p99 = serial_unloaded.p99_ms;
    double unloaded_shed_fraction = 0.0;
    for (const SchedulerKind sched : scenario_schedulers) {
      const char* sched_name = sched == SchedulerKind::kSerial    ? "serial"
                               : sched == SchedulerKind::kBatch   ? "batch"
                                                                  : "carousel";
      for (const size_t pool_size : pool_sizes) {
        // Closed loop.
        {
          const std::unique_ptr<SimClock> clk = sim ? std::make_unique<SimClock>() : nullptr;
          Stack stack = MakeStack(spec, sched, pool_size, clk.get());
          WorkloadOptions wopts;
          wopts.clients = clients;
          wopts.requests = requests;
          wopts.warmup = warmup;
          wopts.zipf_skew = zipf;
          wopts.slo_ms = slo_ms;
          wopts.clock = clk.get();
          RunRecord record;
          record.scenario = harness.name();
          record.scheduler = sched_name;
          record.pool_size = pool_size;
          record.mode = "closed";
          record.clients = clients;
          record.cache_capacity = spec.cache_capacity;
          record.zipf = zipf;
          record.report = RunWorkload(harness, stack.runner(), wopts, &baseline);
          record.work_fraction = stack.Stats().WorkFraction(model.n_layers);
          AttachStats(record, stack, sim);
          total_mismatches += record.report.mismatches;
          if (pool_size == 1 && sched == SchedulerKind::kBatch) {
            unloaded_p99 = record.report.p99_ms;
            unloaded_shed_fraction = record.report.shed_fraction;
          }
          PrintRow(record);
          runs.push_back(std::move(record));
        }
        // Open loop (Poisson) at each offered-load factor of the measured
        // serial capacity.
        if (!smoke) {
          for (const double factor : rate_factors) {
            const std::unique_ptr<SimClock> clk =
                sim ? std::make_unique<SimClock>() : nullptr;
            Stack stack = MakeStack(spec, sched, pool_size, clk.get());
            WorkloadOptions wopts;
            wopts.clients = clients;
            wopts.requests = requests;
            wopts.warmup = warmup;
            wopts.zipf_skew = zipf;
            wopts.slo_ms = slo_ms;
            wopts.arrival_hz = factor * serial_unloaded.requests_per_sec;
            wopts.clock = clk.get();
            RunRecord record;
            record.scenario = harness.name();
            record.scheduler = sched_name;
            record.pool_size = pool_size;
            record.mode = "open";
            record.clients = clients;
            record.arrival_hz = wopts.arrival_hz;
            record.cache_capacity = spec.cache_capacity;
            record.zipf = zipf;
            record.report = RunWorkload(harness, stack.runner(), wopts, &baseline);
            record.work_fraction = stack.Stats().WorkFraction(model.n_layers);
            AttachStats(record, stack, sim);
            total_mismatches += record.report.mismatches;
            PrintRow(record);
            runs.push_back(std::move(record));
          }
        }
      }
    }

    // --- 2x overload phase: deadlines on, twice the closed-loop clients. --
    if (overload) {
      const std::unique_ptr<SimClock> clk = sim ? std::make_unique<SimClock>() : nullptr;
      Stack stack = MakeStack(spec, SchedulerKind::kBatch, 1, clk.get());
      WorkloadOptions wopts;
      wopts.clients = clients * 2;
      wopts.requests = requests;
      wopts.warmup = warmup;
      wopts.zipf_skew = zipf;
      wopts.slo_ms = slo_ms;
      wopts.clock = clk.get();
      // Tighter than one dispatch cycle (cf. bench_pool): anything still
      // queued when the in-flight batch completes has expired and sheds.
      wopts.deadline_ms = 1.2 * serial_ms;
      // In simulated time the closed loop would self-throttle at the virtual
      // service rate; drive the overload as an open-loop Poisson flood at 2x
      // the measured serial capacity instead, which is the regime the paper's
      // degradation story is about.
      if (sim) {
        wopts.arrival_hz = 2.0 * serial_unloaded.requests_per_sec;
      }
      RunRecord record;
      record.scenario = harness.name();
      record.scheduler = "batch";
      record.pool_size = 1;
      record.mode = "overload";
      record.clients = wopts.clients;
      record.arrival_hz = wopts.arrival_hz;
      record.deadline_ms = wopts.deadline_ms;
      // Under overload a high-priority class keeps its service: the leading
      // quarter of clients submits priority-1 requests.
      wopts.high_fraction = 0.25;
      record.cache_capacity = spec.cache_capacity;
      record.zipf = zipf;
      record.report = RunWorkload(harness, stack.runner(), wopts, &baseline);
      record.work_fraction = stack.Stats().WorkFraction(model.n_layers);
      AttachStats(record, stack, sim);
      total_mismatches += record.report.mismatches;
      PrintRow(record);

      OverloadCheck check;
      check.scenario = harness.name();
      check.shed_fraction = record.report.shed_fraction;
      check.unloaded_shed_fraction = unloaded_shed_fraction;
      check.p99_ms = record.report.p99_ms;
      // Served-only p99 may exceed the unloaded run's by at most one batch
      // interval: shedding happens the next time the dispatcher looks at
      // the queue. (Before the stats fix, shed ~0 ms latencies dragged the
      // overload percentiles *below* the unloaded ones.)
      check.bound_ms = unloaded_p99 + serial_ms * static_cast<double>(spec.max_inflight);
      check.ok = check.shed_fraction > check.unloaded_shed_fraction &&
                 record.report.p99_ms <= check.bound_ms;
      std::printf("  overload check: shed %.0f%% (unloaded %.0f%%), served p99 %.2f ms "
                  "(bound %.2f ms) -> %s\n",
                  100.0 * check.shed_fraction, 100.0 * check.unloaded_shed_fraction,
                  check.p99_ms, check.bound_ms, check.ok ? "ok" : "FAIL");
      overloads.push_back(check);
      runs.push_back(std::move(record));
    }

    // --- Cache-size × Zipf-skew sweep (first scenario only: the cache sits
    // above the apps, so its behaviour is scenario-agnostic). Each cell
    // replays the same overloaded open-loop flood — 2x the serial capacity,
    // deadlines just over one service time — through a serial stack fronted
    // by a result cache of 0 (off), head-sized, and full-universe capacity.
    // Cache-off the stack sheds roughly half the flood; the head-sized
    // cache answers the Zipf head without an engine pass, so the served
    // rate must rise by >= kCacheSpeedupFloor with 0 selection mismatches —
    // the PR's acceptance gate. -------------------------------------------
    if (cache_sweep && s == 0) {
      const size_t head_capacity = std::max<size_t>(2, harness.n_queries() / 4);
      for (const double cache_zipf : {0.7, 1.1}) {
        CacheCheck check;
        check.scenario = harness.name();
        check.zipf = cache_zipf;
        check.head_capacity = head_capacity;
        for (const size_t capacity : {size_t{0}, head_capacity, harness.n_queries()}) {
          const std::unique_ptr<SimClock> clk = sim ? std::make_unique<SimClock>() : nullptr;
          StackSpec sweep_spec = spec;
          sweep_spec.cache_capacity = capacity;
          Stack stack = MakeStack(sweep_spec, SchedulerKind::kSerial, 1, clk.get());
          WorkloadOptions wopts;
          wopts.clients = clients * 2;
          wopts.requests = requests;
          wopts.warmup = warmup;
          wopts.zipf_skew = cache_zipf;
          wopts.slo_ms = slo_ms;
          wopts.deadline_ms = 1.2 * serial_ms;
          wopts.arrival_hz = 2.0 * serial_unloaded.requests_per_sec;
          wopts.clock = clk.get();
          RunRecord record;
          record.scenario = harness.name();
          record.scheduler = "serial";
          record.pool_size = 1;
          record.mode = "cache";
          record.clients = wopts.clients;
          record.arrival_hz = wopts.arrival_hz;
          record.deadline_ms = wopts.deadline_ms;
          record.cache_capacity = capacity;
          record.zipf = cache_zipf;
          record.report = RunWorkload(harness, stack.runner(), wopts, &baseline);
          record.work_fraction = stack.Stats().WorkFraction(model.n_layers);
          AttachStats(record, stack, sim);
          total_mismatches += record.report.mismatches;
          if (capacity == 0) {
            check.served_cache_off = record.report.served_per_sec;
          } else if (capacity == head_capacity) {
            check.served_cache_head = record.report.served_per_sec;
            check.hit_rate = record.report.cache_hit_rate;
            check.mismatches = record.report.mismatches;
          }
          PrintRow(record);
          runs.push_back(std::move(record));
        }
        check.speedup = check.served_cache_off <= 0.0
                            ? 0.0
                            : check.served_cache_head / check.served_cache_off;
        check.ok = check.speedup >= kCacheSpeedupFloor && check.mismatches == 0;
        std::printf("  cache check (zipf %.1f): served %.2f -> %.2f req/s (%.2fx, floor "
                    "%.1fx), hit rate %.0f%% -> %s\n",
                    check.zipf, check.served_cache_off, check.served_cache_head, check.speedup,
                    kCacheSpeedupFloor, 100.0 * check.hit_rate, check.ok ? "ok" : "FAIL");
        cache_checks.push_back(check);
      }
    }
  }

  bool ok = total_mismatches == 0;
  for (const OverloadCheck& check : overloads) {
    ok = ok && check.ok;
  }
  for (const CacheCheck& check : cache_checks) {
    ok = ok && check.ok;
  }
  for (const PrecisionCheck& check : precision_checks) {
    ok = ok && check.ok;
  }

  std::printf("\ntotal selection mismatches vs single-client serial: %zu (expected 0)\n",
              total_mismatches);
  std::printf("\nJSON summary:\n");
  EmitJson(stdout, model.name, device.name, smoke, sim, precision_name, runs, overloads,
           cache_checks, precision_checks, total_mismatches, ok);
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out != nullptr) {
      EmitJson(out, model.name, device.name, smoke, sim, precision_name, runs, overloads,
               cache_checks, precision_checks, total_mismatches, ok);
      std::fclose(out);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("could not open %s for writing\n", json_path.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

// Progressive cluster pruning (paper §4.1).
//
// Between layers, candidates' provisional scores are checked for dispersion
// (coefficient of variation). Once the CV exceeds the dispersion threshold, a
// 1-D k-means partitions the scores; the boundary cluster — the one holding
// the K-th ranked candidate — splits the pool three ways:
//   selected  clusters above the boundary → finalised into the top-K,
//   dropped   clusters below the boundary → pruned,
//   deferred  the boundary cluster itself → keeps computing.
// Inference terminates when the deferred set exactly fills (or no slots
// remain for) the remaining top-K positions.
#ifndef PRISM_SRC_CORE_PRUNER_H_
#define PRISM_SRC_CORE_PRUNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/cluster.h"

namespace prism {

struct PrunerOptions {
  float dispersion_threshold = 0.35f;
  // When false, only hopeless candidates are dropped; winners keep computing
  // to the final layer (exact-rank mode, Discussion §7).
  bool prune_winners = true;
  int kmeans_max_k = 4;
  uint64_t seed = 0x5eed;
};

struct PruneDecision {
  bool triggered = false;   // CV crossed the threshold → clustering ran.
  bool terminate = false;   // Forward pass can stop entirely.
  double cv = 0.0;
  Clustering clustering;    // Valid iff triggered.
  // Index lists refer to positions within the *active* score vector passed in.
  std::vector<size_t> selected;
  std::vector<size_t> dropped;
  std::vector<size_t> deferred;
};

// Decides the fate of the active candidates given their provisional scores
// and the number of top-K slots still unfilled. Postconditions (checked):
// selected/dropped/deferred partition [0, scores.size()); |selected| ≤
// remaining_k; the candidate ranked `remaining_k`-th is never in `dropped`.
PruneDecision DecidePrune(const std::vector<float>& scores, size_t remaining_k,
                          const PrunerOptions& options);

}  // namespace prism

#endif  // PRISM_SRC_CORE_PRUNER_H_

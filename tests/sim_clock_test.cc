// SimClock: the discrete-event virtual clock (src/common/clock.h). These
// tests pin the protocol the serving stack's determinism rests on —
// advance-only-at-quiescence, exact-tag wakeups and deadline expiry, the
// PreWake/external-wait handshake around promises, deterministic NotifyOne
// order — and the end-to-end property that a multi-threaded timeline replays
// identically run after run. Runs in the TSan CI lane: the clock is the one
// piece of sync machinery everything else trusts.
#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"

namespace prism {
namespace {

TEST(SimClockTest, StartsAtZeroAndSleepsAdvanceExactly) {
  SimClock clock;
  EXPECT_EQ(clock.NowMs(), 0.0);
  // A lone non-participant sleeper: nothing gates the advance, so the clock
  // jumps straight to the tag — no wall time passes.
  clock.SleepUntil(12.5);
  EXPECT_EQ(clock.NowMs(), 12.5);
  clock.SleepFor(0.5);
  EXPECT_EQ(clock.NowMs(), 13.0);
  // Sleeping until the past (or the present) is a no-op, and time is
  // monotonic: it never moves backwards.
  clock.SleepUntil(1.0);
  EXPECT_EQ(clock.NowMs(), 13.0);
  EXPECT_GE(clock.advances(), 2u);
}

TEST(SimClockTest, AdvancesOnlyWhenAllParticipantsBlockAndWakesInTagOrder) {
  SimClock clock;
  std::mutex log_mu;
  std::vector<size_t> wake_order;
  // Three participants sleeping until 1000, 2000, 3000 virtual ms. On the
  // wall clock this would take six seconds; here it completes as fast as the
  // threads can block — and in exactly tag order, because each wake leaves a
  // single runnable thread whose append happens before the next advance.
  // The reservation keeps thread 0 from advancing before 1 and 2 exist.
  clock.ExpectParticipants(3);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      const ClockMembership membership(&clock);
      clock.SleepUntil(static_cast<double>(c + 1) * 1000.0);
      std::lock_guard<std::mutex> lock(log_mu);
      wake_order.push_back(c);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(wake_order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(clock.NowMs(), 3000.0);
}

TEST(SimClockTest, CondVarDeadlineExpiresAtTheExactInstant) {
  SimClock clock;
  std::unique_ptr<ClockCondVar> cv = clock.MakeCondVar();
  Mutex mu;
  MutexLock lock(mu);
  // No notifier anywhere: the wait can only end by expiry, and the clock
  // must land exactly on the deadline tag — not a tick past it.
  const bool ok = cv->WaitUntil(mu, 5.0);
  EXPECT_FALSE(ok);
  EXPECT_EQ(clock.NowMs(), 5.0);
  // A deadline at (or before) the current instant returns false without
  // blocking and without moving time.
  EXPECT_FALSE(cv->WaitUntil(mu, 5.0));
  EXPECT_FALSE(cv->WaitUntil(mu, 2.0));
  EXPECT_EQ(clock.NowMs(), 5.0);
}

TEST(SimClockTest, NotifyBeforeDeadlineWinsAndFreezesTimeAtTheNotify) {
  SimClock clock;
  std::unique_ptr<ClockCondVar> cv = clock.MakeCondVar();
  Mutex mu;
  bool ready = false;
  // Without the reservation the notifier could join, sleep, and fire (or
  // the waiter could expire) before the other thread even registered.
  clock.ExpectParticipants(2);
  std::thread waiter([&] {
    const ClockMembership membership(&clock);
    MutexLock lock(mu);
    bool ok = true;
    while (!ready) {
      if (!cv->WaitUntil(mu, 10.0)) {
        ok = ready;
        break;
      }
    }
    EXPECT_TRUE(ok);
    // The notifier fired at virtual 2.0; the 10.0 deadline never arrived.
    EXPECT_EQ(clock.NowMs(), 2.0);
  });
  std::thread notifier([&] {
    const ClockMembership membership(&clock);
    clock.SleepUntil(2.0);
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv->NotifyOne();
  });
  waiter.join();
  notifier.join();
  EXPECT_EQ(clock.NowMs(), 2.0);
}

TEST(SimClockTest, NotifyOneResumesWaitersInEnrollmentOrder) {
  SimClock clock;
  std::unique_ptr<ClockCondVar> cv = clock.MakeCondVar();
  Mutex mu;
  int tokens = 0;
  std::vector<int> order;
  // Waiters 1 and 2 enroll at staggered virtual instants (the sleep makes
  // enrollment order deterministic); the notifier then releases one token at
  // a time. NotifyOne must resume the longest-enrolled waiter first.
  clock.ExpectParticipants(3);
  std::vector<std::thread> threads;
  for (int id = 1; id <= 2; ++id) {
    threads.emplace_back([&, id] {
      const ClockMembership membership(&clock);
      clock.SleepUntil(static_cast<double>(id));
      MutexLock lock(mu);
      while (tokens <= 0) {
        cv->Wait(mu);
      }
      --tokens;
      order.push_back(id);
    });
  }
  threads.emplace_back([&] {
    const ClockMembership membership(&clock);
    for (int round = 0; round < 2; ++round) {
      clock.SleepUntil(static_cast<double>(10 + round));
      {
        MutexLock lock(mu);
        ++tokens;
      }
      cv->NotifyOne();
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimClockTest, YieldUntilQuiescentWaitsOutTheInstantWithoutAdvancingTime) {
  SimClock clock;
  const ClockMembership membership(&clock);
  clock.ExpectParticipants(1);
  std::thread sleeper([&] {
    const ClockMembership member(&clock);
    clock.SleepUntil(5.0);
  });
  // The yield returns only once the sleeper is parked — and at zero virtual
  // cost: the sleeper's 5.0 tag must not fire while we are runnable.
  clock.YieldUntilQuiescent();
  EXPECT_EQ(clock.NowMs(), 0.0);
  // Now actually block past the sleeper's tag: both advances happen in
  // order (0 → 5 wakes the sleeper, 5 → 6 wakes us).
  clock.SleepUntil(6.0);
  EXPECT_EQ(clock.NowMs(), 6.0);
  sleeper.join();
}

TEST(SimClockTest, PreWakeHandshakeDeliversResultsAtTheProductionInstant) {
  SimClock clock;
  std::promise<int> promise;
  std::future<int> future = promise.get_future();
  clock.ExpectParticipants(2);
  std::thread producer([&] {
    const ClockMembership membership(&clock);
    clock.SleepUntil(3.0);
    // The token (PreWake) keeps the clock frozen until the consumer has
    // fully resumed — even though between set_value and the consumer's
    // wakeup neither thread is visibly blocked.
    clock.PreWake();
    promise.set_value(42);
  });
  std::thread consumer([&] {
    const ClockMembership membership(&clock);
    EXPECT_EQ(AwaitFuture(&clock, std::move(future)), 42);
    EXPECT_EQ(clock.NowMs(), 3.0);
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(clock.NowMs(), 3.0);
}

TEST(SimClockTest, MultiThreadedTimelineReplaysIdentically) {
  // Four threads, five sleeps each, all tags distinct: the wake sequence is
  // fully determined by the tags, so every run of the scenario must produce
  // the same event log — the property the workload determinism tests build
  // on. (Distinct tags also make the log append itself race-free: exactly
  // one thread is runnable at a time.)
  const auto run = [] {
    SimClock clock;
    std::mutex log_mu;
    std::vector<std::pair<size_t, double>> log;
    clock.ExpectParticipants(4);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < 4; ++c) {
      threads.emplace_back([&, c] {
        const ClockMembership membership(&clock);
        for (size_t i = 1; i <= 5; ++i) {
          clock.SleepUntil(static_cast<double>(i) + static_cast<double>(c) * 0.1);
          std::lock_guard<std::mutex> lock(log_mu);
          log.emplace_back(c, clock.NowMs());
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    return log;
  };
  const auto first = run();
  ASSERT_EQ(first.size(), 20u);
  // The log is exactly the tag-sorted schedule...
  for (size_t i = 1; i <= 5; ++i) {
    for (size_t c = 0; c < 4; ++c) {
      const auto& event = first[(i - 1) * 4 + c];
      EXPECT_EQ(event.first, c);
      EXPECT_EQ(event.second, static_cast<double>(i) + static_cast<double>(c) * 0.1);
    }
  }
  // ...and replays byte-identically.
  EXPECT_EQ(run(), first);
  EXPECT_EQ(run(), first);
}

}  // namespace
}  // namespace prism

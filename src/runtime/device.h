// Device profiles for the two evaluation platforms (§6.1).
//
// Absolute speed of this CPU build differs from the paper's GPUs, so the
// profiles are defined by the *ratios* PRISM's techniques interact with:
//   - SSD bandwidth vs. layer compute time (the overlap window, §3.2);
//   - relative compute speed between the platforms (compute_slowdown models
//     the Apple M2's lower throughput by stretching each layer's wall time);
//   - memory budgets that drive chunk-size planning.
#ifndef PRISM_SRC_RUNTIME_DEVICE_H_
#define PRISM_SRC_RUNTIME_DEVICE_H_

#include <string>

#include "src/storage/ssd.h"

namespace prism {

struct DeviceProfile {
  std::string name;
  SsdConfig ssd;
  // Wall-time multiplier applied to compute phases (1.0 = this machine's
  // native speed; > 1 models a slower accelerator at the same IO speed).
  double compute_slowdown = 1.0;
  // Activation-memory budget used by the chunk planner (§4.3).
  int64_t activation_budget_bytes = 4 * 1024 * 1024;
  // Baseline (HuggingFace-style) fixed batch size.
  size_t hf_batch_size = 4;
};

// RTX 5070 laptop profile: fast compute, PCIe-4.0-class (scaled) SSD.
DeviceProfile NvidiaProfile();

// Apple M2 Mac Mini profile: ~2× slower compute, slightly slower SSD,
// tighter unified-memory budget.
DeviceProfile AppleProfile();

DeviceProfile DeviceByName(const std::string& name);

// Sleeps (slowdown − 1) × elapsed to stretch a compute phase.
void ApplyComputeSlowdown(const DeviceProfile& device, int64_t elapsed_micros);

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_DEVICE_H_

#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace prism {

namespace {
// Signed 4-bit range: [-8, 7] stored biased by +8 into a nibble.
int8_t QuantizeValue4(float v, float inv_scale) {
  const int q = static_cast<int>(std::lround(v * inv_scale));
  return static_cast<int8_t>(std::clamp(q, -8, 7));
}

// Symmetric int8 range: [-127, 127] (−128 unused so the grid is symmetric
// and |err| ≤ scale/2 holds everywhere).
int8_t QuantizeValue8(float v, float inv_scale) {
  const int q = static_cast<int>(std::lround(v * inv_scale));
  return static_cast<int8_t>(std::clamp(q, -127, 127));
}
}  // namespace

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp16:
      return "fp16";
    case Precision::kInt8:
      return "int8";
    case Precision::kW4:
      return "w4";
  }
  return "?";
}

bool PrecisionByName(const std::string& name, Precision* out) {
  for (const Precision precision : kAllPrecisions) {
    if (name == PrecisionName(precision)) {
      *out = precision;
      return true;
    }
  }
  return false;
}

uint16_t Fp32ToFp16(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {
    // NaN stays NaN; infinities saturate like any other out-of-range value.
    if (mant != 0) {
      return static_cast<uint16_t>(sign | 0x7C00u | 0x200u);
    }
    return static_cast<uint16_t>(sign | 0x7BFFu);
  }
  const int e = static_cast<int>(exp) - 127 + 15;  // Rebias to half exponent.
  if (e >= 0x1F) {
    return static_cast<uint16_t>(sign | 0x7BFFu);  // Saturate to ±65504.
  }
  if (e <= 0) {
    if (e < -10) {
      return sign;  // Underflows even the smallest subnormal: ±0.
    }
    // Subnormal half: shift the 24-bit significand (implicit bit restored)
    // down to a bare 10-bit field, rounding to nearest even.
    mant |= 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - e);
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) {
    ++half;  // May carry into the exponent — that is the correct rounding.
  }
  if (half >= 0x7C00u) {
    half = 0x7BFFu;  // Rounded past the largest finite half: saturate.
  }
  return static_cast<uint16_t>(sign | half);
}

float Fp16ToFp32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t bits = sign;
  if (exp == 0) {
    if (mant != 0) {
      // Normalise the subnormal: slide the leading bit into the implicit
      // position, adjusting the exponent per shift.
      uint32_t e = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --e;
      }
      mant &= 0x3FFu;
      bits |= (e << 23) | (mant << 13);
    }
  } else if (exp == 0x1Fu) {
    bits |= 0x7F800000u | (mant << 13);
  } else {
    bits |= ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

size_t MatrixSpanBytes(Precision precision, size_t rows, size_t cols, size_t group_size) {
  switch (precision) {
    case Precision::kFp32:
      return rows * cols * sizeof(float);
    case Precision::kFp16:
      return Fp16MatrixView::SpanBytes(rows, cols);
    case Precision::kInt8:
      return Int8MatrixView::SpanBytes(rows, cols, group_size);
    case Precision::kW4:
      return QuantMatrixView::SpanBytes(rows, cols, group_size);
  }
  return 0;
}

void EncodeMatrix(Precision precision, const float* w, size_t rows, size_t cols,
                  size_t group_size, uint8_t* out) {
  switch (precision) {
    case Precision::kFp32: {
      std::memcpy(out, w, rows * cols * sizeof(float));
      return;
    }
    case Precision::kFp16: {
      uint16_t* dst = reinterpret_cast<uint16_t*>(out);
      for (size_t i = 0; i < rows * cols; ++i) {
        dst[i] = Fp32ToFp16(w[i]);
      }
      return;
    }
    case Precision::kInt8: {
      PRISM_CHECK_GT(group_size, 0u);
      PRISM_CHECK_EQ(cols % group_size, 0u);
      const size_t groups_per_row = cols / group_size;
      int8_t* values = reinterpret_cast<int8_t*>(out);
      float* scales = reinterpret_cast<float*>(out + rows * cols);
      for (size_t r = 0; r < rows; ++r) {
        const float* wr = w + r * cols;
        for (size_t g = 0; g < groups_per_row; ++g) {
          const float* group = wr + g * group_size;
          float max_abs = 0.0f;
          for (size_t i = 0; i < group_size; ++i) {
            max_abs = std::max(max_abs, std::fabs(group[i]));
          }
          const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
          const float inv_scale = 1.0f / scale;
          scales[r * groups_per_row + g] = scale;
          for (size_t i = 0; i < group_size; ++i) {
            values[r * cols + g * group_size + i] = QuantizeValue8(group[i], inv_scale);
          }
        }
      }
      return;
    }
    case Precision::kW4: {
      MemoryTracker scratch;  // Encoding scratch should not hit any tracker.
      const QuantizedMatrix qm =
          QuantizedMatrix::Quantize(w, rows, cols, group_size, MemCategory::kScratch, &scratch);
      qm.SerializeTo(out);
      return;
    }
  }
}

void DecodeMatrix(Precision precision, const uint8_t* in, size_t rows, size_t cols,
                  size_t group_size, float* out) {
  switch (precision) {
    case Precision::kFp32: {
      std::memcpy(out, in, rows * cols * sizeof(float));
      return;
    }
    case Precision::kFp16: {
      const uint16_t* src = reinterpret_cast<const uint16_t*>(in);
      for (size_t i = 0; i < rows * cols; ++i) {
        out[i] = Fp16ToFp32(src[i]);
      }
      return;
    }
    case Precision::kInt8: {
      const size_t groups_per_row = cols / group_size;
      const int8_t* values = reinterpret_cast<const int8_t*>(in);
      const float* scales = reinterpret_cast<const float*>(in + rows * cols);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t g = 0; g < groups_per_row; ++g) {
          const float scale = scales[r * groups_per_row + g];
          for (size_t i = 0; i < group_size; ++i) {
            const size_t at = r * cols + g * group_size + i;
            out[at] = scale * static_cast<float>(values[at]);
          }
        }
      }
      return;
    }
    case Precision::kW4: {
      MemoryTracker scratch;
      const QuantizedMatrix qm = QuantizedMatrix::Deserialize(in, rows, cols, group_size,
                                                              MemCategory::kScratch, &scratch);
      qm.Dequantize(out);
      return;
    }
  }
}

float Int8MaxScale(const uint8_t* in, size_t rows, size_t cols, size_t group_size) {
  const float* scales = reinterpret_cast<const float*>(in + rows * cols);
  float max_scale = 0.0f;
  for (size_t i = 0; i < rows * (cols / group_size); ++i) {
    max_scale = std::max(max_scale, scales[i]);
  }
  return max_scale;
}

QuantizedMatrix QuantizedMatrix::Quantize(const float* w, size_t rows, size_t cols,
                                          size_t group_size, MemCategory category,
                                          MemoryTracker* tracker) {
  PRISM_CHECK_GT(group_size, 0u);
  PRISM_CHECK_EQ(cols % group_size, 0u);
  PRISM_CHECK_EQ(group_size % 2, 0u);
  QuantizedMatrix qm;
  qm.rows_ = rows;
  qm.cols_ = cols;
  qm.group_size_ = group_size;
  const size_t groups_per_row = cols / group_size;
  qm.scales_.resize(rows * groups_per_row);
  qm.packed_.resize(rows * cols / 2);

  for (size_t r = 0; r < rows; ++r) {
    const float* wr = w + r * cols;
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float* group = wr + g * group_size;
      float max_abs = 0.0f;
      for (size_t i = 0; i < group_size; ++i) {
        max_abs = std::max(max_abs, std::fabs(group[i]));
      }
      const float scale = max_abs > 0.0f ? max_abs / 7.0f : 1.0f;
      const float inv_scale = 1.0f / scale;
      qm.scales_[r * groups_per_row + g] = scale;
      for (size_t i = 0; i < group_size; i += 2) {
        const uint8_t lo = static_cast<uint8_t>(QuantizeValue4(group[i], inv_scale) + 8);
        const uint8_t hi = static_cast<uint8_t>(QuantizeValue4(group[i + 1], inv_scale) + 8);
        qm.packed_[(r * cols + g * group_size + i) / 2] =
            static_cast<uint8_t>(lo | (hi << 4));
      }
    }
  }
  qm.claim_ = MemClaim(tracker, category, static_cast<int64_t>(qm.ByteSize()));
  return qm;
}

void QuantizedMatrix::Dequantize(float* out) const {
  const size_t groups_per_row = cols_ / group_size_;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float scale = scales_[r * groups_per_row + g];
      for (size_t i = 0; i < group_size_; i += 2) {
        const uint8_t byte = packed_[(r * cols_ + g * group_size_ + i) / 2];
        out[r * cols_ + g * group_size_ + i] =
            scale * static_cast<float>(static_cast<int>(byte & 0x0F) - 8);
        out[r * cols_ + g * group_size_ + i + 1] =
            scale * static_cast<float>(static_cast<int>(byte >> 4) - 8);
      }
    }
  }
}

void QuantMatrixView::MatMulTransB(const float* a, size_t m, float* c) const {
  const size_t groups_per_row = cols / group_size;
  // Dequantise one weight row at a time into a strip, then dot against every
  // input row. Row reuse across m amortises the unpack cost.
  std::vector<float> wrow(cols);
  for (size_t j = 0; j < rows; ++j) {
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float scale = scales[j * groups_per_row + g];
      for (size_t i = 0; i < group_size; i += 2) {
        const uint8_t byte = packed[(j * cols + g * group_size + i) / 2];
        wrow[g * group_size + i] = scale * static_cast<float>(static_cast<int>(byte & 0x0F) - 8);
        wrow[g * group_size + i + 1] = scale * static_cast<float>(static_cast<int>(byte >> 4) - 8);
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * cols;
      float acc = 0.0f;
      for (size_t k = 0; k < cols; ++k) {
        acc += arow[k] * wrow[k];
      }
      c[i * rows + j] = acc;
    }
  }
}

void Int8MatrixView::MatMulTransB(const float* a, size_t m, float* c) const {
  const size_t groups_per_row = cols / group_size;
  // Same strip pattern as the 4-bit kernel: unpack one weight row, dot it
  // against every input row.
  std::vector<float> wrow(cols);
  for (size_t j = 0; j < rows; ++j) {
    for (size_t g = 0; g < groups_per_row; ++g) {
      const float scale = scales[j * groups_per_row + g];
      for (size_t i = 0; i < group_size; ++i) {
        wrow[g * group_size + i] =
            scale * static_cast<float>(values[j * cols + g * group_size + i]);
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * cols;
      float acc = 0.0f;
      for (size_t k = 0; k < cols; ++k) {
        acc += arow[k] * wrow[k];
      }
      c[i * rows + j] = acc;
    }
  }
}

void Fp16MatrixView::MatMulTransB(const float* a, size_t m, float* c) const {
  std::vector<float> wrow(cols);
  for (size_t j = 0; j < rows; ++j) {
    for (size_t k = 0; k < cols; ++k) {
      wrow[k] = Fp16ToFp32(data[j * cols + k]);
    }
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * cols;
      float acc = 0.0f;
      for (size_t k = 0; k < cols; ++k) {
        acc += arow[k] * wrow[k];
      }
      c[i * rows + j] = acc;
    }
  }
}

void QuantizedMatrix::MatMulTransB(const float* a, size_t m, float* c) const {
  QuantMatrixView view{packed_.data(), scales_.data(), rows_, cols_, group_size_};
  view.MatMulTransB(a, m, c);
}

size_t QuantizedMatrix::SerializedSize() const {
  return packed_.size() + scales_.size() * sizeof(float);
}

void QuantizedMatrix::SerializeTo(uint8_t* out) const {
  std::memcpy(out, packed_.data(), packed_.size());
  std::memcpy(out + packed_.size(), scales_.data(), scales_.size() * sizeof(float));
}

QuantizedMatrix QuantizedMatrix::Deserialize(const uint8_t* in, size_t rows, size_t cols,
                                             size_t group_size, MemCategory category,
                                             MemoryTracker* tracker) {
  QuantizedMatrix qm;
  qm.rows_ = rows;
  qm.cols_ = cols;
  qm.group_size_ = group_size;
  qm.packed_.resize(rows * cols / 2);
  qm.scales_.resize(rows * (cols / group_size));
  std::memcpy(qm.packed_.data(), in, qm.packed_.size());
  std::memcpy(qm.scales_.data(), in + qm.packed_.size(), qm.scales_.size() * sizeof(float));
  qm.claim_ = MemClaim(tracker, category, static_cast<int64_t>(qm.ByteSize()));
  return qm;
}

float QuantizedMatrix::MaxScale() const {
  float max_scale = 0.0f;
  for (float s : scales_) {
    max_scale = std::max(max_scale, s);
  }
  return max_scale;
}

}  // namespace prism

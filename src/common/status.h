// Minimal Status / Result<T> error-propagation types.
//
// Fallible operations at module boundaries (file I/O, format parsing, config
// validation) return Status or Result<T>; programming errors use PRISM_CHECK.
// Exceptions are not used on hot paths.
#ifndef PRISM_SRC_COMMON_STATUS_H_
#define PRISM_SRC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace prism {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,
  kDeadlineExceeded,
};

// Human-readable name for a status code, e.g. for log messages.
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. `value()` CHECK-fails if the result holds an error, so call
// sites that cannot handle failure stay terse while still being loud.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    PRISM_CHECK_MSG(!std::get<Status>(value_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    PRISM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(value_);
  }
  T& value() & {
    PRISM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(value_);
  }
  T&& value() && {
    PRISM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(value_));
  }

  Status status() const { return ok() ? Status::Ok() : std::get<Status>(value_); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace prism

#define PRISM_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::prism::Status _status = (expr);      \
    if (!_status.ok()) {                   \
      return _status;                      \
    }                                      \
  } while (false)

#endif  // PRISM_SRC_COMMON_STATUS_H_

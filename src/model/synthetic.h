// Synthetic checkpoint generation.
//
// Generates deterministic, seeded weights implementing the planted-relevance
// residual-stream model described in DESIGN.md §4: random layer weights whose
// init scale is chosen so each layer adds a bounded perturbation to the
// residual stream, an embedding table of unit-norm random rows, and a
// unit-norm classifier direction. The same seed always produces bit-identical
// checkpoints, at every storage precision: reduced-precision checkpoints are
// encoded from the identical fp32 weights, so fp32-vs-reduced score drift
// measures only the encoding.
#ifndef PRISM_SRC_MODEL_SYNTHETIC_H_
#define PRISM_SRC_MODEL_SYNTHETIC_H_

#include <string>

#include "src/common/status.h"
#include "src/model/config.h"
#include "src/tensor/quant.h"

namespace prism {

// Writes a checkpoint for `config` to `path` with layer blobs stored at
// `precision` (embedding table and head stay fp32). The file is BlobFile v2:
// every blob carries its precision tag.
Status GenerateCheckpoint(const ModelConfig& config, uint64_t seed, const std::string& path,
                          Precision precision = Precision::kFp32);

// Convenience: generates (once) under /tmp and returns the path; subsequent
// calls with the same config+seed+precision reuse the existing file.
std::string EnsureCheckpoint(const ModelConfig& config, uint64_t seed,
                             Precision precision = Precision::kFp32);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_SYNTHETIC_H_

// RerankService: the deployment-facing facade.
//
// Owns a model's checkpoint, a PRISM engine, an optional full-inference
// reference for online calibration, and rolling service statistics — the
// piece an application (file search, RAG, agent) embeds. Rerank() is
// thread-safe: requests are admitted through a Scheduler
// (src/core/scheduler.h). With the default `max_inflight == 1` every call
// is served serially, exactly as before; with `max_inflight > 1` a batching
// scheduler coalesces concurrent requests into one engine pass that shares
// a single layer-streaming sweep, raising throughput while keeping each
// request's result bit-identical to serial execution.
#ifndef PRISM_SRC_CORE_SERVICE_H_
#define PRISM_SRC_CORE_SERVICE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/striped.h"
#include "src/core/engine.h"
#include "src/core/online_calibrator.h"
#include "src/core/scheduler.h"
#include "src/runtime/sim_runner.h"

namespace prism {

// How concurrent Rerank calls reach the engine (src/core/scheduler.h):
//   kSerial   — one request at a time (mutex).
//   kBatch    — fixed coalesced batches of up to max_inflight requests; one
//               terminating layer pass per batch with a barrier at the end.
//   kCarousel — continuous batching: a cyclic layer pass admits requests at
//               layer-0 boundaries and answers each the moment it finishes.
//   kAuto     — serial when max_inflight == 1, batch otherwise (the
//               pre-knob behaviour; default).
// All three produce bit-identical per-request results; they differ only in
// fetch sharing and admission/exit timing.
enum class SchedulerKind { kAuto, kSerial, kBatch, kCarousel };

// Parses "serial" / "batch" / "carousel" / "auto" (CHECK on anything else);
// the benches expose it as --scheduler.
SchedulerKind SchedulerKindByName(const std::string& name);

struct ServiceOptions {
  PrismOptions engine;
  // Admission policy; see SchedulerKind. kAuto preserves the historical
  // max_inflight semantics.
  SchedulerKind scheduler = SchedulerKind::kAuto;
  // Maximum requests admitted into one coalesced engine batch (kBatch) or
  // resident on the carousel at once (kCarousel). 1 (default) with kAuto
  // keeps the serial scheduler: existing callers see identical behaviour.
  size_t max_inflight = 1;
  // Worker threads for per-request compute fan-out when max_inflight > 1.
  // 0 = max(hardware cores, max_inflight): a thread per batch slot lets
  // device-wait-heavy requests overlap even on few cores.
  size_t compute_threads = 0;
  // kCarousel only: how long a drained carousel lingers — prefetch pipeline
  // warm, the next cycle's first layers already loading — before tearing
  // down. Arrivals inside the window skip the cold streamer start. The
  // cost of a longer window is up to two layer blobs held resident while
  // idle.
  double carousel_linger_ms = 200.0;
  // When set, a pruning-disabled twin engine is created and every Nth request
  // is sampled for idle-time calibration toward `target_precision`. The
  // calibrator's sample log is serial-only, so this requires
  // max_inflight == 1 (checked).
  bool online_calibration = false;
  OnlineCalibratorOptions calibration;
  // Test seam (fault injection): when non-null, the scheduler drives this
  // runner instead of the service's own engine. The engine is still built —
  // accessors like current_threshold() read it — but no request reaches it
  // unless the override forwards. Incompatible with online_calibration
  // (checked). The pointee must outlive the service.
  BatchRunner* runner_override = nullptr;
  // Time source for every scheduler wait, queue deadline, and latency
  // observation. nullptr (default) = the shared wall clock — existing
  // callers see identical behaviour. Point it at a SimClock to serve on
  // deterministic virtual time. The pointee must outlive the service.
  Clock* clock = nullptr;
  // Discrete-event service-cost model: when sim.enabled, the scheduler's
  // target is wrapped in a SimulatedRunner that charges virtual service
  // time on `clock` and memoizes results per unique request (see
  // src/runtime/sim_runner.h). Pair with a SimClock.
  SimCostOptions sim;
  // Served-latency reservoir size (see ServiceStats). 0 keeps the default;
  // size it to the expected request count for exact percentiles.
  size_t latency_sample_capacity = 0;
  // Hot-path de-contention toggles (both default on). When lockfree_stats is
  // set, per-request latency/counter observation goes through striped
  // per-thread atomic cells (ConcurrentServiceStats) instead of one
  // service-wide mutex; when lockfree_admission is set, the batch/carousel
  // RequestQueue stages producers through a bounded CAS ring instead of the
  // queue mutex. The mutexed paths are kept as the measured baseline for
  // bench_contention and as a safety valve — results are identical either
  // way, only contention behaviour differs.
  bool lockfree_stats = true;
  bool lockfree_admission = true;
};

// Rolling service statistics. RerankService accumulates these (through
// ConcurrentServiceStats by default, or under a mutex with
// lockfree_stats = false) and hands out snapshots; latencies are
// client-observed (queueing included) so concurrent-mode percentiles mean
// what an operator expects. All latency aggregates (samples, mean, max)
// cover *served* requests only: a shed or failed request's ~0 ms turnaround
// is accounted in `shed`/`errors`, never in the percentiles — otherwise
// overload would improve p50/p99 exactly when it should degrade them.
struct ServiceStats {
  // Default size of the served-latency sample reservoir. The old fixed-size
  // latency ring kept only the most recent 1024 samples, so on a
  // 10k-request run p50/p99 reflected the final tenth of the workload; the
  // reservoir keeps a uniform sample of the whole run instead (Vitter's
  // algorithm R, seeded — deterministic given observation order, which a
  // SimClock makes deterministic outright). Size it to the workload via
  // ServiceOptions::latency_sample_capacity for exact percentiles.
  static constexpr size_t kDefaultLatencySampleCapacity = 1024;

  size_t requests = 0;
  // Of `requests`: shed on an expired deadline / failed with any other
  // non-ok status. Served requests are `requests - shed - errors`.
  size_t shed = 0;
  size_t errors = 0;
  double total_latency_ms = 0.0;  // Served requests only.
  double max_latency_ms = 0.0;    // Served requests only.
  int64_t total_candidate_layers = 0;  // Served requests only.
  int64_t total_candidates = 0;        // Served requests only.
  int64_t bytes_streamed = 0;          // All requests (failed ones still read).
  // Embedding-cache counters (snapshot-filled by RerankService::stats()
  // from the engine's cache; all zero when no cache, or when the cache is
  // pool-shared — the pool then adds the shared cache's counters once).
  int64_t embed_hits = 0;
  int64_t embed_misses = 0;
  int64_t embed_miss_bytes = 0;
  // Uniform reservoir over every served latency; `latency_observed` counts
  // the observations offered to it.
  std::vector<double> latency_samples;
  size_t latency_observed = 0;
  size_t latency_capacity = kDefaultLatencySampleCapacity;
  uint64_t reservoir_state = 0x5EED5A3217ULL;  // SplitMix64 stream state.

  void Observe(const RerankRequest& request, const RerankResult& result, double observed_ms);

  // Folds another snapshot into this one (ServicePool aggregation, stripe
  // folds). Counters add; the latency reservoirs combine in proportion to
  // each side's latency_observed — the lighter-weighted side is
  // deterministically subsampled (seeded by reservoir_state) until both
  // sides' samples stand for the same number of observations, then the
  // samples concatenate. Raw concatenation used to give a replica that
  // served 10× fewer requests 10× over-weighted samples in the pool's
  // p50/p99; two exact (un-overflowed) reservoirs still merge exactly. The
  // merged sample count may exceed latency_capacity — fine for a snapshot,
  // which only feeds the percentile queries below.
  void Merge(const ServiceStats& other);

  // Clamped: a snapshot folded from concurrently-mutated stripes can tear
  // between the `requests` and `shed`/`errors` increments of an in-flight
  // observation, so the unsigned difference must never be allowed to wrap.
  size_t served() const {
    const size_t finished = shed + errors;
    return requests > finished ? requests - finished : 0;
  }

  // Mean client-observed latency over served requests.
  double MeanLatencyMs() const {
    return served() == 0 ? 0.0 : total_latency_ms / static_cast<double>(served());
  }

  double EmbedHitRate() const {
    const int64_t total = embed_hits + embed_misses;
    return total == 0 ? 0.0 : static_cast<double>(embed_hits) / static_cast<double>(total);
  }

  // Served-only latency percentile (p in [0, 100]) over the sample
  // reservoir; 0 when empty.
  double LatencyPercentileMs(double p) const;
  double P50LatencyMs() const { return LatencyPercentileMs(50.0); }
  double P99LatencyMs() const { return LatencyPercentileMs(99.0); }

  // Fraction of full-inference work actually executed on served requests
  // (1.0 = no pruning win). Shed requests burned no layers and contribute
  // to neither numerator nor denominator.
  double WorkFraction(size_t n_layers) const {
    const auto full = static_cast<double>(total_candidates) * static_cast<double>(n_layers);
    return full == 0.0 ? 0.0 : static_cast<double>(total_candidate_layers) / full;
  }
};

// Lock-free-by-default accumulator behind RerankService's per-request stats
// hot path. Observe() never takes a service-wide lock: counters go to
// striped cache-line-padded atomic cells (src/common/striped.h), indexed by
// the calling thread's registration ordinal, so concurrent completers touch
// disjoint lines. Each stripe also owns a full-capacity seeded latency
// reservoir behind a per-stripe mutex — effectively uncontended, since a
// thread maps to exactly one stripe — and Snapshot() folds the stripes into
// a plain ServiceStats with the same observed-count-weighted merge the pool
// uses, so stripe percentiles stay unbiased no matter how unevenly threads
// mapped. A fold is a snapshot, not a linearizable total: counters read
// relaxed and may tear against in-flight observations (which is why
// ServiceStats::served() clamps).
class ConcurrentServiceStats {
 public:
  explicit ConcurrentServiceStats(
      size_t latency_capacity = ServiceStats::kDefaultLatencySampleCapacity);

  ConcurrentServiceStats(const ConcurrentServiceStats&) = delete;
  ConcurrentServiceStats& operator=(const ConcurrentServiceStats&) = delete;

  // Thread-safe, lock-free on the counter path (the stripe reservoir's
  // mutex is private to the calling thread's stripe).
  void Observe(const RerankRequest& request, const RerankResult& result, double observed_ms);

  // Thread-safe; may run concurrently with Observe.
  ServiceStats Snapshot() const;

 private:
  // Stripe count: enough that 32 completer threads rarely share a line,
  // small enough that a snapshot fold stays trivial. Fixed (not
  // hardware-derived) so stripe assignment is host-independent.
  static constexpr size_t kStripes = 16;

  struct alignas(kCacheLineBytes) Stripe {
    CounterCell requests;
    CounterCell shed;
    CounterCell errors;
    CounterCell candidate_layers;
    CounterCell candidates;
    CounterCell bytes_streamed;
    GaugeCell total_latency_ms;
    GaugeCell max_latency_ms;
    // Per-stripe seeded reservoir (same algorithm R as ServiceStats). Full
    // latency_capacity per stripe: a stripe that happens to absorb most of
    // the traffic still keeps as many samples as the mutexed path would.
    mutable Mutex reservoir_mu;
    std::vector<double> samples PRISM_GUARDED_BY(reservoir_mu);
    size_t observed PRISM_GUARDED_BY(reservoir_mu) = 0;
    uint64_t rng_state PRISM_GUARDED_BY(reservoir_mu) = 0;
  };

  const size_t latency_capacity_;
  std::vector<Stripe> stripes_;
};

// RerankService is itself a Runner: any call site that drives a raw engine
// (the application pipelines in src/apps/ foremost) can be pointed at a
// service — and so at any scheduler — without changing the call site.
// Unlike most Runner implementations, Rerank here is thread-safe.
class RerankService : public Runner {
 public:
  RerankService(const ModelConfig& config, const std::string& checkpoint_path,
                ServiceOptions options, MemoryTracker* tracker = &MemoryTracker::Global());

  // Thread-safe; blocks until the request has been served.
  RerankResult Rerank(const RerankRequest& request) override;

  std::string name() const override { return "service:" + scheduler_->name(); }

  // Idle hook: runs one online-calibration cycle if enabled (no-op
  // otherwise). Returns the measured agreement or NaN. Thread-safe — the
  // calibrator's sample log is mutex-guarded, so this may overlap serving —
  // but it runs full-inference ground truth, so call it when the service is
  // otherwise idle.
  double OnIdle();

  ServiceStats stats() const;  // Snapshot.
  const ModelConfig& config() const { return config_; }
  float current_threshold() const { return engine_->dispersion_threshold(); }
  const Scheduler& scheduler() const { return *scheduler_; }
  // The service's engine (always built, even with a runner override) —
  // exposed so a front-end result cache can borrow its embedding source
  // for the similarity-admission tier.
  PrismEngine& engine() { return *engine_; }

 private:
  ModelConfig config_;
  Clock* clock_;
  std::unique_ptr<PrismEngine> engine_;
  std::unique_ptr<PrismEngine> reference_;  // Pruning-off twin (calibration).
  std::unique_ptr<OnlineCalibrator> calibrator_;
  std::unique_ptr<SimulatedRunner> sim_runner_;  // Only when options.sim.enabled.
  std::unique_ptr<Scheduler> scheduler_;
  // Exactly one of the two stats paths is active (ServiceOptions::
  // lockfree_stats): the striped accumulator, or the legacy mutex-guarded
  // struct kept as bench_contention's baseline.
  std::unique_ptr<ConcurrentServiceStats> striped_stats_;
  mutable Mutex stats_mu_;
  ServiceStats stats_ PRISM_GUARDED_BY(stats_mu_);
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SERVICE_H_

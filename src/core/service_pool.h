// ServicePool: sharded multi-replica serving behind one Rerank() facade.
//
// One RerankService batches well but owns exactly one engine — one simulated
// device queue, one spill pool, one embedding cache. To scale past a single
// device, the pool owns N fully independent replicas (each its own
// RerankService, hence its own engine, device model, spill pool, and cache)
// and routes every request through a pluggable LoadBalancer:
//
//   round_robin    — rotate through replicas; fair under uniform traffic.
//   least_loaded   — pick the replica with the fewest in-flight requests;
//                    absorbs skewed request costs.
//   query_affinity — hash the query's tokens to a replica, so repeated
//                    queries land on a warm EmbeddingCache (at the price of
//                    load skew under a hot query).
//
// Every replica runs the same checkpoint and options, so routing never
// changes a result: a request's topk/scores are bit-identical whichever
// replica serves it. Deadline shedding and priority ordering happen inside
// each replica's scheduler (src/core/scheduler.h); the pool adds placement
// and aggregate observability on top.
#ifndef PRISM_SRC_CORE_SERVICE_POOL_H_
#define PRISM_SRC_CORE_SERVICE_POOL_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/service.h"

namespace prism {

enum class LoadBalancePolicy { kRoundRobin, kLeastLoaded, kQueryAffinity };

const char* LoadBalancePolicyName(LoadBalancePolicy policy);
LoadBalancePolicy LoadBalancePolicyByName(const std::string& name);

// Replica-selection strategy. Pick() must be thread-safe: the pool calls it
// from every client thread. `inflight[i]` is a snapshot of replica i's
// currently-admitted request count (including queued ones); `query_hash` is
// the request's QueryHash, computed once per request by the pool (or handed
// down from an upstream layer that already paid for it — see
// HashAwareRunner) so policies never re-hash the token stream.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual size_t Pick(const RerankRequest& request, uint64_t query_hash,
                      std::span<const size_t> inflight) = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<LoadBalancer> MakeLoadBalancer(LoadBalancePolicy policy);

// Stable hash of a query's tokens (used by the affinity balancer, the
// result cache's key, and exposed for tests: affinity routing must be a
// pure function of these).
uint64_t QueryHash(const RerankRequest& request);

// Runner extension for layers that already hashed the query: RerankHashed
// behaves exactly like Rerank but accepts the precomputed QueryHash, so a
// front-end cache and the affinity balancer share one token-hashing pass
// instead of hashing the same request twice on the hot path. ResultCache
// (src/serving/result_cache.h) probes for this interface at construction.
class HashAwareRunner {
 public:
  virtual ~HashAwareRunner() = default;
  virtual RerankResult RerankHashed(const RerankRequest& request, uint64_t query_hash) = 0;
};

struct ServicePoolOptions {
  // Per-replica configuration; every replica is built from this template.
  ServiceOptions service;
  size_t pool_size = 2;
  LoadBalancePolicy balancer = LoadBalancePolicy::kLeastLoaded;
  // Share one EmbeddingCache across every replica instead of building
  // pool_size private ones: a head query warmed by any replica hits from
  // all of them (affinity routing no longer gates warmth) and the resident
  // budget is one cache, not N. The shared cache reads misses through its
  // own BlobFileReader on the same checkpoint; it is internally mutex-
  // guarded, and row values are interleaving-independent, so results stay
  // bit-identical. Ignored when the replica options disable embed_cache or
  // when replicas are adopted pre-built.
  bool share_embed_cache = false;
};

// Pool-wide snapshot: the merged per-replica ServiceStats plus placement
// counters, so an operator can see both aggregate latency percentiles and
// whether the balancer is spreading load. With a shared embedding cache the
// aggregate's embed_* counters come from the one shared cache (counted
// once), not from per-replica merges.
struct PoolStats {
  ServiceStats aggregate;                 // All replicas merged.
  std::vector<size_t> replica_requests;   // Admitted per replica, cumulative.
  std::vector<size_t> replica_inflight;   // In flight per replica, snapshot.
};

// Like RerankService, the pool is a Runner, so an application pipeline can
// be served by one replica or a whole pool through the same pointer.
class ServicePool : public Runner, public HashAwareRunner {
 public:
  // Builds `pool_size` replicas of (config, checkpoint, options.service).
  ServicePool(const ModelConfig& config, const std::string& checkpoint_path,
              ServicePoolOptions options, MemoryTracker* tracker = &MemoryTracker::Global());

  // Adopts pre-built replicas (tests inject fault-wrapped services here).
  ServicePool(std::vector<std::unique_ptr<RerankService>> replicas, ServicePoolOptions options);

  // Thread-safe; routes to a replica and blocks until served (or shed).
  RerankResult Rerank(const RerankRequest& request) override;

  // Rerank with the QueryHash already computed upstream (HashAwareRunner).
  RerankResult RerankHashed(const RerankRequest& request, uint64_t query_hash) override;

  std::string name() const override;

  size_t pool_size() const { return replicas_.size(); }
  const LoadBalancer& balancer() const { return *balancer_; }
  RerankService& replica(size_t i) { return *replicas_[i]; }
  // Null unless share_embed_cache built one.
  const EmbeddingCache* shared_embed_cache() const { return shared_embed_cache_.get(); }

  PoolStats stats() const;

 private:
  ServicePoolOptions options_;
  // Shared-embedding-cache plumbing; must be declared before (so destroyed
  // after) the replicas that point into it.
  std::unique_ptr<BlobFileReader> shared_embed_reader_;
  std::unique_ptr<EmbeddingCache> shared_embed_cache_;
  std::vector<std::unique_ptr<RerankService>> replicas_;
  std::unique_ptr<LoadBalancer> balancer_;
  // Indexed by replica; atomics because every client thread updates them.
  std::unique_ptr<std::atomic<size_t>[]> inflight_;
  std::unique_ptr<std::atomic<size_t>[]> admitted_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_SERVICE_POOL_H_

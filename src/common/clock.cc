#include "src/common/clock.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "src/common/mutex.h"

namespace prism {
namespace {

// Thread-local record of which SimClocks this thread has Join()ed. A plain
// pointer suffices: a thread participates in at most one simulation at a
// time in practice, but nesting Join()s on distinct clocks is tolerated by
// keeping a small stack.
thread_local std::vector<const SimClock*> tls_memberships;

bool ThisThreadJoined(const SimClock* clock) {
  for (const SimClock* member : tls_memberships) {
    if (member == clock) return true;
  }
  return false;
}

// The wall-clock condition variable: std::condition_variable over the
// caller's mutex, time read through the shared epoch.
class WallCondVar : public ClockCondVar {
 public:
  explicit WallCondVar(const std::chrono::steady_clock::time_point epoch) : epoch_(epoch) {}

  void Wait(Mutex& mu) override PRISM_REQUIRES(mu) {
    NativeMutexLock lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Still locked; ownership returns to the caller.
  }

  bool WaitUntil(Mutex& mu, double deadline_ms) override PRISM_REQUIRES(mu) {
    const auto deadline =
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(deadline_ms));
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;  // Already expired: never park (matches SimCondVar).
    }
    NativeMutexLock lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() override { cv_.notify_one(); }
  void NotifyAll() override { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

// ---------------------------------------------------------------------------
// WallClock

double WallClock::NowMs() {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void WallClock::SleepUntil(double wake_ms) {
  const auto wake = epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double, std::milli>(wake_ms));
  std::this_thread::sleep_until(wake);
}

std::unique_ptr<ClockCondVar> WallClock::MakeCondVar() {
  return std::make_unique<WallCondVar>(epoch_);
}

WallClock& WallClock::Get() {
  static WallClock* instance = new WallClock();
  return *instance;
}

// ---------------------------------------------------------------------------
// SimCondVar

// Waiters enroll in the clock's central table while holding BOTH the user's
// mutex and the clock's mutex (acquired in that order everywhere), so a
// notify that happens after the user mutex is released but before the waiter
// parks still finds the enrolled entry — no missed wakeups.
class SimCondVar : public ClockCondVar {
 public:
  explicit SimCondVar(SimClock* clock) : clock_(clock) {}

  void Wait(Mutex& mu) override PRISM_REQUIRES(mu) { WaitOnce(mu, SimClock::kNever); }

  bool WaitUntil(Mutex& mu, double deadline_ms) override PRISM_REQUIRES(mu) {
    {
      MutexLock clock_lock(clock_->mu_);
      if (clock_->now_ms_ >= deadline_ms) {
        return false;  // Already expired: never park.
      }
    }
    WaitOnce(mu, deadline_ms);
    // The park ends on a notify or on the deadline tag arriving; report
    // which (a notify landing exactly at the deadline counts as expiry —
    // the caller re-checks its condition either way).
    MutexLock clock_lock(clock_->mu_);
    return clock_->now_ms_ < deadline_ms;
  }

  void NotifyOne() override {
    MutexLock clock_lock(clock_->mu_);
    // Deterministic: resume the longest-enrolled non-woken waiter of this cv.
    SimClock::Waiter* chosen = nullptr;
    for (SimClock::Waiter* waiter : clock_->waiters_) {
      if (waiter->cv_tag == this && !waiter->wake &&
          (chosen == nullptr || waiter->seq < chosen->seq)) {
        chosen = waiter;
      }
    }
    if (chosen != nullptr) {
      chosen->wake = true;
      clock_->cv_.notify_all();
    }
  }

  void NotifyAll() override {
    MutexLock clock_lock(clock_->mu_);
    bool any = false;
    for (SimClock::Waiter* waiter : clock_->waiters_) {
      if (waiter->cv_tag == this && !waiter->wake) {
        waiter->wake = true;
        any = true;
      }
    }
    if (any) {
      clock_->cv_.notify_all();
    }
  }

 private:
  // One enrollment/park/deenroll round trip. Returns after a notify or once
  // virtual time reaches `deadline_ms`. The user's mutex is released while
  // parked and re-acquired before returning (standard cv contract; the
  // release/relock happens through native() and is invisible to the
  // thread-safety analysis, which only checks the held-on-entry-and-exit
  // contract declared by PRISM_REQUIRES).
  void WaitOnce(Mutex& mu, double deadline_ms) PRISM_REQUIRES(mu) {
    SimClock::Waiter waiter;
    waiter.wake_ms = deadline_ms;
    waiter.cv_tag = this;
    {
      // User mutex still held here — enrollment is atomic w.r.t. notifies.
      MutexLock clock_lock(clock_->mu_);
      clock_->EnrollLocked(&waiter);
      mu.native().unlock();
      clock_->BlockLocked(clock_lock.native_lock(), &waiter);
      clock_->DeenrollLocked(&waiter);
    }
    mu.native().lock();
  }

  SimClock* clock_;
};

// ---------------------------------------------------------------------------
// SimClock

SimClock::~SimClock() {
  MutexLock lock(mu_);
  assert(waiters_.empty() && "SimClock destroyed with threads still blocked on it");
}

double SimClock::NowMs() {
  MutexLock lock(mu_);
  return now_ms_;
}

void SimClock::SleepUntil(double wake_ms) {
  MutexLock lock(mu_);
  if (now_ms_ >= wake_ms) return;
  Waiter waiter;
  waiter.wake_ms = wake_ms;
  EnrollLocked(&waiter);
  BlockLocked(lock.native_lock(), &waiter);
  DeenrollLocked(&waiter);
}

std::unique_ptr<ClockCondVar> SimClock::MakeCondVar() {
  return std::make_unique<SimCondVar>(this);
}

void SimClock::Join() {
  MutexLock lock(mu_);
  tls_memberships.push_back(this);
  ++participants_;
  if (reserved_ > 0) {
    --reserved_;
    // The last expected participant has arrived; the others (necessarily
    // blocked for time to have been frozen this long) may now be quiescent.
    if (reserved_ == 0) {
      MaybeAdvanceLocked();
    }
  }
}

void SimClock::Leave() {
  MutexLock lock(mu_);
  for (size_t i = tls_memberships.size(); i-- > 0;) {
    if (tls_memberships[i] == this) {
      tls_memberships.erase(tls_memberships.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  assert(participants_ > 0);
  --participants_;
  // One fewer runnable thread: the rest may now be quiescent.
  MaybeAdvanceLocked();
}

void SimClock::ExpectParticipants(size_t n) {
  MutexLock lock(mu_);
  reserved_ += n;
}

void SimClock::YieldUntilQuiescent() {
  // A zero-length virtual sleep: tag == now, so the advance that wakes it
  // never moves time — it just waits for every other participant to block.
  MutexLock lock(mu_);
  Waiter waiter;
  waiter.wake_ms = now_ms_;
  EnrollLocked(&waiter);
  BlockLocked(lock.native_lock(), &waiter);
  DeenrollLocked(&waiter);
}

void SimClock::PreWake() {
  MutexLock lock(mu_);
  ++pending_wakeups_;
}

void SimClock::BeginExternalWait() {
  MutexLock lock(mu_);
  // Only participants count toward the quiescence gate — a non-participant
  // in an external wait must not loosen it (it never gated advance anyway).
  if (ThisThreadJoined(this)) {
    ++external_;
    // The caller is about to block outside the clock's view; the remaining
    // participants may now be quiescent.
    MaybeAdvanceLocked();
  }
}

void SimClock::EndExternalWait() {
  MutexLock lock(mu_);
  if (ThisThreadJoined(this)) {
    assert(external_ > 0);
    --external_;
  }
  // Consume the PreWake token that released this wait. Tokens gate advance:
  // between set_value and here the woken thread is invisible (neither
  // enrolled nor external), and the token is what keeps time frozen for it.
  if (pending_wakeups_ > 0) {
    --pending_wakeups_;
  }
}

size_t SimClock::participants() const {
  MutexLock lock(mu_);
  return participants_;
}

uint64_t SimClock::advances() const {
  MutexLock lock(mu_);
  return advances_;
}

void SimClock::EnrollLocked(Waiter* waiter) {
  waiter->seq = next_seq_++;
  waiter->participant = ThisThreadJoined(this);
  waiters_.push_back(waiter);
  // This thread just went from runnable to blocked: check for quiescence.
  MaybeAdvanceLocked();
}

void SimClock::DeenrollLocked(Waiter* waiter) {
  for (size_t i = 0; i < waiters_.size(); ++i) {
    if (waiters_[i] == waiter) {
      waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void SimClock::MaybeAdvanceLocked() {
  // Quiescence: every participant is accounted for — enrolled as a waiter or
  // parked in an external wait — and no cross-thread wake is in flight.
  // (Threads that never Join()ed, e.g. a test's main thread doing a serial
  // virtual sleep, don't gate advance but their tags DO schedule it.)
  size_t blocked_participants = 0;
  for (const Waiter* waiter : waiters_) {
    if (waiter->participant && !waiter->wake) {
      ++blocked_participants;
    }
  }
  if (reserved_ > 0 || blocked_participants + external_ < participants_ ||
      pending_wakeups_ > 0) {
    return;
  }
  // Earliest scheduled tag over ALL non-woken waiters, participant or not.
  double min_tag = kNever;
  for (const Waiter* waiter : waiters_) {
    if (!waiter->wake) {
      min_tag = std::min(min_tag, waiter->wake_ms);
    }
  }
  if (min_tag == kNever) {
    return;  // Nothing scheduled: either idle or a real deadlock upstream.
  }
  now_ms_ = std::max(now_ms_, min_tag);
  ++advances_;
  bool woke_any = false;
  for (Waiter* waiter : waiters_) {
    if (!waiter->wake && waiter->wake_ms <= now_ms_) {
      waiter->wake = true;
      woke_any = true;
    }
  }
  if (woke_any) {
    cv_.notify_all();
  }
}

void SimClock::BlockLocked(NativeMutexLock& lock, Waiter* waiter) {
  while (!waiter->wake) {
    cv_.wait(lock);
    // A wake may have landed for someone else, or state changed (Leave,
    // BeginExternalWait, new enrollment); re-evaluate advance each round.
    if (!waiter->wake) {
      MaybeAdvanceLocked();
    }
  }
}

}  // namespace prism

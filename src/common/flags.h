// Minimal --key=value command-line parsing for bench/example binaries.
#ifndef PRISM_SRC_COMMON_FLAGS_H_
#define PRISM_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>

namespace prism {

class Flags {
 public:
  // Accepts "--key=value" and bare "--key" (value "true"); ignores others.
  Flags(int argc, char** argv);

  std::string GetString(const std::string& key, const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  bool Has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_FLAGS_H_

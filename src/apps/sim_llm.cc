#include "src/apps/sim_llm.h"

#include <chrono>
#include <thread>

#include "src/common/timer.h"

namespace prism {

SimLlmResult SimulatedLlm::Generate(size_t prompt_tokens, size_t max_new_tokens) const {
  SimLlmResult result;
  result.generated_tokens = max_new_tokens;
  const WallTimer timer;
  MemClaim claim(tracker_, MemCategory::kScratch,
                 config_.base_bytes + config_.bytes_per_context_token *
                                          static_cast<int64_t>(prompt_tokens + max_new_tokens));
  const double prefill_s = static_cast<double>(prompt_tokens) / config_.prefill_tokens_per_sec;
  std::this_thread::sleep_for(std::chrono::duration<double>(prefill_s));
  result.first_token_ms = timer.ElapsedMillis();
  const double decode_s = static_cast<double>(max_new_tokens) / config_.decode_tokens_per_sec;
  std::this_thread::sleep_for(std::chrono::duration<double>(decode_s));
  result.latency_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace prism

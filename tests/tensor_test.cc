#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace prism {
namespace {

Tensor RandomTensor(size_t rows, size_t cols, uint64_t seed, MemoryTracker* tracker) {
  Tensor t(rows, cols, MemCategory::kScratch, tracker);
  Rng rng(seed);
  for (float& v : t.flat()) {
    v = static_cast<float>(rng.NextGaussian());
  }
  return t;
}

// Reference O(n³) matmul for cross-checking the optimised kernels.
void NaiveMatMul(const Tensor& a, const Tensor& b, Tensor* c, bool trans_b) {
  for (size_t i = 0; i < c->rows(); ++i) {
    for (size_t j = 0; j < c->cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * (trans_b ? b.at(j, k) : b.at(k, j));
      }
      c->at(i, j) = static_cast<float>(acc);
    }
  }
}

TEST(TensorTest, AllocationTracksMemory) {
  MemoryTracker tracker;
  {
    Tensor t(8, 16, MemCategory::kActivations, &tracker);
    EXPECT_EQ(tracker.CurrentBytes(MemCategory::kActivations), 8 * 16 * 4);
    EXPECT_EQ(t.rows(), 8u);
    EXPECT_EQ(t.cols(), 16u);
  }
  EXPECT_EQ(tracker.CurrentBytes(MemCategory::kActivations), 0);
}

TEST(TensorTest, CloneCopiesData) {
  MemoryTracker tracker;
  Tensor t(2, 2, MemCategory::kScratch, &tracker);
  t.at(0, 1) = 3.5f;
  Tensor copy = t.Clone(MemCategory::kScratch, &tracker);
  EXPECT_EQ(copy.at(0, 1), 3.5f);
  copy.at(0, 1) = 1.0f;
  EXPECT_EQ(t.at(0, 1), 3.5f);
}

TEST(TensorTest, RowSpanWrites) {
  MemoryTracker tracker;
  Tensor t(3, 4, MemCategory::kScratch, &tracker);
  auto row = t.row(1);
  row[2] = 7.0f;
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(OpsTest, MatMulMatchesNaive) {
  MemoryTracker tracker;
  const Tensor a = RandomTensor(7, 13, 1, &tracker);
  const Tensor b = RandomTensor(13, 9, 2, &tracker);
  Tensor c(7, 9, MemCategory::kScratch, &tracker);
  Tensor ref(7, 9, MemCategory::kScratch, &tracker);
  MatMul(a, b, &c);
  NaiveMatMul(a, b, &ref, /*trans_b=*/false);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.flat()[i], ref.flat()[i], 1e-4f);
  }
}

TEST(OpsTest, MatMulTransBMatchesNaive) {
  MemoryTracker tracker;
  const Tensor a = RandomTensor(11, 16, 3, &tracker);
  const Tensor b = RandomTensor(10, 16, 4, &tracker);  // [n, k]
  Tensor c(11, 10, MemCategory::kScratch, &tracker);
  Tensor ref(11, 10, MemCategory::kScratch, &tracker);
  MatMulTransB(a, b, &c);
  NaiveMatMul(a, b, &ref, /*trans_b=*/true);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.flat()[i], ref.flat()[i], 1e-4f);
  }
}

TEST(OpsTest, AddInPlace) {
  MemoryTracker tracker;
  Tensor a(2, 2, MemCategory::kScratch, &tracker);
  Tensor b(2, 2, MemCategory::kScratch, &tracker);
  a.Fill(1.0f);
  b.Fill(2.5f);
  AddInPlace(&a, b);
  EXPECT_EQ(a.at(1, 1), 3.5f);
}

TEST(OpsTest, AddBias) {
  MemoryTracker tracker;
  Tensor a(2, 3, MemCategory::kScratch, &tracker);
  const std::vector<float> bias = {1.0f, 2.0f, 3.0f};
  AddBiasInPlace(&a, bias);
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_EQ(a.at(1, 2), 3.0f);
}

TEST(OpsTest, RmsNormNormalizes) {
  MemoryTracker tracker;
  Tensor t = RandomTensor(4, 32, 5, &tracker);
  const std::vector<float> gain(32, 1.0f);
  RmsNormInPlace(&t, gain);
  for (size_t r = 0; r < t.rows(); ++r) {
    double sum_sq = 0.0;
    for (float v : t.row(r)) {
      sum_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(std::sqrt(sum_sq / 32.0), 1.0, 1e-2);
  }
}

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  MemoryTracker tracker;
  Tensor t = RandomTensor(4, 64, 6, &tracker);
  const std::vector<float> gain(64, 1.0f);
  const std::vector<float> bias(64, 0.0f);
  LayerNormInPlace(&t, gain, bias);
  for (size_t r = 0; r < t.rows(); ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (float v : t.row(r)) {
      mean += v;
    }
    mean /= 64.0;
    for (float v : t.row(r)) {
      var += (v - mean) * (v - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(OpsTest, SoftmaxSumsToOne) {
  std::vector<float> row = {1.0f, 2.0f, 3.0f, 4.0f};
  SoftmaxRowInPlace(row);
  float sum = 0.0f;
  for (float v : row) {
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(row[3], row[0]);
}

TEST(OpsTest, CausalSoftmaxMasksFuture) {
  std::vector<float> row = {1.0f, 5.0f, 9.0f, 9.0f};
  SoftmaxRowInPlace(row, /*causal_limit=*/1);
  EXPECT_EQ(row[2], 0.0f);
  EXPECT_EQ(row[3], 0.0f);
  EXPECT_NEAR(row[0] + row[1], 1.0f, 1e-5f);
}

TEST(OpsTest, SoftmaxHandlesExtremeValues) {
  std::vector<float> row = {1000.0f, -1000.0f, 999.0f};
  SoftmaxRowInPlace(row);
  EXPECT_TRUE(std::isfinite(row[0]));
  EXPECT_NEAR(row[0] + row[1] + row[2], 1.0f, 1e-5f);
}

TEST(OpsTest, SiluSignsAndMagnitudes) {
  MemoryTracker tracker;
  Tensor t(1, 3, MemCategory::kScratch, &tracker);
  t.at(0, 0) = 0.0f;
  t.at(0, 1) = 10.0f;
  t.at(0, 2) = -10.0f;
  SiluInPlace(&t);
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_NEAR(t.at(0, 1), 10.0f, 1e-3f);
  EXPECT_NEAR(t.at(0, 2), 0.0f, 1e-3f);
}

TEST(OpsTest, GeluMatchesKnownPoints) {
  MemoryTracker tracker;
  Tensor t(1, 2, MemCategory::kScratch, &tracker);
  t.at(0, 0) = 0.0f;
  t.at(0, 1) = 1.0f;
  GeluInPlace(&t);
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_NEAR(t.at(0, 1), 0.8412f, 1e-3f);
}

TEST(OpsTest, SigmoidSymmetry) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(Sigmoid(3.0f) + Sigmoid(-3.0f), 1.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(Sigmoid(-100.0f)));
  EXPECT_TRUE(std::isfinite(Sigmoid(100.0f)));
}

TEST(OpsTest, DotProduct) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
}

}  // namespace
}  // namespace prism

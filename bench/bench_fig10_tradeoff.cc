// Figure 10: tuning the latency–precision trade-off — dispersion-threshold
// sweep per model, reporting Precision@{1,5,10} and latency at each point.
//
// Flags: --device=nvidia|apple --queries=N --candidates=N
//        --thresholds=csv (default 0.08,0.15,0.25,0.40,0.60)
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 1));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 20));
  std::vector<float> thresholds;
  for (const std::string& item :
       SplitCsv(flags.GetString("thresholds", "0.08,0.15,0.25,0.40,0.60"))) {
    thresholds.push_back(std::stof(item));
  }

  PrintHeader("Figure 10 — dispersion-threshold sweep (" + device.name + ", wikipedia)");

  for (const ModelConfig& model : ModelZoo()) {
    std::printf("\n--- %s ---\n", model.name.c_str());
    std::printf("  %9s %12s %8s %8s %8s %14s\n", "threshold", "latency", "P@1", "P@5", "P@10",
                "cand-layers");
    for (float threshold : thresholds) {
      double latency = 0.0;
      double precision[3] = {0.0, 0.0, 0.0};
      double work = 0.0;
      const size_t kks[3] = {1, 5, 10};
      for (int ki = 0; ki < 3; ++ki) {
        const auto cases = MakeCases(model, "wikipedia", queries, candidates, kks[ki]);
        auto engine = FreshRunner([&] { return MakePrism(model, device, threshold, Precision::kFp32); });
        const BenchRun run = RunCases(engine.get(), cases);
        precision[ki] = run.mean_precision;
        latency += run.mean_latency_ms;
        work += run.mean_candidate_layers;
      }
      std::printf("  %9.2f %9.1f ms %8.3f %8.3f %8.3f %14.0f\n", threshold, latency / 3.0,
                  precision[0], precision[1], precision[2], work / 3.0);
    }
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

#include "src/core/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace prism {

RerankResult SerialScheduler::Submit(const RerankRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  return runner_->Rerank(request);
}

std::future<RerankResult> RequestQueue::Push(const RerankRequest& request) {
  std::future<RerankResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRISM_CHECK_MSG(!closed_, "Push after Close");
    Pending pending;
    pending.request = &request;
    pending.ticket = next_ticket_++;
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatch(size_t max_batch) {
  PRISM_CHECK_GT(max_batch, 0u);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  std::vector<Pending> batch;
  const size_t take = std::min(max_batch, queue_.size());
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

BatchScheduler::BatchScheduler(PrismEngine* engine, size_t max_inflight, size_t compute_threads)
    : engine_(engine), max_inflight_(max_inflight) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  if (compute_threads == 0) {
    // At least one thread per batch slot: requests spend much of their layer
    // time waiting on the (simulated) device, so oversubscribing a small core
    // count still overlaps those waits across the batch.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchScheduler::~BatchScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult BatchScheduler::Submit(const RerankRequest& request) {
  return queue_.Push(request).get();
}

void BatchScheduler::DispatchLoop() {
  for (;;) {
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    std::vector<const RerankRequest*> requests;
    requests.reserve(batch.size());
    for (const RequestQueue::Pending& pending : batch) {
      requests.push_back(pending.request);
    }
    std::vector<RerankResult> results = engine_->RerankBatch(requests, compute_pool_.get());
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

}  // namespace prism

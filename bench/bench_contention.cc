// Admission/stats hot-path contention sweep: lock-free vs mutexed.
//
// Measures aggregate closed-loop throughput through one RerankService
// (batch scheduler, 1 replica) as the client-thread count grows, with the
// engine cost removed from the picture: the service runs the simulated-cost
// runner at zero virtual cost with memoization on, so after a single-thread
// warmup every request is a memo replay and the measured time is almost
// entirely the per-request serving overhead — queue admission and stats
// observation. That is exactly the pair of paths the lock-free work
// de-contends, and the sweep compares both modes of each
// (ServiceOptions::lockfree_admission / lockfree_stats):
//
//   mutex    — producers stage under the queue mutex; stats under a mutex.
//   lockfree — producers CAS into the MPSC staging ring; stats go to
//              striped per-thread atomic cells.
//
// Every completion is checked against a serial reference selection — the
// de-contended paths must change no result, only its cost. Modes:
//
//   (default)  wall-clock sweep over --threads, printing req/s per mode and
//              the lockfree/mutex ratio per thread count.
//   --smoke    one small wall-clock config (CI: exercises both modes end to
//              end and gates on 0 mismatches, no timing assertions).
//   --sim      deterministic virtual-time sweep on a SimClock with nonzero
//              virtual service costs, emitting JSON with virtual-time
//              fields only: byte-identical across runs (CI determinism
//              lane material, like bench_scenarios --sim).
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/common/timer.h"
#include "src/core/service.h"

namespace prism {
namespace {

struct RunOutcome {
  size_t threads = 0;
  bool lock_free = false;
  size_t requests = 0;
  size_t mismatches = 0;
  double wall_seconds = 0.0;
  double req_per_sec = 0.0;
  // Deterministic under --sim (virtual-time, sorted-reservoir quantities).
  size_t served = 0;
  size_t shed = 0;
  size_t errors = 0;
  double virtual_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

ServiceOptions ContentionOptions(const DeviceProfile& device, bool lock_free,
                                 size_t max_inflight, Clock* clock, bool virtual_costs) {
  ServiceOptions options;
  options.engine.device = device;
  options.scheduler = SchedulerKind::kBatch;
  options.max_inflight = max_inflight;
  // The memo serves every measured request, so the batch compute fan-out is
  // idle; a tiny pool keeps thread-spawn noise out of the measurement.
  options.compute_threads = 2;
  options.clock = clock;
  options.sim.enabled = true;
  options.sim.memoize = true;
  // Zero virtual cost on the wall clock makes hot-path overhead the whole
  // measurement; the --sim sweep charges real virtual service time instead
  // so its queueing dynamics are non-degenerate.
  options.sim.pass_ms = virtual_costs ? 4.0 : 0.0;
  options.sim.per_request_ms = virtual_costs ? 1.0 : 0.0;
  options.lockfree_stats = lock_free;
  options.lockfree_admission = lock_free;
  return options;
}

// Serial-scheduler reference selections: the answers every sweep completion
// must reproduce bit-identically.
std::vector<std::vector<size_t>> ReferenceSelections(const ModelConfig& model,
                                                     const std::string& checkpoint,
                                                     const DeviceProfile& device,
                                                     const std::vector<BenchCase>& cases) {
  ServiceOptions options =
      ContentionOptions(device, /*lock_free=*/true, /*max_inflight=*/1,
                        /*clock=*/nullptr, /*virtual_costs=*/false);
  options.scheduler = SchedulerKind::kSerial;
  RerankService service(model, checkpoint, options);
  std::vector<std::vector<size_t>> reference;
  reference.reserve(cases.size());
  for (const BenchCase& bench_case : cases) {
    const RerankResult result = service.Rerank(bench_case.request);
    PRISM_CHECK_MSG(result.status.ok(), "reference pass failed");
    reference.push_back(result.topk);
  }
  return reference;
}

RunOutcome RunOnce(const ModelConfig& model, const std::string& checkpoint,
                   const DeviceProfile& device, const std::vector<BenchCase>& cases,
                   const std::vector<std::vector<size_t>>& reference, size_t threads,
                   bool lock_free, size_t max_inflight, size_t requests_per_thread,
                   bool sim_time) {
  const std::unique_ptr<SimClock> sim_clock = sim_time ? std::make_unique<SimClock>() : nullptr;
  Clock* clock = ResolveClock(sim_clock.get());
  RerankService service(model, checkpoint,
                        ContentionOptions(device, lock_free, max_inflight, sim_clock.get(),
                                          sim_time));

  // Warm the memo single-threaded: the measured phase then serves pure
  // hot-path traffic (no engine pass, no first-touch allocation).
  {
    const ClockMembership membership(clock);
    for (const BenchCase& bench_case : cases) {
      service.Rerank(bench_case.request);
    }
  }

  std::atomic<size_t> mismatches{0};
  clock->ExpectParticipants(threads);
  const double start_virtual_ms = clock->NowMs();
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const ClockMembership membership(clock);
      for (size_t i = 0; i < requests_per_thread; ++i) {
        // Per-thread phase over the shared case set: all threads hammer all
        // cases, deterministically.
        const size_t q = (t * 7 + i) % cases.size();
        const RerankResult result = service.Rerank(cases[q].request);
        if (!result.status.ok() || result.topk != reference[q]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  RunOutcome outcome;
  outcome.threads = threads;
  outcome.lock_free = lock_free;
  outcome.requests = threads * requests_per_thread;
  outcome.mismatches = mismatches.load();
  outcome.wall_seconds = static_cast<double>(timer.ElapsedMicros()) / 1e6;
  outcome.req_per_sec =
      outcome.wall_seconds > 0.0 ? static_cast<double>(outcome.requests) / outcome.wall_seconds
                                 : 0.0;
  outcome.virtual_ms = clock->NowMs() - start_virtual_ms;
  const ServiceStats stats = service.stats();
  // The warmup pass is part of these totals; subtract it from the request
  // classes (it is serial, served, and identical in every mode).
  outcome.served = stats.served() - cases.size();
  outcome.shed = stats.shed;
  outcome.errors = stats.errors;
  outcome.p50_ms = stats.P50LatencyMs();
  outcome.p99_ms = stats.P99LatencyMs();
  return outcome;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const bool sim = flags.GetBool("sim", false);

  ModelConfig model = TestModel();
  DeviceProfile device = DeviceByName("nvidia");
  device.ssd.throttle = false;
  device.compute_slowdown = 1.0;

  std::vector<size_t> threads;
  for (const std::string& t :
       SplitCsv(flags.GetString("threads", smoke ? "4" : (sim ? "4,32" : "1,8,32")))) {
    threads.push_back(static_cast<size_t>(std::stoul(t)));
  }
  const size_t max_inflight = static_cast<size_t>(flags.GetInt("max_inflight", 32));
  const size_t requests_per_thread = static_cast<size_t>(
      flags.GetInt("requests_per_thread", smoke ? 100 : (sim ? 50 : 1500)));
  const size_t n_queries = static_cast<size_t>(flags.GetInt("n_queries", 8));

  const std::string checkpoint = EnsureCheckpoint(model, kBenchSeed);
  const std::vector<BenchCase> cases = MakeCases(model, "wikipedia", n_queries,
                                                 /*candidates=*/12, /*k=*/4);
  const std::vector<std::vector<size_t>> reference =
      ReferenceSelections(model, checkpoint, device, cases);

  PrintHeader("Hot-path contention sweep — batch scheduler x1, memoized zero-cost serving, " +
              std::to_string(requests_per_thread) + " req/thread" +
              (sim ? ", simulated time" : ""));
  std::printf("%-10s %-9s %12s %10s %10s %8s %6s\n", "threads", "mode", "req/s", "p50 ms",
              "p99 ms", "shed", "misms");

  size_t total_mismatches = 0;
  bool ratio_printed = false;
  if (sim) {
    std::printf("(virtual-time sweep; JSON below is the deterministic artifact)\n");
  }
  std::vector<RunOutcome> outcomes;
  for (const size_t n : threads) {
    RunOutcome mutexed;
    RunOutcome lockfree;
    for (const bool lock_free : {false, true}) {
      const RunOutcome outcome = RunOnce(model, checkpoint, device, cases, reference, n,
                                         lock_free, max_inflight, requests_per_thread, sim);
      // Under --sim every printed byte must be deterministic, so the rate
      // column switches to virtual-time throughput (wall rates vary by run).
      const double rate = sim ? (outcome.virtual_ms > 0.0
                                     ? static_cast<double>(outcome.requests) /
                                           (outcome.virtual_ms / 1000.0)
                                     : 0.0)
                              : outcome.req_per_sec;
      std::printf("%-10zu %-9s %12.0f %10.3f %10.3f %8zu %6zu\n", outcome.threads,
                  lock_free ? "lockfree" : "mutex", rate, outcome.p50_ms, outcome.p99_ms,
                  outcome.shed, outcome.mismatches);
      total_mismatches += outcome.mismatches;
      (lock_free ? lockfree : mutexed) = outcome;
      outcomes.push_back(outcome);
    }
    if (!sim && mutexed.req_per_sec > 0.0) {
      std::printf("%-10s %-9s %11.2fx\n", "", "ratio",
                  lockfree.req_per_sec / mutexed.req_per_sec);
      ratio_printed = true;
    }
  }
  (void)ratio_printed;

  if (sim) {
    // Virtual-time JSON: every field is a deterministic function of the
    // virtual schedule (wall-clock rates are deliberately absent), so two
    // runs of this binary must produce byte-identical output.
    std::printf("{\n  \"bench\": \"contention\",\n  \"sim\": true,\n  \"runs\": [\n");
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const RunOutcome& o = outcomes[i];
      std::printf("    {\"threads\": %zu, \"mode\": \"%s\", \"requests\": %zu, "
                  "\"served\": %zu, \"shed\": %zu, \"errors\": %zu, \"virtual_ms\": %.6g, "
                  "\"p50_ms\": %.6g, \"p99_ms\": %.6g, \"mismatches\": %zu}%s\n",
                  o.threads, o.lock_free ? "lockfree" : "mutex", o.requests, o.served, o.shed,
                  o.errors, o.virtual_ms, o.p50_ms, o.p99_ms, o.mismatches,
                  i + 1 == outcomes.size() ? "" : ",");
    }
    std::printf("  ],\n  \"total_mismatches\": %zu,\n  \"ok\": %s\n}\n", total_mismatches,
                total_mismatches == 0 ? "true" : "false");
  }

  if (total_mismatches != 0) {
    std::printf("FAILED: %zu selection mismatches\n", total_mismatches);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

#include "src/retrieval/bm25.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace prism {

size_t Bm25Index::Add(const std::vector<uint32_t>& tokens) {
  const size_t doc_id = doc_len_.size();
  std::map<uint32_t, uint32_t> tf;
  for (uint32_t t : tokens) {
    ++tf[t];
  }
  for (const auto& [term, freq] : tf) {
    postings_[term].emplace_back(doc_id, freq);
  }
  doc_len_.push_back(tokens.size());
  total_len_ += tokens.size();
  return doc_id;
}

double Bm25Index::Idf(uint32_t term) const {
  const auto it = postings_.find(term);
  const double df = it == postings_.end() ? 0.0 : static_cast<double>(it->second.size());
  const double n = static_cast<double>(doc_len_.size());
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<RetrievalHit> Bm25Index::Search(const std::vector<uint32_t>& query, size_t n) const {
  std::vector<double> scores(doc_len_.size(), 0.0);
  const double avg_len =
      doc_len_.empty() ? 1.0 : static_cast<double>(total_len_) / static_cast<double>(doc_len_.size());
  // Deduplicate query terms (standard BM25 treats the query as a set; repeat
  // query terms would otherwise double-count).
  std::vector<uint32_t> terms(query);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t term : terms) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) {
      continue;
    }
    const double idf = Idf(term);
    for (const auto& [doc_id, tf] : it->second) {
      const double len_norm =
          k1_ * (1.0 - b_ + b_ * static_cast<double>(doc_len_[doc_id]) / avg_len);
      scores[doc_id] += idf * (static_cast<double>(tf) * (k1_ + 1.0)) /
                        (static_cast<double>(tf) + len_norm);
    }
  }
  std::vector<RetrievalHit> hits;
  hits.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > 0.0) {
      hits.push_back({i, scores[i]});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const RetrievalHit& a, const RetrievalHit& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > n) {
    hits.resize(n);
  }
  return hits;
}

}  // namespace prism

// The PRISM engine: monolithic forwarding (paper §3.3–§4).
//
// All candidates advance through the transformer together as one monolithic
// batch, giving the engine a global view for progressive cluster pruning
// (§4.1) while overlapped layer streaming (§4.2) keeps at most two layers'
// weights in memory, chunked execution (§4.3) bounds intermediate-tensor
// memory (optionally spilling hidden states to disk), and the embedding-table
// LRU cache (§4.4) replaces the resident embedding table. Every technique is
// individually switchable for the ablation study (Fig 16).
#ifndef PRISM_SRC_CORE_ENGINE_H_
#define PRISM_SRC_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/core/pruner.h"
#include "src/model/embedding.h"
#include "src/model/weights.h"
#include "src/runtime/device.h"
#include "src/runtime/runner.h"
#include "src/storage/blob_file.h"
#include "src/storage/hidden_spill.h"
#include "src/storage/layer_streamer.h"

namespace prism {

struct PrismOptions {
  DeviceProfile device = NvidiaProfile();

  // §4.1 progressive cluster pruning.
  bool pruning = true;
  float dispersion_threshold = 0.35f;
  bool prune_winners = true;  // false → exact-rank mode (Discussion §7).
  int kmeans_max_k = 4;

  // §4.2 overlapped layer streaming (false → all layers resident, HF-style).
  bool streaming = true;

  // §4.3 chunked execution.
  bool chunked = true;
  size_t chunk_candidates = 0;  // 0 = plan from device.activation_budget.
  bool offload_hidden = false;  // Dynamic hidden-state offloading.

  // §4.4 embedding table caching (false → full table resident).
  bool embed_cache = true;
  double embed_cache_fraction = 0.10;

  bool quantized = false;  // W4 checkpoint ("PRISM Quant").

  // Trace mode: records per-layer scores/clusters for every candidate and
  // disables pruning (used by the Fig-2 sparsity analysis).
  bool trace = false;

  uint64_t seed = 42;
};

// Per-layer record captured in trace mode (and, lightly, during pruning).
struct LayerTraceEntry {
  size_t layer = 0;
  size_t active = 0;
  double cv = 0.0;
  bool prune_triggered = false;
  size_t selected = 0;
  size_t dropped = 0;
  // Indexed by original candidate id; NaN when the candidate was inactive.
  std::vector<float> scores;
  // Cluster id per original candidate (-1 when unclustered/inactive).
  std::vector<int> clusters;
};

class PrismEngine : public Runner {
 public:
  PrismEngine(const ModelConfig& config, const std::string& checkpoint_path, PrismOptions options,
              MemoryTracker* tracker = &MemoryTracker::Global());

  RerankResult Rerank(const RerankRequest& request) override;
  std::string name() const override { return options_.quantized ? "PRISM Quant" : "PRISM"; }

  const std::vector<LayerTraceEntry>& last_trace() const { return trace_; }
  const PrismOptions& options() const { return options_; }
  void set_dispersion_threshold(float threshold) { options_.dispersion_threshold = threshold; }

  // Stats of the persistent embedding cache (null when embed_cache is off).
  const EmbeddingCacheStats* embed_cache_stats() const;

  // Chunk size the planner would pick for `n` candidates at `seq_len` (§4.3):
  // the largest count whose scratch fits the activation budget, floored at 2
  // to keep the compute window wide enough for I/O overlap.
  size_t PlanChunkCandidates(size_t n, size_t seq_len) const;

 private:
  struct ChunkState {
    std::vector<size_t> ids;        // Original candidate indices.
    std::optional<Tensor> hidden;   // Resident hidden states (unless spilled).
    bool spilled = false;
  };

  Tensor TakeChunk(ChunkState* chunk, int64_t key);
  void StowChunk(ChunkState* chunk, int64_t key, Tensor hidden, bool more_layers);

  ModelConfig config_;
  PrismOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<BlobFileReader> reader_;
  std::unique_ptr<EmbeddingSource> embedding_;
  EmbeddingCache* cache_ = nullptr;  // Non-owning alias when embed_cache on.
  HeadWeights head_;
  // Resident layers when streaming is off.
  std::vector<std::vector<uint8_t>> resident_layers_;
  MemClaim resident_claim_;
  std::unique_ptr<SpillPool> spill_;
  std::vector<LayerTraceEntry> trace_;
};

}  // namespace prism

#endif  // PRISM_SRC_CORE_ENGINE_H_

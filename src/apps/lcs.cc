#include "src/apps/lcs.h"

#include <algorithm>
#include <cmath>

#include "src/common/timer.h"
#include "src/common/zipf.h"
#include "src/data/metrics.h"
#include "src/model/pair_encoder.h"

namespace prism {

LcsApp::LcsApp(LcsOptions options, const ModelConfig& model, uint64_t seed)
    : options_(options), model_(model), seed_(seed), llm_(options.llm) {}

LcsResult LcsApp::Answer(size_t question_idx, Runner* runner) const {
  const WallTimer total_timer;
  LcsResult result;

  // Build the long context: n_segments, of which `relevant_segments` overlap
  // the question (LongBench-style needle segments scattered uniformly).
  const ZipfSampler zipf(model_.vocab_size - kFirstWordToken, 1.0);
  Rng rng(MixSeed(seed_, 0x1c5 + question_idx));
  auto draw = [&](size_t n) {
    std::vector<uint32_t> tokens;
    tokens.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tokens.push_back(kFirstWordToken + static_cast<uint32_t>(zipf.Sample(rng)));
    }
    return tokens;
  };
  const std::vector<uint32_t> question = draw(9);
  std::vector<std::vector<uint32_t>> segments;
  std::vector<float> planted;
  std::vector<size_t> relevant;
  const size_t stride = options_.n_segments / options_.relevant_segments;
  for (size_t s = 0; s < options_.n_segments; ++s) {
    std::vector<uint32_t> segment = draw(options_.segment_tokens);
    const bool is_relevant = s % stride == 0 && relevant.size() < options_.relevant_segments;
    float grade = 0.1f;
    if (is_relevant) {
      grade = 0.85f;
      relevant.push_back(s);
      const size_t overlap = segment.size() * 2 / 5;
      for (size_t i = 0; i < overlap; ++i) {
        segment[rng.NextBelow(segment.size())] = question[rng.NextBelow(question.size())];
      }
    }
    const double r = grade + 0.1 * rng.NextGaussian();
    planted.push_back(static_cast<float>(std::clamp(r, 0.0, 1.0)));
    segments.push_back(std::move(segment));
  }

  std::vector<size_t> chosen;
  size_t answer_tokens = options_.answer_tokens;
  if (runner != nullptr) {
    RerankRequest request;
    request.query = question;
    request.docs = segments;
    request.planted_r = planted;
    request.k = options_.k;
    const WallTimer timer;
    const RerankResult reranked = runner->Rerank(request);
    result.rerank_ms = timer.ElapsedMillis();
    chosen = reranked.topk;
  } else {
    // No reranker: feed the leading segments wholesale; the model wades
    // through irrelevant context and rambles longer.
    for (size_t s = 0; s < options_.n_segments; ++s) {
      chosen.push_back(s);
    }
    answer_tokens = options_.distracted_answer_tokens;
  }
  result.precision = PrecisionAtK(chosen, relevant, options_.k);

  size_t prompt_tokens = question.size();
  for (size_t s : chosen) {
    prompt_tokens += segments[s].size();
  }
  result.prompt_tokens = prompt_tokens;
  result.chosen = std::move(chosen);
  {
    const WallTimer timer;
    llm_.Generate(prompt_tokens, answer_tokens);
    result.inference_ms = timer.ElapsedMillis();
  }
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace prism

// Figures 14–15: LLM long-context selection.
//  Fig 14: end-to-end latency (rerank + generation) and selection precision
//          for Ours (PRISM), HF Rerank, and No-Reranker baseline.
//  Fig 15: memory footprint of the rerank + generation window.
//
// Flags: --device=nvidia|apple --questions=N --segments=N --k=N
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/lcs.h"

namespace prism {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const ModelConfig model = Qwen3Reranker0_6B();
  const size_t questions = static_cast<size_t>(flags.GetInt("questions", 2));

  LcsOptions options;
  options.n_segments = static_cast<size_t>(flags.GetInt("segments", 60));
  options.k = static_cast<size_t>(flags.GetInt("k", 8));
  LcsApp app(options, model, 0x1C5);

  PrintHeader("Figures 14–15 — long-context selection (" + device.name + ", " + model.name +
              ", " + std::to_string(options.n_segments) + " segments → top-" +
              std::to_string(options.k) + ")");

  std::printf("%-12s %12s %12s %12s %10s %10s\n", "system", "total", "rerank", "inference",
              "precision", "peak MiB");
  auto report = [&](const char* name, Runner* runner) {
    double total = 0.0;
    double rerank = 0.0;
    double inference = 0.0;
    double precision = 0.0;
    for (size_t q = 0; q < questions; ++q) {
      const LcsResult result = app.Answer(q, runner);
      total += result.total_ms;
      rerank += result.rerank_ms;
      inference += result.inference_ms;
      precision += result.precision;
    }
    const auto n = static_cast<double>(questions);
    std::printf("%-12s %9.0f ms %9.0f ms %9.0f ms %10.3f %10.2f\n", name, total / n, rerank / n,
                inference / n, precision / n, MiB(MemoryTracker::Global().PeakTotal()));
  };
  {
    auto engine = FreshRunner([&] { return MakePrism(model, device, kThresholdLow, Precision::kFp32); });
    report("Ours", engine.get());
  }
  {
    auto runner = FreshRunner([&] { return MakeHf(model, device, Precision::kFp32); });
    report("HF Rerank", runner.get());
  }
  MemoryTracker::Global().Reset();
  report("Baseline", nullptr);  // No reranker.
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }

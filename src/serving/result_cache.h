// Zipf-aware result cache tier with single-flight admission.
//
// The workload driver generates Zipf-popular queries (src/serving/workload),
// yet every repeat of a head query pays a full SSD-bound engine pass.
// ResultCache fronts any Runner — a RerankService, a ServicePool, a raw
// engine — behind the same Runner interface, so no call site changes:
//
//   clients ─► ResultCache ─► RerankService / ServicePool ─► engine(s)
//
// Design:
//   - Exact-key, sharded LRU. The key hash is the existing QueryHash (the
//     same hash the pool's affinity balancer uses — computed once and
//     handed down through the HashAwareRunner seam when the inner runner
//     implements it); a hash hit is confirmed by full-token equality over
//     (query, docs, planted_r, k), so a collision can never serve a wrong
//     result. Admission attributes (priority, deadline) are not part of
//     the key.
//   - Clock-seam TTL. Every expiry decision reads ResultCacheOptions::clock
//     (wall by default): an entry filled at t expires at exactly
//     t + ttl_ms, so simulated runs replay byte-identically.
//   - Single-flight admission. Concurrent identical queries coalesce onto
//     one in-flight engine pass: the first misser becomes the fill leader
//     and runs the inner runner; followers park on a Clock::MakeCondVar
//     waiter, honoring their own deadlines (a waiter whose budget expires
//     while parked sheds with its true queue residence, exactly like the
//     scheduler queues). A failed fill never poisons the key: the leader's
//     error surfaces to its own caller only, and woken followers re-compete
//     to lead a fresh fill. This is where Zipf flash crowds actually burn
//     capacity — without it, N concurrent repeats of a cold head query
//     would all miss and run N engine passes.
//     Coalesced waiters are released one at a time, each at its own clock
//     instant (park order, ~1 us apart), never as a thundering herd: on a
//     SimClock a fill completion would otherwise make every waiter runnable
//     at the same virtual instant and their subsequent shared-queue
//     interactions would interleave by host thread timing — the staggered
//     release keeps a cache-fronted serial stack's replay byte-identical.
//   - Optional embedding-similarity admission (off by default): when a
//     QueryEmbedder is supplied and `similarity` > 0, an exact miss scans
//     its shard for a fresh entry whose query embedding has cosine ≥ the
//     threshold and serves it. This can change selections (a near-duplicate
//     query gets its neighbour's ranking), so it is guarded by the
//     golden/selection-signature nets: the workload mismatch checks must
//     stay at 0 with the tier off, and any nonzero threshold is an explicit
//     opt-in to approximate serving.
//
// Thread-safe throughout; stats are per-shard and merged on read.
#ifndef PRISM_SRC_SERVING_RESULT_CACHE_H_
#define PRISM_SRC_SERVING_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/striped.h"
#include "src/core/service_pool.h"
#include "src/model/embedding.h"
#include "src/runtime/runner.h"

namespace prism {

// Maps a request's query to a fixed-length embedding for the similarity
// tier. Must be thread-safe (client threads call it concurrently).
using QueryEmbedder = std::function<std::vector<float>(const RerankRequest&)>;

// Mean embedding of the query's tokens through `source` — the same vectors
// EmbedStage feeds the layers (PrismEngine::embedding_source()), so queries
// the model sees as near-duplicates embed near each other. `hidden` is the
// model's hidden size. The source must outlive the returned function.
QueryEmbedder MakeQueryEmbedder(EmbeddingSource* source, size_t hidden);

struct ResultCacheOptions {
  // Total entries across all shards (per-shard capacity is the even split,
  // floored at 1; shard count is clamped to the capacity so a tiny cache
  // is still exactly `capacity` entries).
  size_t capacity = 1024;
  size_t shards = 8;
  // An entry filled at t serves hits while now < t + ttl_ms and expires at
  // exactly t + ttl_ms (the instant itself misses, matching the queues'
  // deadline semantics). <= 0: entries never expire.
  double ttl_ms = 0.0;
  // Coalesce concurrent identical queries onto one engine pass. Off, every
  // concurrent misser fills independently (last insert wins).
  bool single_flight = true;
  // Cosine threshold for the similarity tier; 0 (or no embedder) disables
  // it. CAUTION: any value < 1 serves approximate results — see file
  // comment.
  double similarity = 0.0;
  // Time source for TTL stamps/expiry and waiter parking. nullptr = shared
  // wall clock; point it (and the service's clock) at a SimClock for
  // deterministic virtual-time replay.
  Clock* clock = nullptr;
};

// Cumulative counters (merged across shards). A request is counted in
// exactly one of: hits, similarity_hits, coalesced, shed_waiting, misses.
struct ResultCacheStats {
  size_t lookups = 0;
  size_t hits = 0;             // Exact-key, fresh entry on arrival.
  size_t similarity_hits = 0;  // Served by a cosine-neighbour entry.
  size_t coalesced = 0;        // Parked behind a leader's fill, then served.
  size_t shed_waiting = 0;     // Deadline expired while parked.
  size_t misses = 0;           // Went to the inner runner (fill leaders).
  size_t fill_errors = 0;      // Fills whose inner result was not ok.
  size_t expired = 0;          // Entries dropped at TTL.
  size_t evicted = 0;          // Entries dropped by LRU capacity.
  size_t invalidated = 0;      // Entries dropped by Invalidate*.

  // Fraction of lookups served from the cache without an engine pass.
  double HitRate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits + similarity_hits + coalesced) /
                              static_cast<double>(lookups);
  }
  double CoalescedRate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(coalesced) / static_cast<double>(lookups);
  }
};

class ResultCache : public Runner {
 public:
  // The inner runner must outlive the cache. When it implements
  // HashAwareRunner (ServicePool does), misses are forwarded through
  // RerankHashed so the query is hashed once per request, not once per
  // layer. `embedder` is only consulted when options.similarity > 0.
  ResultCache(Runner* inner, ResultCacheOptions options, QueryEmbedder embedder = nullptr);

  // Thread-safe. A fresh hit returns the cached engine result (timing
  // stats scrubbed, queue_wait_ms = time spent inside the cache, i.e. 0
  // for an immediate hit and the park time for a coalesced one); a miss
  // runs the inner runner and, on success, fills the cache.
  RerankResult Rerank(const RerankRequest& request) override;

  std::string name() const override { return "cache:" + inner_->name(); }

  // Explicit invalidation (e.g. after a corpus update). Entries only; an
  // in-flight fill completing afterwards re-inserts its (new) result.
  void InvalidateAll();
  // Drops the entry for exactly this request's key, if cached. Returns
  // whether one was dropped.
  bool Invalidate(const RerankRequest& request);

  ResultCacheStats stats() const;  // Snapshot, merged across shards.
  size_t size() const;             // Resident entries, all shards.
  const ResultCacheOptions& options() const { return options_; }

 private:
  // Full identity of a cached result: everything the engine's ranking is a
  // function of.
  struct Key {
    std::vector<uint32_t> query;
    std::vector<std::vector<uint32_t>> docs;
    std::vector<float> planted_r;
    size_t k = 0;

    bool operator==(const Key& other) const = default;
    bool Matches(const RerankRequest& request) const;
  };
  static Key MakeKey(const RerankRequest& request);

  struct Entry {
    uint64_t hash = 0;
    Key key;
    RerankResult result;          // status.ok() always; timing scrubbed.
    double filled_ms = 0.0;       // Clock instant the fill completed.
    std::vector<float> embedding;  // Query embedding (similarity tier only).
  };

  // One in-flight fill. Waiters keep the state alive (shared_ptr) past the
  // fills-map erase that publishes completion; `parked` hands each waiter a
  // release slot in park order for the staggered post-fill wakeup. All
  // fields are guarded by the owning shard's mu (not annotatable here: the
  // guarding mutex lives in a different object).
  struct FillState {
    Key key;  // Pins the exact identity: a colliding hash never coalesces.
    bool done = false;
    double done_ms = 0.0;
    size_t parked = 0;
  };

  // Per-shard stats as cache-line-isolated atomic cells (src/common/
  // striped.h): hit-path bumps don't dirty the line the LRU bookkeeping
  // lives on, and stats() folds all shards without touching a single shard
  // mutex — a monitoring scrape never stalls the serving path.
  struct ShardCounters {
    CounterCell lookups;
    CounterCell hits;
    CounterCell similarity_hits;
    CounterCell coalesced;
    CounterCell shed_waiting;
    CounterCell misses;
    CounterCell fill_errors;
    CounterCell expired;
    CounterCell evicted;
    CounterCell invalidated;
  };

  struct Shard {
    mutable Mutex mu;
    std::unique_ptr<ClockCondVar> cv;  // Single-flight waiters park here.
    // LRU: most-recent at front; map points into the list. One entry per
    // hash (a colliding different key replaces on insert — the equality
    // check keeps that safe, merely a capacity loss).
    std::list<Entry> lru PRISM_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map PRISM_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::shared_ptr<FillState>> fills PRISM_GUARDED_BY(mu);
    ShardCounters counters;  // Lock-free cells; deliberately outside mu.
  };

  // All *Locked helpers require the owning shard's mu held (ExpiredLocked
  // touches no guarded state itself — the name documents the calling
  // convention, since the entries it inspects live in guarded containers).
  bool ExpiredLocked(const Entry& entry, double now_ms) const;
  void EraseEntryLocked(Shard& shard, std::list<Entry>::iterator it)
      PRISM_REQUIRES(shard.mu);
  void InsertLocked(Shard& shard, uint64_t hash, Key key, const RerankResult& result,
                    std::vector<float> embedding, double now_ms) PRISM_REQUIRES(shard.mu);
  // Scans the shard for a fresh entry whose embedding has cosine >= the
  // threshold with `embedding`; null when none.
  const Entry* SimilarLocked(Shard& shard, const std::vector<float>& embedding,
                             double now_ms) const PRISM_REQUIRES(shard.mu);

  RerankResult Forward(const RerankRequest& request, uint64_t hash);

  Runner* inner_;
  HashAwareRunner* hashed_inner_;  // Non-null when inner_ accepts a hash.
  ResultCacheOptions options_;
  QueryEmbedder embedder_;
  size_t per_shard_capacity_;
  Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace prism

#endif  // PRISM_SRC_SERVING_RESULT_CACHE_H_

#include "src/serving/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "src/common/check.h"
#include "src/common/percentile.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/common/zipf.h"
#include "src/data/dataset.h"

namespace prism {

namespace {

// Captures per-request rerank status and admission wait without changing
// the result the pipeline sees. One instance per ScenarioHarness::Run call,
// so no synchronization is needed.
class StatusProbe final : public Runner {
 public:
  explicit StatusProbe(Runner* inner) : inner_(inner) {}

  RerankResult Rerank(const RerankRequest& request) override {
    RerankResult result = inner_->Rerank(request);
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      shed_ = true;
    } else if (!result.status.ok()) {
      error_ = true;
    }
    queue_wait_ms_ = std::max(queue_wait_ms_, result.stats.queue_wait_ms);
    return result;
  }

  std::string name() const override { return inner_->name(); }

  bool shed() const { return shed_; }
  bool error() const { return error_; }
  double queue_wait_ms() const { return queue_wait_ms_; }

 private:
  Runner* inner_;
  bool shed_ = false;
  bool error_ = false;
  double queue_wait_ms_ = 0.0;
};

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kFileSearch:
      return "file_search";
    case ScenarioKind::kRag:
      return "rag";
    case ScenarioKind::kAgentMemory:
      return "agent_memory";
    case ScenarioKind::kLcs:
      return "lcs";
  }
  return "unknown";
}

ScenarioKind ScenarioKindByName(const std::string& name) {
  for (ScenarioKind kind : AllScenarios()) {
    if (name == ScenarioKindName(kind)) {
      return kind;
    }
  }
  PRISM_CHECK_MSG(false, ("unknown scenario: " + name).c_str());
  return ScenarioKind::kFileSearch;
}

std::vector<ScenarioKind> AllScenarios() {
  return {ScenarioKind::kFileSearch, ScenarioKind::kRag, ScenarioKind::kAgentMemory,
          ScenarioKind::kLcs};
}

ScenarioHarness::ScenarioHarness(ScenarioKind kind, const ModelConfig& model,
                                 ScenarioOptions options)
    : kind_(kind), options_(options) {
  PRISM_CHECK_GT(options_.n_queries, 0u);
  switch (kind_) {
    case ScenarioKind::kFileSearch: {
      corpus_ = std::make_unique<SearchCorpus>(DatasetByName("wikipedia"), model,
                                               options_.n_queries, options_.relevant_per_query,
                                               options_.background_docs, options_.seed);
      file_search_ = std::make_unique<FileSearchApp>(corpus_.get(), /*per_source=*/10,
                                                     /*embed_dim=*/48, options_.seed);
      n_queries_ = corpus_->queries().size();
      break;
    }
    case ScenarioKind::kRag: {
      corpus_ = std::make_unique<SearchCorpus>(DatasetByName("beir-nq"), model,
                                               options_.n_queries, options_.relevant_per_query,
                                               options_.background_docs, options_.seed);
      RagOptions rag_options;
      rag_options.k = options_.k;
      rag_options.llm = options_.llm;
      rag_ = std::make_unique<RagPipeline>(corpus_.get(), rag_options, options_.seed);
      n_queries_ = corpus_->queries().size();
      break;
    }
    case ScenarioKind::kAgentMemory: {
      AgentWorkloadProfile profile = VideoWorkload();
      profile.n_tasks = options_.n_queries;
      profile.steps_per_task = options_.agent_steps_per_task;
      profile.env_step_ms = options_.agent_env_step_ms;
      profile.vlm_prompt_tokens = options_.agent_vlm_prompt_tokens;
      profile.vlm_new_tokens = options_.agent_vlm_new_tokens;
      agent_ = std::make_unique<AgentMemoryApp>(profile, model, options_.seed);
      n_queries_ = agent_->n_tasks();
      break;
    }
    case ScenarioKind::kLcs: {
      LcsOptions lcs_options;
      lcs_options.n_segments = options_.lcs_segments;
      lcs_options.relevant_segments = options_.lcs_relevant;
      lcs_options.k = options_.k;
      lcs_options.llm = options_.llm;
      lcs_ = std::make_unique<LcsApp>(lcs_options, model, options_.seed);
      n_queries_ = options_.n_queries;
      break;
    }
  }
  PRISM_CHECK_GT(n_queries_, 0u);
}

ScenarioOutcome ScenarioHarness::Run(size_t query_idx, Runner* runner) const {
  StatusProbe probe(runner);
  const size_t q = query_idx % n_queries_;
  ScenarioOutcome outcome;
  switch (kind_) {
    case ScenarioKind::kFileSearch: {
      const FileSearchResult result = file_search_->Search(q, options_.k, &probe);
      outcome.selection = result.top_docs;
      outcome.quality = result.precision;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kRag: {
      const RagResult result = rag_->Query(q, &probe);
      outcome.selection = result.context_docs;
      outcome.quality = result.accuracy;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kAgentMemory: {
      const AgentTaskResult result = agent_->RunTask(q, &probe);
      outcome.selection = result.picks;
      outcome.quality = result.success ? 1.0 : 0.0;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
    case ScenarioKind::kLcs: {
      const LcsResult result = lcs_->Answer(q, &probe);
      outcome.selection = result.chosen;
      outcome.quality = result.precision;
      outcome.rerank_ms = result.rerank_ms;
      break;
    }
  }
  outcome.shed = probe.shed();
  outcome.error = probe.error();
  outcome.served = !probe.shed() && !probe.error();
  outcome.queue_wait_ms = probe.queue_wait_ms();
  return outcome;
}

RerankResult TaggingRunner::Rerank(const RerankRequest& request) {
  RerankRequest tagged = request;
  tagged.priority = priority_;
  tagged.deadline_ms = deadline_ms_;
  return inner_->Rerank(tagged);
}

std::vector<std::vector<size_t>> BaselineSelections(const ScenarioHarness& scenario,
                                                    Runner* runner) {
  std::vector<std::vector<size_t>> selections;
  selections.reserve(scenario.n_queries());
  for (size_t q = 0; q < scenario.n_queries(); ++q) {
    ScenarioOutcome outcome = scenario.Run(q, runner);
    PRISM_CHECK_MSG(outcome.served, "baseline request was not served");
    selections.push_back(std::move(outcome.selection));
  }
  return selections;
}

WorkloadReport RunWorkload(const ScenarioHarness& scenario, Runner* runner,
                           const WorkloadOptions& options,
                           const std::vector<std::vector<size_t>>* baseline) {
  PRISM_CHECK_GT(options.clients, 0u);
  PRISM_CHECK_GT(options.requests, 0u);
  if (baseline != nullptr) {
    PRISM_CHECK_EQ(baseline->size(), scenario.n_queries());
  }
  using Clock = std::chrono::steady_clock;
  const size_t total = options.warmup + options.requests;

  struct Record {
    size_t qid = 0;
    bool served = false;
    bool shed = false;
    double latency_ms = 0.0;
    double quality = 0.0;
    double queue_wait_ms = 0.0;
    std::vector<size_t> selection;
  };
  std::vector<Record> records(total);

  // Open loop: one aggregate Poisson arrival process, scheduled up front so
  // the timeline is deterministic in the seed (requests are claimed in
  // arrival order through the shared counter below).
  std::vector<double> arrival_ms;
  if (options.arrival_hz > 0.0) {
    arrival_ms.resize(total);
    Rng rng(MixSeed(options.seed, 0xA221));
    const double mean_gap_ms = 1000.0 / options.arrival_hz;
    double t = 0.0;
    for (size_t i = 0; i < total; ++i) {
      // Inverse-CDF exponential; NextDouble is in [0, 1), so 1 - u > 0.
      t += -mean_gap_ms * std::log(1.0 - rng.NextDouble());
      arrival_ms[i] = t;
    }
  }

  const ZipfSampler popularity(scenario.n_queries(), options.zipf_skew);
  const size_t high_clients = static_cast<size_t>(
      std::lround(options.high_fraction * static_cast<double>(options.clients)));

  std::atomic<size_t> next{0};
  const Clock::time_point start = Clock::now();
  std::atomic<int64_t> measure_start_micros{options.warmup == 0 ? 0 : -1};

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(MixSeed(options.seed, 0xC11E47 + c));
      const int priority = c < high_clients ? options.high_priority : 0;
      TaggingRunner tagged(runner, priority, options.deadline_ms);
      size_t i;
      while ((i = next.fetch_add(1)) < total) {
        Clock::time_point issue = Clock::now();
        if (!arrival_ms.empty()) {
          const Clock::time_point scheduled =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(arrival_ms[i]));
          std::this_thread::sleep_until(scheduled);
          // Open-loop latency runs from the *scheduled* arrival: time spent
          // waiting for a free client thread is queueing delay, not a
          // measurement artifact to hide.
          issue = scheduled;
        }
        if (i == options.warmup) {
          measure_start_micros.store(
              std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
                  .count(),
              std::memory_order_relaxed);
        }
        Record& record = records[i];
        record.qid = static_cast<size_t>(popularity.Sample(rng));
        ScenarioOutcome outcome = scenario.Run(record.qid, &tagged);
        record.latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - issue).count();
        record.served = outcome.served;
        record.shed = outcome.shed;
        record.quality = outcome.quality;
        record.queue_wait_ms = outcome.queue_wait_ms;
        record.selection = std::move(outcome.selection);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const double wall_micros =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                                start)
                              .count());

  WorkloadReport report;
  report.requests = options.requests;
  report.selections.resize(scenario.n_queries());
  std::vector<double> served_latencies;
  served_latencies.reserve(options.requests);
  double quality_sum = 0.0;
  double queue_wait_sum = 0.0;
  size_t within_slo = 0;
  for (size_t i = options.warmup; i < total; ++i) {
    const Record& record = records[i];
    queue_wait_sum += record.queue_wait_ms;
    if (record.shed) {
      ++report.shed;
      continue;
    }
    if (!record.served) {
      ++report.errors;
      continue;
    }
    ++report.served;
    served_latencies.push_back(record.latency_ms);
    report.max_ms = std::max(report.max_ms, record.latency_ms);
    report.mean_ms += record.latency_ms;
    quality_sum += record.quality;
    if (options.slo_ms <= 0.0 || record.latency_ms <= options.slo_ms) {
      ++within_slo;
    }
    // Mismatch check: against the supplied baseline when given, otherwise
    // against the first served occurrence of the same query id.
    const std::vector<size_t>* reference = nullptr;
    if (baseline != nullptr) {
      reference = &(*baseline)[record.qid];
    } else if (!report.selections[record.qid].empty()) {
      reference = &report.selections[record.qid];
    }
    if (reference != nullptr && record.selection != *reference) {
      ++report.mismatches;
    }
    if (report.selections[record.qid].empty()) {
      report.selections[record.qid] = record.selection;
    }
  }
  const int64_t measure_start =
      std::max<int64_t>(0, measure_start_micros.load(std::memory_order_relaxed));
  report.wall_seconds = std::max(1e-9, (wall_micros - static_cast<double>(measure_start)) / 1e6);
  report.requests_per_sec = static_cast<double>(options.requests) / report.wall_seconds;
  report.served_per_sec = static_cast<double>(report.served) / report.wall_seconds;
  report.shed_fraction =
      static_cast<double>(report.shed) / static_cast<double>(options.requests);
  report.mean_queue_wait_ms = queue_wait_sum / static_cast<double>(options.requests);
  if (report.served > 0) {
    report.mean_ms /= static_cast<double>(report.served);
    report.mean_quality = quality_sum / static_cast<double>(report.served);
    report.slo_attainment =
        static_cast<double>(within_slo) / static_cast<double>(report.served);
    std::sort(served_latencies.begin(), served_latencies.end());
    report.p50_ms = PercentileOverSorted(served_latencies, 50.0);
    report.p99_ms = PercentileOverSorted(served_latencies, 99.0);
  }
  return report;
}

}  // namespace prism

// Bi-encoder embedding model (the dense half of hybrid retrieval, §2.1).
//
// Stand-in for Qwen3-Embedding-0.6B: bag-of-tokens mean over deterministic
// per-token random vectors, L2-normalised. Shared tokens between query and
// document yield higher cosine similarity — the precision ceiling of
// bi-encoders (no token-level interaction) is inherent to this construction,
// which is exactly the gap the cross-encoder reranker closes.
#ifndef PRISM_SRC_RETRIEVAL_BI_ENCODER_H_
#define PRISM_SRC_RETRIEVAL_BI_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prism {

class BiEncoder {
 public:
  BiEncoder(size_t dim, uint64_t seed) : dim_(dim), seed_(seed) {}

  // Mean of per-token vectors, L2-normalised. Deterministic in (seed, tokens).
  std::vector<float> Embed(const std::vector<uint32_t>& tokens) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  uint64_t seed_;
};

// Cosine similarity of two L2-normalised vectors (plain dot product).
float CosineSim(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace prism

#endif  // PRISM_SRC_RETRIEVAL_BI_ENCODER_H_

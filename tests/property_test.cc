// Property-based tests: hundreds of randomized cases from a seeded RNG,
// asserting the invariants PlanChunkCandidates and DecidePrune promise
// rather than hand-picked examples. Failures print the case's derived seed
// so any counterexample replays deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/pruner.h"
#include "src/core/service.h"
#include "src/core/stages.h"
#include "src/model/layer.h"
#include "src/tensor/ops.h"
#include "src/tensor/quant.h"
#include "tests/test_util.h"

namespace prism {
namespace {

constexpr uint64_t kSuiteSeed = 0xBEEF5EED;
constexpr int kCases = 300;

// --- ChunkPlanner::PlanCandidates -----------------------------------------

struct PlannerCase {
  size_t n = 0;
  size_t seq_len = 0;
  int64_t budget = 0;
  size_t chunk_candidates = 0;
  bool chunked = true;
};

size_t Plan(const ModelConfig& config, const PlannerCase& c) {
  PrismOptions options;
  options.chunked = c.chunked;
  options.chunk_candidates = c.chunk_candidates;
  options.device.activation_budget_bytes = c.budget;
  StageResources resources;
  resources.config = &config;
  resources.options = &options;
  const ChunkPlanner planner(resources);
  return planner.PlanCandidates(c.n, c.seq_len);
}

PlannerCase RandomPlannerCase(Rng& rng) {
  PlannerCase c;
  c.n = 1 + rng.NextBelow(80);
  c.seq_len = 8 + rng.NextBelow(120);
  // From starved (forces the floor) to roomy (fits everything).
  c.budget = static_cast<int64_t>(1) << (10 + rng.NextBelow(16));
  if (rng.NextDouble() < 0.2) {
    c.chunk_candidates = 1 + rng.NextBelow(16);
  }
  return c;
}

TEST(PlannerPropertyTest, PlanRespectsBoundsBudgetAndFloor) {
  const ModelConfig config = TestModel();
  Rng rng(kSuiteSeed);
  for (int i = 0; i < kCases; ++i) {
    const PlannerCase c = RandomPlannerCase(rng);
    const size_t plan = Plan(config, c);
    SCOPED_TRACE(::testing::Message() << "case " << i << ": n=" << c.n << " seq_len="
                                      << c.seq_len << " budget=" << c.budget
                                      << " chunk_candidates=" << c.chunk_candidates);
    ASSERT_GE(plan, 1u);
    ASSERT_LE(plan, c.n);
    if (c.chunk_candidates > 0) {
      ASSERT_EQ(plan, std::min(c.chunk_candidates, c.n));
      continue;
    }
    // Budget floor of 2: the plan never goes below min(2, n) however starved
    // the budget is.
    ASSERT_GE(plan, std::min<size_t>(2, c.n));
    // Above the floor, the plan must fit the budget...
    const int64_t scratch =
        LayerScratch::BytesFor(config, plan * c.seq_len, c.seq_len);
    if (plan > std::min<size_t>(2, c.n)) {
      ASSERT_LE(scratch, c.budget);
    }
    // ...and be maximal: one more candidate must not also fit.
    if (plan < c.n) {
      ASSERT_GT(LayerScratch::BytesFor(config, (plan + 1) * c.seq_len, c.seq_len), c.budget);
    }
  }
}

TEST(PlannerPropertyTest, PlanIsDeterministicAndUnchunkedPassesThrough) {
  const ModelConfig config = TestModel();
  Rng rng(kSuiteSeed + 1);
  for (int i = 0; i < kCases; ++i) {
    PlannerCase c = RandomPlannerCase(rng);
    ASSERT_EQ(Plan(config, c), Plan(config, c)) << "case " << i;
    c.chunked = false;
    ASSERT_EQ(Plan(config, c), c.n) << "case " << i;
  }
}

// --- DecidePrune ----------------------------------------------------------

std::vector<float> RandomScores(Rng& rng, size_t m) {
  std::vector<float> scores(m);
  for (float& s : scores) {
    s = static_cast<float>(rng.NextGaussian());
  }
  // Duplicates exercise tie handling in clustering and ranking.
  if (m >= 2 && rng.NextDouble() < 0.3) {
    scores[rng.NextBelow(m)] = scores[rng.NextBelow(m)];
  }
  return scores;
}

TEST(PrunerPropertyTest, DecisionPartitionsActiveSet) {
  Rng rng(kSuiteSeed + 2);
  for (int i = 0; i < kCases; ++i) {
    const size_t m = 1 + rng.NextBelow(40);
    const std::vector<float> scores = RandomScores(rng, m);
    const size_t remaining_k = 1 + rng.NextBelow(m);
    PrunerOptions options;
    options.dispersion_threshold = static_cast<float>(rng.NextUniform(0.0, 1.2));
    options.prune_winners = rng.NextDouble() < 0.8;
    options.seed = MixSeed(kSuiteSeed, static_cast<uint64_t>(i));
    const PruneDecision decision = DecidePrune(scores, remaining_k, options);

    SCOPED_TRACE(::testing::Message() << "case " << i << ": m=" << m << " k=" << remaining_k
                                      << " threshold=" << options.dispersion_threshold
                                      << " prune_winners=" << options.prune_winners);
    // The three lists partition [0, m): the kept set (selected ∪ deferred)
    // plus dropped covers every candidate exactly once — nothing invented,
    // nothing lost.
    std::set<size_t> seen;
    for (const auto* list : {&decision.selected, &decision.dropped, &decision.deferred}) {
      for (size_t idx : *list) {
        ASSERT_LT(idx, m);
        ASSERT_TRUE(seen.insert(idx).second) << "index " << idx << " in two lists";
      }
    }
    ASSERT_EQ(seen.size(), m);
    ASSERT_LE(decision.selected.size(), remaining_k);
    // The remaining_k-th ranked candidate is never dropped when winners are
    // pruned (it defines the boundary cluster).
    if (options.prune_winners) {
      std::vector<size_t> order(m);
      for (size_t j = 0; j < m; ++j) {
        order[j] = j;
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return scores[a] > scores[b]; });
      const size_t kth = order[remaining_k - 1];
      ASSERT_EQ(std::count(decision.dropped.begin(), decision.dropped.end(), kth), 0)
          << "k-th ranked candidate " << kth << " was dropped";
    }
    // Termination implies every remaining slot is accounted for.
    if (decision.terminate) {
      ASSERT_TRUE(decision.deferred.empty());
      ASSERT_LE(decision.selected.size(), remaining_k);
    }
  }
}

// --- Carousel plan adherence ----------------------------------------------

// Invariant: the carousel never forwards a request through a layer outside
// its plan. A request's plan is exactly the layer sequence 0..d-1 the serial
// engine runs for it (d = layers_until_done, cut short by pruning), and each
// layer contributes the active candidate count to candidate_layers. If the
// carousel ever stepped a request through an extra, missing, or out-of-order
// layer, at least one of {layers_until_done, candidate_layers, scores}
// would diverge from serial — and the depth-tag CHECK inside
// LayerLoop::StepLayer would abort the binary outright. Randomized request
// shapes, priorities, and carousel capacities; seeded for replay.
TEST(CarouselPropertyTest, NoRequestForwardedOutsideItsPlan) {
  constexpr int kRounds = 6;
  constexpr size_t kRequestsPerRound = 6;
  const ModelConfig config = TestModel();
  const std::string ckpt = TestCheckpoint(config);
  Rng rng(kSuiteSeed + 4);

  for (int round = 0; round < kRounds; ++round) {
    std::vector<RerankRequest> requests;
    requests.reserve(kRequestsPerRound);
    for (size_t i = 0; i < kRequestsPerRound; ++i) {
      const size_t n = 4 + rng.NextBelow(10);
      const size_t k = 1 + rng.NextBelow(n);
      requests.push_back(
          TestRequest(config, n, k, rng.NextBelow(16), i % 2 == 0 ? "wikipedia" : "lotte"));
      requests.back().priority = static_cast<int>(rng.NextBelow(3));
    }

    MemoryTracker serial_tracker;
    ServiceOptions serial_options;
    serial_options.engine.device = FastDevice();
    RerankService serial(config, ckpt, serial_options, &serial_tracker);
    std::vector<RerankResult> reference;
    reference.reserve(requests.size());
    for (const RerankRequest& request : requests) {
      reference.push_back(serial.Rerank(request));
    }

    MemoryTracker tracker;
    ServiceOptions options;
    options.engine.device = FastDevice();
    options.scheduler = SchedulerKind::kCarousel;
    options.max_inflight = 2 + static_cast<size_t>(round % 3);
    options.compute_threads = 2;
    RerankService service(config, ckpt, options, &tracker);
    std::vector<RerankResult> results(requests.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests.size(); ++i) {
      clients.emplace_back([&, i] { results[i] = service.Rerank(requests[i]); });
    }
    for (std::thread& t : clients) {
      t.join();
    }

    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "round " << round << " request " << i << " n=" << requests[i].docs.size()
                   << " k=" << requests[i].k << " max_inflight=" << options.max_inflight);
      ASSERT_TRUE(results[i].status.ok());
      // Same layer plan, layer for layer…
      ASSERT_EQ(results[i].stats.layers_until_done, reference[i].stats.layers_until_done);
      ASSERT_LE(results[i].stats.layers_until_done, config.n_layers);
      ASSERT_EQ(results[i].stats.candidate_layers, reference[i].stats.candidate_layers);
      // …and bit-identical numerics on top.
      ASSERT_EQ(results[i].topk, reference[i].topk);
      ASSERT_EQ(results[i].scores, reference[i].scores);
    }
  }
}

// --- Precision tiers ------------------------------------------------------

std::vector<float> RandomMatrix(Rng& rng, size_t n, float scale = 0.1f) {
  std::vector<float> w(n);
  for (float& v : w) {
    v = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return w;
}

// Random shape with cols a multiple of a random group size.
void RandomShape(Rng& rng, size_t* rows, size_t* cols, size_t* group) {
  *rows = 1 + rng.NextBelow(24);
  *group = size_t{8} << rng.NextBelow(3);  // 8, 16, 32.
  *cols = *group * (1 + rng.NextBelow(6));
}

TEST(PrecisionPropertyTest, Int8RoundtripBoundedByHalfScale) {
  Rng rng(kSuiteSeed + 5);
  for (int i = 0; i < kCases; ++i) {
    size_t rows = 0;
    size_t cols = 0;
    size_t group = 0;
    RandomShape(rng, &rows, &cols, &group);
    SCOPED_TRACE(::testing::Message() << "case " << i << ": " << rows << "x" << cols
                                      << " group " << group);
    const std::vector<float> w = RandomMatrix(rng, rows * cols);
    std::vector<uint8_t> encoded(MatrixSpanBytes(Precision::kInt8, rows, cols, group));
    std::vector<float> back(rows * cols);
    EncodeMatrix(Precision::kInt8, w.data(), rows, cols, group, encoded.data());
    DecodeMatrix(Precision::kInt8, encoded.data(), rows, cols, group, back.data());
    const float bound = Int8MaxScale(encoded.data(), rows, cols, group) * 0.5f + 1e-7f;
    for (size_t j = 0; j < w.size(); ++j) {
      ASSERT_LE(std::fabs(w[j] - back[j]), bound) << "element " << j;
    }
  }
}

TEST(PrecisionPropertyTest, Fp16RoundtripBoundedByHalfUlp) {
  // For normal halves the relative error of round-to-nearest is <= 2^-11;
  // subnormals add an absolute floor of half the smallest subnormal step
  // (2^-25). Values are drawn across magnitudes via a random exponent.
  Rng rng(kSuiteSeed + 6);
  for (int i = 0; i < kCases; ++i) {
    const float mag = std::ldexp(1.0f, static_cast<int>(rng.NextBelow(30)) - 20);
    const float v = static_cast<float>(rng.NextGaussian()) * mag;
    const float back = Fp16ToFp32(Fp32ToFp16(v));
    const float bound = std::fabs(v) / 2048.0f + 6e-8f;
    ASSERT_LE(std::fabs(v - back), bound) << "case " << i << " v=" << v;
  }
}

TEST(PrecisionPropertyTest, EncodeIsDeterministic) {
  Rng rng(kSuiteSeed + 7);
  for (int i = 0; i < 40; ++i) {
    size_t rows = 0;
    size_t cols = 0;
    size_t group = 0;
    RandomShape(rng, &rows, &cols, &group);
    const std::vector<float> w = RandomMatrix(rng, rows * cols);
    for (const Precision precision : kAllPrecisions) {
      std::vector<uint8_t> once(MatrixSpanBytes(precision, rows, cols, group));
      std::vector<uint8_t> twice(once.size());
      EncodeMatrix(precision, w.data(), rows, cols, group, once.data());
      EncodeMatrix(precision, w.data(), rows, cols, group, twice.data());
      ASSERT_EQ(once, twice) << "case " << i << " precision " << PrecisionName(precision);
    }
  }
}

// The fused dequantising GEMM must equal decode-then-GEMM at every precision
// — the property that makes streaming reduced-precision blobs equivalent to
// materialising fp32 weights.
TEST(PrecisionPropertyTest, FusedMatMulEqualsDecodeThenGemm) {
  Rng rng(kSuiteSeed + 8);
  for (int i = 0; i < 60; ++i) {
    size_t rows = 0;
    size_t cols = 0;
    size_t group = 0;
    RandomShape(rng, &rows, &cols, &group);
    const size_t m = 1 + rng.NextBelow(6);
    const std::vector<float> w = RandomMatrix(rng, rows * cols);
    const std::vector<float> a = RandomMatrix(rng, m * cols, 1.0f);
    for (const Precision precision : kAllPrecisions) {
      SCOPED_TRACE(::testing::Message() << "case " << i << ": " << rows << "x" << cols
                                        << " group " << group << " m " << m << " "
                                        << PrecisionName(precision));
      std::vector<uint8_t> encoded(MatrixSpanBytes(precision, rows, cols, group));
      EncodeMatrix(precision, w.data(), rows, cols, group, encoded.data());
      std::vector<float> decoded(rows * cols);
      DecodeMatrix(precision, encoded.data(), rows, cols, group, decoded.data());
      std::vector<float> expected(m * rows, 0.0f);
      for (size_t r = 0; r < m; ++r) {
        for (size_t j = 0; j < rows; ++j) {
          double acc = 0.0;
          for (size_t k = 0; k < cols; ++k) {
            acc += static_cast<double>(a[r * cols + k]) * decoded[j * cols + k];
          }
          expected[r * rows + j] = static_cast<float>(acc);
        }
      }
      std::vector<float> got(m * rows, 0.0f);
      const uint8_t* p = encoded.data();
      switch (precision) {
        case Precision::kFp32: {
          MatMulTransBRaw(a.data(), m, cols, reinterpret_cast<const float*>(p), rows,
                          got.data());
          break;
        }
        case Precision::kFp16: {
          Fp16MatrixView view{reinterpret_cast<const uint16_t*>(p), rows, cols};
          view.MatMulTransB(a.data(), m, got.data());
          break;
        }
        case Precision::kInt8: {
          Int8MatrixView view{reinterpret_cast<const int8_t*>(p),
                              reinterpret_cast<const float*>(p + rows * cols), rows, cols,
                              group};
          view.MatMulTransB(a.data(), m, got.data());
          break;
        }
        case Precision::kW4: {
          QuantMatrixView view{p, reinterpret_cast<const float*>(p + rows * cols / 2), rows,
                               cols, group};
          view.MatMulTransB(a.data(), m, got.data());
          break;
        }
      }
      for (size_t j = 0; j < got.size(); ++j) {
        ASSERT_NEAR(got[j], expected[j], 2e-3f) << "element " << j;
      }
    }
  }
}

// Scores perturbed by a storage tier (encode→decode roundtrip) are still
// just scores: DecidePrune must keep every invariant, in particular that the
// remaining_k-th ranked candidate survives.
TEST(PrecisionPropertyTest, PruningUnderQuantizedScoresKeepsKth) {
  Rng rng(kSuiteSeed + 9);
  for (int i = 0; i < kCases; ++i) {
    const size_t m = 2 + rng.NextBelow(30);
    std::vector<float> scores = RandomScores(rng, m);
    for (float& s : scores) {
      s = 0.5f + 0.4f * std::tanh(s);  // Probability-like, as served.
    }
    // Perturb through a random tier's roundtrip. int8/w4 quantise the score
    // vector as one group-sized row (padding with zeros).
    const Precision precision = kAllPrecisions[1 + rng.NextBelow(3)];
    if (precision == Precision::kFp16) {
      for (float& s : scores) {
        s = Fp16ToFp32(Fp32ToFp16(s));
      }
    } else {
      const size_t group = 16;
      const size_t padded = (m + group - 1) / group * group;
      std::vector<float> row(padded, 0.0f);
      std::copy(scores.begin(), scores.end(), row.begin());
      std::vector<uint8_t> encoded(MatrixSpanBytes(precision, 1, padded, group));
      EncodeMatrix(precision, row.data(), 1, padded, group, encoded.data());
      DecodeMatrix(precision, encoded.data(), 1, padded, group, row.data());
      std::copy(row.begin(), row.begin() + static_cast<ptrdiff_t>(m), scores.begin());
    }

    const size_t remaining_k = 1 + rng.NextBelow(m);
    PrunerOptions options;
    options.dispersion_threshold = static_cast<float>(rng.NextUniform(0.0, 1.2));
    options.prune_winners = true;
    options.seed = MixSeed(kSuiteSeed, static_cast<uint64_t>(i));
    const PruneDecision decision = DecidePrune(scores, remaining_k, options);

    SCOPED_TRACE(::testing::Message() << "case " << i << ": m=" << m << " k=" << remaining_k
                                      << " precision=" << PrecisionName(precision));
    std::set<size_t> seen;
    for (const auto* list : {&decision.selected, &decision.dropped, &decision.deferred}) {
      for (size_t idx : *list) {
        ASSERT_LT(idx, m);
        ASSERT_TRUE(seen.insert(idx).second);
      }
    }
    ASSERT_EQ(seen.size(), m);
    std::vector<size_t> order(m);
    for (size_t j = 0; j < m; ++j) {
      order[j] = j;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return scores[a] > scores[b]; });
    const size_t kth = order[remaining_k - 1];
    ASSERT_EQ(std::count(decision.dropped.begin(), decision.dropped.end(), kth), 0)
        << "k-th ranked candidate " << kth << " dropped under "
        << PrecisionName(precision) << " scores";
  }
}

TEST(PrunerPropertyTest, DecisionIsDeterministicForFixedSeed) {
  Rng rng(kSuiteSeed + 3);
  for (int i = 0; i < kCases; ++i) {
    const size_t m = 2 + rng.NextBelow(30);
    const std::vector<float> scores = RandomScores(rng, m);
    const size_t remaining_k = 1 + rng.NextBelow(m);
    PrunerOptions options;
    options.dispersion_threshold = 0.1f;  // Trigger clustering often.
    options.seed = MixSeed(kSuiteSeed, static_cast<uint64_t>(i));
    const PruneDecision first = DecidePrune(scores, remaining_k, options);
    const PruneDecision second = DecidePrune(scores, remaining_k, options);
    ASSERT_EQ(first.triggered, second.triggered) << "case " << i;
    ASSERT_EQ(first.terminate, second.terminate) << "case " << i;
    ASSERT_EQ(first.selected, second.selected) << "case " << i;
    ASSERT_EQ(first.dropped, second.dropped) << "case " << i;
    ASSERT_EQ(first.deferred, second.deferred) << "case " << i;
  }
}

}  // namespace
}  // namespace prism

// Automatic dispersion-threshold calibration (paper §4.1): instead of tuning
// the threshold by hand, specify a minimum precision target and let the
// calibrator find the most aggressive threshold that meets it against
// full-inference ground truth.
#include <cstdio>

#include "src/core/calibrator.h"
#include "src/core/engine.h"
#include "src/model/synthetic.h"
#include "src/runtime/hf_runner.h"

int main() {
  using namespace prism;

  const ModelConfig model = Qwen3Reranker0_6B();
  DeviceProfile device = NvidiaProfile();
  device.ssd.throttle = false;  // Calibration is offline; skip simulated I/O waits.
  const std::string checkpoint = EnsureCheckpoint(model, 42);

  // Calibration sample: a few queries from the target workload.
  const SyntheticDataset data(DatasetByName("beir-nq"), model, 77);
  std::vector<RerankRequest> sample;
  for (size_t i = 0; i < 3; ++i) {
    sample.push_back(RerankRequest::FromQuery(data.MakeQuery(i, 20), 5));
  }

  HfRunnerOptions hf_options;
  hf_options.device = device;
  HfRunner reference(model, checkpoint, hf_options);

  PrismOptions prism_options;
  prism_options.device = device;
  PrismEngine engine(model, checkpoint, prism_options);

  for (double target : {0.90, 0.99}) {
    CalibrationOptions options;
    options.target_precision = target;
    const CalibrationResult result = CalibrateThreshold(&engine, &reference, sample, options);
    std::printf("target precision %.2f -> threshold %.3f (achieved %.3f, %d evaluations)\n",
                target, result.threshold, result.achieved_precision, result.evaluations);
  }
  return 0;
}

#include "src/model/tokenizer.h"

#include <cctype>

#include "src/common/rng.h"
#include "src/model/pair_encoder.h"

namespace prism {

std::vector<uint32_t> SyntheticTokenizer::Encode(std::string_view text) const {
  std::vector<uint32_t> out;
  std::string word;
  auto flush = [&] {
    if (!word.empty()) {
      out.push_back(TokenOf(word));
      word.clear();
    }
  };
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      word.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

uint32_t SyntheticTokenizer::TokenOf(std::string_view word) const {
  // FNV-1a over the word, then squared-uniform remap: squaring a uniform
  // variate concentrates mass near 0, approximating a Zipf-like skew toward
  // low token ids without a per-word frequency table.
  uint64_t hash = 1469598103934665603ULL;
  for (char ch : word) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 1099511628211ULL;
  }
  uint64_t state = hash;
  const double u = static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  const size_t range = vocab_ - kFirstWordToken;
  const auto id = static_cast<uint32_t>(u * u * static_cast<double>(range));
  return kFirstWordToken + (id % static_cast<uint32_t>(range));
}

}  // namespace prism

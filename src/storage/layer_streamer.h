// Overlapped layer streaming (paper §4.2).
//
// Keeps at most `buffer_count` (default two) blobs resident: the one being
// consumed and the one being prefetched. A background thread walks a blob
// schedule; Acquire(i) blocks only if the prefetch has not caught up — the
// stall time is recorded so the ablation bench (Fig 16) can report the
// latency overhead when pruning shrinks the compute window below the load
// time. Releasing blob i immediately frees its buffer and lets the prefetcher
// pull blob i+buffer_count.
//
// Two schedule modes:
//   - terminating (default): the schedule is consumed once, front to back.
//   - cyclic: the schedule wraps — sequence position `seq` maps to blob
//     `schedule[seq % schedule.size()]` and the walk never ends on its own
//     (1..L, 1..L, …). This is the layer carousel the continuous-batching
//     scheduler rides: every in-flight request shares the same endless layer
//     stream, and the prefetcher keeps the next cycle's first layers warm
//     while the current cycle's tail computes.
//
// Sequence positions stay monotonic in both modes, so TruncateSchedule keeps
// its exact semantics under wrap-around: it caps the monotonic sequence
// space, not a layer index — truncating at seq 17 of a 6-blob cyclic
// schedule stops the prefetcher partway through the third cycle. SkipTo
// discards unconsumed positions below a point (e.g. the rest of a drained
// cycle) without tearing the streamer down, so a carousel that emptied at
// layer 3 can jump straight to the next cycle's layer 0.
#ifndef PRISM_SRC_STORAGE_LAYER_STREAMER_H_
#define PRISM_SRC_STORAGE_LAYER_STREAMER_H_

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/memory_tracker.h"
#include "src/common/mutex.h"
#include "src/storage/blob_file.h"

namespace prism {

// Per-cycle slice of the streamer counters (cycle = one full walk of the
// schedule; a terminating schedule is exactly one cycle). Lets the carousel
// report how each revolution amortised its fetches.
struct StreamerCycleStats {
  int64_t bytes_loaded = 0;
  int64_t stall_micros = 0;
  int64_t blobs_loaded = 0;
};

struct StreamerStats {
  // A long-lived cyclic streamer revolves indefinitely; bounding the
  // per-cycle ledger keeps stats() O(1) in service lifetime. Cycles at and
  // beyond the cap aggregate into the last slot.
  static constexpr size_t kMaxTrackedCycles = 256;

  int64_t bytes_loaded = 0;
  int64_t stall_micros = 0;    // Time Acquire spent waiting on I/O.
  int64_t blobs_loaded = 0;
  // Indexed by min(seq / schedule_size, kMaxTrackedCycles - 1); entries
  // exist up to the furthest position touched. Totals above are exact sums
  // of this vector.
  std::vector<StreamerCycleStats> per_cycle;
};

class LayerStreamer {
 public:
  // `schedule` lists blob indices in consumption order (e.g. layer blobs
  // 1..L). The streamer starts prefetching immediately. With `cyclic`, the
  // schedule wraps instead of terminating (see file comment).
  LayerStreamer(BlobFileReader* reader, std::vector<size_t> schedule, size_t buffer_count = 2,
                MemoryTracker* tracker = &MemoryTracker::Global(), bool cyclic = false);
  ~LayerStreamer();

  LayerStreamer(const LayerStreamer&) = delete;
  LayerStreamer& operator=(const LayerStreamer&) = delete;

  // Blocks until the `seq`-th scheduled blob is resident; returns its bytes.
  // The span stays valid until Release(seq). Positions must be consumed in
  // increasing order; skipped positions (SkipTo) may not be acquired.
  std::span<const uint8_t> Acquire(size_t seq);

  // Frees the buffer of the `seq`-th blob (must be acquired, in order).
  void Release(size_t seq);

  // Stops prefetching beyond the given sequence point (early termination by
  // pruning). In-flight loads complete; subsequent Acquire calls must not
  // exceed `last_seq`. Sequence points are monotonic even in cyclic mode, so
  // this truncates mid-cycle exactly like mid-schedule.
  void TruncateSchedule(size_t last_seq);

  // Discards every unconsumed position below `seq` without stopping the
  // walk: ready buffers holding skipped positions are freed now, in-flight
  // loads are freed on completion, and prefetching resumes from `seq`. The
  // carousel uses this to wrap early — jumping from a drained cycle's middle
  // to the next cycle's first layer — instead of fetching layers nobody
  // needs. `seq` must not precede a position already consumed.
  void SkipTo(size_t seq);

  bool cyclic() const { return cyclic_; }
  size_t cycle_length() const { return schedule_.size(); }

  StreamerStats stats() const;

 private:
  struct Buffer {
    std::vector<uint8_t> bytes;
    MemClaim claim;
    size_t seq = SIZE_MAX;  // Which schedule position it holds.
    bool ready = false;
  };

  void PrefetchLoop();
  StreamerCycleStats& CycleSlotLocked(size_t seq) PRISM_REQUIRES(mu_);
  void FreeBufferLocked(Buffer* buf) PRISM_REQUIRES(mu_);

  BlobFileReader* reader_;
  std::vector<size_t> schedule_;
  MemoryTracker* tracker_;
  bool cyclic_ = false;

  mutable Mutex mu_;
  CondVar cv_;
  // The vector and every Buffer's bookkeeping fields are guarded; a buffer
  // mid-load (seq set, !ready) additionally has its `bytes` written by the
  // prefetcher outside the lock — nobody else may touch a !ready buffer's
  // bytes (Acquire only returns ready ones).
  std::vector<Buffer> buffers_ PRISM_GUARDED_BY(mu_);
  // Next schedule position the prefetcher fills.
  size_t next_to_load_ PRISM_GUARDED_BY(mu_) = 0;
  // All seq < floor have been released/skipped.
  size_t release_floor_ PRISM_GUARDED_BY(mu_) = 0;
  // Exclusive end (may shrink via Truncate).
  size_t schedule_end_ PRISM_GUARDED_BY(mu_) = 0;
  bool shutting_down_ PRISM_GUARDED_BY(mu_) = false;
  StreamerStats stats_ PRISM_GUARDED_BY(mu_);
  std::thread prefetcher_;
};

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_LAYER_STREAMER_H_

// On-disk weight layout and in-memory weight views.
//
// A model checkpoint is a blob file with the layout:
//   blob 0               embedding table, fp32 [vocab, hidden]
//   blob 1 .. n_layers   one transformer layer each
//   blob n_layers + 1    head: classifier weight [hidden] + bias [1], fp32
//
// Layer blobs are stored at one of four precisions (whole checkpoint is a
// single tier; embedding and head stay fp32 at every tier). The fp32 layout,
// in floats:
//   wq[D·D] wk[D·D] wv[D·D] wo[D·D]
//   w_gate[F·D]   (decoder-only; absent for encoder models)
//   w_up[F·D] w_down[D·F]
//   norm1_gain[D] norm1_bias[D] norm2_gain[D] norm2_bias[D]
// Reduced-precision layouts replace each big matrix with its encoded span
// (MatrixSpanBytes for that precision) and keep the norm vectors fp32.
#ifndef PRISM_SRC_MODEL_WEIGHTS_H_
#define PRISM_SRC_MODEL_WEIGHTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/model/config.h"
#include "src/tensor/quant.h"

namespace prism {

class BlobFileReader;

// Blob indices within a checkpoint.
inline size_t EmbeddingBlobIndex() { return 0; }
inline size_t LayerBlobIndex(size_t layer) { return 1 + layer; }
inline size_t HeadBlobIndex(const ModelConfig& config) { return 1 + config.n_layers; }

// Byte size of a single layer blob at the given storage precision. This is
// what the carousel/prefetcher stream per layer per cycle, so reduced tiers
// cut SSD traffic by exactly the ratio of these sizes.
size_t LayerBlobBytes(const ModelConfig& config, Precision precision);

// Non-owning view of one weight matrix at whatever precision its blob is
// stored in, with a fused dequantising GEMM: the forward pass calls
// MatMulTransB and never materialises fp32 weights for reduced tiers.
struct WeightView {
  Precision precision = Precision::kFp32;
  size_t rows = 0;
  size_t cols = 0;
  const float* f32 = nullptr;      // kFp32
  Fp16MatrixView f16;              // kFp16
  Int8MatrixView i8;               // kInt8
  QuantMatrixView q4;              // kW4

  // C[m, rows] = A[m, cols] · Wᵀ, dequantising on the fly for reduced tiers.
  void MatMulTransB(const float* a, size_t m, float* c) const;
};

// Non-owning fp32 view into a layer blob (kept for fp32-only callers that
// want raw pointers, e.g. layout tests).
struct LayerView {
  const float* wq = nullptr;
  const float* wk = nullptr;
  const float* wv = nullptr;
  const float* wo = nullptr;
  const float* w_gate = nullptr;  // null for encoder models
  const float* w_up = nullptr;
  const float* w_down = nullptr;
  std::span<const float> norm1_gain;
  std::span<const float> norm1_bias;
  std::span<const float> norm2_gain;
  std::span<const float> norm2_bias;
};

// Precision-generic view passed to the layer forward.
struct AnyLayerView {
  Precision precision = Precision::kFp32;
  WeightView wq, wk, wv, wo;
  WeightView w_gate;  // rows == 0 for encoder models
  WeightView w_up, w_down;
  std::span<const float> norm1_gain;
  std::span<const float> norm1_bias;
  std::span<const float> norm2_gain;
  std::span<const float> norm2_bias;
};

// Parses views out of a raw layer blob (no copy; blob must outlive the view).
LayerView ParseLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob);
AnyLayerView ParseAnyLayerBlob(const ModelConfig& config, std::span<const uint8_t> blob,
                               Precision precision);

// Checks an opened checkpoint against the model config and the precision the
// caller intends to stream at: blob count, per-blob byte sizes, and (for v2
// files) the precision tags themselves. Catches a checkpoint generated at one
// tier being opened at another before any garbage maths runs.
Status ValidateCheckpoint(const BlobFileReader& reader, const ModelConfig& config,
                          Precision precision);

// Classifier head (copied out of its blob; it is a handful of floats).
struct HeadWeights {
  std::vector<float> w;  // [hidden] — also the planted relevance direction.
  float bias = 0.0f;
};

HeadWeights ParseHeadBlob(const ModelConfig& config, std::span<const uint8_t> blob);

}  // namespace prism

#endif  // PRISM_SRC_MODEL_WEIGHTS_H_

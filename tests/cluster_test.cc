#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/core/cluster.h"

namespace prism {
namespace {

TEST(KMeansTest, SeparatesObviousGroups) {
  const std::vector<float> values = {0.9f, 0.92f, 0.88f, 0.1f, 0.12f, 0.08f};
  const Clustering c = KMeans1D(values, 2, 1);
  ASSERT_EQ(c.k(), 2);
  // Cluster 0 is the higher one.
  EXPECT_GT(c.centers[0], c.centers[1]);
  EXPECT_EQ(c.assignment[0], 0);
  EXPECT_EQ(c.assignment[3], 1);
  EXPECT_EQ(c.sizes[0], 3u);
  EXPECT_EQ(c.sizes[1], 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(2);
  std::vector<float> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(static_cast<float>(rng.NextDouble()));
  }
  const Clustering a = KMeans1D(values, 3, 77);
  const Clustering b = KMeans1D(values, 3, 77);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centers, b.centers);
}

TEST(KMeansTest, OneDClustersAreContiguousIntervals) {
  // The safety property pruning relies on: in 1-D, k-means clusters are
  // intervals, so every member of a higher cluster outscores every member of
  // a lower cluster.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> values;
    for (int i = 0; i < 24; ++i) {
      values.push_back(static_cast<float>(rng.NextDouble()));
    }
    const Clustering c = KMeans1D(values, 3, 100 + trial);
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = 0; j < values.size(); ++j) {
        if (c.assignment[i] < c.assignment[j]) {  // i in strictly higher cluster
          EXPECT_GE(values[i], values[j])
              << "trial " << trial << ": higher-cluster member scored lower";
        }
      }
    }
  }
}

TEST(KMeansTest, HandlesDuplicateValues) {
  const std::vector<float> values = {0.5f, 0.5f, 0.5f, 0.5f, 0.9f};
  const Clustering c = KMeans1D(values, 2, 4);
  EXPECT_LE(c.k(), 2);
  // All duplicates land in one cluster.
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[1], c.assignment[2]);
}

TEST(ClusterScoresTest, PicksSensibleKBySilhouette) {
  // Three clearly separated groups → best silhouette at k=3.
  const std::vector<float> values = {0.95f, 0.93f, 0.9f, 0.55f, 0.5f, 0.52f, 0.1f, 0.08f, 0.12f};
  const Clustering c = ClusterScores(values, 4, 5);
  EXPECT_EQ(c.k(), 3);
}

TEST(ClusterScoresTest, AllEqualFallsBackToSingleCluster) {
  const std::vector<float> values(8, 0.4f);
  const Clustering c = ClusterScores(values, 4, 6);
  EXPECT_EQ(c.k(), 1);
  for (int a : c.assignment) {
    EXPECT_EQ(a, 0);
  }
}

TEST(ClusterScoresTest, TwoDistinctValues) {
  const std::vector<float> values = {0.2f, 0.8f, 0.2f, 0.8f};
  const Clustering c = ClusterScores(values, 4, 7);
  EXPECT_EQ(c.k(), 2);
  EXPECT_NE(c.assignment[0], c.assignment[1]);
}

TEST(ClusterScoresTest, SizesSumToN) {
  Rng rng(8);
  std::vector<float> values;
  for (int i = 0; i < 17; ++i) {
    values.push_back(static_cast<float>(rng.NextDouble()));
  }
  const Clustering c = ClusterScores(values, 4, 9);
  size_t total = 0;
  for (size_t s : c.sizes) {
    total += s;
  }
  EXPECT_EQ(total, values.size());
}

TEST(ClusterScoresTest, CentersSortedDescending) {
  Rng rng(10);
  std::vector<float> values;
  for (int i = 0; i < 20; ++i) {
    values.push_back(static_cast<float>(rng.NextDouble()));
  }
  const Clustering c = ClusterScores(values, 4, 11);
  for (size_t i = 1; i < c.centers.size(); ++i) {
    EXPECT_GE(c.centers[i - 1], c.centers[i]);
  }
}

}  // namespace
}  // namespace prism

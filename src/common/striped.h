// Striped atomic counter cells: the primitive behind the serving stack's
// lock-free hot-path statistics (ServiceStats stripes, ResultCache shard
// counters).
//
// A mutation-heavy counter shared by many client threads has two costs: the
// lock that guards it, and — once the lock is gone — the cache line that
// every fetch_add still bounces between cores. The cells here address both:
// each cell is a single relaxed atomic padded to its own cache line (no
// false sharing with its neighbours), and callers that want write scaling
// stripe an array of cells by ThreadOrdinal() so concurrent writers touch
// disjoint lines. Reads fold the stripes; a fold is a snapshot, not a
// linearizable total — torn reads across cells are possible by design, and
// consumers must tolerate them (see ServiceStats::served()'s clamp).
//
// ThreadOrdinal() is a *registration-order* thread index — 0 for the first
// thread that asks, 1 for the second, and so on — not a thread-id hash.
// Under a SimClock the first-touch order is a pure function of the virtual
// schedule, so stripe assignment (and with it the per-stripe latency
// reservoir contents) replays deterministically; a hash of the host's
// std::thread::id would differ run to run.
#ifndef PRISM_SRC_COMMON_STRIPED_H_
#define PRISM_SRC_COMMON_STRIPED_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace prism {

// Destination cache-line size for the cells below. std::hardware_
// destructive_interference_size exists but is unreliably defined across
// toolchains (and tying ABI to a -mtune flag is worse); 64 bytes is right
// for every x86-64 and most AArch64 parts.
inline constexpr size_t kCacheLineBytes = 64;

// Registration-order index of the calling thread (see file comment). The
// first call from a thread assigns its slot; subsequent calls are a TLS
// read. Monotonic across the process, never recycled.
inline size_t ThreadOrdinal() {
  static std::atomic<size_t> next_ordinal{0};
  thread_local const size_t ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// One integral counter on its own cache line. Relaxed everywhere: these are
// statistics, ordered against nothing; cross-cell snapshots may tear.
struct alignas(kCacheLineBytes) CounterCell {
  std::atomic<int64_t> value{0};

  void Add(int64_t delta) { value.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Load() const { return value.load(std::memory_order_relaxed); }
};

// One double accumulator on its own cache line. x86-64 has no atomic FP
// add, so Add/UpdateMax are CAS loops — still lock-free, and uncontended in
// the striped usage (each stripe is written by threads that mapped to it).
struct alignas(kCacheLineBytes) GaugeCell {
  std::atomic<double> value{0.0};

  void Add(double delta) {
    double current = value.load(std::memory_order_relaxed);
    while (!value.compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
    }
  }

  void UpdateMax(double candidate) {
    double current = value.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  double Load() const { return value.load(std::memory_order_relaxed); }
};

}  // namespace prism

#endif  // PRISM_SRC_COMMON_STRIPED_H_

#include "src/core/pruner.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/data/metrics.h"

namespace prism {

PruneDecision DecidePrune(const std::vector<float>& scores, size_t remaining_k,
                          const PrunerOptions& options) {
  PruneDecision decision;
  const size_t m = scores.size();
  PRISM_CHECK_GT(remaining_k, 0u);

  // Fewer (or exactly as many) candidates than slots: everyone wins; stop.
  if (m <= remaining_k) {
    decision.terminate = true;
    decision.selected.resize(m);
    std::iota(decision.selected.begin(), decision.selected.end(), 0);
    return decision;
  }

  decision.cv = CoefficientOfVariation(scores);
  if (decision.cv < options.dispersion_threshold) {
    // No stable relative ranking yet — everyone defers.
    decision.deferred.resize(m);
    std::iota(decision.deferred.begin(), decision.deferred.end(), 0);
    return decision;
  }

  decision.triggered = true;
  decision.clustering = ClusterScores(scores, options.kmeans_max_k, options.seed);

  // Identify the boundary cluster: the one containing the remaining_k-th
  // ranked candidate (cluster ids are ordered best-first, and 1-D k-means
  // clusters are contiguous score intervals).
  const std::vector<size_t> order = TopKIndices(scores, m);
  const int boundary = decision.clustering.assignment[order[remaining_k - 1]];

  for (size_t i = 0; i < m; ++i) {
    const int cluster = decision.clustering.assignment[i];
    if (cluster < boundary) {
      if (options.prune_winners) {
        decision.selected.push_back(i);
      } else {
        decision.deferred.push_back(i);  // Exact-rank mode: winners continue.
      }
    } else if (cluster > boundary) {
      decision.dropped.push_back(i);
    } else {
      decision.deferred.push_back(i);
    }
  }

  // Postcondition checks (the safety invariants of §4.1).
  PRISM_CHECK_EQ(decision.selected.size() + decision.dropped.size() + decision.deferred.size(),
                 m);
  PRISM_CHECK_LE(decision.selected.size(), remaining_k);
  // The K-th ranked candidate lives in the boundary cluster → deferred.
  if (options.prune_winners) {
    const size_t kth = order[remaining_k - 1];
    PRISM_CHECK(std::find(decision.dropped.begin(), decision.dropped.end(), kth) ==
                decision.dropped.end());
  }

  // Termination: deferred exactly fills the remaining slots.
  const size_t slots_left = remaining_k - decision.selected.size();
  if (options.prune_winners && decision.deferred.size() == slots_left) {
    decision.terminate = true;
    for (size_t idx : decision.deferred) {
      decision.selected.push_back(idx);
    }
    decision.deferred.clear();
  }
  return decision;
}

}  // namespace prism

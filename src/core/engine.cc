#include "src/core/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace prism {

class PrismCarouselPass;

// One request riding the engine's carousel. Owns the RequestContext; the
// ticket address is stable (heap-allocated), so the stages can hold onto the
// context across steps. An abandoned ticket (destroyed before TakeResult —
// e.g. a fault-injection wrapper killed the request mid-flight) releases its
// parked spill chunks and deregisters from the pass.
class PrismCarouselTicket final : public CarouselTicket {
 public:
  PrismCarouselTicket(PrismCarouselPass* pass, const RerankRequest& request, uint64_t id)
      : pass_(pass), ctx_(request, id) {}
  ~PrismCarouselTicket() override;

  size_t next_layer() const override { return ctx_.next_layer; }
  bool done() const override { return ctx_.done; }
  RerankResult TakeResult() override;

  RequestContext& ctx() { return ctx_; }

 private:
  PrismCarouselPass* pass_;
  RequestContext ctx_;
  bool finalized_ = false;
};

// The engine's cyclic layer pass. Wraps a cyclic LayerStreamer (or the
// resident layers when streaming is off) and drives the shared stage
// pipeline one layer at a time. Stall time is charged to the group that
// waited for the layer; streamed bytes are split across every request still
// riding the carousel (they all share the cycle). Confined to one driver
// thread — only Step's compute fan-out is parallel.
class PrismCarouselPass final : public CarouselPass {
 public:
  explicit PrismCarouselPass(PrismEngine* engine) : engine_(engine) {
    if (engine_->options_.streaming) {
      std::vector<size_t> schedule;
      for (size_t layer = 0; layer < engine_->config_.n_layers; ++layer) {
        schedule.push_back(LayerBlobIndex(layer));
      }
      streamer_ = std::make_unique<LayerStreamer>(engine_->reader_.get(), std::move(schedule),
                                                  /*buffer_count=*/2, engine_->tracker_,
                                                  /*cyclic=*/true);
    }
  }

  ~PrismCarouselPass() override {
    PRISM_CHECK_MSG(live_.empty(), "carousel pass destroyed with live tickets");
    if (streamer_ != nullptr && seq_ > 0) {
      // Stop the prefetcher from fetching layers nobody will consume while
      // the destructor joins it.
      streamer_->TruncateSchedule(seq_ - 1);
    }
  }

  size_t n_layers() const override { return engine_->config_.n_layers; }

  std::unique_ptr<CarouselTicket> Admit(const RerankRequest& request) override {
    std::unique_ptr<PrismCarouselTicket> ticket = PlanTicket(request);
    engine_->embed_stage_->Run(&ticket->ctx());
    live_.push_back(ticket.get());
    return ticket;
  }

  // A boundary's joiners embed in parallel — the carousel is stalled while
  // they board, so this window is pure time-to-first-layer.
  std::vector<std::unique_ptr<CarouselTicket>> AdmitBatch(
      std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) override {
    std::vector<std::unique_ptr<PrismCarouselTicket>> planned;
    planned.reserve(requests.size());
    for (const RerankRequest* request : requests) {
      planned.push_back(PlanTicket(*request));
    }
    if (compute_pool != nullptr && planned.size() > 1) {
      compute_pool->ParallelFor(0, planned.size(), [&](size_t i) {
        engine_->embed_stage_->Run(&planned[i]->ctx());
      });
    } else {
      for (auto& ticket : planned) {
        engine_->embed_stage_->Run(&ticket->ctx());
      }
    }
    std::vector<std::unique_ptr<CarouselTicket>> tickets;
    tickets.reserve(planned.size());
    for (auto& ticket : planned) {
      live_.push_back(ticket.get());
      tickets.push_back(std::move(ticket));
    }
    return tickets;
  }

  void Step(size_t layer, std::span<CarouselTicket* const> group,
            ThreadPool* compute_pool) override {
    PRISM_CHECK_LT(layer, n_layers());
    PRISM_CHECK_EQ(layer, seq_ % n_layers());  // Layers arrive in cyclic order.

    std::vector<RequestContext*> ctxs;
    ctxs.reserve(group.size());
    for (CarouselTicket* ticket : group) {
      ctxs.push_back(&static_cast<PrismCarouselTicket*>(ticket)->ctx());
    }

    std::span<const uint8_t> blob;
    if (streamer_ != nullptr) {
      const WallTimer stall_timer;
      blob = streamer_->Acquire(seq_);
      if (!group.empty()) {
        const double stall_share =
            stall_timer.ElapsedMillis() / static_cast<double>(group.size());
        for (RequestContext* ctx : ctxs) {
          ctx->result.stats.io_stall_ms += stall_share;
        }
      }
    } else {
      blob = engine_->resident_layers_[layer];
    }

    const AnyLayerView view =
        ParseAnyLayerBlob(engine_->config_, blob, engine_->options_.precision);
    const bool last_layer = layer + 1 == n_layers();
    engine_->layer_loop_->ForwardGroup(ctxs, layer, view, last_layer, compute_pool);

    // The fetch served the whole cycle: split it across everyone riding it.
    // Resident (non-streaming) layers charge nothing, matching the serial
    // path. (live_ can be empty when a fault-injection wrapper killed every
    // resident but still steps the pass to keep the walk aligned.)
    if (streamer_ != nullptr && !live_.empty()) {
      const int64_t byte_share =
          static_cast<int64_t>(blob.size()) / static_cast<int64_t>(live_.size());
      for (PrismCarouselTicket* ticket : live_) {
        ticket->ctx().result.stats.bytes_streamed += byte_share;
      }
    }

    // Release before settling, as in LayerLoop::Run: the next layer
    // prefetches into the freed buffer while pruning runs.
    if (streamer_ != nullptr) {
      streamer_->Release(seq_);
    }
    engine_->layer_loop_->SettleGroup(ctxs, layer, last_layer);
    ++seq_;
  }

  void SkipToNextCycle() override {
    if (seq_ % n_layers() == 0) {
      return;  // Already at a boundary (e.g. drained exactly at the wrap).
    }
    const size_t next_boundary = (seq_ / n_layers() + 1) * n_layers();
    if (streamer_ != nullptr) {
      streamer_->SkipTo(next_boundary);
    }
    seq_ = next_boundary;
  }

  // Ticket exit paths (called by PrismCarouselTicket only).
  void Finalize(PrismCarouselTicket* ticket) {
    engine_->prune_stage_->Finalize(&ticket->ctx());
    // Publish the trace like RerankBatch does for its last context: the
    // most recently finalized request's records are what last_trace()
    // returns.
    {
      MutexLock lock(engine_->trace_mu_);
      engine_->trace_ = std::move(ticket->ctx().trace);
    }
    Deregister(ticket);
  }

  void Abandon(PrismCarouselTicket* ticket) {
    ReleaseSpilledChunks(engine_->resources_, &ticket->ctx());
    Deregister(ticket);
  }

 private:
  std::unique_ptr<PrismCarouselTicket> PlanTicket(const RerankRequest& request) {
    auto ticket = std::make_unique<PrismCarouselTicket>(
        this, request, engine_->next_request_id_.fetch_add(1, std::memory_order_relaxed));
    RequestContext& ctx = ticket->ctx();
    ctx.pruner_options.dispersion_threshold = engine_->dispersion_threshold();
    ctx.pruner_options.prune_winners = engine_->options_.prune_winners;
    ctx.pruner_options.kmeans_max_k = engine_->options_.kmeans_max_k;
    ctx.pruner_options.seed = engine_->options_.seed;
    engine_->planner_->Begin(&ctx);
    return ticket;
  }

  void Deregister(PrismCarouselTicket* ticket) {
    live_.erase(std::remove(live_.begin(), live_.end(), ticket), live_.end());
  }

  PrismEngine* engine_;
  std::unique_ptr<LayerStreamer> streamer_;  // Null when streaming is off.
  size_t seq_ = 0;                           // Monotonic carousel position.
  std::vector<PrismCarouselTicket*> live_;   // Admitted, result not yet taken.
};

PrismCarouselTicket::~PrismCarouselTicket() {
  if (!finalized_) {
    pass_->Abandon(this);
  }
}

RerankResult PrismCarouselTicket::TakeResult() {
  PRISM_CHECK_MSG(ctx_.done, "TakeResult before the request finished");
  PRISM_CHECK_MSG(!finalized_, "TakeResult called twice");
  finalized_ = true;
  pass_->Finalize(this);
  return std::move(ctx_.result);
}

PrismEngine::PrismEngine(const ModelConfig& config, const std::string& checkpoint_path,
                         PrismOptions options, MemoryTracker* tracker)
    : config_(config),
      options_(options),
      tracker_(tracker),
      dispersion_threshold_(options.dispersion_threshold) {
  auto reader = BlobFileReader::Open(checkpoint_path, options_.device.ssd);
  PRISM_CHECK_MSG(reader.ok(), reader.status().ToString().c_str());
  reader_ = std::move(reader).value();
  const Status ckpt_status = ValidateCheckpoint(*reader_, config_, options_.precision);
  PRISM_CHECK_MSG(ckpt_status.ok(), ckpt_status.ToString().c_str());

  if (options_.embed_cache && options_.shared_embed_cache != nullptr) {
    // Pool-level sharing: use the externally-owned cache (its misses read
    // through its own reader, so this engine's reader serves layers only).
    cache_ = options_.shared_embed_cache;
    embedding_ = cache_;
  } else if (options_.embed_cache) {
    const auto rows = static_cast<size_t>(
        std::max(1.0, options_.embed_cache_fraction * static_cast<double>(config_.vocab_size)));
    auto cache = std::make_unique<EmbeddingCache>(config_, reader_.get(), rows, tracker_);
    cache_ = cache.get();
    owned_embedding_ = std::move(cache);
    embedding_ = owned_embedding_.get();
  } else {
    owned_embedding_ = std::make_unique<FullEmbeddingTable>(config_, reader_.get(), tracker_);
    embedding_ = owned_embedding_.get();
  }

  if (!options_.streaming) {
    int64_t total = 0;
    for (size_t layer = 0; layer < config_.n_layers; ++layer) {
      std::vector<uint8_t> blob(static_cast<size_t>(reader_->BlobSize(LayerBlobIndex(layer))));
      const Status status = reader_->ReadBlob(LayerBlobIndex(layer), blob);
      PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
      total += static_cast<int64_t>(blob.size());
      resident_layers_.push_back(std::move(blob));
    }
    resident_claim_ = MemClaim(tracker_, MemCategory::kWeights, total);
  }

  std::vector<uint8_t> head_blob(static_cast<size_t>(reader_->BlobSize(HeadBlobIndex(config_))));
  const Status status = reader_->ReadBlob(HeadBlobIndex(config_), head_blob);
  PRISM_CHECK_MSG(status.ok(), status.ToString().c_str());
  head_ = ParseHeadBlob(config_, head_blob);

  if (options_.offload_hidden) {
    spill_ = std::make_unique<SpillPool>(options_.device.ssd, tracker_);
  }

  resources_.config = &config_;
  resources_.options = &options_;
  resources_.tracker = tracker_;
  resources_.reader = reader_.get();
  resources_.embedding = embedding_;
  resources_.cache = cache_;
  resources_.head = &head_;
  resources_.resident_layers = &resident_layers_;
  resources_.spill = spill_.get();
  planner_.emplace(resources_);
  embed_stage_.emplace(resources_);
  layer_loop_.emplace(resources_);
  prune_stage_.emplace(resources_);
}

std::optional<EmbeddingCacheStats> PrismEngine::embed_cache_stats() const {
  if (cache_ == nullptr) {
    return std::nullopt;
  }
  return cache_->stats();
}

std::vector<LayerTraceEntry> PrismEngine::last_trace() const {
  MutexLock lock(trace_mu_);
  return trace_;
}

size_t PrismEngine::PlanChunkCandidates(size_t n, size_t seq_len) const {
  return planner_->PlanCandidates(n, seq_len);
}

std::unique_ptr<CarouselPass> PrismEngine::BeginCarousel() {
  return std::make_unique<PrismCarouselPass>(this);
}

RerankResult PrismEngine::Rerank(const RerankRequest& request) {
  const RerankRequest* ptr = &request;
  std::vector<RerankResult> results = RerankBatch({&ptr, 1});
  return std::move(results.front());
}

std::vector<RerankResult> PrismEngine::RerankBatch(
    std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) {
  if (requests.empty()) {
    return {};
  }
  // Contexts live on the heap so their addresses stay stable for the stages.
  std::vector<std::unique_ptr<RequestContext>> contexts;
  contexts.reserve(requests.size());
  for (const RerankRequest* request : requests) {
    auto ctx = std::make_unique<RequestContext>(
        *request, next_request_id_.fetch_add(1, std::memory_order_relaxed));
    ctx->pruner_options.dispersion_threshold = dispersion_threshold();
    ctx->pruner_options.prune_winners = options_.prune_winners;
    ctx->pruner_options.kmeans_max_k = options_.kmeans_max_k;
    ctx->pruner_options.seed = options_.seed;
    planner_->Begin(ctx.get());
    contexts.push_back(std::move(ctx));
  }

  // Embed each request (in parallel when a pool is provided — the embedding
  // cache serialises its own lookups).
  if (compute_pool != nullptr && contexts.size() > 1) {
    compute_pool->ParallelFor(0, contexts.size(),
                              [&](size_t i) { embed_stage_->Run(contexts[i].get()); });
  } else {
    for (auto& ctx : contexts) {
      embed_stage_->Run(ctx.get());
    }
  }

  std::vector<RequestContext*> batch;
  batch.reserve(contexts.size());
  for (auto& ctx : contexts) {
    batch.push_back(ctx.get());
  }
  layer_loop_->Run(batch, compute_pool);

  std::vector<RerankResult> results;
  results.reserve(contexts.size());
  for (auto& ctx : contexts) {
    prune_stage_->Finalize(ctx.get());
    results.push_back(std::move(ctx->result));
  }

  // Publish the last context's trace — full per-layer records in trace
  // mode, the light per-prune-decision entries otherwise.
  {
    MutexLock lock(trace_mu_);
    trace_ = std::move(contexts.back()->trace);
  }
  return results;
}

}  // namespace prism

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/retrieval/bi_encoder.h"
#include "src/retrieval/bm25.h"
#include "src/retrieval/hybrid.h"
#include "src/retrieval/vector_index.h"

namespace prism {
namespace {

TEST(Bm25Test, RanksMatchingDocHigher) {
  Bm25Index index;
  index.Add({10, 11, 12, 13});        // doc 0: matches query
  index.Add({20, 21, 22, 23});        // doc 1: unrelated
  index.Add({10, 21, 22, 23});        // doc 2: partial match
  const auto hits = index.Search({10, 11}, 3);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 0u);
  EXPECT_EQ(hits[1].doc_id, 2u);
}

TEST(Bm25Test, NoMatchesReturnsEmpty) {
  Bm25Index index;
  index.Add({10, 11});
  EXPECT_TRUE(index.Search({99}, 5).empty());
}

TEST(Bm25Test, RareTermsWeighMore) {
  Bm25Index index;
  // Term 50 appears everywhere (low idf); term 60 only in doc 2.
  index.Add({50, 51});
  index.Add({50, 52});
  index.Add({50, 60});
  index.Add({50, 53});
  const auto hits = index.Search({60, 50}, 4);
  EXPECT_EQ(hits[0].doc_id, 2u);
  EXPECT_GT(hits[0].score, 1.5 * hits[1].score);
}

TEST(Bm25Test, TopNLimit) {
  Bm25Index index;
  for (int i = 0; i < 20; ++i) {
    index.Add({100, static_cast<uint32_t>(200 + i)});
  }
  EXPECT_EQ(index.Search({100}, 7).size(), 7u);
}

TEST(BiEncoderTest, DeterministicEmbedding) {
  const BiEncoder encoder(32, 5);
  const auto a = encoder.Embed({1, 2, 3});
  const auto b = encoder.Embed({1, 2, 3});
  EXPECT_EQ(a, b);
}

TEST(BiEncoderTest, EmbeddingIsUnitNorm) {
  const BiEncoder encoder(32, 5);
  const auto e = encoder.Embed({4, 5, 6, 7});
  float norm = 0.0f;
  for (float v : e) {
    norm += v * v;
  }
  EXPECT_NEAR(norm, 1.0f, 1e-5f);
}

TEST(BiEncoderTest, SharedTokensRaiseSimilarity) {
  const BiEncoder encoder(48, 6);
  const auto query = encoder.Embed({1, 2, 3, 4});
  const auto related = encoder.Embed({1, 2, 3, 9});
  const auto unrelated = encoder.Embed({20, 21, 22, 23});
  EXPECT_GT(CosineSim(query, related), CosineSim(query, unrelated) + 0.2f);
}

TEST(FlatIndexTest, ExactNearestNeighbor) {
  const BiEncoder encoder(32, 7);
  FlatIndex index(32);
  for (uint32_t d = 0; d < 20; ++d) {
    index.Add(encoder.Embed({d * 3, d * 3 + 1, d * 3 + 2}));
  }
  // Query identical to doc 5's tokens → doc 5 must rank first.
  const auto hits = index.Search(encoder.Embed({15, 16, 17}), 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 5u);
}

TEST(IvfIndexTest, RecallAgainstFlat) {
  const BiEncoder encoder(32, 8);
  FlatIndex flat(32);
  IvfIndex ivf(32, 8, 4);
  Rng rng(9);
  for (int d = 0; d < 100; ++d) {
    std::vector<uint32_t> tokens;
    for (int t = 0; t < 6; ++t) {
      tokens.push_back(static_cast<uint32_t>(rng.NextBelow(500)));
    }
    const auto e = encoder.Embed(tokens);
    flat.Add(e);
    ivf.Add(e);
  }
  ivf.Train();
  double recall = 0.0;
  const int n_queries = 10;
  for (int q = 0; q < n_queries; ++q) {
    std::vector<uint32_t> tokens;
    for (int t = 0; t < 6; ++t) {
      tokens.push_back(static_cast<uint32_t>(rng.NextBelow(500)));
    }
    const auto e = encoder.Embed(tokens);
    const auto exact = flat.Search(e, 5);
    const auto approx = ivf.Search(e, 5);
    size_t hit = 0;
    for (const auto& a : approx) {
      for (const auto& x : exact) {
        if (a.doc_id == x.doc_id) {
          ++hit;
          break;
        }
      }
    }
    recall += static_cast<double>(hit) / 5.0;
  }
  EXPECT_GT(recall / n_queries, 0.5);  // nprobe=4 of 8 lists → decent recall.
}

TEST(IvfIndexTest, FullProbeEqualsFlat) {
  const BiEncoder encoder(16, 10);
  FlatIndex flat(16);
  IvfIndex ivf(16, 4, 4);  // nprobe == nlist → exhaustive.
  for (uint32_t d = 0; d < 30; ++d) {
    const auto e = encoder.Embed({d, d + 100});
    flat.Add(e);
    ivf.Add(e);
  }
  ivf.Train();
  const auto query = encoder.Embed({7, 107});
  const auto a = flat.Search(query, 5);
  const auto b = ivf.Search(query, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc_id, b[i].doc_id);
  }
}

TEST(HybridTest, InterleavesAndDedupes) {
  const std::vector<RetrievalHit> sparse = {{1, 0.9}, {2, 0.8}, {3, 0.7}};
  const std::vector<RetrievalHit> dense = {{2, 0.95}, {4, 0.85}, {5, 0.75}};
  const auto fused = FuseHits(sparse, dense, 5);
  EXPECT_EQ(fused, (std::vector<size_t>{1, 2, 4, 3, 5}));
}

TEST(HybridTest, StopsAtTotal) {
  const std::vector<RetrievalHit> sparse = {{1, 0.9}, {2, 0.8}};
  const std::vector<RetrievalHit> dense = {{3, 0.9}, {4, 0.8}};
  EXPECT_EQ(FuseHits(sparse, dense, 3).size(), 3u);
}

TEST(HybridTest, ExhaustsShortLists) {
  const std::vector<RetrievalHit> sparse = {{1, 0.9}};
  const std::vector<RetrievalHit> dense = {{1, 0.8}};
  EXPECT_EQ(FuseHits(sparse, dense, 10), std::vector<size_t>{1});
}

}  // namespace
}  // namespace prism

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/quant.h"

namespace prism {
namespace {

std::vector<float> RandomWeights(size_t n, uint64_t seed, float scale = 0.1f) {
  std::vector<float> w(n);
  Rng rng(seed);
  for (float& v : w) {
    v = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return w;
}

// Property sweep over matrix shapes and group sizes.
class QuantRoundTripTest : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(QuantRoundTripTest, ErrorBoundedByHalfScale) {
  const auto [rows, cols, group] = GetParam();
  MemoryTracker tracker;
  const std::vector<float> w = RandomWeights(rows * cols, rows * 31 + cols);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, group, MemCategory::kScratch, &tracker);
  std::vector<float> back(rows * cols);
  qm.Dequantize(back.data());
  // Symmetric 4-bit rounding: |err| <= scale/2 everywhere; check against the
  // global max scale (a loose but always-valid bound).
  const float bound = qm.MaxScale() * 0.5f + 1e-6f;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i] - back[i]), bound) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QuantRoundTripTest,
                         ::testing::Values(std::make_tuple(8, 32, 16),
                                           std::make_tuple(16, 64, 32),
                                           std::make_tuple(3, 32, 32),
                                           std::make_tuple(32, 128, 64),
                                           std::make_tuple(5, 96, 32)));

TEST(QuantTest, ByteSizeIsRoughlyQuarter) {
  MemoryTracker tracker;
  const size_t rows = 64;
  const size_t cols = 128;
  const std::vector<float> w = RandomWeights(rows * cols, 9);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  const size_t f32_bytes = rows * cols * sizeof(float);
  EXPECT_LT(qm.ByteSize(), f32_bytes / 3);  // 4 bits + scales < a third of fp32.
}

TEST(QuantTest, MatMulMatchesDequantizedMatMul) {
  MemoryTracker tracker;
  const size_t rows = 12;
  const size_t cols = 32;
  const size_t m = 5;
  const std::vector<float> w = RandomWeights(rows * cols, 10);
  const std::vector<float> a = RandomWeights(m * cols, 11, 1.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 16, MemCategory::kScratch, &tracker);

  std::vector<float> dequant(rows * cols);
  qm.Dequantize(dequant.data());
  std::vector<float> expected(m * rows, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < cols; ++k) {
        acc += static_cast<double>(a[i * cols + k]) * dequant[j * cols + k];
      }
      expected[i * rows + j] = static_cast<float>(acc);
    }
  }
  std::vector<float> got(m * rows, 0.0f);
  qm.MatMulTransB(a.data(), m, got.data());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-3f);
  }
}

TEST(QuantTest, SerializeDeserializeRoundTrip) {
  MemoryTracker tracker;
  const size_t rows = 8;
  const size_t cols = 64;
  const std::vector<float> w = RandomWeights(rows * cols, 12);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  std::vector<uint8_t> buf(qm.SerializedSize());
  qm.SerializeTo(buf.data());
  const QuantizedMatrix back = QuantizedMatrix::Deserialize(buf.data(), rows, cols, 32,
                                                            MemCategory::kScratch, &tracker);
  std::vector<float> w1(rows * cols);
  std::vector<float> w2(rows * cols);
  qm.Dequantize(w1.data());
  back.Dequantize(w2.data());
  EXPECT_EQ(w1, w2);
}

TEST(QuantTest, ViewMatchesOwningMatrix) {
  MemoryTracker tracker;
  const size_t rows = 8;
  const size_t cols = 32;
  const size_t m = 4;
  const std::vector<float> w = RandomWeights(rows * cols, 13);
  const std::vector<float> a = RandomWeights(m * cols, 14, 1.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 16, MemCategory::kScratch, &tracker);
  std::vector<uint8_t> buf(qm.SerializedSize());
  qm.SerializeTo(buf.data());

  QuantMatrixView view;
  view.rows = rows;
  view.cols = cols;
  view.group_size = 16;
  view.packed = buf.data();
  view.scales = reinterpret_cast<const float*>(buf.data() + rows * cols / 2);

  std::vector<float> got_owning(m * rows);
  std::vector<float> got_view(m * rows);
  qm.MatMulTransB(a.data(), m, got_owning.data());
  view.MatMulTransB(a.data(), m, got_view.data());
  EXPECT_EQ(got_owning, got_view);
}

TEST(QuantTest, SpanBytesMatchesSerializedSize) {
  MemoryTracker tracker;
  const size_t rows = 16;
  const size_t cols = 64;
  const std::vector<float> w = RandomWeights(rows * cols, 15);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), rows, cols, 32, MemCategory::kScratch, &tracker);
  EXPECT_EQ(qm.SerializedSize(), QuantMatrixView::SpanBytes(rows, cols, 32));
}

TEST(QuantTest, ZeroMatrixQuantizesToZero) {
  MemoryTracker tracker;
  const std::vector<float> w(8 * 16, 0.0f);
  const QuantizedMatrix qm =
      QuantizedMatrix::Quantize(w.data(), 8, 16, 16, MemCategory::kScratch, &tracker);
  std::vector<float> back(8 * 16, 1.0f);
  qm.Dequantize(back.data());
  for (float v : back) {
    EXPECT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace prism

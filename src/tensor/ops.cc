#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prism {

namespace {
// Blocked kernel tile sizes, sized for L1-resident accumulation on one core.
constexpr size_t kTileM = 8;
constexpr size_t kTileN = 64;
}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  PRISM_CHECK_EQ(a.cols(), b.rows());
  PRISM_CHECK_EQ(c->rows(), a.rows());
  PRISM_CHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c->data();
  std::fill(pc, pc + m * n, 0.0f);
  // i-k-j loop order keeps B rows streaming and C rows hot.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = pb + kk * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransBRaw(const float* a, size_t m, size_t k, const float* b, size_t n, float* c) {
  // C[i,j] = dot(A row i, B row j); tiled so each A tile is reused across a
  // strip of B rows.
  for (size_t i0 = 0; i0 < m; i0 += kTileM) {
    const size_t i1 = std::min(i0 + kTileM, m);
    for (size_t j0 = 0; j0 < n; j0 += kTileN) {
      const size_t j1 = std::min(j0 + kTileN, n);
      for (size_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (size_t j = j0; j < j1; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (size_t kk = 0; kk < k; ++kk) {
            acc += arow[kk] * brow[kk];
          }
          crow[j] = acc;
        }
      }
    }
  }
}

void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* c) {
  PRISM_CHECK_EQ(a.cols(), b.cols());
  PRISM_CHECK_EQ(c->rows(), a.rows());
  PRISM_CHECK_EQ(c->cols(), b.rows());
  MatMulTransBRaw(a.data(), a.rows(), a.cols(), b.data(), b.rows(), c->data());
}

void AddInPlace(Tensor* y, const Tensor& x) {
  PRISM_CHECK_EQ(y->size(), x.size());
  float* py = y->data();
  const float* px = x.data();
  for (size_t i = 0, e = y->size(); i < e; ++i) {
    py[i] += px[i];
  }
}

void AddBiasInPlace(Tensor* t, std::span<const float> bias) {
  PRISM_CHECK_EQ(t->cols(), bias.size());
  for (size_t r = 0; r < t->rows(); ++r) {
    auto row = t->row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      row[c] += bias[c];
    }
  }
}

void RmsNormInPlace(Tensor* t, std::span<const float> gain, float eps) {
  PRISM_CHECK_EQ(t->cols(), gain.size());
  for (size_t r = 0; r < t->rows(); ++r) {
    auto row = t->row(r);
    double sum_sq = 0.0;
    for (float v : row) {
      sum_sq += static_cast<double>(v) * v;
    }
    const float inv_rms =
        1.0f / std::sqrt(static_cast<float>(sum_sq / static_cast<double>(row.size())) + eps);
    for (size_t c = 0; c < row.size(); ++c) {
      row[c] = row[c] * inv_rms * gain[c];
    }
  }
}

void LayerNormInPlace(Tensor* t, std::span<const float> gain, std::span<const float> bias,
                      float eps) {
  PRISM_CHECK_EQ(t->cols(), gain.size());
  PRISM_CHECK_EQ(t->cols(), bias.size());
  for (size_t r = 0; r < t->rows(); ++r) {
    auto row = t->row(r);
    double mean = 0.0;
    for (float v : row) {
      mean += v;
    }
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (float v : row) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (size_t c = 0; c < row.size(); ++c) {
      row[c] = (row[c] - static_cast<float>(mean)) * inv_std * gain[c] + bias[c];
    }
  }
}

void SoftmaxRowInPlace(std::span<float> row, ptrdiff_t causal_limit) {
  const size_t limit =
      causal_limit < 0 ? row.size() : std::min(row.size(), static_cast<size_t>(causal_limit) + 1);
  if (limit == 0) {
    return;
  }
  float max_v = -std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < limit; ++i) {
    max_v = std::max(max_v, row[i]);
  }
  double sum = 0.0;
  for (size_t i = 0; i < limit; ++i) {
    row[i] = std::exp(row[i] - max_v);
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t i = 0; i < limit; ++i) {
    row[i] *= inv;
  }
  for (size_t i = limit; i < row.size(); ++i) {
    row[i] = 0.0f;
  }
}

void SiluInPlace(Tensor* t) {
  float* p = t->data();
  for (size_t i = 0, e = t->size(); i < e; ++i) {
    p[i] = p[i] * Sigmoid(p[i]);
  }
}

void GeluInPlace(Tensor* t) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  float* p = t->data();
  for (size_t i = 0, e = t->size(); i < e; ++i) {
    const float x = p[i];
    p[i] = 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
  }
}

void MulInPlace(Tensor* y, const Tensor& x) {
  PRISM_CHECK_EQ(y->size(), x.size());
  float* py = y->data();
  const float* px = x.data();
  for (size_t i = 0, e = y->size(); i < e; ++i) {
    py[i] *= px[i];
  }
}

float Sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float Dot(std::span<const float> a, std::span<const float> b) {
  PRISM_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

}  // namespace prism

// prism_lint CLI: lints the repository's src/ tree against the project
// invariants (see tools/lint/lint.h). Exit 0 = clean, 1 = violations,
// 2 = usage error. Runs as a CTest entry and as a CI step:
//
//   prism_lint --root=/path/to/repo
#include <cstring>
#include <iostream>
#include <string>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: prism_lint [--root=<repo root>]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  const std::vector<prism::lint::Violation> violations = prism::lint::LintTree(root);
  for (const prism::lint::Violation& v : violations) {
    std::cerr << v.ToString() << "\n";
  }
  if (!violations.empty()) {
    std::cerr << violations.size() << " violation(s)\n";
    return 1;
  }
  std::cout << "prism_lint: clean\n";
  return 0;
}

#include "src/core/online_calibrator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/data/metrics.h"

namespace prism {

OnlineCalibrator::OnlineCalibrator(PrismEngine* engine, Runner* reference,
                                   OnlineCalibratorOptions options)
    : engine_(engine), reference_(reference), options_(options) {
  PRISM_CHECK_GT(options_.sample_every, 0u);
  PRISM_CHECK_GT(options_.max_samples, 0u);
}

RerankResult OnlineCalibrator::Rerank(const RerankRequest& request) {
  const RerankResult result = engine_->Rerank(request);
  if (served_++ % options_.sample_every == 0) {
    if (log_.size() == options_.max_samples) {
      log_.pop_front();
    }
    log_.push_back(Sample{request, result.topk});
  }
  return result;
}

double OnlineCalibrator::RunIdleCycle(size_t budget) {
  if (log_.empty()) {
    return std::nan("");
  }
  double agreement = 0.0;
  size_t processed = 0;
  while (!log_.empty() && processed < budget) {
    const Sample sample = std::move(log_.front());
    log_.pop_front();
    // Full inference without pruning → ground truth.
    const RerankResult truth = reference_->Rerank(sample.request);
    agreement += TopKOverlap(sample.topk, truth.topk, sample.request.k);
    ++processed;
  }
  agreement /= static_cast<double>(processed);

  float threshold = engine_->options().dispersion_threshold;
  if (agreement < options_.target_precision) {
    threshold *= options_.raise_factor;  // Precision first.
  } else {
    threshold *= options_.lower_factor;  // Room to prune harder.
  }
  threshold = std::clamp(threshold, options_.min_threshold, options_.max_threshold);
  engine_->set_dispersion_threshold(threshold);
  return agreement;
}

}  // namespace prism

// Figure 9: memory footprint over time, ranking top-10 of 20 candidates with
// ~max-length sequences — one panel per model, four systems, plus the
// peak/avg summary table (ratios relative to PRISM).
//
// Flags: --device=nvidia|apple --candidates=N --timeline=0|1
#include <cstdio>

#include "bench/bench_util.h"

namespace prism {
namespace {

// Downsampled footprint-over-time curve.
void PrintTimeline(const std::vector<MemSnapshot>& timeline, double latency_ms) {
  if (timeline.empty()) {
    return;
  }
  constexpr int kPoints = 16;
  std::printf("    t(ms):  ");
  for (int p = 0; p < kPoints; ++p) {
    std::printf("%7.0f", latency_ms * p / (kPoints - 1));
  }
  std::printf("\n    MiB:    ");
  const int64_t t_end = timeline.back().t_micros;
  size_t cursor = 0;
  for (int p = 0; p < kPoints; ++p) {
    const int64_t t = t_end * p / (kPoints - 1);
    while (cursor + 1 < timeline.size() && timeline[cursor + 1].t_micros <= t) {
      ++cursor;
    }
    std::printf("%7.2f", MiB(timeline[cursor].total()));
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const DeviceProfile device = DeviceByName(flags.GetString("device", "nvidia"));
  const size_t candidates = static_cast<size_t>(flags.GetInt("candidates", 20));
  const bool show_timeline = flags.GetBool("timeline", true);

  PrintHeader("Figure 9 — memory footprint over time (" + device.name + ", top-10 of " +
              std::to_string(candidates) + ")");

  for (const ModelConfig& model : ModelZoo()) {
    // Long-sequence profile: documents near the model's max window (the
    // paper's "average sequence length of 500" scaled).
    SyntheticDataset data(DatasetByName("wikipedia"), model, kDataSeed);
    DatasetProfile profile = data.profile();
    profile.doc_terms = model.max_seq;  // Forces seq_len to max_seq.
    const SyntheticDataset long_data(profile, model, kDataSeed);
    const RerankRequest request =
        RerankRequest::FromQuery(long_data.MakeQuery(0, candidates), 10);

    std::printf("\n--- %s ---\n", model.name.c_str());
    struct Row {
      const char* name;
      double peak = 0.0;
      double avg = 0.0;
      double latency = 0.0;
    };
    std::vector<Row> rows;
    auto run = [&](const char* name, auto factory) {
      auto runner = FreshRunner(factory);
      MemoryTracker::Global().StartTimeline();
      const RerankResult result = runner->Rerank(request);
      MemoryTracker::Global().StopTimeline();
      Row row{name, MiB(MemoryTracker::Global().PeakTotal()),
              MiB(static_cast<int64_t>(MemoryTracker::Global().AverageTotal())),
              result.stats.latency_ms};
      rows.push_back(row);
      std::printf("  %-11s peak %8.2f MiB  avg %8.2f MiB  latency %8.1f ms\n", name, row.peak,
                  row.avg, row.latency);
      if (show_timeline) {
        PrintTimeline(MemoryTracker::Global().Timeline(), result.stats.latency_ms);
      }
    };
    {
      // HF runs regardless of the VRAM budget here; the paper measured the
      // OOM models on an A800 to obtain their curves — we note the same.
      const bool over_budget =
          EstimateHfPeakBytes(model, device, candidates, model.max_seq, Precision::kFp32) >
          VramBudgetBytes(device);
      run(over_budget ? "HF (A800)" : "HF", [&] { return MakeHf(model, device, Precision::kFp32); });
    }
    run("HF Quant", [&] { return MakeHf(model, device, Precision::kW4); });
    run("HF Offload", [&] { return MakeOffload(model, device, Precision::kFp32); });
    run("PRISM", [&] { return MakePrism(model, device, kThresholdLow, Precision::kFp32); });

    const Row& prism_row = rows.back();
    std::printf("  summary (peak/avg vs PRISM): ");
    for (const Row& row : rows) {
      std::printf("%s %.2fx/%.2fx  ", row.name, row.peak / prism_row.peak,
                  row.avg / prism_row.avg);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace prism

int main(int argc, char** argv) { return prism::Main(argc, argv); }
